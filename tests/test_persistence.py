"""Tests for dataset / result persistence."""

import pytest

from repro.datasets.synthetic import uniform_points
from repro.experiments.harness import ExperimentResult
from repro.join.result import CIJResult, JoinStats
from repro.persistence import (
    load_cij_result,
    load_experiment_result,
    load_pointset,
    save_cij_result,
    save_experiment_result,
    save_pointset,
)
from repro import common_influence_join


class TestPointsetRoundTrip:
    def test_round_trip_preserves_points_and_ids(self, tmp_path):
        points = uniform_points(50, seed=401)
        path = tmp_path / "points.csv"
        save_pointset(path, points, oids=list(range(100, 150)))
        oids, loaded = load_pointset(path)
        assert oids == list(range(100, 150))
        assert loaded == points

    def test_mismatched_oids_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_pointset(tmp_path / "x.csv", uniform_points(3, seed=1), oids=[1])

    def test_load_without_id_column_assigns_sequential_ids(self, tmp_path):
        path = tmp_path / "xy.csv"
        path.write_text("x,y\n1.5,2.5\n3.0,4.0\n", encoding="utf-8")
        oids, points = load_pointset(path)
        assert oids == [0, 1]
        assert points[1].x == 3.0

    def test_load_rejects_missing_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("lon,lat\n1,2\n", encoding="utf-8")
        with pytest.raises(ValueError):
            load_pointset(path)

    def test_load_rejects_malformed_rows(self, tmp_path):
        path = tmp_path / "bad2.csv"
        path.write_text("x,y\n1.0,not-a-number\n", encoding="utf-8")
        with pytest.raises(ValueError):
            load_pointset(path)


class TestCIJResultRoundTrip:
    def test_round_trip_preserves_pairs_and_stats(self, tmp_path):
        points_p = uniform_points(30, seed=402)
        points_q = uniform_points(25, seed=403)
        result = common_influence_join(points_p, points_q, method="nm")
        path = tmp_path / "result.csv"
        save_cij_result(path, result)
        loaded = load_cij_result(path)
        assert loaded.pair_set() == result.pair_set()
        assert loaded.stats.algorithm == "NM-CIJ"
        assert loaded.stats.total_page_accesses == result.stats.total_page_accesses
        assert [s.page_accesses for s in loaded.stats.progress] == [
            s.page_accesses for s in result.stats.progress
        ]

    def test_load_without_sidecar_still_returns_pairs(self, tmp_path):
        path = tmp_path / "pairs.csv"
        save_cij_result(path, CIJResult(pairs=[(1, 2), (3, 4)], stats=JoinStats("NM-CIJ")))
        (tmp_path / "pairs.csv.stats.json").unlink()
        loaded = load_cij_result(path)
        assert loaded.pair_set() == {(1, 2), (3, 4)}
        assert loaded.stats.algorithm == "UNKNOWN"

    def test_load_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("", encoding="utf-8")
        with pytest.raises(ValueError):
            load_cij_result(path)


class TestExperimentResultRoundTrip:
    def test_round_trip(self, tmp_path):
        result = ExperimentResult("fig0", "demo", "nowhere", columns=["algo", "pages"])
        result.add_row("NM-CIJ", 12)
        result.add_row("FM-CIJ", 40)
        result.add_note("shape holds")
        path = tmp_path / "fig0.json"
        save_experiment_result(path, result)
        loaded = load_experiment_result(path)
        assert loaded.experiment_id == "fig0"
        assert loaded.columns == ["algo", "pages"]
        assert loaded.rows == [["NM-CIJ", 12], ["FM-CIJ", 40]]
        assert loaded.notes == ["shape holds"]
