"""Tests for the top-level public API (repro.common_influence_join)."""

import pytest

import repro
from repro import DOMAIN, brute_force_cij, common_influence_join, uniform_points
from repro.geometry.point import Point


class TestCommonInfluenceJoin:
    def test_default_method_matches_oracle(self):
        points_p = uniform_points(50, seed=201)
        points_q = uniform_points(45, seed=202)
        result = common_influence_join(points_p, points_q)
        oracle = brute_force_cij(points_p, points_q, DOMAIN)
        assert result.pair_set() == oracle.pair_set()
        assert result.stats.algorithm == "NM-CIJ"

    def test_all_methods_agree(self):
        points_p = uniform_points(40, seed=203)
        points_q = uniform_points(35, seed=204)
        results = {
            method: common_influence_join(points_p, points_q, method=method).pair_set()
            for method in ("nm", "pm", "fm")
        }
        assert results["nm"] == results["pm"] == results["fm"]

    def test_method_is_case_insensitive(self):
        points_p = uniform_points(10, seed=205)
        points_q = uniform_points(10, seed=206)
        result = common_influence_join(points_p, points_q, method="FM")
        assert result.stats.algorithm == "FM-CIJ"

    def test_unknown_method_rejected(self):
        points = uniform_points(5, seed=207)
        with pytest.raises(ValueError):
            common_influence_join(points, points, method="quantum")

    def test_empty_inputs_rejected(self):
        points = uniform_points(5, seed=208)
        with pytest.raises(ValueError):
            common_influence_join([], points)
        with pytest.raises(ValueError):
            common_influence_join(points, [])

    def test_domain_extends_to_cover_out_of_range_data(self):
        points_p = [Point(-500.0, 20.0), Point(400.0, 900.0)]
        points_q = [Point(11_000.0, 5000.0), Point(300.0, 200.0)]
        result = common_influence_join(points_p, points_q)
        assert len(result.pairs) >= 2

    def test_pair_ids_are_positional_indices(self):
        points_p = [Point(100.0, 100.0)]
        points_q = [Point(9000.0, 9000.0), Point(200.0, 150.0)]
        result = common_influence_join(points_p, points_q)
        assert result.pair_set() == {(0, 0), (0, 1)}

    def test_version_and_public_names_exported(self):
        assert repro.__version__
        for name in repro.__all__:
            assert hasattr(repro, name), name
