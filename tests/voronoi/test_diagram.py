"""Tests for Voronoi diagram builders and the VoronoiDiagram container."""

import pytest

from repro.datasets.synthetic import DOMAIN, uniform_points
from repro.datasets.workload import build_indexed_pointset
from repro.geometry.point import Point
from repro.storage.disk import DiskManager
from repro.voronoi.cell import VoronoiCell
from repro.voronoi.diagram import (
    VoronoiDiagram,
    brute_force_diagram,
    compute_voronoi_diagram,
    iter_diagram_cells,
)
from repro.geometry.polygon import ConvexPolygon
from repro.geometry.rect import Rect


def indexed(points):
    disk = DiskManager()
    tree = build_indexed_pointset(disk, "RP", points, domain=DOMAIN)
    return disk, tree


class TestVoronoiDiagramContainer:
    def test_add_and_lookup(self):
        diagram = VoronoiDiagram(DOMAIN)
        cell = VoronoiCell(1, Point(1, 1), ConvexPolygon.from_rect(Rect(0, 0, 2, 2)))
        diagram.add(cell)
        assert len(diagram) == 1
        assert diagram.cell_of(1) is cell
        assert list(diagram) == [cell]

    def test_duplicate_oid_rejected(self):
        diagram = VoronoiDiagram(DOMAIN)
        cell = VoronoiCell(1, Point(1, 1), ConvexPolygon.from_rect(Rect(0, 0, 2, 2)))
        diagram.add(cell)
        with pytest.raises(ValueError):
            diagram.add(cell)

    def test_locate_returns_nearest_site_cell(self):
        points = uniform_points(40, seed=61)
        diagram = brute_force_diagram(points, DOMAIN)
        probe = Point(1234.0, 4321.0)
        located = diagram.locate(probe)
        nearest = min(range(len(points)), key=lambda i: points[i].distance_to(probe))
        assert located.oid == nearest

    def test_locate_on_empty_diagram(self):
        assert VoronoiDiagram(DOMAIN).locate(Point(0, 0)) is None


class TestBruteForceDiagram:
    def test_cells_partition_domain(self):
        points = uniform_points(30, seed=62)
        diagram = brute_force_diagram(points, DOMAIN)
        assert diagram.total_area() == pytest.approx(DOMAIN.area(), rel=1e-6)

    def test_mismatched_oids_rejected(self):
        with pytest.raises(ValueError):
            brute_force_diagram([Point(0, 0)], DOMAIN, oids=[1, 2])

    def test_intersecting_pairs_symmetry(self):
        points_p = uniform_points(15, seed=63)
        points_q = uniform_points(12, seed=64)
        diagram_p = brute_force_diagram(points_p, DOMAIN)
        diagram_q = brute_force_diagram(points_q, DOMAIN)
        forward = set(diagram_p.intersecting_pairs(diagram_q))
        backward = {(b, a) for a, b in diagram_q.intersecting_pairs(diagram_p)}
        assert forward == backward


class TestIndexDrivenDiagram:
    def test_batch_strategy_matches_brute_force(self):
        points = uniform_points(120, seed=65)
        _, tree = indexed(points)
        diagram = compute_voronoi_diagram(tree, DOMAIN, strategy="batch")
        oracle = brute_force_diagram(points, DOMAIN)
        assert len(diagram) == len(points)
        for oid in range(len(points)):
            assert diagram.cell_of(oid).area() == pytest.approx(
                oracle.cell_of(oid).area(), rel=1e-6, abs=1e-3
            )

    def test_iter_strategy_matches_batch_strategy(self):
        points = uniform_points(100, seed=66)
        _, tree = indexed(points)
        batch = compute_voronoi_diagram(tree, DOMAIN, strategy="batch")
        iters = compute_voronoi_diagram(tree, DOMAIN, strategy="iter")
        for oid in range(len(points)):
            assert batch.cell_of(oid).area() == pytest.approx(
                iters.cell_of(oid).area(), rel=1e-6, abs=1e-3
            )

    def test_diagram_covers_domain(self):
        points = uniform_points(80, seed=67)
        _, tree = indexed(points)
        diagram = compute_voronoi_diagram(tree, DOMAIN, strategy="batch")
        assert diagram.total_area() == pytest.approx(DOMAIN.area(), rel=1e-6)

    def test_unknown_strategy_rejected(self):
        points = uniform_points(20, seed=68)
        _, tree = indexed(points)
        with pytest.raises(ValueError):
            compute_voronoi_diagram(tree, DOMAIN, strategy="magic")
        with pytest.raises(ValueError):
            list(iter_diagram_cells(tree, DOMAIN, strategy="magic"))

    def test_streaming_cells_match_diagram(self):
        points = uniform_points(90, seed=69)
        _, tree = indexed(points)
        streamed = {cell.oid: cell for cell in iter_diagram_cells(tree, DOMAIN)}
        diagram = compute_voronoi_diagram(tree, DOMAIN)
        assert set(streamed) == set(diagram.cells)

    def test_batch_io_close_to_lower_bound_with_buffer(self):
        """Figure 6a claim: with a reasonable buffer BATCH I/O approaches the
        cost of scanning the tree once (LB).  At this reduced scale a single
        leaf's neighbourhood spans a large fraction of the tiny tree, so the
        buffer has to be a larger *fraction* than the paper's 2% to play the
        same role it plays at 100K points (see DESIGN.md substitutions)."""
        points = uniform_points(600, seed=70)
        disk, tree = indexed(points)
        disk.resize_buffer(max(1, tree.node_count() // 2))
        disk.buffer.clear()
        disk.reset_counters()
        compute_voronoi_diagram(tree, DOMAIN, strategy="batch")
        lb = tree.node_count()
        assert disk.counters.reads <= 4 * lb

    def test_batch_io_beats_iter_with_small_buffer(self):
        """The motivation for Algorithm 2: with a small buffer, per-point
        cell computation re-reads the same neighbourhood over and over."""
        points = uniform_points(600, seed=71)
        disk, tree = indexed(points)
        reads = {}
        for strategy in ("batch", "iter"):
            disk.resize_buffer(max(1, tree.node_count() // 10))
            disk.buffer.clear()
            disk.reset_counters()
            compute_voronoi_diagram(tree, DOMAIN, strategy=strategy)
            reads[strategy] = disk.counters.reads
        assert reads["batch"] < reads["iter"]
