"""Tests for the TP-VOR baseline."""

import random

from repro.datasets.synthetic import DOMAIN, uniform_points
from repro.datasets.workload import build_indexed_pointset
from repro.geometry.point import Point
from repro.storage.disk import DiskManager
from repro.voronoi.single import compute_voronoi_cell
from repro.voronoi.tpvor import TPVorStats, compute_voronoi_cell_tpvor
from tests.voronoi.test_single import assert_same_cell


def indexed(points):
    disk = DiskManager()
    tree = build_indexed_pointset(disk, "RP", points, domain=DOMAIN)
    return disk, tree


class TestTPVorCorrectness:
    def test_matches_bf_vor_on_random_data(self):
        points = uniform_points(150, seed=41)
        _, tree = indexed(points)
        rng = random.Random(4)
        for oid in rng.sample(range(len(points)), 10):
            tp = compute_voronoi_cell_tpvor(tree, points[oid], DOMAIN, site_oid=oid)
            bf = compute_voronoi_cell(tree, points[oid], DOMAIN, site_oid=oid)
            assert_same_cell(tp, bf)

    def test_two_point_dataset(self):
        points = [Point(2000.0, 2000.0), Point(8000.0, 8000.0)]
        _, tree = indexed(points)
        cell = compute_voronoi_cell_tpvor(tree, points[0], DOMAIN, site_oid=0)
        assert cell.contains(points[0])
        assert not cell.contains(points[1])

    def test_stats_count_queries_and_refinements(self):
        points = uniform_points(100, seed=42)
        _, tree = indexed(points)
        stats = TPVorStats()
        compute_voronoi_cell_tpvor(tree, points[0], DOMAIN, site_oid=0, stats=stats)
        assert stats.tpnn_queries >= stats.refinements
        assert stats.refinements >= 3


class TestTPVorCost:
    def test_tpvor_needs_more_node_reads_than_bfvor(self):
        """The comparison behind Figure 5: multiple traversals are costlier."""
        points = uniform_points(400, seed=43)
        disk, tree = indexed(points)
        sample = random.Random(5).sample(range(len(points)), 10)

        disk.buffer.clear()
        disk.reset_counters()
        for oid in sample:
            compute_voronoi_cell_tpvor(tree, points[oid], DOMAIN, site_oid=oid)
        tpvor_reads = disk.counters.logical_reads

        disk.buffer.clear()
        disk.reset_counters()
        for oid in sample:
            compute_voronoi_cell(tree, points[oid], DOMAIN, site_oid=oid)
        bfvor_reads = disk.counters.logical_reads

        assert bfvor_reads < tpvor_reads
