"""Tests for BF-VOR (Algorithm 1)."""

import random

import pytest

from repro.datasets.synthetic import DOMAIN, uniform_points
from repro.datasets.workload import build_indexed_pointset
from repro.geometry.point import Point
from repro.index.rtree import RTree
from repro.storage.disk import DiskManager
from repro.voronoi.diagram import brute_force_cell
from repro.voronoi.single import CellComputationStats, compute_voronoi_cell
from repro.storage.disk import DiskManager


def indexed(points):
    disk = DiskManager()
    tree = build_indexed_pointset(disk, "RP", points, domain=DOMAIN)
    return disk, tree


def assert_same_cell(cell_a, cell_b, rel=1e-6):
    """Two cells are the same polygon if each contains the other's vertices."""
    assert cell_a.area() == pytest.approx(cell_b.area(), rel=rel, abs=1e-3)
    for v in cell_a.polygon.vertices:
        assert cell_b.polygon.contains_point(v, eps=1e-5)
    for v in cell_b.polygon.vertices:
        assert cell_a.polygon.contains_point(v, eps=1e-5)


class TestBFVorCorrectness:
    def test_matches_brute_force_on_random_data(self):
        points = uniform_points(150, seed=21)
        _, tree = indexed(points)
        rng = random.Random(3)
        for oid in rng.sample(range(len(points)), 15):
            exact = compute_voronoi_cell(tree, points[oid], DOMAIN, site_oid=oid)
            oracle = brute_force_cell(points[oid], points, DOMAIN, oid=oid)
            assert_same_cell(exact, oracle)

    def test_cell_contains_its_site(self):
        points = uniform_points(80, seed=22)
        _, tree = indexed(points)
        for oid in (0, 10, 40, 79):
            cell = compute_voronoi_cell(tree, points[oid], DOMAIN, site_oid=oid)
            assert cell.contains(points[oid])

    def test_cell_of_external_point_is_well_defined(self):
        points = uniform_points(50, seed=23)
        _, tree = indexed(points)
        external = Point(5000.0, 5000.0)
        cell = compute_voronoi_cell(tree, external, DOMAIN)
        oracle = brute_force_cell(external, points + [external], DOMAIN)
        assert_same_cell(cell, oracle)

    def test_two_point_dataset_splits_domain_in_half(self):
        points = [Point(2500.0, 5000.0), Point(7500.0, 5000.0)]
        _, tree = indexed(points)
        cell = compute_voronoi_cell(tree, points[0], DOMAIN, site_oid=0)
        assert cell.area() == pytest.approx(DOMAIN.area() / 2, rel=1e-9)

    def test_empty_tree_gives_whole_domain(self):
        tree = RTree(DiskManager(), "RP")
        cell = compute_voronoi_cell(tree, Point(1.0, 1.0), DOMAIN)
        assert cell.area() == pytest.approx(DOMAIN.area())

    def test_depth_first_visit_order_gives_same_cell(self):
        points = uniform_points(120, seed=24)
        _, tree = indexed(points)
        for oid in (5, 60, 110):
            best = compute_voronoi_cell(tree, points[oid], DOMAIN, site_oid=oid)
            dfs = compute_voronoi_cell(
                tree, points[oid], DOMAIN, site_oid=oid, visit_order="depth-first"
            )
            assert_same_cell(best, dfs)

    def test_unknown_visit_order_rejected(self):
        points = uniform_points(10, seed=25)
        _, tree = indexed(points)
        with pytest.raises(ValueError):
            compute_voronoi_cell(tree, points[0], DOMAIN, site_oid=0, visit_order="random")


class TestBFVorCost:
    def test_each_node_read_at_most_once(self):
        points = uniform_points(400, seed=26)
        disk, tree = indexed(points)
        disk.buffer.clear()
        disk.reset_counters()
        compute_voronoi_cell(tree, points[0], DOMAIN, site_oid=0)
        assert disk.counters.logical_reads <= tree.node_count()

    def test_best_first_reads_no_more_nodes_than_depth_first(self):
        points = uniform_points(400, seed=27)
        disk, tree = indexed(points)
        totals = {}
        for order in ("best-first", "depth-first"):
            disk.buffer.clear()
            disk.reset_counters()
            for oid in (3, 100, 250):
                compute_voronoi_cell(tree, points[oid], DOMAIN, site_oid=oid, visit_order=order)
            totals[order] = disk.counters.logical_reads
        assert totals["best-first"] <= totals["depth-first"]

    def test_stats_are_accumulated(self):
        points = uniform_points(100, seed=28)
        _, tree = indexed(points)
        stats = CellComputationStats()
        compute_voronoi_cell(tree, points[0], DOMAIN, site_oid=0, stats=stats)
        assert stats.heap_pops > 0
        assert stats.refinements >= 3
        other = CellComputationStats(heap_pops=1)
        other.merge(stats)
        assert other.heap_pops == stats.heap_pops + 1
