"""Tests for the quadrant-NN Voronoi-cell approximation."""

from repro.datasets.synthetic import DOMAIN, uniform_points
from repro.datasets.workload import build_indexed_pointset
from repro.geometry.point import Point
from repro.index.rtree import RTree
from repro.storage.disk import DiskManager
from repro.voronoi.approx import approximate_cell_quadrants
from repro.voronoi.single import compute_voronoi_cell


def indexed(points):
    disk = DiskManager()
    tree = build_indexed_pointset(disk, "RP", points, domain=DOMAIN)
    return disk, tree


class TestQuadrantApproximation:
    def test_approximation_is_a_superset_of_exact_cell(self):
        points = uniform_points(200, seed=51)
        _, tree = indexed(points)
        for oid in (0, 50, 120, 199):
            approx = approximate_cell_quadrants(tree, points[oid], DOMAIN, site_oid=oid)
            exact = compute_voronoi_cell(tree, points[oid], DOMAIN, site_oid=oid)
            assert approx.area() >= exact.area() - 1e-6
            for vertex in exact.polygon.vertices:
                assert approx.polygon.contains_point(vertex, eps=1e-5)

    def test_approximation_contains_site(self):
        points = uniform_points(100, seed=52)
        _, tree = indexed(points)
        approx = approximate_cell_quadrants(tree, points[3], DOMAIN, site_oid=3)
        assert approx.contains(points[3])

    def test_empty_tree_returns_domain(self):
        tree = RTree(DiskManager(), "RP")
        approx = approximate_cell_quadrants(tree, Point(1.0, 1.0), DOMAIN)
        assert approx.area() == DOMAIN.area()

    def test_single_other_point_halves_domain(self):
        points = [Point(2500.0, 5000.0), Point(7500.0, 5000.0)]
        _, tree = indexed(points)
        approx = approximate_cell_quadrants(tree, points[0], DOMAIN, site_oid=0)
        assert abs(approx.area() - DOMAIN.area() / 2) < 1e-6
