"""Property-based tests for the R-tree Voronoi cell algorithms."""

import pytest
from hypothesis import given, settings

from repro.datasets.synthetic import DOMAIN
from repro.datasets.workload import build_indexed_pointset
from repro.storage.disk import DiskManager
from repro.voronoi.batch import compute_voronoi_cells
from repro.voronoi.diagram import brute_force_cell
from repro.voronoi.single import compute_voronoi_cell
from repro.voronoi.tpvor import compute_voronoi_cell_tpvor
from tests.conftest import distinct_pointsets


def indexed(points):
    disk = DiskManager()
    tree = build_indexed_pointset(disk, "RP", points, domain=DOMAIN, bulk=False)
    return tree


class TestCellAlgorithmEquivalence:
    @given(distinct_pointsets(min_size=2, max_size=14))
    @settings(max_examples=40, deadline=None)
    def test_bfvor_equals_brute_force(self, points):
        tree = indexed(points)
        for oid in (0, len(points) - 1):
            exact = compute_voronoi_cell(tree, points[oid], DOMAIN, site_oid=oid)
            oracle = brute_force_cell(points[oid], points, DOMAIN, oid=oid)
            assert exact.area() == pytest.approx(oracle.area(), rel=1e-6, abs=1e-3)

    @given(distinct_pointsets(min_size=2, max_size=10))
    @settings(max_examples=25, deadline=None)
    def test_tpvor_equals_brute_force(self, points):
        tree = indexed(points)
        oid = 0
        tp = compute_voronoi_cell_tpvor(tree, points[oid], DOMAIN, site_oid=oid)
        oracle = brute_force_cell(points[oid], points, DOMAIN, oid=oid)
        assert tp.area() == pytest.approx(oracle.area(), rel=1e-6, abs=1e-3)

    @given(distinct_pointsets(min_size=3, max_size=12))
    @settings(max_examples=30, deadline=None)
    def test_batch_equals_per_point(self, points):
        tree = indexed(points)
        group = [(oid, point) for oid, point in enumerate(points[: len(points) // 2 + 1])]
        batch = compute_voronoi_cells(tree, group, DOMAIN)
        for oid, site in group:
            single = compute_voronoi_cell(tree, site, DOMAIN, site_oid=oid)
            assert batch[oid].area() == pytest.approx(single.area(), rel=1e-6, abs=1e-3)


class TestCellInvariants:
    @given(distinct_pointsets(min_size=2, max_size=14))
    @settings(max_examples=40, deadline=None)
    def test_cells_contain_sites_and_tile_domain(self, points):
        tree = indexed(points)
        cells = compute_voronoi_cells(tree, list(enumerate(points)), DOMAIN)
        total = 0.0
        for oid, site in enumerate(points):
            assert cells[oid].contains(site)
            total += cells[oid].area()
        assert total == pytest.approx(DOMAIN.area(), rel=1e-6)

    @given(distinct_pointsets(min_size=2, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_cells_have_disjoint_interiors(self, points):
        tree = indexed(points)
        cells = compute_voronoi_cells(tree, list(enumerate(points)), DOMAIN)
        values = list(cells.values())
        for i in range(len(values)):
            for j in range(i + 1, len(values)):
                overlap = values[i].common_region(values[j])
                assert overlap.area() <= 1e-3
