"""Tests for BatchVoronoi (Algorithm 2)."""

import pytest

from repro.datasets.synthetic import DOMAIN, uniform_points
from repro.datasets.workload import build_indexed_pointset
from repro.storage.disk import DiskManager
from repro.voronoi.batch import compute_cells_for_leaf, compute_voronoi_cells
from repro.voronoi.diagram import brute_force_cell
from repro.voronoi.single import compute_voronoi_cell
from tests.voronoi.test_single import assert_same_cell


def indexed(points):
    disk = DiskManager()
    tree = build_indexed_pointset(disk, "RP", points, domain=DOMAIN)
    return disk, tree


class TestBatchVoronoiCorrectness:
    def test_matches_single_cell_computation(self):
        points = uniform_points(200, seed=31)
        _, tree = indexed(points)
        group = [(oid, points[oid]) for oid in range(20, 35)]
        batch = compute_voronoi_cells(tree, group, DOMAIN)
        for oid, site in group:
            single = compute_voronoi_cell(tree, site, DOMAIN, site_oid=oid)
            assert_same_cell(batch[oid], single)

    def test_matches_brute_force(self):
        points = uniform_points(120, seed=32)
        _, tree = indexed(points)
        group = [(oid, points[oid]) for oid in (0, 5, 9, 14)]
        batch = compute_voronoi_cells(tree, group, DOMAIN)
        for oid, site in group:
            assert_same_cell(batch[oid], brute_force_cell(site, points, DOMAIN, oid=oid))

    def test_group_of_one_equals_single(self):
        points = uniform_points(60, seed=33)
        _, tree = indexed(points)
        batch = compute_voronoi_cells(tree, [(7, points[7])], DOMAIN)
        single = compute_voronoi_cell(tree, points[7], DOMAIN, site_oid=7)
        assert_same_cell(batch[7], single)

    def test_every_cell_contains_its_site(self):
        points = uniform_points(150, seed=34)
        _, tree = indexed(points)
        group = [(oid, points[oid]) for oid in range(40, 60)]
        batch = compute_voronoi_cells(tree, group, DOMAIN)
        for oid, site in group:
            assert batch[oid].contains(site)

    def test_empty_group_rejected(self):
        points = uniform_points(20, seed=35)
        _, tree = indexed(points)
        with pytest.raises(ValueError):
            compute_voronoi_cells(tree, [], DOMAIN)

    def test_duplicate_oids_rejected(self):
        points = uniform_points(20, seed=36)
        _, tree = indexed(points)
        with pytest.raises(ValueError):
            compute_voronoi_cells(tree, [(1, points[1]), (1, points[2])], DOMAIN)

    def test_compute_cells_for_leaf_covers_leaf_points(self):
        points = uniform_points(180, seed=37)
        _, tree = indexed(points)
        leaf = next(tree.iter_leaf_nodes())
        cells = compute_cells_for_leaf(tree, leaf.entries, DOMAIN)
        assert set(cells) == {entry.oid for entry in leaf.entries}


class TestBatchVoronoiCost:
    def test_batch_reads_fewer_nodes_than_repeated_single(self):
        points = uniform_points(400, seed=38)
        disk, tree = indexed(points)
        leaf = next(tree.iter_leaf_nodes(order="hilbert"))
        group = [(e.oid, e.payload) for e in leaf.entries]

        disk.buffer.clear()
        disk.reset_counters()
        compute_voronoi_cells(tree, group, DOMAIN)
        batch_reads = disk.counters.logical_reads

        disk.buffer.clear()
        disk.reset_counters()
        for oid, site in group:
            compute_voronoi_cell(tree, site, DOMAIN, site_oid=oid)
        single_reads = disk.counters.logical_reads

        assert batch_reads < single_reads

    def test_batch_reads_each_node_at_most_once(self):
        points = uniform_points(300, seed=39)
        disk, tree = indexed(points)
        group = [(oid, points[oid]) for oid in range(10)]
        disk.buffer.clear()
        disk.reset_counters()
        compute_voronoi_cells(tree, group, DOMAIN)
        assert disk.counters.logical_reads <= tree.node_count()
