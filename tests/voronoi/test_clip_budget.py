"""Counter-verified regression bounds for the Voronoi hot-path optimisation.

BatchVoronoi now orders bisector clipping by neighbour distance and stops
both the group refinement and the best-first traversal at the Lemma-1
early-termination bound.  These tests pin the improvement with deterministic
operation counts measured at the seed revision, so a regression of the hot
path fails loudly instead of showing up only as wall-clock noise.
"""

from repro.datasets.synthetic import DOMAIN, uniform_points
from repro.datasets.workload import build_indexed_pointset
from repro.storage.disk import DiskManager
from repro.voronoi.diagram import brute_force_diagram, compute_voronoi_diagram
from repro.voronoi.single import CellComputationStats

#: Operation counts of `compute_voronoi_diagram(strategy="batch")` at the
#: seed revision (commit 9672901), measured on the fixed datasets below.
SEED_BATCH_CLIPS = {(400, 6): 9228, (300, 11): 7000}
SEED_BATCH_HEAP_POPS = {(400, 6): 2123, (300, 11): 1338}
#: Seed heap pops of the per-point ITER strategy on uniform(400, seed=6);
#: the Lemma-1 early termination must cut deep into this as well.
SEED_ITER_HEAP_POPS_400 = 42713


def batch_stats(n, seed):
    points = uniform_points(n, seed=seed)
    tree = build_indexed_pointset(DiskManager(), "RP", points, domain=DOMAIN)
    stats = CellComputationStats()
    diagram = compute_voronoi_diagram(tree, DOMAIN, strategy="batch", stats=stats)
    return points, diagram, stats


class TestClipBudget:
    def test_batch_does_measurably_fewer_clips_than_seed(self):
        for (n, seed), seed_clips in SEED_BATCH_CLIPS.items():
            _, _, stats = batch_stats(n, seed)
            # "Measurably fewer": at most 70% of the seed's clip count.  The
            # optimised implementation currently performs ~one third.
            assert stats.refinements <= 0.7 * seed_clips, (n, seed)

    def test_batch_does_fewer_heap_pops_than_seed(self):
        for (n, seed), seed_pops in SEED_BATCH_HEAP_POPS.items():
            _, _, stats = batch_stats(n, seed)
            assert stats.heap_pops < seed_pops, (n, seed)

    def test_iter_early_termination_cuts_heap_pops(self):
        points = uniform_points(400, seed=6)
        tree = build_indexed_pointset(DiskManager(), "RP", points, domain=DOMAIN)
        stats = CellComputationStats()
        compute_voronoi_diagram(tree, DOMAIN, strategy="iter", stats=stats)
        assert stats.heap_pops <= 0.5 * SEED_ITER_HEAP_POPS_400

    def test_optimised_diagram_is_still_exact(self):
        """The optimisation must skip only provably-irrelevant work: every
        cell still matches the brute-force oracle."""
        points, diagram, _ = batch_stats(120, 13)
        oracle = brute_force_diagram(points, DOMAIN)
        assert len(diagram) == len(oracle)
        for oid in range(len(points)):
            ours = diagram.cell_of(oid)
            against = oracle.cell_of(oid)
            assert abs(ours.area() - against.area()) < 1e-6
            assert ours.polygon.intersects(against.polygon)
