"""Tests for the experiment harness and registry."""

import pytest

from repro.experiments.harness import (
    ExperimentResult,
    SCALES,
    get_scale,
    list_experiments,
    run_experiment,
)


class TestScales:
    def test_default_scale_is_small(self):
        assert get_scale().name == "small"

    def test_named_scales_resolve(self):
        for name in SCALES:
            assert get_scale(name).name == name
        assert get_scale("TINY").name == "tiny"

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            get_scale("humongous")

    def test_scales_grow_monotonically(self):
        assert (
            SCALES["tiny"].base_cardinality
            < SCALES["small"].base_cardinality
            < SCALES["medium"].base_cardinality
            < SCALES["large"].base_cardinality
        )


class TestExperimentResult:
    def test_add_row_validates_width(self):
        result = ExperimentResult("x", "t", "ref", columns=["a", "b"])
        result.add_row(1, 2)
        with pytest.raises(ValueError):
            result.add_row(1)

    def test_column_extraction(self):
        result = ExperimentResult("x", "t", "ref", columns=["algo", "pages"])
        result.add_row("NM", 10)
        result.add_row("FM", 30)
        assert result.column("pages") == [10, 30]

    def test_text_and_markdown_render(self):
        result = ExperimentResult("fig0", "demo", "nowhere", columns=["a"])
        result.add_row(1)
        result.add_note("hello")
        text = result.to_text()
        assert "fig0" in text and "hello" in text
        markdown = result.to_markdown()
        assert markdown.startswith("### fig0")
        assert "| a |" in markdown


class TestRegistry:
    def test_every_paper_artifact_is_registered(self):
        registered = set(list_experiments())
        expected = {
            "fig5", "fig6", "table2", "fig7", "fig8a", "fig8b",
            "fig9a", "fig9b", "fig10a", "fig10b", "fig11a", "fig11b", "table3",
        }
        assert expected.issubset(registered)

    def test_ablations_are_registered(self):
        registered = set(list_experiments())
        assert {"ablation_visit_order", "ablation_phi", "ablation_batch"} <= registered

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError):
            run_experiment("fig99")
