"""Smoke tests: every experiment driver runs at the tiny scale and its
output supports the paper's qualitative claims."""

import pytest

from repro.experiments.harness import run_experiment


@pytest.fixture(scope="module")
def fig7():
    return run_experiment("fig7", scale="tiny")


class TestVoronoiDrivers:
    def test_fig5_bfvor_beats_tpvor(self):
        result = run_experiment("fig5", scale="tiny")
        rows = {row[0]: row for row in result.rows}
        assert rows["BF-VOR"][2] < rows["TP-VOR"][2]  # mean node accesses
        assert rows["BF-VOR"][3] <= rows["TP-VOR"][3]  # max node accesses

    def test_fig6_batch_tracks_lower_bound_better_than_iter(self):
        result = run_experiment("fig6", scale="tiny")
        by_size = {}
        for datasize, method, pages, _heap_pops, _clip_ops, _cpu in result.rows:
            by_size.setdefault(datasize, {})[method] = pages
        for datasize, methods in by_size.items():
            assert methods["BATCH"] <= methods["ITER"]
            assert methods["LB"] <= methods["BATCH"]

    def test_table2_covers_all_real_datasets(self):
        result = run_experiment("table2", scale="tiny")
        assert {row[0] for row in result.rows} == {"PP", "SC", "CE", "LO", "PA"}
        for row in result.rows:
            assert row[2] >= row[4]  # page accesses >= LB pages


class TestCIJDrivers:
    def test_fig7_io_ordering(self, fig7):
        totals = {row[0]: row[3] for row in fig7.rows}
        assert totals["NM-CIJ"] < totals["PM-CIJ"] < totals["FM-CIJ"]

    def test_fig7_result_sizes_agree_across_algorithms(self, fig7):
        sizes = {row[6] for row in fig7.rows}
        assert len(sizes) == 1

    def test_fig7_nm_has_no_materialisation(self, fig7):
        nm_row = next(row for row in fig7.rows if row[0] == "NM-CIJ")
        assert nm_row[1] == 0

    def test_fig9b_nm_is_progressive(self):
        result = run_experiment("fig9b", scale="tiny")
        nm_rows = [row for row in result.rows if row[0] == "NM-CIJ"]
        fm_rows = [row for row in result.rows if row[0] == "FM-CIJ"]
        assert nm_rows[-1][2] > 0
        first_nm_output = next(row for row in nm_rows if row[2] > 0)
        first_fm_output = next(row for row in fm_rows if row[2] > 0)
        assert first_nm_output[1] < first_fm_output[1]

    def test_fig10a_false_hit_ratio_is_small(self):
        result = run_experiment("fig10a", scale="tiny")
        for row in result.rows:
            assert row[3] < 0.3

    def test_fig11a_reuse_reduces_computations(self):
        result = run_experiment("fig11a", scale="tiny")
        by_size = {}
        for datasize, variant, computed, _reused, _n in result.rows:
            by_size.setdefault(datasize, {})[variant] = computed
        for datasize, variants in by_size.items():
            assert variants["REUSE"] <= variants["NO-REUSE"]


class TestAblationDrivers:
    def test_visit_order_ablation(self):
        result = run_experiment("ablation_visit_order", scale="tiny")
        accesses = {row[0]: row[2] for row in result.rows}
        assert accesses["best-first"] <= accesses["depth-first"]

    def test_phi_ablation_keeps_result_size(self):
        result = run_experiment("ablation_phi", scale="tiny")
        sizes = {row[2] for row in result.rows}
        assert len(sizes) == 1
        pages = {row[0]: row[1] for row in result.rows}
        assert pages["with Φ pruning"] <= pages["without Φ pruning"]

    def test_batch_ablation(self):
        result = run_experiment("ablation_batch", scale="tiny")
        accesses = {row[0]: row[2] for row in result.rows}
        assert accesses["BATCH"] <= accesses["SINGLE"]
