"""Tests for the experiment reporting helpers."""

from repro.experiments.reporting import format_markdown_table, format_table, format_value


class TestFormatValue:
    def test_integers_get_thousands_separators(self):
        assert format_value(1234567) == "1,234,567"

    def test_floats_get_three_decimals(self):
        assert format_value(0.12345) == "0.123"
        assert format_value(0.0) == "0"
        assert format_value(12345.6) == "12,346"

    def test_strings_and_bools_pass_through(self):
        assert format_value("NM-CIJ") == "NM-CIJ"
        assert format_value(True) == "True"


class TestFormatTable:
    def test_header_separator_and_alignment(self):
        text = format_table(["algo", "pages"], [["NM-CIJ", 12], ["FM-CIJ", 3456]])
        lines = text.splitlines()
        assert lines[0].startswith("algo")
        assert set(lines[1]) <= {"-", "+"}
        assert "3,456" in lines[3]
        # All rows share the same width.
        assert len({len(line) for line in lines}) == 1

    def test_empty_rows_still_render_header(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text


class TestMarkdownTable:
    def test_markdown_structure(self):
        text = format_markdown_table(["x", "y"], [[1, 2.5]])
        lines = text.splitlines()
        assert lines[0] == "| x | y |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2.500 |"
