"""Tests for the synthetic dataset generators."""

import pytest

from repro.datasets.synthetic import DOMAIN, clustered_points, gaussian_points, uniform_points
from repro.geometry.rect import Rect


class TestUniformPoints:
    def test_count_and_domain(self):
        points = uniform_points(200, seed=1)
        assert len(points) == 200
        assert all(DOMAIN.contains_point(p) for p in points)

    def test_points_are_distinct(self):
        points = uniform_points(500, seed=2)
        assert len({(p.x, p.y) for p in points}) == 500

    def test_seed_determinism(self):
        assert uniform_points(50, seed=3) == uniform_points(50, seed=3)
        assert uniform_points(50, seed=3) != uniform_points(50, seed=4)

    def test_zero_points(self):
        assert uniform_points(0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            uniform_points(-1)

    def test_custom_domain_respected(self):
        domain = Rect(100.0, 200.0, 300.0, 400.0)
        points = uniform_points(100, seed=5, domain=domain)
        assert all(domain.contains_point(p) for p in points)


class TestGaussianPoints:
    def test_points_are_clipped_to_domain(self):
        points = gaussian_points(300, seed=6, spread_fraction=0.8)
        assert all(DOMAIN.contains_point(p) for p in points)

    def test_concentration_around_center(self):
        points = gaussian_points(300, seed=7, spread_fraction=0.05)
        center = DOMAIN.center()
        near = sum(1 for p in points if p.distance_to(center) < 2000.0)
        assert near > 250

    def test_invalid_spread_rejected(self):
        with pytest.raises(ValueError):
            gaussian_points(10, spread_fraction=0.0)


class TestClusteredPoints:
    def test_count_distinctness_and_domain(self):
        points = clustered_points(400, clusters=5, seed=8)
        assert len(points) == 400
        assert len({(p.x, p.y) for p in points}) == 400
        assert all(DOMAIN.contains_point(p) for p in points)

    def test_clustering_is_visible(self):
        """Clustered data must be far less spread out than uniform data."""
        
        clustered = clustered_points(400, clusters=3, seed=9, uniform_fraction=0.0)
        uniform = uniform_points(400, seed=9)

        def mean_nn_distance(points):
            total = 0.0
            for p in points[:100]:
                total += min(p.distance_to(q) for q in points if q != p)
            return total / 100

        assert mean_nn_distance(clustered) < mean_nn_distance(uniform)

    def test_invalid_cluster_count_rejected(self):
        with pytest.raises(ValueError):
            clustered_points(10, clusters=0)

    def test_skewed_and_balanced_cluster_sizes_differ(self):
        skewed = clustered_points(300, clusters=6, seed=10, skewed_cluster_sizes=True)
        balanced = clustered_points(300, clusters=6, seed=10, skewed_cluster_sizes=False)
        assert skewed != balanced
