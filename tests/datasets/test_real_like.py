"""Tests for the real-dataset stand-ins."""

import pytest

from repro.datasets.real_like import DEFAULT_SCALE, REAL_DATASET_SPECS, real_like_dataset
from repro.datasets.synthetic import DOMAIN


class TestRealLikeDatasets:
    def test_all_five_datasets_exist(self):
        assert set(REAL_DATASET_SPECS) == {"PP", "SC", "CE", "LO", "PA"}

    def test_cardinalities_follow_table1_ratios(self):
        sizes = {name: len(real_like_dataset(name, scale=DEFAULT_SCALE)) for name in REAL_DATASET_SPECS}
        # Table I ordering: PP > SC > LO > CE > PA (PP largest, PA smallest).
        assert sizes["PP"] > sizes["SC"] > sizes["CE"] > sizes["PA"]
        assert sizes["LO"] > sizes["PA"]
        for name, spec in REAL_DATASET_SPECS.items():
            assert sizes[name] == max(16, spec.paper_cardinality // DEFAULT_SCALE)

    def test_points_are_normalised_to_domain(self):
        for name in REAL_DATASET_SPECS:
            points = real_like_dataset(name, scale=600)
            assert all(DOMAIN.contains_point(p) for p in points)

    def test_deterministic_per_dataset(self):
        assert real_like_dataset("PP", scale=600) == real_like_dataset("PP", scale=600)
        assert real_like_dataset("PP", scale=600) != real_like_dataset("SC", scale=600)

    def test_case_insensitive_names(self):
        assert real_like_dataset("pa", scale=600) == real_like_dataset("PA", scale=600)

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError):
            real_like_dataset("XX")

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            real_like_dataset("PP", scale=0)
