"""Tests for workload construction."""

import pytest

from repro.datasets.synthetic import DOMAIN, uniform_points
from repro.datasets.workload import (
    DynamicWorkloadConfig,
    WorkloadConfig,
    build_indexed_pointset,
    build_workload,
    generate_update_batches,
)
from repro.storage.disk import DiskManager


class TestBuildIndexedPointset:
    def test_construction_charges_no_io(self):
        disk = DiskManager()
        points = uniform_points(150, seed=31)
        tree = build_indexed_pointset(disk, "RP", points, domain=DOMAIN)
        assert disk.counters.page_accesses == 0
        assert len(tree.all_leaf_entries()) == 150

    def test_bulk_and_incremental_store_the_same_points(self):
        disk = DiskManager()
        points = uniform_points(120, seed=32)
        bulk = build_indexed_pointset(disk, "A", points, domain=DOMAIN, bulk=True)
        grown = build_indexed_pointset(disk, "B", points, domain=DOMAIN, bulk=False)
        assert {e.payload for e in bulk.all_leaf_entries()} == {
            e.payload for e in grown.all_leaf_entries()
        }
        bulk.check_invariants()
        grown.check_invariants()


class TestBuildWorkload:
    def test_default_workload_shapes(self):
        workload = build_workload(WorkloadConfig(n_p=100, n_q=80, seed=33))
        assert len(workload.points_p) == 100
        assert len(workload.points_q) == 80
        assert len(workload.tree_p) == 100
        assert len(workload.tree_q) == 80
        assert workload.tree_p.disk is workload.tree_q.disk

    def test_explicit_points_override_config(self):
        points_p = uniform_points(12, seed=34)
        points_q = uniform_points(9, seed=35)
        workload = build_workload(WorkloadConfig(n_p=500), points_p=points_p, points_q=points_q)
        assert workload.points_p == points_p
        assert len(workload.tree_q) == 9

    def test_counters_start_at_zero(self):
        workload = build_workload(WorkloadConfig(n_p=60, n_q=60))
        assert workload.disk.counters.page_accesses == 0

    def test_buffer_sized_as_fraction_of_source_pages(self):
        workload = build_workload(WorkloadConfig(n_p=600, n_q=600, buffer_fraction=0.10))
        source_pages = workload.tree_p.node_count() + workload.tree_q.node_count()
        assert workload.disk.buffer.capacity == round(source_pages * 0.10)

    def test_reset_measurement_clears_state(self):
        workload = build_workload(WorkloadConfig(n_p=80, n_q=80))
        workload.disk.read(workload.tree_p.root_page)
        assert workload.disk.counters.page_accesses > 0
        workload.reset_measurement(buffer_fraction=0.05)
        assert workload.disk.counters.page_accesses == 0
        assert len(workload.disk.buffer) == 0


class TestDynamicWorkloadConfig:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="unknown sides"):
            DynamicWorkloadConfig(sides="R")
        with pytest.raises(ValueError, match="insert_fraction"):
            DynamicWorkloadConfig(insert_fraction=1.5)
        with pytest.raises(ValueError, match="must be positive"):
            DynamicWorkloadConfig(batches=0)
        with pytest.raises(ValueError, match="min_side_size"):
            DynamicWorkloadConfig(min_side_size=0)

    def test_generated_streams_are_reproducible_and_well_formed(self):
        workload = build_workload(WorkloadConfig(n_p=30, n_q=25, seed=44))
        config = DynamicWorkloadConfig(batches=3, batch_size=7, seed=5)
        first = generate_update_batches(workload, config)
        second = generate_update_batches(workload, config)
        assert first == second  # same seed, same stream
        assert [len(b) for b in first] == [7, 7, 7]
        # Every batch is a valid UpdateBatch by construction (distinct ops),
        # inserts carry points inside the domain, sides are respected.
        for batch in first:
            for update in batch:
                if update.op == "insert":
                    assert DOMAIN.contains_point(update.point)

    def test_delete_only_stream_respects_min_side_size(self):
        workload = build_workload(WorkloadConfig(n_p=6, n_q=6, seed=45))
        config = DynamicWorkloadConfig(
            batches=4, batch_size=5, insert_fraction=0.0, sides="P", min_side_size=3
        )
        batches = generate_update_batches(workload, config)
        # At the floor the generator inserts instead of deleting, so the
        # live size never dips below min_side_size at any stream prefix.
        live = 6
        for batch in batches:
            for update in batch:
                live += 1 if update.op == "insert" else -1
                assert live >= 3
        assert sum(u.op == "delete" for b in batches for u in b) > 0

    def test_single_side_streams_touch_only_that_side(self):
        workload = build_workload(WorkloadConfig(n_p=20, n_q=20, seed=46))
        for side in ("P", "Q"):
            batches = generate_update_batches(
                workload, DynamicWorkloadConfig(batches=2, batch_size=4, sides=side)
            )
            assert all(u.side == side for b in batches for u in b)
