"""Correctness tests for FM-CIJ, PM-CIJ and NM-CIJ against the oracle."""

import pytest

from repro.datasets.synthetic import DOMAIN, clustered_points, gaussian_points, uniform_points
from repro.datasets.workload import WorkloadConfig, build_workload
from repro.join.baseline import brute_force_cij_pairs
from repro.join.fm_cij import fm_cij
from repro.join.lower_bound import lower_bound_io
from repro.join.nm_cij import nm_cij
from repro.join.pm_cij import pm_cij

ALGORITHMS = {"FM-CIJ": fm_cij, "PM-CIJ": pm_cij, "NM-CIJ": nm_cij}


def run_all(points_p, points_q, buffer_fraction=0.05, **kwargs_by_algo):
    """Run the three algorithms on fresh workloads; return name -> result."""
    results = {}
    for name, algorithm in ALGORITHMS.items():
        workload = build_workload(
            WorkloadConfig(buffer_fraction=buffer_fraction),
            points_p=points_p,
            points_q=points_q,
        )
        results[name] = algorithm(
            workload.tree_p, workload.tree_q, domain=workload.domain,
            **kwargs_by_algo.get(name, {}),
        )
    return results


DATASET_CASES = [
    pytest.param(uniform_points(70, seed=141), uniform_points(60, seed=142), id="uniform"),
    pytest.param(clustered_points(65, clusters=4, seed=143), uniform_points(55, seed=144), id="clustered-vs-uniform"),
    pytest.param(gaussian_points(50, seed=145), gaussian_points(60, seed=146, spread_fraction=0.3), id="gaussian"),
    pytest.param(uniform_points(90, seed=147), uniform_points(25, seed=148), id="asymmetric-cardinality"),
    pytest.param(uniform_points(8, seed=149), uniform_points(6, seed=150), id="tiny"),
]


class TestAlgorithmsMatchOracle:
    @pytest.mark.parametrize("points_p,points_q", DATASET_CASES)
    def test_all_three_match_brute_force(self, points_p, points_q):
        oracle = brute_force_cij_pairs(points_p, points_q, DOMAIN)
        for name, result in run_all(points_p, points_q).items():
            assert result.pair_set() == oracle, f"{name} disagrees with the oracle"

    def test_single_point_inputs(self):
        points_p = [uniform_points(1, seed=151)[0]]
        points_q = [uniform_points(1, seed=152)[0]]
        for name, result in run_all(points_p, points_q).items():
            assert result.pair_set() == {(0, 0)}, name

    def test_identical_pointsets_join_each_point_with_itself(self):
        points = uniform_points(40, seed=153)
        for name, result in run_all(points, points).items():
            pairs = result.pair_set()
            assert all((i, i) in pairs for i in range(len(points))), name

    def test_no_duplicate_pairs_reported(self):
        points_p = uniform_points(60, seed=154)
        points_q = uniform_points(60, seed=155)
        for name, result in run_all(points_p, points_q).items():
            assert len(result.pairs) == len(result.pair_set()), name

    def test_nm_variants_are_exact(self):
        points_p = uniform_points(70, seed=156)
        points_q = uniform_points(65, seed=157)
        oracle = brute_force_cij_pairs(points_p, points_q, DOMAIN)
        variants = run_all(
            points_p,
            points_q,
            **{"NM-CIJ": {"reuse_cells": False}},
        )
        assert variants["NM-CIJ"].pair_set() == oracle
        no_phi = run_all(points_p, points_q, **{"NM-CIJ": {"use_phi_pruning": False}})
        assert no_phi["NM-CIJ"].pair_set() == oracle


class TestResultCompleteness:
    def test_every_input_point_participates(self):
        """Footnote 3: each point of P and Q appears in at least one pair."""
        points_p = uniform_points(80, seed=158)
        points_q = uniform_points(50, seed=159)
        for name, result in run_all(points_p, points_q).items():
            pairs = result.pair_set()
            assert {p for p, _ in pairs} == set(range(len(points_p))), name
            assert {q for _, q in pairs} == set(range(len(points_q))), name


class TestCostAccounting:
    def test_io_ordering_nm_below_pm_below_fm(self):
        """The paper's headline result (Figures 7 and 8)."""
        points_p = uniform_points(400, seed=160)
        points_q = uniform_points(400, seed=161)
        results = run_all(points_p, points_q, buffer_fraction=0.02)
        nm = results["NM-CIJ"].stats.total_page_accesses
        pm = results["PM-CIJ"].stats.total_page_accesses
        fm = results["FM-CIJ"].stats.total_page_accesses
        assert nm < pm < fm

    def test_no_algorithm_beats_the_lower_bound_with_cold_buffer(self):
        points_p = uniform_points(300, seed=162)
        points_q = uniform_points(300, seed=163)
        workload = build_workload(
            WorkloadConfig(buffer_fraction=0.0), points_p=points_p, points_q=points_q
        )
        lb = lower_bound_io(workload.tree_p, workload.tree_q)
        for name, algorithm in ALGORITHMS.items():
            fresh = build_workload(
                WorkloadConfig(buffer_fraction=0.0), points_p=points_p, points_q=points_q
            )
            result = algorithm(fresh.tree_p, fresh.tree_q, domain=fresh.domain)
            assert result.stats.total_page_accesses >= lb, name

    def test_mat_join_breakdown_is_consistent(self):
        points_p = uniform_points(250, seed=164)
        points_q = uniform_points(250, seed=165)
        results = run_all(points_p, points_q)
        fm = results["FM-CIJ"].stats
        pm = results["PM-CIJ"].stats
        nm = results["NM-CIJ"].stats
        assert fm.mat_page_accesses > 0 and pm.mat_page_accesses > 0
        assert nm.mat_page_accesses == 0
        assert fm.total_page_accesses == fm.mat_page_accesses + fm.join_page_accesses
        # FM materialises two Voronoi R-trees, PM only one.
        assert fm.mat_page_accesses > pm.mat_page_accesses

    def test_progress_samples_are_monotonic(self):
        points_p = uniform_points(300, seed=166)
        points_q = uniform_points(300, seed=167)
        for name, result in run_all(points_p, points_q).items():
            samples = result.stats.progress
            assert samples, name
            accesses = [s.page_accesses for s in samples]
            pairs = [s.pairs_reported for s in samples]
            assert accesses == sorted(accesses), name
            assert pairs == sorted(pairs), name
            assert pairs[-1] == len(result.pairs), name

    def test_nm_is_non_blocking_and_fm_pm_are_blocking(self):
        """Figure 9b: NM-CIJ produces pairs early, FM/PM only after MAT."""
        points_p = uniform_points(400, seed=168)
        points_q = uniform_points(400, seed=169)
        results = run_all(points_p, points_q, buffer_fraction=0.02)
        nm_samples = results["NM-CIJ"].stats.progress
        first_with_output = next(s for s in nm_samples if s.pairs_reported > 0)
        total_nm = results["NM-CIJ"].stats.total_page_accesses
        assert first_with_output.page_accesses < total_nm / 4
        for blocking in ("FM-CIJ", "PM-CIJ"):
            stats = results[blocking].stats
            for sample in stats.progress:
                if sample.pairs_reported > 0:
                    assert sample.page_accesses >= stats.mat_page_accesses
                    break

    def test_mismatched_disks_are_rejected(self):
        points_p = uniform_points(20, seed=170)
        points_q = uniform_points(20, seed=171)
        workload_a = build_workload(WorkloadConfig(), points_p=points_p, points_q=points_q)
        workload_b = build_workload(WorkloadConfig(), points_p=points_p, points_q=points_q)
        for algorithm in ALGORITHMS.values():
            with pytest.raises(ValueError):
                algorithm(workload_a.tree_p, workload_b.tree_q)


class TestReuseHeuristic:
    def test_reuse_reduces_cell_computations_without_changing_result(self):
        points_p = uniform_points(500, seed=172)
        points_q = uniform_points(500, seed=173)
        with_reuse = run_all(points_p, points_q)["NM-CIJ"]
        without_reuse = run_all(points_p, points_q, **{"NM-CIJ": {"reuse_cells": False}})[
            "NM-CIJ"
        ]
        assert with_reuse.pair_set() == without_reuse.pair_set()
        assert with_reuse.stats.cells_computed_p < without_reuse.stats.cells_computed_p
        assert with_reuse.stats.cells_reused_p > 0
        assert without_reuse.stats.cells_reused_p == 0

    def test_false_hit_ratio_is_small_on_uniform_data(self):
        """Figure 10: the filter's FHR stays below ~0.1-0.2."""
        points_p = uniform_points(500, seed=174)
        points_q = uniform_points(500, seed=175)
        result = run_all(points_p, points_q)["NM-CIJ"]
        assert result.stats.filter_true_hits > 0
        assert result.stats.false_hit_ratio < 0.2
