"""Tests for the brute-force CIJ oracles."""


from repro.datasets.synthetic import DOMAIN, uniform_points
from repro.geometry.point import Point
from repro.join.baseline import (
    brute_force_cij,
    brute_force_cij_pairs,
    definitional_cij_pairs,
)


class TestBruteForceCIJ:
    def test_single_pair_always_joins(self):
        pairs = brute_force_cij_pairs([Point(1000.0, 1000.0)], [Point(9000.0, 9000.0)], DOMAIN)
        assert pairs == {(0, 0)}

    def test_every_point_appears_in_some_pair(self):
        """Footnote 3 of the paper: every point of P and Q participates."""
        points_p = uniform_points(25, seed=81)
        points_q = uniform_points(20, seed=82)
        pairs = brute_force_cij_pairs(points_p, points_q, DOMAIN)
        assert {p for p, _ in pairs} == set(range(len(points_p)))
        assert {q for _, q in pairs} == set(range(len(points_q)))

    def test_result_is_symmetric_under_argument_swap(self):
        points_p = uniform_points(18, seed=83)
        points_q = uniform_points(22, seed=84)
        forward = brute_force_cij_pairs(points_p, points_q, DOMAIN)
        backward = brute_force_cij_pairs(points_q, points_p, DOMAIN)
        assert forward == {(p, q) for q, p in backward}

    def test_custom_oids_are_propagated(self):
        result = brute_force_cij(
            [Point(1.0, 1.0)], [Point(2.0, 2.0)], DOMAIN, oids_p=[42], oids_q=[99]
        )
        assert result.pairs == [(42, 99)]

    def test_distant_pair_can_join(self):
        """The Figure 1b phenomenon: a mutually-farthest pair can still join."""
        points_p = [Point(100.0, 100.0), Point(9900.0, 9900.0)]
        points_q = [Point(9900.0, 150.0), Point(150.0, 9000.0)]
        # q0 is the farthest Q point from p0, and p0 is the farthest P point
        # from q0 — yet their influence half-planes overlap near the bottom
        # of the domain, so (p0, q0) is a CIJ pair.
        assert points_p[0].distance_to(points_q[0]) > points_p[0].distance_to(points_q[1])
        assert points_q[0].distance_to(points_p[0]) > points_q[0].distance_to(points_p[1])
        pairs = brute_force_cij_pairs(points_p, points_q, DOMAIN)
        assert (0, 0) in pairs

    def test_pair_count_bounded_by_cartesian_product(self):
        points_p = uniform_points(12, seed=85)
        points_q = uniform_points(9, seed=86)
        pairs = brute_force_cij_pairs(points_p, points_q, DOMAIN)
        assert len(pairs) <= len(points_p) * len(points_q)
        assert len(pairs) >= max(len(points_p), len(points_q))


class TestOracleCrossValidation:
    def test_polygon_oracle_agrees_with_definitional_oracle(self):
        points_p = uniform_points(15, seed=87)
        points_q = uniform_points(14, seed=88)
        by_polygons = brute_force_cij_pairs(points_p, points_q, DOMAIN)
        by_definition = definitional_cij_pairs(points_p, points_q, DOMAIN)
        assert by_polygons == by_definition

    def test_oracles_agree_on_clustered_data(self):
        from repro.datasets.synthetic import clustered_points

        points_p = clustered_points(20, clusters=3, seed=89)
        points_q = clustered_points(16, clusters=2, seed=90)
        assert brute_force_cij_pairs(points_p, points_q, DOMAIN) == definitional_cij_pairs(
            points_p, points_q, DOMAIN
        )
