"""Tests for the k-closest-pairs join."""

import pytest

from repro.datasets.synthetic import DOMAIN, uniform_points
from repro.datasets.workload import build_indexed_pointset
from repro.geometry.point import dist
from repro.join.closest_pairs import k_closest_pairs
from repro.storage.disk import DiskManager


def build_pair(points_p, points_q):
    disk = DiskManager()
    tree_p = build_indexed_pointset(disk, "RP", points_p, domain=DOMAIN)
    tree_q = build_indexed_pointset(disk, "RQ", points_q, domain=DOMAIN)
    return tree_p, tree_q


class TestKClosestPairs:
    def test_matches_exhaustive_ranking(self):
        points_p = uniform_points(50, seed=111)
        points_q = uniform_points(45, seed=112)
        tree_p, tree_q = build_pair(points_p, points_q)
        all_pairs = sorted(
            (dist(p, q), i, j)
            for i, p in enumerate(points_p)
            for j, q in enumerate(points_q)
        )
        k = 15
        got = k_closest_pairs(tree_p, tree_q, k)
        assert len(got) == k
        assert [d for d, _, _ in got] == sorted(d for d, _, _ in got)
        expected_distances = [d for d, _, _ in all_pairs[:k]]
        assert [d for d, _, _ in got] == pytest.approx(expected_distances)

    def test_k_of_one_returns_global_closest_pair(self):
        points_p = uniform_points(30, seed=113)
        points_q = uniform_points(30, seed=114)
        tree_p, tree_q = build_pair(points_p, points_q)
        (d, p_oid, q_oid), = k_closest_pairs(tree_p, tree_q, 1)
        best = min(
            dist(p, q) for p in points_p for q in points_q
        )
        assert d == pytest.approx(best)
        assert dist(points_p[p_oid], points_q[q_oid]) == pytest.approx(best)

    def test_k_larger_than_product_returns_everything(self):
        points_p = uniform_points(5, seed=115)
        points_q = uniform_points(4, seed=116)
        tree_p, tree_q = build_pair(points_p, points_q)
        got = k_closest_pairs(tree_p, tree_q, 1000)
        assert len(got) == 20

    def test_nonpositive_k_returns_empty(self):
        points = uniform_points(10, seed=117)
        tree_p, tree_q = build_pair(points, points)
        assert k_closest_pairs(tree_p, tree_q, 0) == []
        assert k_closest_pairs(tree_p, tree_q, -2) == []
