"""Boundary-tie semantics: zero-area cell contact is excluded everywhere.

PR 2's randomized property testing surfaced a seed-era divergence: on
degenerate inputs where bisectors of the two pointsets fall exactly
colinear, a P-cell and a Q-cell touch in a zero-area segment.  The
brute-force oracle (closed polygon test) counted such pairs while the
algorithms' epsilon-guarded predicates rejected them, so the oracle and
FM/PM/NM disagreed about what the join *is*.

The library-wide tie convention is now **exclude**: a pair joins only when
the common influence region has positive area.  The convention lives in
:meth:`repro.voronoi.cell.VoronoiCell.intersects`
(:meth:`ConvexPolygon.intersects_interior`), which the oracle and all three
algorithms share; these tests pin the exact degenerate input from the
ROADMAP and the predicate-level behaviour.
"""

import pytest

from repro import common_influence_join
from repro.geometry.point import Point
from repro.geometry.polygon import ConvexPolygon
from repro.geometry.rect import Rect
from repro.join.baseline import brute_force_cij_pairs, definitional_cij_pairs
from repro.voronoi.diagram import brute_force_diagram

#: The ROADMAP's exact degenerate input: the bisector of the two P points
#: and the bisector of Q1/Q2 both fall exactly on x = 203.625.
POINTS_P = [Point(0.0, 0.0), Point(407.25, 0.0)]
POINTS_Q = [Point(37.5, 67.0), Point(66.5, 50.0), Point(340.75, 50.0)]
DOMAIN = Rect(0.0, 0.0, 10_000.0, 10_000.0)

#: Under the exclude convention the colinear contacts (P0, Q2) and (P1, Q1)
#: — both zero-area segments on x = 203.625 — are not join pairs.
EXPECTED_PAIRS = {(0, 0), (0, 1), (1, 0), (1, 2)}
ZERO_AREA_CONTACTS = {(0, 2), (1, 1)}


class TestPinnedDegenerateInput:
    def test_bisectors_are_exactly_colinear(self):
        """The input really is degenerate: both relevant cell borders lie on
        the same vertical line, so the contacts below have zero area."""
        diagram_p = brute_force_diagram(POINTS_P, DOMAIN)
        diagram_q = brute_force_diagram(POINTS_Q, DOMAIN)
        for p_oid, q_oid in ZERO_AREA_CONTACTS:
            region = diagram_p.cell_of(p_oid).common_region(
                diagram_q.cell_of(q_oid)
            )
            assert region.area() == 0.0

    def test_brute_oracle_excludes_zero_area_contact(self):
        assert brute_force_cij_pairs(POINTS_P, POINTS_Q, DOMAIN) == EXPECTED_PAIRS

    def test_definitional_oracle_agrees(self):
        assert definitional_cij_pairs(POINTS_P, POINTS_Q, DOMAIN) == EXPECTED_PAIRS

    @pytest.mark.parametrize("method", ["nm", "pm", "fm"])
    def test_algorithms_agree_with_oracle(self, method):
        result = common_influence_join(
            POINTS_P, POINTS_Q, method=method, domain=DOMAIN
        )
        assert result.pair_set() == EXPECTED_PAIRS, method

    @pytest.mark.parametrize("method", ["nm", "pm", "fm"])
    def test_tight_domain_also_agrees(self, method):
        """The divergence originally reproduced with the data-tight domain
        (the default when none is given); pin that variant too."""
        tight = Rect(0.0, 0.0, 407.25, 67.0)
        oracle = brute_force_cij_pairs(POINTS_P, POINTS_Q, tight)
        result = common_influence_join(
            POINTS_P, POINTS_Q, method=method, domain=tight
        )
        assert result.pair_set() == oracle
        assert oracle == definitional_cij_pairs(POINTS_P, POINTS_Q, tight)

    def test_every_point_still_participates(self):
        """Footnote 3 survives the exclude convention: dropping zero-area
        contacts never orphans a point, because each cell's interior always
        properly overlaps some cell of the other diagram."""
        pairs = brute_force_cij_pairs(POINTS_P, POINTS_Q, DOMAIN)
        assert {p for p, _ in pairs} == {0, 1}
        assert {q for _, q in pairs} == {0, 1, 2}


class TestPredicateConvention:
    def test_touching_squares_do_not_join(self):
        a = ConvexPolygon.from_rect(Rect(0.0, 0.0, 10.0, 10.0))
        b = ConvexPolygon.from_rect(Rect(10.0, 0.0, 20.0, 10.0))
        assert a.intersects(b)  # closed test (filter phases): touch counts
        assert not a.intersects_interior(b)  # join predicate: excluded

    def test_corner_contact_does_not_join(self):
        a = ConvexPolygon.from_rect(Rect(0.0, 0.0, 10.0, 10.0))
        b = ConvexPolygon.from_rect(Rect(10.0, 10.0, 20.0, 20.0))
        assert not a.intersects_interior(b)

    def test_proper_overlap_joins(self):
        a = ConvexPolygon.from_rect(Rect(0.0, 0.0, 10.0, 10.0))
        b = ConvexPolygon.from_rect(Rect(9.0, 9.0, 20.0, 20.0))
        assert a.intersects_interior(b)
        assert b.intersects_interior(a)

    def test_interior_containment_is_strict(self):
        square = ConvexPolygon.from_rect(Rect(0.0, 0.0, 10.0, 10.0))
        assert square.contains_point_interior(Point(5.0, 5.0))
        assert not square.contains_point_interior(Point(10.0, 5.0))
        assert square.contains_point(Point(10.0, 5.0))  # closed test still true
