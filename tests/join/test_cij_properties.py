"""Property-based equivalence of the three CIJ algorithms and the oracle."""

from hypothesis import given, settings

from repro.datasets.synthetic import DOMAIN
from repro.datasets.workload import WorkloadConfig, build_workload
from repro.join.baseline import brute_force_cij_pairs
from repro.join.fm_cij import fm_cij
from repro.join.nm_cij import nm_cij
from repro.join.pm_cij import pm_cij
from tests.conftest import distinct_pointsets


def run(algorithm, points_p, points_q, **kwargs):
    workload = build_workload(
        WorkloadConfig(buffer_fraction=0.05), points_p=points_p, points_q=points_q
    )
    return algorithm(workload.tree_p, workload.tree_q, domain=workload.domain, **kwargs)


class TestAlgorithmEquivalenceProperties:
    @given(distinct_pointsets(min_size=2, max_size=10), distinct_pointsets(min_size=2, max_size=10))
    @settings(max_examples=25, deadline=None)
    def test_nm_cij_matches_oracle(self, points_p, points_q):
        oracle = brute_force_cij_pairs(points_p, points_q, DOMAIN)
        assert run(nm_cij, points_p, points_q).pair_set() == oracle

    @given(distinct_pointsets(min_size=2, max_size=10), distinct_pointsets(min_size=2, max_size=10))
    @settings(max_examples=15, deadline=None)
    def test_fm_and_pm_match_oracle(self, points_p, points_q):
        oracle = brute_force_cij_pairs(points_p, points_q, DOMAIN)
        assert run(fm_cij, points_p, points_q).pair_set() == oracle
        assert run(pm_cij, points_p, points_q).pair_set() == oracle

    @given(distinct_pointsets(min_size=2, max_size=9), distinct_pointsets(min_size=2, max_size=9))
    @settings(max_examples=15, deadline=None)
    def test_cij_is_symmetric(self, points_p, points_q):
        forward = run(nm_cij, points_p, points_q).pair_set()
        backward = run(nm_cij, points_q, points_p).pair_set()
        assert forward == {(p, q) for q, p in backward}

    @given(distinct_pointsets(min_size=2, max_size=10), distinct_pointsets(min_size=2, max_size=10))
    @settings(max_examples=15, deadline=None)
    def test_every_point_participates(self, points_p, points_q):
        pairs = run(nm_cij, points_p, points_q).pair_set()
        assert {p for p, _ in pairs} == set(range(len(points_p)))
        assert {q for _, q in pairs} == set(range(len(points_q)))
