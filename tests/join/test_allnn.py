"""Tests for the AllNN join and the grouped-NN helper."""

import pytest

from repro.datasets.synthetic import DOMAIN, uniform_points
from repro.datasets.workload import build_indexed_pointset
from repro.geometry.point import dist
from repro.index.rtree import RTree
from repro.join.allnn import all_nearest_neighbors, grouped_nearest_pairs
from repro.storage.disk import DiskManager


class TestAllNN:
    def test_matches_linear_scan(self):
        outer_points = uniform_points(60, seed=121)
        inner_points = uniform_points(25, seed=122)
        disk = DiskManager()
        inner_tree = build_indexed_pointset(disk, "RP", inner_points, domain=DOMAIN)
        outer = list(enumerate(outer_points))
        result = all_nearest_neighbors(outer, inner_tree)
        assert set(result) == set(range(len(outer_points)))
        for oid, point in outer:
            expected = min(range(len(inner_points)), key=lambda i: dist(inner_points[i], point))
            assert result[oid][0] == expected
            assert result[oid][1] == pytest.approx(dist(inner_points[expected], point))

    def test_empty_inner_tree_gives_empty_result(self):
        outer = list(enumerate(uniform_points(5, seed=123)))
        assert all_nearest_neighbors(outer, RTree(DiskManager(), "RP")) == {}

    def test_grouped_nearest_counts_sum_to_outer_size(self):
        houses = uniform_points(100, seed=124)
        hospitals = uniform_points(8, seed=125)
        parks = uniform_points(6, seed=126)
        disk = DiskManager()
        tree_p = build_indexed_pointset(disk, "P", hospitals, domain=DOMAIN)
        tree_q = build_indexed_pointset(disk, "Q", parks, domain=DOMAIN)
        counts = grouped_nearest_pairs(list(enumerate(houses)), tree_p, tree_q)
        assert sum(counts.values()) == len(houses)
        for (p_oid, q_oid), count in counts.items():
            assert 0 <= p_oid < len(hospitals)
            assert 0 <= q_oid < len(parks)
            assert count > 0

    def test_grouped_nearest_pairs_are_subset_of_cij(self):
        """The paper's Grouped-NN application: every (hospital, park) pair
        with at least one house must be a CIJ pair."""
        from repro.join.baseline import brute_force_cij_pairs

        houses = uniform_points(150, seed=127)
        hospitals = uniform_points(7, seed=128)
        parks = uniform_points(5, seed=129)
        disk = DiskManager()
        tree_p = build_indexed_pointset(disk, "P", hospitals, domain=DOMAIN)
        tree_q = build_indexed_pointset(disk, "Q", parks, domain=DOMAIN)
        counts = grouped_nearest_pairs(list(enumerate(houses)), tree_p, tree_q)
        cij = brute_force_cij_pairs(hospitals, parks, DOMAIN)
        assert set(counts).issubset(cij)
