"""Tests for the multiway CIJ extension, the lower bound and result records."""

import pytest

from repro.datasets.synthetic import DOMAIN, uniform_points
from repro.datasets.workload import build_indexed_pointset
from repro.join.baseline import brute_force_cij_pairs
from repro.join.lower_bound import lower_bound_io
from repro.join.multiway import multiway_cij
from repro.join.result import CIJResult, JoinStats, ProgressSample
from repro.storage.disk import DiskManager
from repro.voronoi.diagram import brute_force_diagram


class TestMultiwayCIJ:
    def _indexed(self, disk, tag, points):
        return build_indexed_pointset(disk, tag, points, domain=DOMAIN)

    def test_requires_at_least_two_inputs(self):
        disk = DiskManager()
        tree = self._indexed(disk, "A", uniform_points(5, seed=181))
        with pytest.raises(ValueError):
            multiway_cij([tree])

    def test_requires_shared_disk(self):
        tree_a = self._indexed(DiskManager(), "A", uniform_points(5, seed=182))
        tree_b = self._indexed(DiskManager(), "B", uniform_points(5, seed=183))
        with pytest.raises(ValueError):
            multiway_cij([tree_a, tree_b])

    def test_two_way_multiway_matches_pairwise_oracle_on_overlap_pairs(self):
        points_p = uniform_points(20, seed=184)
        points_q = uniform_points(18, seed=185)
        disk = DiskManager()
        trees = [self._indexed(disk, "A", points_p), self._indexed(disk, "B", points_q)]
        result = multiway_cij(trees, domain=DOMAIN)
        got = {tuple(t) for t in result.pairs}
        oracle = brute_force_cij_pairs(points_p, points_q, DOMAIN)
        # The multiway evaluator requires a 2-D common region (it drops pairs
        # whose cells only share a boundary), so it returns a subset of the
        # closed-cell oracle missing at most those measure-zero pairs.
        assert got.issubset(oracle)
        missing = oracle - got
        diagram_p = brute_force_diagram(points_p, DOMAIN)
        diagram_q = brute_force_diagram(points_q, DOMAIN)
        for p_oid, q_oid in missing:
            region = diagram_p.cell_of(p_oid).common_region(diagram_q.cell_of(q_oid))
            assert region.area() < 1e-6

    def test_three_way_triples_are_consistent_with_pairwise_joins(self):
        points_a = uniform_points(12, seed=186)
        points_b = uniform_points(10, seed=187)
        points_c = uniform_points(9, seed=188)
        disk = DiskManager()
        trees = [
            self._indexed(disk, "A", points_a),
            self._indexed(disk, "B", points_b),
            self._indexed(disk, "C", points_c),
        ]
        result = multiway_cij(trees, domain=DOMAIN)
        triples = {tuple(t) for t in result.pairs}
        assert triples, "three-way CIJ of covering pointsets cannot be empty"
        cij_ab = brute_force_cij_pairs(points_a, points_b, DOMAIN)
        cij_ac = brute_force_cij_pairs(points_a, points_c, DOMAIN)
        cij_bc = brute_force_cij_pairs(points_b, points_c, DOMAIN)
        for a, b, c in triples:
            assert (a, b) in cij_ab
            assert (a, c) in cij_ac
            assert (b, c) in cij_bc

    def test_three_way_triples_have_a_common_witness_region(self):
        points_a = uniform_points(8, seed=189)
        points_b = uniform_points(7, seed=190)
        points_c = uniform_points(6, seed=191)
        disk = DiskManager()
        trees = [
            self._indexed(disk, "A", points_a),
            self._indexed(disk, "B", points_b),
            self._indexed(disk, "C", points_c),
        ]
        result = multiway_cij(trees, domain=DOMAIN)
        diagram_a = brute_force_diagram(points_a, DOMAIN)
        diagram_b = brute_force_diagram(points_b, DOMAIN)
        diagram_c = brute_force_diagram(points_c, DOMAIN)
        for a, b, c in (tuple(t) for t in result.pairs):
            region = diagram_a.cell_of(a).common_region(diagram_b.cell_of(b))
            region = region.intersection(diagram_c.cell_of(c).polygon)
            assert not region.is_empty()


class TestLowerBound:
    def test_lower_bound_is_sum_of_node_counts(self, small_workload):
        lb = lower_bound_io(small_workload.tree_p, small_workload.tree_q)
        assert lb == small_workload.tree_p.node_count() + small_workload.tree_q.node_count()

    def test_lower_bound_counts_no_io(self, small_workload):
        small_workload.disk.reset_counters()
        lower_bound_io(small_workload.tree_p, small_workload.tree_q)
        assert small_workload.disk.counters.page_accesses == 0


class TestResultRecords:
    def test_false_hit_ratio_definition(self):
        stats = JoinStats(algorithm="NM-CIJ", filter_candidates=110, filter_true_hits=100)
        assert stats.false_hit_ratio == pytest.approx(0.1)

    def test_false_hit_ratio_with_no_hits_is_zero(self):
        assert JoinStats(algorithm="NM-CIJ").false_hit_ratio == 0.0

    def test_totals_combine_phases(self):
        stats = JoinStats(
            algorithm="FM-CIJ",
            mat_page_accesses=10,
            join_page_accesses=5,
            mat_cpu_seconds=1.0,
            join_cpu_seconds=0.5,
        )
        assert stats.total_page_accesses == 15
        assert stats.total_cpu_seconds == pytest.approx(1.5)

    def test_progress_recording(self):
        stats = JoinStats(algorithm="NM-CIJ")
        stats.record_progress(5, 0)
        stats.record_progress(9, 12)
        assert stats.progress == [ProgressSample(5, 0), ProgressSample(9, 12)]

    def test_result_pair_set_and_len(self):
        result = CIJResult(pairs=[(1, 2), (1, 2), (3, 4)], stats=JoinStats(algorithm="X"))
        assert len(result) == 3
        assert result.pair_set() == {(1, 2), (3, 4)}
