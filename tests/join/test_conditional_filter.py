"""Tests for the ConditionalFilter (Algorithm 5) and its batch variant."""


from repro.datasets.synthetic import DOMAIN, uniform_points
from repro.datasets.workload import build_indexed_pointset
from repro.geometry.influence import entry_pruned_by_candidate, polygon_within_phi, rect_sides
from repro.geometry.point import Point
from repro.geometry.polygon import ConvexPolygon
from repro.geometry.rect import Rect
from repro.index.rtree import RTree
from repro.join.conditional_filter import (
    FilterStats,
    batch_conditional_filter,
    candidate_cells_from_buffer,
    conditional_filter,
)
from repro.storage.disk import DiskManager
from repro.voronoi.cell import VoronoiCell
from repro.voronoi.diagram import brute_force_cell, brute_force_diagram


def indexed(points):
    disk = DiskManager()
    tree = build_indexed_pointset(disk, "RP", points, domain=DOMAIN)
    return disk, tree


class TestConditionalFilterCompleteness:
    def test_candidates_are_a_superset_of_true_join_partners(self):
        """The filter must never drop a point whose exact cell reaches T."""
        points_p = uniform_points(120, seed=131)
        points_q = uniform_points(40, seed=132)
        _, tree_p = indexed(points_p)
        diagram_p = brute_force_diagram(points_p, DOMAIN)
        for q_oid in (0, 7, 23):
            target = brute_force_cell(points_q[q_oid], points_q, DOMAIN).polygon
            candidates = {oid for oid, _ in conditional_filter(target, tree_p, DOMAIN)}
            true_partners = {
                cell.oid for cell in diagram_p if cell.polygon.intersects(target)
            }
            assert true_partners.issubset(candidates)

    def test_points_inside_target_are_always_candidates(self):
        points_p = uniform_points(100, seed=133)
        _, tree_p = indexed(points_p)
        target = ConvexPolygon.from_rect(Rect(2000.0, 2000.0, 5000.0, 5000.0))
        candidates = {oid for oid, _ in conditional_filter(target, tree_p, DOMAIN)}
        inside = {
            oid for oid, p in enumerate(points_p) if target.contains_point(p)
        }
        assert inside.issubset(candidates)

    def test_empty_targets_give_no_candidates(self):
        points_p = uniform_points(50, seed=134)
        _, tree_p = indexed(points_p)
        assert batch_conditional_filter([], tree_p, DOMAIN) == []
        assert batch_conditional_filter([ConvexPolygon.empty()], tree_p, DOMAIN) == []

    def test_empty_tree_gives_no_candidates(self):
        target = ConvexPolygon.from_rect(Rect(0, 0, 100, 100))
        assert conditional_filter(target, RTree(DiskManager(), "RP"), DOMAIN) == []

    def test_batch_filter_covers_union_of_single_filters(self):
        points_p = uniform_points(150, seed=135)
        points_q = uniform_points(30, seed=136)
        _, tree_p = indexed(points_p)
        targets = [
            brute_force_cell(points_q[i], points_q, DOMAIN).polygon for i in range(4)
        ]
        batch = {oid for oid, _ in batch_conditional_filter(targets, tree_p, DOMAIN)}
        diagram_p = brute_force_diagram(points_p, DOMAIN)
        for target in targets:
            true_partners = {
                cell.oid for cell in diagram_p if cell.polygon.intersects(target)
            }
            assert true_partners.issubset(batch)


class TestConditionalFilterSelectivity:
    def test_filter_does_not_admit_everything(self):
        """The false-hit ratio claim only makes sense if the filter is
        selective: for a small target, most of P must be pruned."""
        points_p = uniform_points(300, seed=137)
        _, tree_p = indexed(points_p)
        target = ConvexPolygon.from_rect(Rect(4800.0, 4800.0, 5200.0, 5200.0))
        candidates = conditional_filter(target, tree_p, DOMAIN)
        assert len(candidates) < len(points_p) / 4

    def test_phi_pruning_reduces_expanded_entries(self):
        points_p = uniform_points(400, seed=138)
        _, tree_p = indexed(points_p)
        target = ConvexPolygon.from_rect(Rect(1000.0, 1000.0, 1400.0, 1400.0))
        with_phi = FilterStats()
        without_phi = FilterStats()
        admitted_a = batch_conditional_filter([target], tree_p, DOMAIN, stats=with_phi)
        admitted_b = batch_conditional_filter(
            [target], tree_p, DOMAIN, use_phi_pruning=False, stats=without_phi
        )
        assert {oid for oid, _ in admitted_a} == {oid for oid, _ in admitted_b}
        assert with_phi.entries_pruned_phi > 0
        assert with_phi.entries_expanded < without_phi.entries_expanded

    def test_stats_merge(self):
        a = FilterStats(heap_pops=1, points_examined=2)
        b = FilterStats(heap_pops=3, points_admitted=4, entries_pruned_phi=5)
        a.merge(b)
        assert a.heap_pops == 4
        assert a.points_admitted == 4
        assert a.entries_pruned_phi == 5


class TestPruningRuleEquivalence:
    def test_fast_vertex_rule_matches_phi_side_rule(self):
        """The filter uses dist(p, v) <= mindist(MBR, v); the paper states
        the rule per MBR side via Φ(L, p).  For MBRs disjoint from the
        target, both must agree."""
        import random

        rng = random.Random(139)
        for _ in range(200):
            x, y = rng.uniform(0, 9000), rng.uniform(0, 9000)
            mbr = Rect(x, y, x + rng.uniform(10, 800), y + rng.uniform(10, 800))
            tx, ty = rng.uniform(0, 9500), rng.uniform(0, 9500)
            target = ConvexPolygon.from_rect(Rect(tx, ty, tx + 400, ty + 300))
            candidate = Point(rng.uniform(0, 10000), rng.uniform(0, 10000))
            if target.intersects_rect(mbr):
                continue
            per_side = all(
                polygon_within_phi(target, side, candidate) for side in rect_sides(mbr)
            )
            per_vertex = all(
                candidate.distance_to(v) <= mbr.mindist_point(v)
                for v in target.vertices
            )
            assert per_side == per_vertex
            assert entry_pruned_by_candidate(mbr, target, candidate) == per_side


class TestReuseBufferHelper:
    def test_candidates_split_between_buffer_and_missing(self):
        cell = VoronoiCell(1, Point(10.0, 10.0), ConvexPolygon.from_rect(Rect(0, 0, 20, 20)))
        buffer = {1: cell}
        candidates = [(1, Point(10.0, 10.0)), (2, Point(50.0, 50.0))]
        missing, reused = candidate_cells_from_buffer(candidates, buffer)
        assert reused == {1: cell}
        assert missing == [(2, Point(50.0, 50.0))]

    def test_stale_buffer_entry_with_different_site_is_not_reused(self):
        cell = VoronoiCell(1, Point(10.0, 10.0), ConvexPolygon.from_rect(Rect(0, 0, 20, 20)))
        buffer = {1: cell}
        missing, reused = candidate_cells_from_buffer([(1, Point(99.0, 99.0))], buffer)
        assert reused == {}
        assert missing == [(1, Point(99.0, 99.0))]
