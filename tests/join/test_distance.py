"""Tests for the ε-distance join."""

import pytest

from repro.datasets.synthetic import DOMAIN, uniform_points
from repro.datasets.workload import build_indexed_pointset
from repro.geometry.point import Point, dist
from repro.index.rtree import RTree
from repro.join.distance import epsilon_distance_join
from repro.storage.disk import DiskManager


def build_pair(points_p, points_q):
    disk = DiskManager()
    tree_p = build_indexed_pointset(disk, "RP", points_p, domain=DOMAIN)
    tree_q = build_indexed_pointset(disk, "RQ", points_q, domain=DOMAIN)
    return tree_p, tree_q


class TestEpsilonDistanceJoin:
    def test_matches_nested_loop(self):
        points_p = uniform_points(80, seed=101)
        points_q = uniform_points(70, seed=102)
        tree_p, tree_q = build_pair(points_p, points_q)
        epsilon = 800.0
        expected = {
            (i, j)
            for i, p in enumerate(points_p)
            for j, q in enumerate(points_q)
            if dist(p, q) <= epsilon
        }
        got = {(p, q) for p, q, _ in epsilon_distance_join(tree_p, tree_q, epsilon)}
        assert got == expected

    def test_zero_epsilon_finds_only_coincident_points(self):
        shared = Point(5000.0, 5000.0)
        points_p = [shared, Point(1.0, 1.0)]
        points_q = [shared, Point(9000.0, 9000.0)]
        tree_p, tree_q = build_pair(points_p, points_q)
        got = list(epsilon_distance_join(tree_p, tree_q, 0.0))
        assert [(p, q) for p, q, _ in got] == [(0, 0)]

    def test_negative_epsilon_rejected(self):
        points = uniform_points(10, seed=103)
        tree_p, tree_q = build_pair(points, points)
        with pytest.raises(ValueError):
            list(epsilon_distance_join(tree_p, tree_q, -1.0))

    def test_empty_input_yields_nothing(self):
        points = uniform_points(10, seed=104)
        disk = DiskManager()
        tree_p = build_indexed_pointset(disk, "RP", points, domain=DOMAIN)
        empty = RTree(disk, "RQ")
        assert list(epsilon_distance_join(tree_p, empty, 100.0)) == []

    def test_reported_distances_are_correct(self):
        points_p = uniform_points(30, seed=105)
        points_q = uniform_points(30, seed=106)
        tree_p, tree_q = build_pair(points_p, points_q)
        for p_oid, q_oid, d in epsilon_distance_join(tree_p, tree_q, 1500.0):
            assert d == pytest.approx(dist(points_p[p_oid], points_q[q_oid]))
            assert d <= 1500.0

    def test_growing_epsilon_grows_result(self):
        points_p = uniform_points(40, seed=107)
        points_q = uniform_points(40, seed=108)
        tree_p, tree_q = build_pair(points_p, points_q)
        small = len(list(epsilon_distance_join(tree_p, tree_q, 300.0)))
        large = len(list(epsilon_distance_join(tree_p, tree_q, 2000.0)))
        assert small <= large
