"""Tests for the synchronous-traversal intersection join."""


from repro.datasets.synthetic import uniform_points
from repro.geometry.polygon import ConvexPolygon
from repro.geometry.rect import Rect
from repro.index.bulkload import bulk_load_records
from repro.index.entries import LeafEntry
from repro.index.rtree import RTree
from repro.join.synchronous import (
    count_join_pairs,
    join_from_seeds,
    partitioned_join_seeds,
    synchronous_join,
)
from repro.storage.disk import DiskManager


def rect_tree(disk, tag, rects, leaf_capacity=4):
    """Index a list of rectangles (as degenerate 'cells')."""
    entries = [
        LeafEntry(i, rect, ConvexPolygon.from_rect(rect), size_bytes=40)
        for i, rect in enumerate(rects)
    ]
    return bulk_load_records(disk, tag, entries)


class TestSynchronousJoin:
    def test_matches_nested_loop_on_random_rectangles(self):
        import random

        rng = random.Random(91)
        def random_rects(count, seed_offset):
            rects = []
            for _ in range(count):
                x = rng.uniform(0, 9000)
                y = rng.uniform(0, 9000)
                rects.append(Rect(x, y, x + rng.uniform(10, 800), y + rng.uniform(10, 800)))
            return rects

        rects_a = random_rects(60, 0)
        rects_b = random_rects(50, 1)
        disk = DiskManager()
        tree_a = rect_tree(disk, "A", rects_a)
        tree_b = rect_tree(disk, "B", rects_b)
        expected = {
            (i, j)
            for i, ra in enumerate(rects_a)
            for j, rb in enumerate(rects_b)
            if ra.intersects(rb)
        }
        got = {(ea.oid, eb.oid) for ea, eb in synchronous_join(tree_a, tree_b)}
        assert got == expected

    def test_refinement_predicate_filters_pairs(self):
        rects_a = [Rect(0, 0, 10, 10), Rect(20, 20, 30, 30)]
        rects_b = [Rect(5, 5, 15, 15), Rect(25, 25, 35, 35)]
        disk = DiskManager()
        tree_a = rect_tree(disk, "A", rects_a)
        tree_b = rect_tree(disk, "B", rects_b)
        assert count_join_pairs(tree_a, tree_b) == 2
        none = count_join_pairs(tree_a, tree_b, refine=lambda a, b: False)
        assert none == 0

    def test_empty_inputs_yield_nothing(self):
        disk = DiskManager()
        tree_a = rect_tree(disk, "A", [Rect(0, 0, 1, 1)])
        empty = RTree(disk, "B")
        assert list(synchronous_join(tree_a, empty)) == []
        assert list(synchronous_join(empty, tree_a)) == []

    def test_trees_of_different_heights(self):
        disk = DiskManager()
        tall_rects = [Rect(i * 10.0, 0.0, i * 10.0 + 5.0, 5.0) for i in range(64)]
        short_rects = [Rect(100.0, 0.0, 400.0, 5.0)]
        tall = rect_tree(disk, "A", tall_rects, leaf_capacity=4)
        short = rect_tree(disk, "B", short_rects)
        assert tall.height > short.height
        expected = sum(1 for r in tall_rects if r.intersects(short_rects[0]))
        assert count_join_pairs(tall, short) == expected
        assert count_join_pairs(short, tall) == expected

    def test_partitioned_traversal_is_byte_identical(self):
        """Concatenating the partitions' DFS outputs must reproduce the
        single-stack traversal exactly: same pair *sequence* and the same
        page-access sequence (reads, logical reads and buffer hits)."""
        import random

        rng = random.Random(93)
        def random_rects(count):
            rects = []
            for _ in range(count):
                x = rng.uniform(0, 9000)
                y = rng.uniform(0, 9000)
                rects.append(
                    Rect(x, y, x + rng.uniform(10, 700), y + rng.uniform(10, 700))
                )
            return rects

        rects_a, rects_b = random_rects(80), random_rects(70)

        def build(disk):
            return (
                rect_tree(disk, "A", rects_a, leaf_capacity=4),
                rect_tree(disk, "B", rects_b, leaf_capacity=4),
            )

        disk_classic = DiskManager(buffer_pages=6)
        tree_a, tree_b = build(disk_classic)
        snapshot = disk_classic.counters.snapshot()
        classic = [(a.oid, b.oid) for a, b in synchronous_join(tree_a, tree_b)]
        classic_io = disk_classic.counters.diff(snapshot)

        disk_part = DiskManager(buffer_pages=6)
        tree_a2, tree_b2 = build(disk_part)
        snapshot2 = disk_part.counters.snapshot()
        partitioned = []
        partitions = partitioned_join_seeds(tree_a2, tree_b2)
        assert len(partitions) > 1  # the split is real on this input
        for partition in partitions:
            partitioned.extend(
                (a.oid, b.oid)
                for a, b in join_from_seeds(tree_a2, tree_b2, partition.seeds)
            )
        part_io = disk_part.counters.diff(snapshot2)

        assert partitioned == classic  # sequence equality, order included
        for field in ("reads", "logical_reads", "buffer_hits", "writes"):
            assert getattr(part_io, field) == getattr(classic_io, field), field

    def test_partitioned_seeds_of_empty_tree(self):
        disk = DiskManager()
        tree_a = rect_tree(disk, "A", [Rect(0, 0, 1, 1)])
        empty = RTree(disk, "B")
        assert partitioned_join_seeds(tree_a, empty) == []
        assert partitioned_join_seeds(empty, tree_a) == []

    def test_point_trees_join_on_coincident_points(self):
        points = uniform_points(100, seed=92)
        disk = DiskManager()
        tree_a = RTree(disk, "A")
        tree_b = RTree(disk, "B")
        for oid, point in enumerate(points):
            tree_a.insert_point(oid, point)
            # B holds every other point of A, so exactly those 50 coincide.
            if oid % 2 == 0:
                tree_b.insert_point(oid, point)
        assert count_join_pairs(tree_a, tree_b) == 50
