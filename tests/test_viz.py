"""Tests for the SVG visualisation helpers."""

import xml.etree.ElementTree as ET

import pytest

from repro.datasets.synthetic import DOMAIN, uniform_points
from repro.geometry.point import Point
from repro.geometry.polygon import ConvexPolygon
from repro.geometry.rect import Rect
from repro.join.baseline import brute_force_cij_pairs
from repro.viz.svg import SVGCanvas, render_cij, render_pointsets, render_voronoi_diagram
from repro.voronoi.diagram import brute_force_diagram

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg_text: str):
    return ET.fromstring(svg_text)


class TestSVGCanvas:
    def test_invalid_canvas_size_rejected(self):
        with pytest.raises(ValueError):
            SVGCanvas(DOMAIN, width=10, height=10, margin=10)

    def test_transform_maps_domain_corners_inside_canvas(self):
        canvas = SVGCanvas(Rect(0, 0, 100, 100), width=200, height=200, margin=10)
        x0, y0 = canvas.transform(Point(0.0, 0.0))
        x1, y1 = canvas.transform(Point(100.0, 100.0))
        assert (x0, y0) == (10.0, 190.0)  # south-west corner maps to bottom-left
        assert (x1, y1) == (190.0, 10.0)  # north-east corner maps to top-right

    def test_document_is_well_formed_xml(self):
        canvas = SVGCanvas(DOMAIN)
        canvas.add_point(Point(5000.0, 5000.0))
        canvas.add_polygon(ConvexPolygon.from_rect(Rect(0, 0, 100, 100)))
        canvas.add_rect(Rect(200, 200, 300, 300))
        root = parse(canvas.to_svg())
        assert root.tag == f"{SVG_NS}svg"
        assert canvas.element_count() == 3

    def test_empty_polygon_is_skipped(self):
        canvas = SVGCanvas(DOMAIN)
        canvas.add_polygon(ConvexPolygon.empty())
        assert canvas.element_count() == 0

    def test_save_writes_file(self, tmp_path):
        canvas = SVGCanvas(DOMAIN)
        canvas.add_point(Point(1.0, 1.0), label="p1")
        target = tmp_path / "out.svg"
        canvas.save(target)
        assert target.read_text(encoding="utf-8").startswith("<svg")


class TestRenderers:
    def test_render_pointsets_draws_every_point(self):
        points_p = uniform_points(25, seed=301)
        points_q = uniform_points(15, seed=302)
        svg = render_pointsets({"P": points_p, "Q": points_q}, DOMAIN)
        root = parse(svg)
        circles = root.findall(f"{SVG_NS}circle")
        assert len(circles) == 40

    def test_render_voronoi_diagram_draws_cells_and_sites(self):
        points = uniform_points(20, seed=303)
        diagram = brute_force_diagram(points, DOMAIN)
        root = parse(render_voronoi_diagram(diagram, label_sites=True))
        assert len(root.findall(f"{SVG_NS}polygon")) == 20
        assert len(root.findall(f"{SVG_NS}circle")) == 20
        assert len(root.findall(f"{SVG_NS}text")) == 20

    def test_render_cij_shades_a_region_per_pair(self):
        points_p = uniform_points(12, seed=304)
        points_q = uniform_points(10, seed=305)
        diagram_p = brute_force_diagram(points_p, DOMAIN)
        diagram_q = brute_force_diagram(points_q, DOMAIN)
        pairs = sorted(brute_force_cij_pairs(points_p, points_q, DOMAIN))
        root = parse(render_cij(diagram_p, diagram_q, pairs))
        polygons = root.findall(f"{SVG_NS}polygon")
        # cells of P + cells of Q + one filled region per pair with interior overlap
        assert len(polygons) >= len(points_p) + len(points_q)
        filled = [p for p in polygons if p.get("fill") not in (None, "none")]
        assert 0 < len(filled) <= len(pairs)

    def test_render_cij_respects_max_regions(self):
        points_p = uniform_points(10, seed=306)
        points_q = uniform_points(10, seed=307)
        diagram_p = brute_force_diagram(points_p, DOMAIN)
        diagram_q = brute_force_diagram(points_q, DOMAIN)
        pairs = sorted(brute_force_cij_pairs(points_p, points_q, DOMAIN))
        root = parse(render_cij(diagram_p, diagram_q, pairs, max_regions=3))
        filled = [
            p for p in root.findall(f"{SVG_NS}polygon") if p.get("fill") not in (None, "none")
        ]
        assert len(filled) <= 3
