"""Engine equivalence between the scalar and the kernel compute modes.

``compute="kernel"`` re-implements the CIJ hot loops on NumPy arrays; the
scalar path is the oracle.  The kernels are written for *bit-identical*
floats, so the contract is strict byte-equality — the pair list in order,
every logical ``JoinStats`` counter, the Voronoi work counters and the
filter-phase counters — across algorithms, storage backends and executors.
"""

from __future__ import annotations

import pytest

pytest.importorskip("numpy")

from repro.datasets.synthetic import uniform_points
from repro.experiments.drivers.common import run_cij
from repro.join.result import CIJResult
from repro.storage.backends import STORAGE_BACKENDS
from tests.engine.test_storage_equivalence import stats_fingerprint

POINTS_P = uniform_points(240, seed=3)
POINTS_Q = uniform_points(210, seed=11)


def run_mode(compute: str, algorithm: str, backend: str = "memory", **overrides):
    return run_cij(
        algorithm,
        POINTS_P,
        POINTS_Q,
        storage=backend,
        compute=compute,
        **overrides,
    )


def work_fingerprint(result: CIJResult) -> dict:
    """The Voronoi and filter work counters (all deterministic)."""
    fingerprint = dict(vars(result.cell_stats))
    if result.filter_stats is not None:
        fingerprint.update(
            {f"filter_{k}": v for k, v in vars(result.filter_stats).items()}
        )
    return fingerprint


def assert_byte_identical(kernel: CIJResult, scalar: CIJResult, label: str):
    assert kernel.pairs == scalar.pairs, label
    assert stats_fingerprint(kernel) == stats_fingerprint(scalar), label
    assert work_fingerprint(kernel) == work_fingerprint(scalar), label


class TestKernelScalarEquivalence:
    @pytest.mark.parametrize("algorithm", ["nm", "pm", "fm"])
    @pytest.mark.parametrize("backend", list(STORAGE_BACKENDS))
    def test_serial_runs_identical_on_every_backend(self, backend, algorithm):
        scalar = run_mode("scalar", algorithm, backend)
        kernel = run_mode("kernel", algorithm, backend)
        assert_byte_identical(kernel, scalar, f"{algorithm}/{backend}")

    @pytest.mark.parametrize("algorithm", ["nm", "pm", "fm"])
    def test_sharded_runs_identical(self, algorithm):
        scalar = run_mode("scalar", algorithm, executor="sharded", workers=3)
        kernel = run_mode("kernel", algorithm, executor="sharded", workers=3)
        assert_byte_identical(kernel, scalar, algorithm)

    def test_reuse_disabled_variant_identical(self):
        """The NO-REUSE ablation exercises the kernel refinement path for
        every candidate instead of the buffer: still byte-identical."""
        scalar = run_mode("scalar", "nm", reuse_cells=False)
        kernel = run_mode("kernel", "nm", reuse_cells=False)
        assert_byte_identical(kernel, scalar, "nm/no-reuse")

    def test_phi_pruning_disabled_variant_identical(self):
        scalar = run_mode("scalar", "nm", use_phi_pruning=False)
        kernel = run_mode("kernel", "nm", use_phi_pruning=False)
        assert_byte_identical(kernel, scalar, "nm/no-phi")

    def test_kernel_matches_brute_oracle(self):
        oracle = set(run_mode("scalar", "brute").pairs)
        for algorithm in ("nm", "pm", "fm"):
            assert set(run_mode("kernel", algorithm).pairs) == oracle, algorithm


class TestComputeModeResolution:
    def test_env_default_selects_kernel(self, monkeypatch):
        from repro.geometry.kernels import default_compute_mode

        monkeypatch.setenv("REPRO_COMPUTE", "kernel")
        assert default_compute_mode() == "kernel"
        monkeypatch.setenv("REPRO_COMPUTE", "bogus")
        with pytest.raises(ValueError):
            default_compute_mode()

    def test_engine_config_rejects_unknown_mode(self):
        from repro.engine.config import EngineConfig

        with pytest.raises(ValueError):
            EngineConfig(compute="simd")

    def test_env_driven_run_matches_explicit_kernel(self, monkeypatch):
        explicit = run_mode("kernel", "nm")
        monkeypatch.setenv("REPRO_COMPUTE", "kernel")
        env_driven = run_cij("nm", POINTS_P, POINTS_Q, storage="memory")
        assert_byte_identical(env_driven, explicit, "env-driven")
