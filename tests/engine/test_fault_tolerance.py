"""Fault tolerance of the distributed tier, under deterministic injection.

Every test here follows one contract: whatever faults fire — nodes
crashing before or mid-unit, hanging past the timeout, dropping or
corrupting result lines, dying until one survivor remains, joining the
run late — the merged pairs and every deterministic ``JoinStats`` counter
are byte-identical to the serial run, or the run aborts loudly with a
``RuntimeError``.  There is no third outcome: no silent pair loss, no
deadlock, no zombie node interpreters.

Faults are *injected*, not awaited: a :class:`~repro.engine.faults.FaultPlan`
spec travels to each node inside its init message, so each scenario fires
the same fault at the same point on every run (see the spec grammar in
:mod:`repro.engine.faults`).

Timing-sensitive scenarios (hang detection races a real timeout;
late-join races a real readiness delay) are marked ``timing`` so CI can
quarantine them from the tier-1 legs without losing them.
"""

from __future__ import annotations

import gc
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.synthetic import uniform_points
from repro.engine import DistributedExecutor, FaultPlan, default_engine
from repro.engine.faults import Fault
from repro.experiments.drivers.common import run_cij
from repro.join.result import CIJResult


def stats_fingerprint(result: CIJResult) -> dict:
    """Every deterministic JoinStats field (CPU timings excluded) — the
    same fingerprint the fault-free equivalence suite pins."""
    stats = result.stats
    return {
        "algorithm": stats.algorithm,
        "mat_page_accesses": stats.mat_page_accesses,
        "join_page_accesses": stats.join_page_accesses,
        "cells_computed_p": stats.cells_computed_p,
        "cells_computed_q": stats.cells_computed_q,
        "cells_reused_p": stats.cells_reused_p,
        "filter_candidates": stats.filter_candidates,
        "filter_true_hits": stats.filter_true_hits,
        "progress": [(s.page_accesses, s.pairs_reported) for s in stats.progress],
    }


POINTS_P = uniform_points(150, seed=3)
POINTS_Q = uniform_points(140, seed=11)

#: Backends a node subprocess can reopen (the distributed tier's domain).
ON_DISK_BACKENDS = ("file", "sqlite")

#: Serial baselines per (backend, algorithm), computed once.
_BASELINES: dict = {}


def serial_baseline(backend: str, algorithm: str) -> CIJResult:
    key = (backend, algorithm)
    if key not in _BASELINES:
        _BASELINES[key] = run_cij(algorithm, POINTS_P, POINTS_Q, storage=backend)
    return _BASELINES[key]


def run_distributed(backend: str, algorithm: str, **overrides) -> CIJResult:
    return run_cij(
        algorithm,
        POINTS_P,
        POINTS_Q,
        storage=backend,
        executor="distributed",
        **overrides,
    )


def assert_identical_to_serial(result: CIJResult, backend: str, algorithm: str):
    """Pairs byte-equal, every scalar counter byte-equal.

    Progress curves keep the serial pair milestones at shifted access
    offsets (the executor enumerates units up front), exactly as in the
    fault-free distributed equivalence suite — FM has no cross-unit state,
    so there even the curve matches.
    """
    serial = serial_baseline(backend, algorithm)
    assert result.pairs == serial.pairs
    result_fp = stats_fingerprint(result)
    serial_fp = stats_fingerprint(serial)
    if algorithm == "fm":
        assert result_fp == serial_fp
        return
    result_fp.pop("progress"), serial_fp.pop("progress")
    assert result_fp == serial_fp
    assert [s.pairs_reported for s in result.stats.progress] == [
        s.pairs_reported for s in serial.stats.progress
    ]


def last_executor() -> DistributedExecutor:
    executor = default_engine().last_executor
    assert isinstance(executor, DistributedExecutor)
    return executor


def assert_children_reaped(executor: DistributedExecutor) -> None:
    """Every node interpreter the run spawned has been waited on."""
    assert executor.node_pids, "run recorded no node pids"
    for worker_id, pid in executor.node_pids.items():
        with pytest.raises(ChildProcessError):
            # An unreaped child would return (0, 0) or (pid, status) here;
            # a reaped one is no longer our child at all.
            os.waitpid(pid, os.WNOHANG)


class TestFaultMatrix:
    """One scenario per failure mode, on both on-disk backends."""

    @pytest.mark.parametrize("backend", ON_DISK_BACKENDS)
    def test_crash_before_first_unit(self, backend):
        """A node that dies on its very first unit never contributes — the
        survivor re-runs the released unit and the merge is untouched."""
        result = run_distributed(
            backend, "pm", nodes=2, fault_plan="crash@node-1:after=0"
        )
        executor = last_executor()
        assert_identical_to_serial(result, backend, "pm")
        assert list(executor.quarantined) == ["node-1"]
        assert "NodeCrashed" in executor.quarantined["node-1"]
        assert sum(executor.retries.values()) >= 1
        assert_children_reaped(executor)

    @pytest.mark.parametrize("backend", ON_DISK_BACKENDS)
    def test_crash_mid_unit_after_computing(self, backend):
        """phase=work: the node computes the unit, then dies before
        replying.  The result was never recorded, so the retry cannot
        double-charge — counters stay exactly serial.  FM's 16 partitions
        guarantee node-1 reaches a second unit whatever the pull race."""
        result = run_distributed(
            backend, "fm", nodes=2, fault_plan="crash@node-1:after=1,phase=work"
        )
        executor = last_executor()
        assert_identical_to_serial(result, backend, "fm")
        assert executor.quarantined.get("node-1", "").startswith("NodeCrashed")
        assert sum(executor.retries.values()) >= 1
        assert_children_reaped(executor)

    @pytest.mark.timing
    @pytest.mark.parametrize("backend", ON_DISK_BACKENDS)
    def test_crash_holding_nm_carry(self, backend):
        """The hardest release: a chained NM node dies mid-pipeline while
        holding the REUSE carry.  node-1's readiness delay plus the
        min-quorum start guarantee node-0 owns the opening units, crashes
        on unit 2 (computed, never replied), and node-1 — joining late —
        re-runs it from the *recorded* carry of unit 1."""
        result = run_distributed(
            backend,
            "nm",
            nodes=2,
            node_min_ready=1,
            fault_plan=(
                "crash@node-0:unit=2,phase=work;ready_delay@node-1:seconds=1.5"
            ),
        )
        executor = last_executor()
        assert_identical_to_serial(result, backend, "nm")
        assert list(executor.quarantined) == ["node-0"]
        assert executor.retries.get(2) == 1
        assert_children_reaped(executor)

    @pytest.mark.timing
    @pytest.mark.parametrize("backend", ON_DISK_BACKENDS)
    def test_hang_past_timeout_is_detected_and_retried(self, backend):
        """A hung node mutes its heartbeats too; the parent's silence
        deadline fires, the node is quarantined and its unit re-leased."""
        result = run_distributed(
            backend,
            "pm",
            nodes=2,
            node_timeout=1.0,
            fault_plan="hang@node-0:after=0",
        )
        executor = last_executor()
        assert_identical_to_serial(result, backend, "pm")
        assert executor.quarantined.get("node-0", "").startswith("NodeTimeout")
        assert_children_reaped(executor)

    @pytest.mark.parametrize("backend", ON_DISK_BACKENDS)
    def test_all_nodes_but_one_die(self, backend):
        """Graceful degradation to a single survivor: two of three nodes
        crash on their first pull, the third runs the whole queue."""
        result = run_distributed(
            backend,
            "pm",
            nodes=3,
            fault_plan="crash@node-0:after=0;crash@node-2:after=0",
        )
        executor = last_executor()
        assert_identical_to_serial(result, backend, "pm")
        assert sorted(executor.quarantined) == ["node-0", "node-2"]
        survivors = set(executor.last_assignments) - set(executor.quarantined)
        assert survivors == {"node-1"}
        assert_children_reaped(executor)

    @pytest.mark.timing
    @pytest.mark.parametrize("backend", ON_DISK_BACKENDS)
    def test_late_joining_node_is_admitted_mid_run(self, backend):
        """min-quorum start: the run begins with one ready node; the
        delayed node is admitted into the pull loop when it comes up,
        instead of being a barrier the whole run waits behind."""
        result = run_distributed(
            backend,
            "fm",
            nodes=2,
            node_min_ready=1,
            fault_plan="ready_delay@node-1:seconds=0.6",
        )
        executor = last_executor()
        assert_identical_to_serial(result, backend, "fm")
        assert executor.quarantined == {}
        # The punctual node must not have waited for the delayed one.
        assert executor.last_assignments.get("node-0")

    @pytest.mark.parametrize("backend", ON_DISK_BACKENDS)
    def test_dropped_and_corrupted_results_are_retried(self, backend):
        """A swallowed result surfaces as a timeout, a garbled line as a
        protocol error; both quarantine the node and re-lease the unit."""
        result = run_distributed(
            backend,
            "pm",
            nodes=3,
            node_timeout=1.0,
            fault_plan="drop@node-0:after=0;corrupt@node-1:after=0",
        )
        executor = last_executor()
        assert_identical_to_serial(result, backend, "pm")
        assert executor.quarantined.get("node-0", "").startswith("NodeTimeout")
        assert executor.quarantined.get("node-1", "").startswith(
            "NodeProtocolError"
        )

    def test_zero_survivors_aborts_loudly(self):
        with pytest.raises(RuntimeError, match="nodes failed"):
            run_distributed(
                "file",
                "pm",
                nodes=2,
                node_retries=5,
                fault_plan="crash@node-0:after=0;crash@node-1:after=0",
            )
        assert_children_reaped(last_executor())

    def test_poison_unit_aborts_after_max_attempts(self):
        """A unit that kills every node it touches must abort the run,
        not cycle through workers forever."""
        with pytest.raises(RuntimeError):
            run_distributed(
                "file",
                "pm",
                nodes=3,
                node_retries=1,  # max_attempts=2 < 3 nodes with the fault
                fault_plan=(
                    "crash@node-0:unit=0;crash@node-1:unit=0;crash@node-2:unit=0"
                ),
            )


class TestAbortPathProcessHygiene:
    """The known abort-path bug: a worker ``error`` reply used to raise
    straight through ``DistributedExecutor`` without draining the sibling
    nodes.  Both the restored abort path (``node_retries=0``) and the new
    retry path must reap every spawned interpreter and leak no
    descriptors."""

    def test_error_reply_with_no_retries_aborts_and_reaps_siblings(self):
        with pytest.raises(RuntimeError, match="unit .* failed"):
            run_distributed(
                "file",
                "pm",
                nodes=2,
                node_retries=0,
                fault_plan="error@node-0:after=0",
            )
        executor = last_executor()
        assert len(executor.node_pids) == 2
        assert_children_reaped(executor)

    def test_error_reply_with_retries_completes_and_reaps(self):
        result = run_distributed(
            "file", "pm", nodes=2, fault_plan="error@node-0:after=0"
        )
        executor = last_executor()
        assert_identical_to_serial(result, "file", "pm")
        assert executor.quarantined.get("node-0", "").startswith("NodeError")
        assert_children_reaped(executor)

    def test_fault_runs_do_not_leak_file_descriptors(self):
        """Descriptor census across repeated faulty runs: pipes, stderr
        temp files and backend handles are all closed, on the abort path
        and the retry path alike."""

        def faulty_run():
            run_distributed(
                "file", "pm", nodes=2, fault_plan="crash@node-1:after=0"
            )
            with pytest.raises(RuntimeError):
                run_distributed(
                    "file",
                    "pm",
                    nodes=2,
                    node_retries=0,
                    fault_plan="error@node-0:after=0",
                )

        faulty_run()  # warmup: lazy imports, interned caches
        gc.collect()
        before = len(os.listdir("/proc/self/fd"))
        for _ in range(2):
            faulty_run()
        gc.collect()
        after = len(os.listdir("/proc/self/fd"))
        assert after <= before, f"fd count grew {before} -> {after}"


#: Tiny workload for the randomized property: enough units to retry
#: across, small enough to run several examples in tier-1 time.
SMALL_P = uniform_points(90, seed=21)
SMALL_Q = uniform_points(80, seed=22)
_SMALL_SERIAL: dict = {}


def small_serial(algorithm: str) -> CIJResult:
    if algorithm not in _SMALL_SERIAL:
        _SMALL_SERIAL[algorithm] = run_cij(
            algorithm, SMALL_P, SMALL_Q, storage="file"
        )
    return _SMALL_SERIAL[algorithm]


class TestRandomFaultPlans:
    """Property: *any* seed-deterministic fault plan either completes with
    bytes identical to serial or aborts with a RuntimeError — and the
    chained NM pipeline never deadlocks on the way."""

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_plans_never_change_merged_bytes(self, seed):
        plan = FaultPlan.random(seed, nodes=2, count=2, max_after=2, unit_count=4)
        serial = small_serial("pm")
        try:
            result = run_cij(
                "pm",
                SMALL_P,
                SMALL_Q,
                storage="file",
                executor="distributed",
                nodes=2,
                node_timeout=1.0,
                fault_plan=plan.to_spec(),
            )
        except RuntimeError:
            return  # a loud abort (e.g. every node crashed) is a valid outcome
        assert result.pairs == serial.pairs
        assert stats_fingerprint(result) != {}  # fingerprint computable
        result_fp, serial_fp = stats_fingerprint(result), stats_fingerprint(serial)
        result_fp.pop("progress"), serial_fp.pop("progress")
        assert result_fp == serial_fp

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_plans_do_not_deadlock_chained_nm(self, seed):
        """The chained carry pipeline is where a lost lease would hang the
        whole run; random crashes against it must always terminate."""
        plan = FaultPlan.random(seed, nodes=2, count=2, max_after=2, unit_count=4)
        serial = small_serial("nm")
        try:
            result = run_cij(
                "nm",
                SMALL_P,
                SMALL_Q,
                storage="file",
                executor="distributed",
                nodes=2,
                node_timeout=1.0,
                fault_plan=plan.to_spec(),
            )
        except RuntimeError:
            return
        assert result.pairs == serial.pairs

    def test_random_plan_generation_is_deterministic(self):
        for seed in (0, 7, 4242):
            a = FaultPlan.random(seed, nodes=3, count=3, unit_count=8)
            b = FaultPlan.random(seed, nodes=3, count=3, unit_count=8)
            assert a == b
            assert FaultPlan.from_spec(a.to_spec()) == a

    def test_spec_round_trip_examples(self):
        specs = [
            "crash@node-1:after=2",
            "crash@node-1:after=2,phase=work",
            "hang@node-0:unit=3",
            "drop@node-0:after=0",
            "corrupt@node-0:after=1",
            "error@node-0:after=0",
            "ready_delay@node-1:seconds=0.5",
        ]
        plan = FaultPlan.from_spec(";".join(specs))
        assert len(plan.faults) == len(specs)
        assert FaultPlan.from_spec(plan.to_spec()) == plan

    def test_bad_specs_rejected(self):
        for spec in ("", "explode@node-0", "crash@", "crash@node-0:bogus",
                     "crash@node-0:after=-1", "crash@node-0:phase=sideways"):
            with pytest.raises(ValueError):
                FaultPlan.from_spec(spec)

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault("meltdown", "node-0")
