"""Property-based equivalence of every engine algorithm and both executors.

The brute-force oracle (`repro.join.baseline`) computes CIJ from first
principles; the definitional oracle re-derives it from the join's original
definition (a witness location closer to both partners than to anything
else).  Every CIJ variant, the engine baseline, and both executors must
produce exactly the same pair set on seeded random point sets.
"""

from hypothesis import given, settings

from repro.datasets.synthetic import DOMAIN
from repro.datasets.workload import WorkloadConfig, build_workload
from repro.engine import default_engine
from repro.join.baseline import brute_force_cij_pairs, definitional_cij_pairs
from tests.conftest import distinct_pointsets


def run_engine(points_p, points_q, algorithm, **overrides):
    workload = build_workload(
        WorkloadConfig(buffer_fraction=0.05), points_p=points_p, points_q=points_q
    )
    return default_engine().run(
        algorithm,
        workload.tree_p,
        workload.tree_q,
        domain=workload.domain,
        **overrides,
    )


class TestEngineMatchesOracles:
    @given(
        distinct_pointsets(min_size=2, max_size=10),
        distinct_pointsets(min_size=2, max_size=10),
    )
    @settings(max_examples=20, deadline=None)
    def test_every_algorithm_matches_the_oracle(self, points_p, points_q):
        oracle = brute_force_cij_pairs(points_p, points_q, DOMAIN)
        for algorithm in ("nm", "pm", "fm", "brute"):
            result = run_engine(points_p, points_q, algorithm)
            assert result.pair_set() == oracle, algorithm

    @given(
        distinct_pointsets(min_size=2, max_size=9),
        distinct_pointsets(min_size=2, max_size=9),
    )
    @settings(max_examples=10, deadline=None)
    def test_both_oracles_agree(self, points_p, points_q):
        assert brute_force_cij_pairs(
            points_p, points_q, DOMAIN
        ) == definitional_cij_pairs(points_p, points_q, DOMAIN)

    @given(
        distinct_pointsets(min_size=2, max_size=10),
        distinct_pointsets(min_size=2, max_size=10),
    )
    @settings(max_examples=15, deadline=None)
    def test_sharded_executor_is_byte_identical(self, points_p, points_q):
        """The acceptance property: on every seed the sharded executor
        returns the identical pair *list* (order included) and the same
        aggregate filter/cell accounting as the serial executor."""
        for algorithm in ("nm", "pm"):
            serial = run_engine(points_p, points_q, algorithm)
            sharded = run_engine(
                points_p,
                points_q,
                algorithm,
                executor="sharded",
                workers=3,
                pool="inline",
            )
            assert sharded.pairs == serial.pairs, algorithm
            assert (
                sharded.stats.cells_computed_q == serial.stats.cells_computed_q
            ), algorithm
        nm_serial = run_engine(points_p, points_q, "nm")
        nm_sharded = run_engine(
            points_p, points_q, "nm", executor="sharded", workers=3, pool="inline"
        )
        assert (
            nm_sharded.stats.filter_candidates == nm_serial.stats.filter_candidates
        )
