"""Unit tests for the JoinEngine: API, executors and deterministic merging."""

import pytest

from repro.datasets.synthetic import uniform_points
from repro.datasets.workload import WorkloadConfig, build_workload
from repro.engine import (
    EngineConfig,
    JoinEngine,
    NMJoin,
    ShardedExecutor,
    default_engine,
    executor_for,
)
from repro.join.fm_cij import fm_cij
from repro.join.nm_cij import nm_cij
from repro.join.pm_cij import pm_cij

POINTS_P = uniform_points(150, seed=201)
POINTS_Q = uniform_points(130, seed=202)


def make_workload(points_p=POINTS_P, points_q=POINTS_Q):
    return build_workload(
        WorkloadConfig(buffer_fraction=0.05), points_p=points_p, points_q=points_q
    )


def run(algorithm, **overrides):
    workload = make_workload()
    result = default_engine().run(
        algorithm,
        workload.tree_p,
        workload.tree_q,
        domain=workload.domain,
        **overrides,
    )
    return workload, result


class TestEngineAPI:
    def test_registered_algorithms(self):
        assert JoinEngine().algorithm_names() == ["brute", "fm", "nm", "pm"]

    def test_unknown_algorithm_rejected(self):
        workload = make_workload()
        with pytest.raises(ValueError, match="unknown algorithm"):
            default_engine().run("quantum", workload.tree_p, workload.tree_q)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            EngineConfig(executor="distributed")

    def test_unknown_pool_rejected(self):
        with pytest.raises(ValueError, match="unknown pool"):
            EngineConfig(pool="threads")

    def test_nonpositive_workers_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(workers=0)
        with pytest.raises(ValueError):
            ShardedExecutor(workers=0)

    def test_mismatched_disks_rejected(self):
        workload_a = make_workload()
        workload_b = make_workload()
        with pytest.raises(ValueError, match="share one DiskManager"):
            default_engine().run("nm", workload_a.tree_p, workload_b.tree_q)

    def test_fm_cannot_be_sharded(self):
        workload = make_workload()
        with pytest.raises(ValueError, match="does not support sharded"):
            default_engine().run(
                "fm", workload.tree_p, workload.tree_q, executor="sharded"
            )

    def test_custom_algorithm_registration(self):
        engine = JoinEngine()

        class Renamed(NMJoin):
            name = "nm-custom"
            display_name = "NM-CUSTOM"

        engine.register(Renamed())
        workload = make_workload()
        result = engine.run(
            "nm-custom", workload.tree_p, workload.tree_q, domain=workload.domain
        )
        assert result.stats.algorithm == "NM-CUSTOM"
        assert result.pairs

    def test_executor_factory(self):
        assert executor_for(EngineConfig()).name == "serial"
        sharded = executor_for(EngineConfig(executor="sharded", workers=5))
        assert sharded.name == "sharded"
        assert sharded.workers == 5

    def test_engine_result_carries_phase_stats(self):
        _, result = run("nm")
        assert result.cell_stats is not None and result.cell_stats.heap_pops > 0
        assert result.filter_stats is not None and result.filter_stats.heap_pops > 0


class TestSerialMatchesLegacyEntryPoints:
    @pytest.mark.parametrize(
        "algorithm,legacy", [("nm", nm_cij), ("pm", pm_cij), ("fm", fm_cij)]
    )
    def test_pairs_and_costs_match(self, algorithm, legacy):
        _, engine_result = run(algorithm)
        workload = make_workload()
        legacy_result = legacy(workload.tree_p, workload.tree_q, domain=workload.domain)
        assert engine_result.pairs == legacy_result.pairs
        assert (
            engine_result.stats.total_page_accesses
            == legacy_result.stats.total_page_accesses
        )
        assert engine_result.stats.algorithm == legacy_result.stats.algorithm


class TestShardedExecution:
    @pytest.mark.parametrize("pool", ["fork", "inline"])
    @pytest.mark.parametrize("algorithm", ["nm", "pm"])
    def test_pairs_byte_identical_to_serial(self, algorithm, pool):
        _, serial = run(algorithm)
        _, sharded = run(algorithm, executor="sharded", workers=3, pool=pool)
        assert sharded.pairs == serial.pairs  # list equality: order included

    def test_single_shard_reproduces_serial_costs(self):
        """With one worker the shard is the whole leaf sequence, so even the
        REUSE-dependent cost counters match the serial run exactly."""
        _, serial = run("nm")
        _, sharded = run("nm", executor="sharded", workers=1, pool="inline")
        assert sharded.pairs == serial.pairs
        assert sharded.stats.cells_computed_p == serial.stats.cells_computed_p
        assert sharded.stats.cells_reused_p == serial.stats.cells_reused_p
        assert (
            sharded.stats.total_page_accesses == serial.stats.total_page_accesses
        )

    @pytest.mark.parametrize("pool", ["fork", "inline"])
    def test_merged_counters_match_disk_counters(self, pool):
        """The engine's stats and the shared disk counters must agree even
        when workers charged their own forked counter copies."""
        workload, result = run("nm", executor="sharded", workers=3, pool=pool)
        assert (
            result.stats.total_page_accesses
            == workload.disk.counters.page_accesses
        )

    def test_merged_stats_are_shard_sums(self):
        """Scalar statistics of the merged run equal the sum over shards;
        the filter/cell work is identical to serial because shard outputs
        never depend on shard boundaries."""
        _, serial = run("nm")
        _, sharded = run("nm", executor="sharded", workers=3, pool="inline")
        assert sharded.stats.cells_computed_q == serial.stats.cells_computed_q
        assert sharded.stats.filter_candidates == serial.stats.filter_candidates
        assert sharded.stats.filter_true_hits == serial.stats.filter_true_hits
        # REUSE cannot carry cells across shard boundaries, so the sharded
        # run recomputes at least as many P cells as the serial one.
        assert sharded.stats.cells_computed_p >= serial.stats.cells_computed_p
        assert (
            sharded.stats.cells_computed_p + sharded.stats.cells_reused_p
            == serial.stats.cells_computed_p + serial.stats.cells_reused_p
        )

    @pytest.mark.parametrize("pool", ["fork", "inline"])
    def test_progress_curve_is_monotone(self, pool):
        _, sharded = run("nm", executor="sharded", workers=3, pool=pool)
        accesses = [s.page_accesses for s in sharded.stats.progress]
        pairs = [s.pairs_reported for s in sharded.stats.progress]
        assert accesses == sorted(accesses)
        assert pairs == sorted(pairs)
        assert pairs[-1] == len(sharded.pairs)

    def test_more_workers_than_leaves(self):
        workload = make_workload()
        result = default_engine().run(
            "nm",
            workload.tree_p,
            workload.tree_q,
            domain=workload.domain,
            executor="sharded",
            workers=10_000,
            pool="inline",
        )
        _, serial = run("nm")
        assert result.pairs == serial.pairs


class TestReuseBufferRegression:
    def test_reuse_toggle_preserves_pairs_and_reuses_cells(self):
        """REUSE on/off must be invisible in the output while the on-run
        demonstrably serves cells from the buffer."""
        _, with_reuse = run("nm", reuse_cells=True)
        _, without_reuse = run("nm", reuse_cells=False)
        assert with_reuse.pairs == without_reuse.pairs
        assert with_reuse.stats.cells_reused_p > 0
        assert without_reuse.stats.cells_reused_p == 0
        assert (
            with_reuse.stats.cells_computed_p < without_reuse.stats.cells_computed_p
        )

    def test_reuse_works_within_shards(self):
        """Hilbert-contiguous shards keep consecutive leaves spatially close,
        so the REUSE buffer still hits inside every shard (each shard spans
        several leaves on a workload this size)."""
        workload = make_workload(
            uniform_points(400, seed=203), uniform_points(400, seed=204)
        )
        assert workload.tree_q.leaf_count() >= 6
        sharded = default_engine().run(
            "nm",
            workload.tree_p,
            workload.tree_q,
            domain=workload.domain,
            executor="sharded",
            workers=2,
            pool="inline",
            reuse_cells=True,
        )
        assert sharded.stats.cells_reused_p > 0
