"""Unit tests for the JoinEngine: API, executors and deterministic merging."""

import pytest

from repro.datasets.synthetic import uniform_points
from repro.datasets.workload import WorkloadConfig, build_workload
from repro.engine import (
    EngineConfig,
    JoinEngine,
    NMJoin,
    ShardedExecutor,
    default_engine,
    executor_for,
)
from repro.join.fm_cij import fm_cij
from repro.join.nm_cij import nm_cij
from repro.join.pm_cij import pm_cij

POINTS_P = uniform_points(150, seed=201)
POINTS_Q = uniform_points(130, seed=202)


def make_workload(points_p=POINTS_P, points_q=POINTS_Q):
    return build_workload(
        WorkloadConfig(buffer_fraction=0.05), points_p=points_p, points_q=points_q
    )


def run(algorithm, **overrides):
    workload = make_workload()
    result = default_engine().run(
        algorithm,
        workload.tree_p,
        workload.tree_q,
        domain=workload.domain,
        **overrides,
    )
    return workload, result


class TestEngineAPI:
    def test_registered_algorithms(self):
        assert JoinEngine().algorithm_names() == ["brute", "fm", "nm", "pm"]

    def test_unknown_algorithm_rejected(self):
        workload = make_workload()
        with pytest.raises(ValueError, match="unknown algorithm"):
            default_engine().run("quantum", workload.tree_p, workload.tree_q)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            EngineConfig(executor="ray")

    def test_unknown_pool_rejected(self):
        with pytest.raises(ValueError, match="unknown pool"):
            EngineConfig(pool="threads")

    def test_nonpositive_workers_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(workers=0)
        with pytest.raises(ValueError):
            ShardedExecutor(workers=0)

    def test_mismatched_disks_rejected(self):
        workload_a = make_workload()
        workload_b = make_workload()
        with pytest.raises(ValueError, match="share one DiskManager"):
            default_engine().run("nm", workload_a.tree_p, workload_b.tree_q)

    def test_brute_cannot_be_sharded(self):
        workload = make_workload()
        with pytest.raises(ValueError, match="does not support sharded"):
            default_engine().run(
                "brute", workload.tree_p, workload.tree_q, executor="sharded"
            )

    def test_unknown_handoff_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown reuse_handoff"):
            EngineConfig(reuse_handoff="sometimes")

    def test_custom_algorithm_registration(self):
        engine = JoinEngine()

        class Renamed(NMJoin):
            name = "nm-custom"
            display_name = "NM-CUSTOM"

        engine.register(Renamed())
        workload = make_workload()
        result = engine.run(
            "nm-custom", workload.tree_p, workload.tree_q, domain=workload.domain
        )
        assert result.stats.algorithm == "NM-CUSTOM"
        assert result.pairs

    def test_executor_factory(self):
        assert executor_for(EngineConfig()).name == "serial"
        sharded = executor_for(EngineConfig(executor="sharded", workers=5))
        assert sharded.name == "sharded"
        assert sharded.workers == 5

    def test_engine_result_carries_phase_stats(self):
        _, result = run("nm")
        assert result.cell_stats is not None and result.cell_stats.heap_pops > 0
        assert result.filter_stats is not None and result.filter_stats.heap_pops > 0


class TestSerialMatchesLegacyEntryPoints:
    @pytest.mark.parametrize(
        "algorithm,legacy", [("nm", nm_cij), ("pm", pm_cij), ("fm", fm_cij)]
    )
    def test_pairs_and_costs_match(self, algorithm, legacy):
        _, engine_result = run(algorithm)
        workload = make_workload()
        legacy_result = legacy(workload.tree_p, workload.tree_q, domain=workload.domain)
        assert engine_result.pairs == legacy_result.pairs
        assert (
            engine_result.stats.total_page_accesses
            == legacy_result.stats.total_page_accesses
        )
        assert engine_result.stats.algorithm == legacy_result.stats.algorithm


class TestShardedExecution:
    @pytest.mark.parametrize("pool", ["fork", "inline"])
    @pytest.mark.parametrize("algorithm", ["nm", "pm", "fm"])
    def test_pairs_byte_identical_to_serial(self, algorithm, pool):
        _, serial = run(algorithm)
        _, sharded = run(algorithm, executor="sharded", workers=3, pool=pool)
        assert sharded.pairs == serial.pairs  # list equality: order included

    def test_single_shard_reproduces_serial_costs(self):
        """With one worker the shard is the whole leaf sequence, so even the
        REUSE-dependent cost counters match the serial run exactly."""
        _, serial = run("nm")
        _, sharded = run("nm", executor="sharded", workers=1, pool="inline")
        assert sharded.pairs == serial.pairs
        assert sharded.stats.cells_computed_p == serial.stats.cells_computed_p
        assert sharded.stats.cells_reused_p == serial.stats.cells_reused_p
        assert (
            sharded.stats.total_page_accesses == serial.stats.total_page_accesses
        )

    @pytest.mark.parametrize("pool", ["fork", "inline"])
    def test_merged_counters_match_disk_counters(self, pool):
        """The engine's stats and the shared disk counters must agree even
        when workers charged their own forked counter copies."""
        workload, result = run("nm", executor="sharded", workers=3, pool=pool)
        assert (
            result.stats.total_page_accesses
            == workload.disk.counters.page_accesses
        )

    def test_merged_stats_are_shard_sums(self):
        """Scalar statistics of the merged run equal the sum over shards;
        the filter/cell work is identical to serial because shard outputs
        never depend on shard boundaries."""
        _, serial = run("nm")
        _, sharded = run(
            "nm", executor="sharded", workers=3, pool="inline", reuse_handoff="never"
        )
        assert sharded.stats.cells_computed_q == serial.stats.cells_computed_q
        assert sharded.stats.filter_candidates == serial.stats.filter_candidates
        assert sharded.stats.filter_true_hits == serial.stats.filter_true_hits
        # Without the boundary handoff REUSE cannot carry cells across a
        # shard boundary, so the sharded run recomputes at least as many P
        # cells as the serial one.
        assert sharded.stats.cells_computed_p >= serial.stats.cells_computed_p
        assert (
            sharded.stats.cells_computed_p + sharded.stats.cells_reused_p
            == serial.stats.cells_computed_p + serial.stats.cells_reused_p
        )

    @pytest.mark.parametrize("pool", ["fork", "inline"])
    def test_progress_curve_is_monotone(self, pool):
        _, sharded = run("nm", executor="sharded", workers=3, pool=pool)
        accesses = [s.page_accesses for s in sharded.stats.progress]
        pairs = [s.pairs_reported for s in sharded.stats.progress]
        assert accesses == sorted(accesses)
        assert pairs == sorted(pairs)
        assert pairs[-1] == len(sharded.pairs)

    def test_more_workers_than_leaves(self):
        workload = make_workload()
        result = default_engine().run(
            "nm",
            workload.tree_p,
            workload.tree_q,
            domain=workload.domain,
            executor="sharded",
            workers=10_000,
            pool="inline",
        )
        _, serial = run("nm")
        assert result.pairs == serial.pairs


class TestShardedFM:
    """FM-CIJ shards by top-level R'_P join partitions (the partitioned
    synchronous traversal); the merged output must be byte-identical to the
    serial coupled traversal."""

    @pytest.mark.parametrize("pool", ["fork", "inline"])
    @pytest.mark.parametrize("workers", [2, 3, 7])
    def test_fm_sharded_matches_serial(self, workers, pool):
        _, serial = run("fm")
        _, sharded = run("fm", executor="sharded", workers=workers, pool=pool)
        assert sharded.pairs == serial.pairs
        assert sharded.stats.mat_page_accesses == serial.stats.mat_page_accesses
        assert sharded.stats.cells_computed_p == serial.stats.cells_computed_p
        assert sharded.stats.cells_computed_q == serial.stats.cells_computed_q

    def test_fm_merged_counters_match_disk_counters(self):
        workload, result = run("fm", executor="sharded", workers=3, pool="fork")
        assert (
            result.stats.total_page_accesses
            == workload.disk.counters.page_accesses
        )

    def test_fm_more_workers_than_partitions(self):
        _, serial = run("fm")
        _, sharded = run("fm", executor="sharded", workers=10_000, pool="inline")
        assert sharded.pairs == serial.pairs


class TestReuseHandoff:
    """The shard-boundary REUSE handoff: shard k's final cell buffer seeds
    shard k+1, restoring the serial reuse chain."""

    @pytest.mark.parametrize("pool", ["fork", "inline"])
    def test_handoff_restores_serial_reuse_accounting(self, pool):
        _, serial = run("nm")
        _, sharded = run(
            "nm",
            executor="sharded",
            workers=3,
            pool=pool,
            reuse_handoff="always",
        )
        assert sharded.pairs == serial.pairs
        assert sharded.stats.cells_computed_p == serial.stats.cells_computed_p
        assert sharded.stats.cells_reused_p == serial.stats.cells_reused_p

    def test_handoff_reduces_boundary_recomputation(self):
        """Cache-enabled sharded NM recomputes fewer P cells than the
        independent-shard run — down to exactly serial levels."""
        _, serial = run("nm")
        _, independent = run(
            "nm", executor="sharded", workers=3, pool="inline", reuse_handoff="never"
        )
        _, handoff = run(
            "nm", executor="sharded", workers=3, pool="inline", reuse_handoff="always"
        )
        assert handoff.stats.cells_computed_p == serial.stats.cells_computed_p
        assert independent.stats.cells_computed_p >= handoff.stats.cells_computed_p
        assert independent.pairs == handoff.pairs == serial.pairs

    def test_auto_handoff_applies_to_configured_inline_pool(self):
        """'auto' resolves from the configured pool, not the runtime
        fallback, so results stay machine-independent: inline gets the free
        sequential handoff, fork/auto keep independent parallel shards."""
        _, serial = run("nm")
        _, inline = run("nm", executor="sharded", workers=3, pool="inline")
        assert inline.stats.cells_computed_p == serial.stats.cells_computed_p
        _, forked = run("nm", executor="sharded", workers=3, pool="fork")
        assert forked.stats.cells_computed_p >= serial.stats.cells_computed_p

    def test_handoff_noop_without_reuse(self):
        _, serial = run("nm", reuse_cells=False)
        _, sharded = run(
            "nm",
            executor="sharded",
            workers=3,
            pool="inline",
            reuse_handoff="always",
            reuse_cells=False,
        )
        assert sharded.pairs == serial.pairs
        assert sharded.stats.cells_reused_p == 0


class TestInlineShardIsolation:
    """The fork-less inline fallback must charge the same counters a forked
    execution would: every shard starts from the dispatch-time buffer state
    instead of inheriting the previous shard's warm pages."""

    def fingerprint(self, result):
        stats = result.stats
        return (
            stats.mat_page_accesses,
            stats.join_page_accesses,
            stats.cells_computed_p,
            stats.cells_computed_q,
            stats.cells_reused_p,
            stats.filter_candidates,
            stats.filter_true_hits,
            [(s.page_accesses, s.pairs_reported) for s in stats.progress],
        )

    @pytest.mark.parametrize("algorithm", ["nm", "pm", "fm"])
    def test_inline_counters_identical_to_fork(self, algorithm):
        _, forked = run(
            algorithm,
            executor="sharded",
            workers=3,
            pool="fork",
            reuse_handoff="never",
        )
        _, inline = run(
            algorithm,
            executor="sharded",
            workers=3,
            pool="inline",
            reuse_handoff="never",
        )
        assert inline.pairs == forked.pairs
        assert self.fingerprint(inline) == self.fingerprint(forked)

    def test_chained_handoff_counters_identical_across_pools(self):
        _, forked = run(
            "nm", executor="sharded", workers=3, pool="fork", reuse_handoff="always"
        )
        _, inline = run(
            "nm", executor="sharded", workers=3, pool="inline", reuse_handoff="always"
        )
        assert inline.pairs == forked.pairs
        assert self.fingerprint(inline) == self.fingerprint(forked)

    def test_parent_buffer_state_identical_to_fork(self):
        """A fork parent's buffer never sees worker traffic; after the fix
        the inline fallback leaves the shared buffer in the same
        dispatch-time state instead of whatever the last shard warmed it
        to — so the post-run buffer contents agree across pools."""
        contents = {}
        for pool in ("fork", "inline"):
            workload, _ = run("nm", executor="sharded", workers=3, pool=pool,
                              reuse_handoff="never")
            contents[pool] = workload.disk.buffer.contents()
        assert contents["inline"] == contents["fork"]


class TestReuseBufferRegression:
    def test_reuse_toggle_preserves_pairs_and_reuses_cells(self):
        """REUSE on/off must be invisible in the output while the on-run
        demonstrably serves cells from the buffer."""
        _, with_reuse = run("nm", reuse_cells=True)
        _, without_reuse = run("nm", reuse_cells=False)
        assert with_reuse.pairs == without_reuse.pairs
        assert with_reuse.stats.cells_reused_p > 0
        assert without_reuse.stats.cells_reused_p == 0
        assert (
            with_reuse.stats.cells_computed_p < without_reuse.stats.cells_computed_p
        )

    def test_reuse_works_within_shards(self):
        """Hilbert-contiguous shards keep consecutive leaves spatially close,
        so the REUSE buffer still hits inside every shard (each shard spans
        several leaves on a workload this size)."""
        workload = make_workload(
            uniform_points(400, seed=203), uniform_points(400, seed=204)
        )
        assert workload.tree_q.leaf_count() >= 6
        sharded = default_engine().run(
            "nm",
            workload.tree_p,
            workload.tree_q,
            domain=workload.domain,
            executor="sharded",
            workers=2,
            pool="inline",
            reuse_cells=True,
        )
        assert sharded.stats.cells_reused_p > 0
