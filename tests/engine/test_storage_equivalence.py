"""Engine equivalence across storage backends and executors.

The storage backend decides where page bytes live; it must never change
what a join computes or what the paper's cost model charges.  These tests
run every CIJ variant over the same seeded synthetic dataset on all three
backends and both executors and require byte-identical pair lists and
identical ``JoinStats`` (timings excluded — wall clocks differ, counters
must not).
"""

from __future__ import annotations

import pytest

from repro.datasets.synthetic import clustered_points, uniform_points
from repro.engine import default_engine
from repro.experiments.drivers.common import run_cij
from repro.join.result import CIJResult
from repro.storage.backends import STORAGE_BACKENDS

POINTS_P = uniform_points(240, seed=3)
POINTS_Q = uniform_points(210, seed=11)

#: Backends a node subprocess can reopen (the distributed tier's domain):
#: shared files, shared databases, and the remote page server.
SHARED_BACKENDS = ("file", "sqlite", "remote+file")


def stats_fingerprint(result: CIJResult) -> dict:
    """Every deterministic JoinStats field (CPU timings excluded)."""
    stats = result.stats
    return {
        "algorithm": stats.algorithm,
        "mat_page_accesses": stats.mat_page_accesses,
        "join_page_accesses": stats.join_page_accesses,
        "cells_computed_p": stats.cells_computed_p,
        "cells_computed_q": stats.cells_computed_q,
        "cells_reused_p": stats.cells_reused_p,
        "filter_candidates": stats.filter_candidates,
        "filter_true_hits": stats.filter_true_hits,
        "progress": [(s.page_accesses, s.pairs_reported) for s in stats.progress],
    }


def run_on(backend: str, algorithm: str, **overrides) -> CIJResult:
    return run_cij(algorithm, POINTS_P, POINTS_Q, storage=backend, **overrides)


class TestBackendEquivalence:
    @pytest.mark.parametrize("algorithm", ["nm", "pm", "fm"])
    def test_serial_results_identical_across_backends(self, algorithm):
        reference = run_on("memory", algorithm)
        for backend in STORAGE_BACKENDS[1:]:
            result = run_on(backend, algorithm)
            assert result.pairs == reference.pairs, backend
            assert stats_fingerprint(result) == stats_fingerprint(reference), backend

    @pytest.mark.parametrize("algorithm", ["nm", "pm", "fm"])
    def test_sharded_results_identical_across_backends(self, algorithm):
        reference = run_on("memory", algorithm, executor="sharded", workers=3)
        for backend in STORAGE_BACKENDS[1:]:
            result = run_on(backend, algorithm, executor="sharded", workers=3)
            assert result.pairs == reference.pairs, backend
            assert stats_fingerprint(result) == stats_fingerprint(reference), backend

    @pytest.mark.parametrize("algorithm", ["nm", "pm", "fm"])
    @pytest.mark.parametrize("backend", list(STORAGE_BACKENDS))
    def test_sharded_pairs_match_serial_on_every_backend(self, backend, algorithm):
        serial = run_on(backend, algorithm)
        sharded = run_on(backend, algorithm, executor="sharded", workers=3)
        assert sharded.pairs == serial.pairs

    @pytest.mark.parametrize("backend", list(STORAGE_BACKENDS))
    def test_sharded_fm_stats_identical_to_serial(self, backend):
        """The partitioned traversal *is* the serial coupled traversal, so
        a sharded FM matches the serial JoinStats byte for byte — the
        progress curve included."""
        serial = run_on(backend, "fm")
        sharded = run_on(backend, "fm", executor="sharded", workers=3)
        assert sharded.pairs == serial.pairs
        assert stats_fingerprint(sharded) == stats_fingerprint(serial)

    @pytest.mark.parametrize("backend", list(STORAGE_BACKENDS))
    def test_cache_enabled_sharded_nm_matches_serial_accounting(self, backend):
        """With the shard-boundary REUSE handoff the serial reuse chain is
        restored: every scalar JoinStats counter equals the serial run's
        (progress samples keep the same pair milestones but different
        access offsets, because the executor enumerates the leaves up
        front while the serial run interleaves them)."""
        serial = run_on(backend, "nm")
        sharded = run_on(
            backend, "nm", executor="sharded", workers=3, reuse_handoff="always"
        )
        assert sharded.pairs == serial.pairs
        serial_fp = stats_fingerprint(serial)
        sharded_fp = stats_fingerprint(sharded)
        serial_fp.pop("progress"), sharded_fp.pop("progress")
        assert sharded_fp == serial_fp
        assert [s.pairs_reported for s in sharded.stats.progress] == [
            s.pairs_reported for s in serial.stats.progress
        ]

    def test_results_agree_with_brute_oracle(self):
        oracle = set(run_on("memory", "brute").pairs)
        for backend in STORAGE_BACKENDS[1:]:
            for algorithm in ("nm", "pm", "fm"):
                assert set(run_on(backend, algorithm).pairs) == oracle, algorithm


class TestDistributedEquivalence:
    """The distributed tier must be invisible in the merged output.

    ``executor="distributed"`` runs the same work units on node
    subprocesses that reopen the shared on-disk backend read-only; the
    coordinator merges results in unit index order, so pairs, ``JoinStats``
    and the deterministic counters must be byte-identical to the serial
    run on every shared backend the tier supports — the remote page server
    included — and with the REUSE-handoff pipeline, which the distributed
    executor chains by default.
    """

    @pytest.mark.parametrize("backend", SHARED_BACKENDS)
    def test_distributed_fm_stats_identical_to_serial(self, backend):
        """FM partitions carry no cross-unit state, so the full
        fingerprint — progress curve included — matches serial."""
        serial = run_on(backend, "fm")
        distributed = run_on(backend, "fm", executor="distributed", nodes=2)
        assert distributed.pairs == serial.pairs
        assert stats_fingerprint(distributed) == stats_fingerprint(serial)

    @pytest.mark.parametrize("algorithm", ["nm", "pm"])
    @pytest.mark.parametrize("backend", SHARED_BACKENDS)
    def test_distributed_scalar_counters_identical_to_serial(
        self, backend, algorithm
    ):
        """Default distributed NM/PM matches every scalar serial counter.

        For NM that relies on ``reuse_handoff="auto"`` resolving to the
        chained pipeline on the distributed executor, which restores the
        serial recomputation counts exactly.  Progress samples keep the
        serial pair milestones at different access offsets (the executor
        enumerates the leaf units up front; serial interleaves them).
        """
        serial = run_on(backend, algorithm)
        distributed = run_on(backend, algorithm, executor="distributed", nodes=2)
        assert distributed.pairs == serial.pairs
        serial_fp = stats_fingerprint(serial)
        distributed_fp = stats_fingerprint(distributed)
        serial_fp.pop("progress"), distributed_fp.pop("progress")
        assert distributed_fp == serial_fp
        assert [s.pairs_reported for s in distributed.stats.progress] == [
            s.pairs_reported for s in serial.stats.progress
        ]

    @pytest.mark.parametrize("backend", SHARED_BACKENDS)
    def test_distributed_nm_matches_sharded_pipeline_bytes(self, backend):
        """Node subprocesses and the inline pool run the same chained unit
        pipeline, so the full merged fingerprint agrees between them."""
        sharded = run_on(
            backend,
            "nm",
            executor="sharded",
            workers=2,
            pool="inline",
            reuse_handoff="always",
        )
        distributed = run_on(backend, "nm", executor="distributed", nodes=2)
        assert distributed.pairs == sharded.pairs
        assert stats_fingerprint(distributed) == stats_fingerprint(sharded)

    def test_distributed_rejects_memory_backend(self):
        with pytest.raises(ValueError, match="shared backend"):
            run_on("memory", "nm", executor="distributed", nodes=2)


class TestRemoteStaging:
    """Prefetch over the wire: stage hints ride along with assignments.

    Over the remote page server the distributed executor piggybacks the
    coordinator's pending-unit lookahead on every assignment; nodes plan
    the upcoming units' opening pages themselves and issue one batched
    fetch that overlaps the current unit's computation.  Staging is
    physical-transport-only — it must be visible in ``storage_stats()``
    and invisible in the logical output.
    """

    def test_staging_visible_in_storage_stats_and_logically_invisible(self):
        serial = run_on("remote+file", "nm")
        distributed = run_on("remote+file", "nm", executor="distributed", nodes=2)
        assert distributed.pairs == serial.pairs
        serial_fp = stats_fingerprint(serial)
        distributed_fp = stats_fingerprint(distributed)
        serial_fp.pop("progress"), distributed_fp.pop("progress")
        assert distributed_fp == serial_fp
        # The nodes really staged pages ahead of demand over the wire,
        # and their absorbed snapshots expose the wins.
        io = distributed.storage
        assert io.pages_prefetched > 0
        assert io.prefetch_hits > 0
        assert io.extra["worker_snapshots"] >= 1
        assert io.extra["worker_bytes_prefetched"] > 0
        # Serial never stages (no assignments to piggyback on).
        assert serial.storage.pages_prefetched == 0

    def test_local_shared_backends_do_not_stage_by_default(self):
        """Stage-hints auto: on for remote transports only — local file/
        sqlite nodes read at memory-bus speed and skip the machinery."""
        distributed = run_on("file", "nm", executor="distributed", nodes=2)
        assert distributed.storage.pages_prefetched == 0

    def test_stage_hints_opt_in_on_local_backend(self):
        from repro.engine.config import DistributedConfig

        serial = run_on("file", "nm")
        staged = run_on(
            "file",
            "nm",
            executor="distributed",
            distributed=DistributedConfig(nodes=2, stage_hints=True),
        )
        assert staged.pairs == serial.pairs
        assert staged.storage.pages_prefetched > 0

    def test_server_killed_mid_run_fails_loudly(self):
        """Losing the page server must surface as a loud error — from the
        parent's own connection or as exhausted node failures — never as a
        silently wrong (or empty) result."""
        from repro.datasets.workload import WorkloadConfig, build_workload
        from repro.storage.pageserver import PageServerError, spawn_page_server

        server = spawn_page_server(backing="file")
        try:
            config = WorkloadConfig(
                storage="remote",
                storage_path=f"{server.host}:{server.port}",
            )
            with build_workload(
                config, points_p=POINTS_P[:80], points_q=POINTS_Q[:80]
            ) as workload:
                server.process.kill()
                server.process.wait(timeout=10)
                with pytest.raises((PageServerError, RuntimeError)):
                    default_engine().run(
                        "nm",
                        workload.tree_p,
                        workload.tree_q,
                        domain=workload.domain,
                        executor="distributed",
                        nodes=2,
                    )
        finally:
            server.stop()


class TestSkewedWorkloadScheduling:
    """Pull scheduling balances a skewed workload without changing bytes.

    A clustered ``Q`` concentrates most points — and most join work — in a
    few Hilbert-adjacent leaves, the workload where static contiguous
    chunking leaves one worker with nearly all the expensive units while
    the rest idle.  The coordinator hands units out on demand instead:
    every worker keeps pulling until the queue is dry, so no worker can be
    left with the whole queue, and the unit-order merge keeps the output
    byte-identical to serial regardless of who executed what.
    """

    #: Three dense clusters + uniform background: leaf costs vary wildly.
    SKEWED_Q = clustered_points(360, clusters=3, seed=5)

    def test_distributed_pull_balances_skewed_units(self):
        serial = run_cij("pm", POINTS_P, self.SKEWED_Q, storage="file")
        distributed = run_cij(
            "pm",
            POINTS_P,
            self.SKEWED_Q,
            storage="file",
            executor="distributed",
            nodes=2,
        )
        trace = default_engine().last_executor.last_assignments

        # Merged output: byte-identical to serial despite dynamic
        # assignment (scalars and pair milestones; access offsets shift
        # because the executor enumerates the leaf units up front).
        assert distributed.pairs == serial.pairs
        serial_fp = stats_fingerprint(serial)
        distributed_fp = stats_fingerprint(distributed)
        serial_fp.pop("progress"), distributed_fp.pop("progress")
        assert distributed_fp == serial_fp

        # Scheduling: both nodes really pulled work (each drive thread
        # pulls its first unit before any result returns), no node was
        # handed the entire queue, and together they covered every unit
        # exactly once.
        assert sorted(trace) == ["node-0", "node-1"]
        counts = {worker: len(indices) for worker, indices in trace.items()}
        total = sum(counts.values())
        assert total >= 4
        assert min(counts.values()) >= 1
        assert max(counts.values()) < total
        assert sorted(i for indices in trace.values() for i in indices) == list(
            range(total)
        )

    def test_sharded_fork_pull_balances_skewed_units(self):
        serial = run_cij("pm", POINTS_P, self.SKEWED_Q, storage="memory")
        sharded = run_cij(
            "pm",
            POINTS_P,
            self.SKEWED_Q,
            storage="memory",
            executor="sharded",
            workers=2,
        )
        trace = default_engine().last_executor.last_assignments
        assert sharded.pairs == serial.pairs

        counts = {worker: len(indices) for worker, indices in trace.items()}
        total = sum(counts.values())
        assert sorted(i for indices in trace.values() for i in indices) == list(
            range(total)
        )
        if len(counts) >= 2:  # pool="auto" may have fallen back to inline
            assert min(counts.values()) >= 1
            assert max(counts.values()) < total


class TestPrefetchEquivalence:
    """Overlapped I/O must be invisible to the paper's cost model.

    Whatever the prefetch mode, the emitted pair list and every logical
    ``JoinStats`` counter (page accesses, cells, candidates, the full
    progress curve) must be byte-identical to ``prefetch="off"`` on every
    backend — prefetching may only change the *physical* stall/overlap
    accounting of ``storage_stats()``.
    """

    @pytest.mark.parametrize("algorithm", ["nm", "pm", "fm"])
    @pytest.mark.parametrize("backend", list(STORAGE_BACKENDS))
    def test_next_batch_serial_identical_to_off(self, backend, algorithm):
        off = run_on(backend, algorithm)
        on = run_on(backend, algorithm, prefetch="next_batch")
        assert on.pairs == off.pairs
        assert stats_fingerprint(on) == stats_fingerprint(off)
        # The pipeline genuinely ran: pages were issued and consumed.
        assert on.storage.pages_prefetched > 0
        assert on.storage.prefetch_hits > 0
        assert off.storage.pages_prefetched == 0

    @pytest.mark.parametrize("algorithm", ["nm", "pm", "fm"])
    @pytest.mark.parametrize("backend", list(STORAGE_BACKENDS))
    def test_next_shard_identical_to_sharded_off(self, backend, algorithm):
        # The inline pool shares the parent's disk, so shard-boundary
        # staging is observable and the counters stay comparable.
        sharded = dict(executor="sharded", workers=3, pool="inline")
        off = run_on(backend, algorithm, **sharded)
        on = run_on(backend, algorithm, prefetch="next_shard", **sharded)
        assert on.pairs == off.pairs
        assert stats_fingerprint(on) == stats_fingerprint(off)
        assert on.storage.pages_prefetched > 0
        assert on.storage.prefetch_hits > 0

    @pytest.mark.parametrize("backend", list(STORAGE_BACKENDS))
    def test_next_batch_inside_shards_identical(self, backend):
        sharded = dict(executor="sharded", workers=3, pool="inline")
        off = run_on(backend, "nm", **sharded)
        on = run_on(backend, "nm", prefetch="next_batch", **sharded)
        assert on.pairs == off.pairs
        assert stats_fingerprint(on) == stats_fingerprint(off)

    def test_all_modes_agree_across_backends(self):
        reference = run_on("memory", "nm")
        for backend in STORAGE_BACKENDS:
            for overrides in (
                dict(prefetch="next_batch"),
                dict(
                    prefetch="next_shard",
                    executor="sharded",
                    workers=3,
                    pool="inline",
                ),
            ):
                result = run_on(backend, "nm", **overrides)
                assert result.pairs == reference.pairs, (backend, overrides)

    def test_next_shard_requires_sharded_executor(self):
        with pytest.raises(ValueError, match="next_shard"):
            run_on("memory", "nm", prefetch="next_shard")

    def test_next_shard_rejects_fork_pool(self):
        # Staged pages live in the dispatching process; forked workers
        # could never consume them, so the contradiction fails loudly
        # instead of silently prefetching nothing.
        with pytest.raises(ValueError, match="fork"):
            run_on(
                "memory",
                "nm",
                prefetch="next_shard",
                executor="sharded",
                workers=3,
                pool="fork",
            )

    def test_next_shard_auto_pool_stages_inline(self):
        """The default pool ('auto') must not turn next_shard into a
        silent no-op: it resolves to the inline path and really stages.
        The baseline keeps pool='auto' too (fork) — PR 3's buffer rewind
        guarantees inline and forked shards charge identical counters."""
        off = run_on("memory", "nm", executor="sharded", workers=3)
        auto = run_on("memory", "nm", prefetch="next_shard", executor="sharded", workers=3)
        assert auto.pairs == off.pairs
        assert stats_fingerprint(auto) == stats_fingerprint(off)
        assert auto.storage.pages_prefetched > 0
        assert auto.storage.prefetch_hits > 0

    def test_dynamic_session_rejects_prefetch(self):
        from repro.datasets.workload import WorkloadConfig, build_workload
        from repro.engine import JoinEngine

        engine = JoinEngine()
        with build_workload(
            WorkloadConfig(), points_p=POINTS_P[:50], points_q=POINTS_Q[:50]
        ) as workload:
            with pytest.raises(ValueError, match="prefetch"):
                engine.open_dynamic(
                    workload.tree_p, workload.tree_q, prefetch="next_batch"
                )


class TestFileBackedPaging:
    """Acceptance scenario: a file-backed NM-CIJ whose working set exceeds
    the LRU buffer pages real bytes off disk yet reports the same pairs
    and logical I/O as the in-memory run."""

    def test_dataset_larger_than_buffer_pages_bytes_off_disk(self, tmp_path):
        from repro.datasets.workload import WorkloadConfig, build_workload

        results = {}
        for backend in ("memory", "file"):
            config = WorkloadConfig(
                buffer_fraction=0.02,  # the paper's default: a few pages
                storage=backend,
                storage_path=(
                    str(tmp_path / "paging.bin") if backend == "file" else None
                ),
            )
            with build_workload(
                config, points_p=POINTS_P, points_q=POINTS_Q
            ) as workload:
                assert workload.disk.page_count() > workload.disk.buffer.capacity
                result = default_engine().run(
                    "nm", workload.tree_p, workload.tree_q, domain=workload.domain
                )
                counters = workload.disk.counters
                results[backend] = {
                    "pairs": result.pairs,
                    "logical_reads": counters.logical_reads,
                    "physical_reads": counters.reads,
                    "buffer_hits": counters.buffer_hits,
                    "bytes_read": workload.disk.storage_stats().bytes_read,
                }

        memory, file_backed = results["memory"], results["file"]
        assert file_backed["pairs"] == memory["pairs"]
        assert file_backed["logical_reads"] == memory["logical_reads"]
        assert file_backed["physical_reads"] == memory["physical_reads"]
        assert file_backed["buffer_hits"] == memory["buffer_hits"]
        # The in-memory run moves no bytes; the file-backed run re-reads a
        # page's bytes for every buffer miss.
        assert memory["bytes_read"] == 0
        assert file_backed["bytes_read"] > 0
        assert file_backed["physical_reads"] > 0
