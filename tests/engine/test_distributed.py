"""The distributed execution tier: units, coordinator, wire, nodes.

Covers the three planes the tier is built from —

* the :class:`WorkUnit` descriptors every sharding algorithm enumerates
  (serializable, ordered, wire-round-trippable);
* the pull-based :class:`UnitCoordinator` (on-demand handout = work
  stealing under skew, carry pipeline in chained mode, ordered merge);
* the node plane (:mod:`repro.engine.node`): wire codecs that round-trip
  statistics and the REUSE carry bit-for-bit, and real node subprocesses
  driven through the NDJSON protocol, including a forced steal where a
  deliberately slowed node cedes the queue to the fast one.
"""

from __future__ import annotations

import threading

import pytest

from repro.datasets.synthetic import uniform_points
from repro.engine import (
    Assignment,
    DistributedExecutor,
    EngineConfig,
    UnitCoordinator,
    WorkUnit,
    default_algorithms,
)
from repro.engine import node as node_plane
from repro.engine.algorithms import JoinContext
from repro.experiments.drivers.common import fresh_workload
from repro.geometry import ConvexPolygon, Point
from repro.join.conditional_filter import FilterStats
from repro.join.result import JoinStats
from repro.storage.counters import IOCounters
from repro.voronoi import VoronoiCell

POINTS_P = uniform_points(150, seed=3)
POINTS_Q = uniform_points(140, seed=11)


def make_units(count: int, needs_carry: bool = False):
    return [
        WorkUnit(algorithm="nm", index=i, payload=(100 + i,), needs_carry=needs_carry)
        for i in range(count)
    ]


class FakeResult:
    """Just enough of a ShardResult for coordinator-level tests."""

    def __init__(self, index: int, carry=None):
        self.index = index
        self.carry = carry


class TestWorkUnit:
    def test_wire_round_trip(self):
        unit = WorkUnit(
            algorithm="fm",
            index=3,
            payload=((4, 9), (6, 12)),
            needs_carry=False,
        )
        assert WorkUnit.from_wire(unit.to_wire()) == unit

    def test_wire_round_trip_scalar_payload(self):
        unit = WorkUnit(algorithm="nm", index=0, payload=(17,), needs_carry=True)
        restored = WorkUnit.from_wire(unit.to_wire())
        assert restored == unit
        assert restored.payload == (17,)

    def test_units_order_by_index(self):
        units = make_units(5)
        assert sorted(units[::-1]) == units


class TestUnitCoordinator:
    def test_pull_order_and_trace(self):
        coordinator = UnitCoordinator(make_units(3))
        first = coordinator.next_assignment("a")
        second = coordinator.next_assignment("b")
        third = coordinator.next_assignment("a")
        assert (first.index, second.index, third.index) == (0, 1, 2)
        for assignment in (first, second, third):
            coordinator.record_result(assignment.index, FakeResult(assignment.index))
        # Every result recorded -> the queue reports completion, not a block.
        assert coordinator.next_assignment("b") is None
        assert coordinator.assignments == {"a": [0, 2], "b": [1]}

    def test_merge_requires_every_result(self):
        coordinator = UnitCoordinator(make_units(2))
        coordinator.next_assignment("a")
        coordinator.record_result(0, FakeResult(0))
        with pytest.raises(RuntimeError, match="missing results"):
            coordinator.results_in_order()

    def test_results_ordered_by_unit_not_by_arrival(self):
        coordinator = UnitCoordinator(make_units(3))
        for _ in range(3):
            coordinator.next_assignment("a")
        for index in (2, 0, 1):  # out-of-order arrival
            coordinator.record_result(index, FakeResult(index))
        assert [r.index for r in coordinator.results_in_order()] == [0, 1, 2]

    def test_chained_mode_is_a_pipeline(self):
        coordinator = UnitCoordinator(make_units(3, needs_carry=True), chained=True)
        first = coordinator.next_assignment("a")
        assert first.carry is None

        handed = []

        def second_puller():
            handed.append(coordinator.next_assignment("b"))

        thread = threading.Thread(target=second_puller)
        thread.start()
        thread.join(timeout=0.2)
        # Unit 1 must not be handed out while unit 0 is outstanding.
        assert thread.is_alive()

        coordinator.record_result(0, FakeResult(0, carry={"cells": 7}))
        thread.join(timeout=5)
        assert not thread.is_alive()
        # The pipeline seeds the successor with the predecessor's carry.
        assert handed[0].index == 1
        assert handed[0].carry == {"cells": 7}

    def test_abort_unblocks_chained_waiters(self):
        coordinator = UnitCoordinator(make_units(2, needs_carry=True), chained=True)
        coordinator.next_assignment("a")  # leaves the pipeline outstanding
        handed = []

        def blocked_puller():
            handed.append(coordinator.next_assignment("b"))

        thread = threading.Thread(target=blocked_puller)
        thread.start()
        coordinator.abort(RuntimeError("node died"))
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert handed == [None]
        assert isinstance(coordinator.error, RuntimeError)

    def test_work_stealing_under_a_stuck_worker(self):
        """A worker that stops pulling simply stops receiving units — the
        others drain the whole queue without any stealing protocol."""
        coordinator = UnitCoordinator(make_units(6))
        stuck = coordinator.next_assignment("stuck")
        assert stuck.index == 0
        drained = []
        while len(drained) < 5:
            assignment = coordinator.next_assignment("fast")
            drained.append(assignment.index)
            coordinator.record_result(assignment.index, FakeResult(assignment.index))
        assert drained == [1, 2, 3, 4, 5]
        assert coordinator.assignments == {"stuck": [0], "fast": drained}
        # The stuck worker's unit is still leased, not lost: the queue is
        # not done, and recording it completes the run.
        assert not coordinator.done
        assert coordinator.outstanding() == 1
        coordinator.record_result(0, FakeResult(0))
        assert coordinator.next_assignment("fast") is None

    def test_release_returns_lease_to_the_queue(self):
        coordinator = UnitCoordinator(make_units(2), max_attempts=2)
        first = coordinator.next_assignment("dying")
        assert (first.index, first.attempt) == (0, 1)
        coordinator.release(0, error=RuntimeError("node died"))
        retry = coordinator.next_assignment("survivor")
        # The released unit comes back before unit 1 (index order) and its
        # attempt counter shows the retry.
        assert (retry.index, retry.attempt) == (0, 2)
        assert coordinator.reassignments == {0: 1}

    def test_release_blocked_puller_gets_the_returned_unit(self):
        """A puller blocked on an empty-but-leased queue wakes up when the
        lease is released — the elasticity deadlock this layer prevents."""
        coordinator = UnitCoordinator(make_units(1), max_attempts=2)
        coordinator.next_assignment("dying")
        handed = []

        def blocked_puller():
            handed.append(coordinator.next_assignment("survivor"))

        thread = threading.Thread(target=blocked_puller)
        thread.start()
        thread.join(timeout=0.2)
        assert thread.is_alive()  # queue empty, lease outstanding -> blocks
        coordinator.release(0, error=RuntimeError("node died"))
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert handed[0].index == 0

    def test_release_past_max_attempts_aborts(self):
        coordinator = UnitCoordinator(make_units(1), max_attempts=2)
        coordinator.next_assignment("a")
        coordinator.release(0, error=RuntimeError("first failure"))
        coordinator.next_assignment("b")
        coordinator.release(0, error=RuntimeError("second failure"))
        assert coordinator.error is not None
        assert "max_attempts" in str(coordinator.error)
        assert coordinator.next_assignment("c") is None

    def test_duplicate_result_is_idempotently_dropped(self):
        coordinator = UnitCoordinator(make_units(1), max_attempts=3)
        coordinator.next_assignment("slow")
        coordinator.release(0, error=RuntimeError("presumed dead"))
        coordinator.next_assignment("fast")
        winner = FakeResult(0)
        coordinator.record_result(0, winner)
        coordinator.record_result(0, FakeResult(0))  # the late duplicate
        assert coordinator.results_in_order() == [winner]

    def test_release_after_result_is_a_no_op(self):
        coordinator = UnitCoordinator(make_units(1), max_attempts=1)
        coordinator.next_assignment("a")
        coordinator.record_result(0, FakeResult(0))
        # A stale release (executor noticed the death late) must not
        # resurrect or abort an already-completed unit.
        coordinator.release(0, error=RuntimeError("stale"))
        assert coordinator.error is None
        assert coordinator.next_assignment("b") is None

    def test_chained_release_rewinds_to_predecessor_carry(self):
        coordinator = UnitCoordinator(
            make_units(3, needs_carry=True), chained=True, max_attempts=2
        )
        first = coordinator.next_assignment("a")
        coordinator.record_result(0, FakeResult(0, carry={"cells": 1}))
        second = coordinator.next_assignment("a")
        assert (second.index, second.carry) == (1, {"cells": 1})
        # Unit 1's worker dies mid-compute; the retry must re-run from the
        # recorded carry of unit 0, not from whatever was live.
        coordinator.release(1, error=RuntimeError("node died"))
        retry = coordinator.next_assignment("b")
        assert (retry.index, retry.attempt) == (1, 2)
        assert retry.carry == {"cells": 1}
        assert first.carry is None

    def test_chained_release_of_first_unit_rewinds_to_none(self):
        coordinator = UnitCoordinator(
            make_units(2, needs_carry=True), chained=True, max_attempts=2
        )
        coordinator.next_assignment("a")
        coordinator.release(0, error=RuntimeError("node died"))
        retry = coordinator.next_assignment("b")
        assert (retry.index, retry.carry) == (0, None)

    def test_peek_pending_is_non_consuming(self):
        coordinator = UnitCoordinator(make_units(4))
        coordinator.next_assignment("a")
        peeked = coordinator.peek_pending(2)
        assert [u.index for u in peeked] == [1, 2]
        assert coordinator.next_assignment("a").index == 1


def triangle_cell(oid: int) -> VoronoiCell:
    polygon = ConvexPolygon(
        [Point(0.125, 0.25), Point(10.5, 0.75), Point(5.0625, 9.875)]
    )
    return VoronoiCell(oid, Point(5.03125, 3.4375), polygon)


class TestWireCodecs:
    def test_stats_round_trip(self):
        stats = JoinStats(algorithm="NM-CIJ")
        stats.join_page_accesses = 41
        stats.cells_computed_p = 17
        stats.cells_reused_p = 5
        stats.cells_cached_p = 2
        stats.filter_candidates = 99
        stats.filter_true_hits = 88
        stats.record_progress(10, 100)
        stats.record_progress(20, 250)
        restored = node_plane.stats_from_wire(node_plane.stats_to_wire(stats))
        assert restored == stats

    def test_counters_round_trip(self):
        counters = IOCounters()
        counters.reads = 12
        counters.writes = 3
        counters.logical_reads = 40
        counters.buffer_hits = 28
        counters.by_tag = {"tree_p": 7, "tree_q": 5}
        restored = node_plane.counters_from_wire(node_plane.counters_to_wire(counters))
        assert restored.reads == counters.reads
        assert restored.writes == counters.writes
        assert restored.logical_reads == counters.logical_reads
        assert restored.buffer_hits == counters.buffer_hits
        assert restored.by_tag == counters.by_tag

    def test_carry_round_trip_bit_for_bit(self):
        carry = {4: triangle_cell(4), 9: triangle_cell(9)}
        restored = node_plane.carry_from_wire(node_plane.carry_to_wire(carry))
        assert sorted(restored) == [4, 9]
        for oid, cell in carry.items():
            twin = restored[oid]
            assert twin.oid == oid
            assert (twin.site.x, twin.site.y) == (cell.site.x, cell.site.y)
            assert [(v.x, v.y) for v in twin.polygon.vertices] == [
                (v.x, v.y) for v in cell.polygon.vertices
            ]

    def test_none_carry_round_trips(self):
        assert node_plane.carry_to_wire(None) is None
        assert node_plane.carry_from_wire(None) is None


def execute_distributed(executor: DistributedExecutor, workload, algorithm="nm"):
    """Drive the executor directly (as the engine would) on a workload."""
    from repro.voronoi.single import CellComputationStats

    algo = {a.name: a for a in default_algorithms()}[algorithm]
    config = EngineConfig(
        executor="distributed",
        nodes=executor.nodes,
        storage=workload.disk.storage_backend,
    )
    ctx = JoinContext(
        tree_p=workload.tree_p,
        tree_q=workload.tree_q,
        domain=workload.domain,
        config=config,
        stats=JoinStats(algorithm=algo.display_name),
        cell_stats=CellComputationStats(),
        filter_stats=FilterStats(),
        start_counters=workload.disk.counters.snapshot(),
    )
    algo.prepare(ctx)  # a no-op for NM; keeps the call shape honest
    pairs = executor.execute(algo, ctx)
    return pairs, ctx


class TestDistributedExecutor:
    def test_forced_steal_with_a_slow_node(self):
        """Slowing node-0 makes node-1 drain the queue — the pull loop *is*
        the work-stealing behaviour — while the merged pairs stay identical
        to a run with no delay at all."""
        workload = fresh_workload(POINTS_P, POINTS_Q, storage="file")
        try:
            fair = DistributedExecutor(nodes=2, reuse_handoff="never")
            fair_pairs, _ = execute_distributed(fair, workload)
        finally:
            workload.close()

        workload = fresh_workload(POINTS_P, POINTS_Q, storage="file")
        try:
            skewed = DistributedExecutor(
                nodes=2, reuse_handoff="never", node_delays=[0.25, 0.0]
            )
            skewed_pairs, _ = execute_distributed(skewed, workload)
        finally:
            workload.close()

        assert skewed_pairs == fair_pairs
        counts = {w: len(ids) for w, ids in skewed.last_assignments.items()}
        assert set(counts) == {"node-0", "node-1"}
        # Every node pulls its first unit immediately; after that the
        # sleeping node keeps losing the race for the queue.
        assert counts["node-1"] > counts["node-0"]
        total = sum(counts.values())
        assert sorted(
            i for ids in skewed.last_assignments.values() for i in ids
        ) == list(range(total))

    def test_single_node_runs_whole_queue(self):
        workload = fresh_workload(POINTS_P, POINTS_Q, storage="sqlite")
        try:
            executor = DistributedExecutor(nodes=1)
            pairs, ctx = execute_distributed(executor, workload)
        finally:
            workload.close()
        assert pairs
        assert list(executor.last_assignments) == ["node-0"]
        # Node counters were absorbed into the parent's disk accounting.
        assert ctx.stats is not None

    def test_more_nodes_than_units_spawns_only_needed(self):
        workload = fresh_workload(POINTS_P[:30], POINTS_Q[:30], storage="file")
        try:
            executor = DistributedExecutor(nodes=16)
            pairs, _ = execute_distributed(executor, workload)
        finally:
            workload.close()
        assert pairs
        assert len(executor.last_assignments) <= 16

    def test_rejects_brute(self):
        workload = fresh_workload(POINTS_P[:30], POINTS_Q[:30], storage="file")
        try:
            with pytest.raises(ValueError, match="distributed"):
                execute_distributed(
                    DistributedExecutor(nodes=2), workload, algorithm="brute"
                )
        finally:
            workload.close()

    def test_rejects_memory_backend(self):
        workload = fresh_workload(POINTS_P[:30], POINTS_Q[:30], storage="memory")
        try:
            with pytest.raises(ValueError, match="shared backend"):
                execute_distributed(DistributedExecutor(nodes=2), workload)
        finally:
            workload.close()

    def test_nonpositive_nodes_rejected(self):
        with pytest.raises(ValueError, match="nodes"):
            DistributedExecutor(nodes=0)
        with pytest.raises(ValueError, match="nodes"):
            EngineConfig(nodes=0)

    def test_distributed_config_rejects_prefetch(self):
        with pytest.raises(ValueError, match="prefetch"):
            EngineConfig(executor="distributed", prefetch="next_batch")


class TestNodeProtocol:
    def test_bad_init_spec_surfaces_as_runtime_error(self):
        spec = {"version": 999, "algorithm": "nm"}
        node = node_plane.NodeProcess(worker_id="node-x", spec=spec)
        try:
            with pytest.raises(RuntimeError):
                node.wait_ready()
        finally:
            node.shutdown()

    def test_node_executes_units_and_round_trips_results(self):
        workload = fresh_workload(POINTS_P[:60], POINTS_Q[:60], storage="file")
        try:
            algo = {a.name: a for a in default_algorithms()}["nm"]
            from repro.voronoi.single import CellComputationStats

            config = EngineConfig(executor="distributed", nodes=1, storage="file")
            ctx = JoinContext(
                tree_p=workload.tree_p,
                tree_q=workload.tree_q,
                domain=workload.domain,
                config=config,
                stats=JoinStats(algorithm=algo.display_name),
                cell_stats=CellComputationStats(),
                filter_stats=FilterStats(),
                start_counters=workload.disk.counters.snapshot(),
            )
            units = algo.work_units(ctx)
            assert units, "workload produced no leaf units"
            spec = node_plane.node_init_spec(algo, ctx, handoff=True)
            node = node_plane.NodeProcess(worker_id="node-t", spec=spec)
            try:
                node.wait_ready()
                carry = None
                results = []
                for unit in units:
                    result = node.run_unit(
                        Assignment(index=unit.index, unit=unit, carry=carry)
                    )
                    carry = result.carry
                    results.append(result)
            finally:
                node.shutdown()
            merged = [pair for result in results for pair in result.pairs]
            serial_ctx_pairs = algo.run_join(ctx)
            assert merged == serial_ctx_pairs
        finally:
            workload.close()
