"""DistributedConfig: the nested distributed knobs and their legacy shims.

PR 10 collapsed the flat EngineConfig distributed knobs (``nodes``,
``node_timeout``, ``node_retries``, ``node_min_ready``, ``fault_plan``,
``cell_cache`` stays engine-wide) into a nested :class:`DistributedConfig`.
The flat kwargs and CLI flags keep working as deprecation shims; these
tests pin that contract so a future cleanup cannot silently break callers.
"""

from __future__ import annotations

import pytest

from repro.engine.config import DistributedConfig, EngineConfig


class TestNestedDefaults:
    def test_defaults_match_legacy_flat_defaults(self):
        config = EngineConfig()
        dist = config.distributed
        assert dist == DistributedConfig()
        assert (dist.nodes, dist.node_timeout, dist.node_retries) == (2, 60.0, 2)
        assert dist.min_ready is None
        assert dist.fault_plan is None
        assert dist.stage_hints is None

    def test_validation_lives_on_the_nested_config(self):
        with pytest.raises(ValueError, match="nodes must be at least 1"):
            DistributedConfig(nodes=0)
        with pytest.raises(ValueError, match="node_timeout must be positive"):
            DistributedConfig(node_timeout=0)
        with pytest.raises(ValueError, match="node_retries must be >= 0"):
            DistributedConfig(node_retries=-1)
        with pytest.raises(ValueError, match="node_min_ready must be at least 1"):
            DistributedConfig(min_ready=0)


class TestLegacyShims:
    """Flat kwargs still work — they populate the nested config."""

    def test_flat_kwargs_build_the_nested_config(self):
        config = EngineConfig(
            executor="distributed",
            nodes=5,
            node_timeout=9.5,
            node_retries=0,
            node_min_ready=3,
            fault_plan="crash@node-1:after=2",
        )
        dist = config.distributed
        assert dist.nodes == 5
        assert dist.node_timeout == 9.5
        assert dist.node_retries == 0
        assert dist.min_ready == 3
        assert dist.fault_plan == "crash@node-1:after=2"

    def test_flat_validation_still_fails_loudly(self):
        with pytest.raises(ValueError, match="nodes must be at least 1"):
            EngineConfig(nodes=0)
        with pytest.raises(ValueError, match="node_timeout must be positive"):
            EngineConfig(node_timeout=-1)

    def test_nested_config_syncs_the_flat_mirrors(self):
        config = EngineConfig(distributed=DistributedConfig(nodes=7, node_retries=1))
        assert config.nodes == 7
        assert config.node_retries == 1

    def test_conflicting_flat_and_nested_values_raise(self):
        with pytest.raises(ValueError, match="conflicting distributed settings"):
            EngineConfig(nodes=3, distributed=DistributedConfig(nodes=4))

    def test_agreeing_flat_and_nested_values_are_fine(self):
        config = EngineConfig(nodes=4, distributed=DistributedConfig(nodes=4))
        assert config.distributed.nodes == 4

    def test_replace_with_flat_override_keeps_nested_extras(self):
        base = EngineConfig(
            distributed=DistributedConfig(nodes=2, stage_hints=True)
        )
        bumped = base.replace(nodes=6)
        assert bumped.distributed.nodes == 6
        assert bumped.distributed.stage_hints is True
        assert bumped.nodes == 6

    def test_replace_with_nested_override_wins(self):
        base = EngineConfig(nodes=3)
        swapped = base.replace(distributed=DistributedConfig(nodes=8))
        assert swapped.nodes == 8
        assert swapped.distributed.nodes == 8


class TestExecutorWiring:
    def test_executor_for_reads_the_nested_config(self):
        from repro.engine.executors import executor_for

        executor = executor_for(
            EngineConfig(
                executor="distributed",
                distributed=DistributedConfig(
                    nodes=4, node_timeout=12.0, node_retries=1, stage_hints=True
                ),
            )
        )
        assert executor.nodes == 4
        assert executor.node_timeout == 12.0
        assert executor.node_retries == 1
        assert executor.stage_hints is True


class TestWorkerSnapshotExactlyOnce:
    """Cumulative worker transport snapshots are absorbed exactly once.

    Workers ship *cumulative* ``storage_stats()`` snapshots with a per-
    worker sequence number; the executor keeps only the highest-seq
    snapshot per worker, so retried units and quarantined nodes cannot
    double-count bytes.
    """

    @staticmethod
    def _result(worker, seq, bytes_read):
        from repro.engine.executors import ShardResult
        from repro.join.conditional_filter import FilterStats
        from repro.join.result import JoinStats
        from repro.storage.counters import IOCounters
        from repro.voronoi.single import CellComputationStats

        return ShardResult(
            index=0,
            pairs=[],
            stats=JoinStats(algorithm="nm"),
            cell_stats=CellComputationStats(),
            filter_stats=FilterStats(),
            counters=IOCounters(),
            storage={
                "worker": worker,
                "seq": seq,
                "stats": {"bytes_read": bytes_read, "pages": 5},
            },
        )

    def test_latest_cumulative_snapshot_wins(self):
        import threading

        from repro.engine.executors import collect_worker_snapshot

        snapshots, lock = {}, threading.Lock()
        # node-0 serves three units; each snapshot is cumulative.
        for seq, total in ((1, 100), (2, 250), (3, 260)):
            collect_worker_snapshot(snapshots, lock, self._result("node-0", seq, total))
        # A stale retry result delivered late must not regress the total.
        collect_worker_snapshot(snapshots, lock, self._result("node-0", 2, 250))
        collect_worker_snapshot(snapshots, lock, self._result("node-1", 1, 40))
        assert snapshots["node-0"] == (3, {"bytes_read": 260, "pages": 5})
        assert snapshots["node-1"] == (1, {"bytes_read": 40, "pages": 5})

    def test_absorb_accumulates_counters_but_never_gauges(self):
        from repro.storage.disk import DiskManager

        disk = DiskManager(buffer_pages=2)
        try:
            disk.absorb_worker_storage(
                [
                    {"bytes_read": 260, "bytes_prefetched": 30, "pages": 5},
                    {"bytes_read": 40, "bytes_prefetched": 0, "pages": 5},
                ]
            )
            stats = disk.storage_stats()
            assert stats.extra["worker_bytes_read"] == 300
            assert stats.extra["worker_bytes_prefetched"] == 30
            assert stats.extra["worker_snapshots"] == 2
            # Gauges (pages/file_bytes) describe the shared store, not
            # worker traffic: absorbing snapshots must not inflate them.
            assert stats.pages == 0
        finally:
            disk.close()
