"""Lifecycle of :class:`DynamicJoinSession`: explicit close, no handle leaks.

The server keeps one warm session per dataset and cycles them over the
same ``--storage-path``; before PR 7 a replaced or dropped session kept
its trees, diagrams, and (transitively) the backend's file/sqlite handles
alive until GC — real fd exhaustion in a long-running process.  These
tests pin the explicit lifecycle: ``close()`` is idempotent, the context
manager closes, ``open_dynamic`` closes the session it replaces,
``close_dynamic`` closes rather than just forgetting, and an
``owns_disk`` session releases the backend so the same storage path can
be reopened immediately.
"""

import os

import pytest

from repro.datasets.workload import WorkloadConfig, build_workload
from repro.dynamic.updates import Update, UpdateBatch
from repro.engine import EngineConfig, JoinEngine
from repro.geometry.point import Point
from repro.geometry.rect import Rect


def _workload(storage="memory", path=None, seed=7):
    return build_workload(
        WorkloadConfig(n_p=25, n_q=20, seed=seed, storage=storage, storage_path=path)
    )


def _one_insert(session):
    oid = 90_000 + session.stats.batches_applied
    return UpdateBatch([Update("insert", "P", oid, Point(101.0 + oid % 7, 203.0))])


class TestSessionClose:
    def test_close_is_idempotent_and_observable(self):
        workload = _workload()
        with workload:
            session = JoinEngine().open_dynamic(
                workload.tree_p, workload.tree_q, domain=workload.domain
            )
            assert not session.closed
            session.close()
            assert session.closed
            session.close()  # second close is a no-op, not an error

    def test_closed_session_rejects_further_work(self):
        workload = _workload()
        with workload:
            session = JoinEngine().open_dynamic(
                workload.tree_p, workload.tree_q, domain=workload.domain
            )
            session.close()
            with pytest.raises(ValueError, match="closed"):
                session.apply_updates(_one_insert(session))
            with pytest.raises(ValueError, match="closed"):
                session.window_pairs(Rect(0.0, 0.0, 100.0, 100.0))

    def test_context_manager_closes(self):
        workload = _workload()
        with workload:
            with JoinEngine().open_dynamic(
                workload.tree_p, workload.tree_q, domain=workload.domain
            ) as session:
                session.apply_updates(_one_insert(session))
            assert session.closed

    def test_close_without_ownership_leaves_the_disk_usable(self):
        """The default: a session over a caller-built workload must not
        pull the DiskManager out from under the caller."""
        workload = _workload()
        with workload:
            engine = JoinEngine()
            session = engine.open_dynamic(
                workload.tree_p, workload.tree_q, domain=workload.domain
            )
            expected = session.pair_set()
            session.close()
            # The workload's trees are still readable through the engine.
            result = engine.run("nm", workload.tree_p, workload.tree_q)
            assert result.pair_set() == expected


class TestEngineLifecycleHooks:
    def test_open_dynamic_closes_the_replaced_session(self):
        workload = _workload()
        with workload:
            engine = JoinEngine()
            first = engine.open_dynamic(
                workload.tree_p, workload.tree_q, domain=workload.domain
            )
            second = engine.open_dynamic(
                workload.tree_p, workload.tree_q, domain=workload.domain
            )
            assert first.closed and not second.closed
            assert second.apply_updates(_one_insert(second)) is not None

    def test_close_dynamic_closes_not_just_forgets(self):
        workload = _workload()
        with workload:
            engine = JoinEngine()
            session = engine.open_dynamic(
                workload.tree_p, workload.tree_q, domain=workload.domain
            )
            engine.close_dynamic()
            assert session.closed
            with pytest.raises(ValueError, match="no dynamic session"):
                engine.apply_updates(_one_insert(session))
            engine.close_dynamic()  # idempotent with nothing open


class TestBackendHandleRelease:
    @pytest.mark.parametrize("storage", ["file", "sqlite"])
    def test_owning_session_reopens_the_same_storage_path(self, storage, tmp_path):
        """The server's cycle: open over a path, close, reopen the same
        path.  With ``owns_disk`` the close releases the backend handles,
        so the reopen sees a fresh, working store instead of fighting a
        leaked one."""
        path = str(tmp_path / f"lifecycle.{storage}")
        engine = JoinEngine()
        answers = []
        for cycle in range(3):
            workload = _workload(storage=storage, path=path, seed=7)
            session = engine.open_dynamic(
                workload.tree_p,
                workload.tree_q,
                EngineConfig(storage=storage, storage_path=path),
                owns_disk=True,
                domain=workload.domain,
            )
            session.apply_updates(_one_insert(session))
            answers.append(session.pair_set())
            engine.close_dynamic()
            assert session.closed
        # Same seed, same single insert: every cycle is a clean slate.
        assert answers[0] == answers[1] == answers[2]

    @pytest.mark.parametrize("storage", ["file", "sqlite"])
    def test_no_fd_growth_across_open_close_cycles(self, storage, tmp_path):
        """The original leak, pinned directly: repeated open/close cycles
        on persistent backends must not accumulate open descriptors."""
        fd_dir = "/proc/self/fd"
        if not os.path.isdir(fd_dir):
            pytest.skip("requires /proc/self/fd")
        engine = JoinEngine()

        def cycle(index):
            path = str(tmp_path / f"cycle{index}.{storage}")
            workload = _workload(storage=storage, path=path, seed=7)
            engine.open_dynamic(
                workload.tree_p,
                workload.tree_q,
                EngineConfig(storage=storage, storage_path=path),
                owns_disk=True,
                domain=workload.domain,
            )
            engine.close_dynamic()

        cycle(0)  # warm-up: lazy module/file state settles
        before = len(os.listdir(fd_dir))
        for index in range(1, 6):
            cycle(index)
        after = len(os.listdir(fd_dir))
        assert after <= before, f"fd count grew {before} -> {after}"
