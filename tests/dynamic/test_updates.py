"""Unit tests for the update records, stream format and session guards."""

import pytest

from repro.dynamic import (
    PairDelta,
    Update,
    UpdateBatch,
    UpdateStats,
    UpdateStreamError,
    format_update_stream,
    load_update_stream,
    parse_update_stream,
)
from repro.engine import EngineConfig, JoinEngine
from repro.geometry.point import Point


class TestUpdateRecords:
    def test_insert_requires_a_point(self):
        with pytest.raises(ValueError, match="must carry the point"):
            Update("insert", "P", 1)

    def test_unknown_op_and_side_rejected(self):
        with pytest.raises(ValueError, match="unknown update op"):
            Update("upsert", "P", 1, Point(1, 2))
        with pytest.raises(ValueError, match="unknown update side"):
            Update("insert", "R", 1, Point(1, 2))

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="at least one update"):
            UpdateBatch([])

    def test_duplicate_op_in_batch_rejected(self):
        with pytest.raises(ValueError, match="duplicate delete"):
            UpdateBatch([Update("delete", "P", 1), Update("delete", "P", 1)])

    def test_insert_then_delete_same_oid_rejected(self):
        with pytest.raises(ValueError, match="both inserts and deletes"):
            UpdateBatch(
                [Update("insert", "Q", 5, Point(1, 2)), Update("delete", "Q", 5)]
            )

    def test_by_side_preserves_stream_order(self):
        batch = UpdateBatch(
            [
                Update("insert", "P", 1, Point(1, 1)),
                Update("delete", "Q", 2),
                Update("insert", "P", 3, Point(2, 2)),
            ]
        )
        assert [u.oid for u in batch.by_side("P")] == [1, 3]
        assert [u.oid for u in batch.by_side("Q")] == [2]

    def test_pair_delta_len_and_emptiness(self):
        delta = PairDelta(added=((1, 2),), removed=((3, 4), (5, 6)), stats=UpdateStats())
        assert len(delta) == 3 and not delta.is_empty()
        assert PairDelta(added=(), removed=(), stats=UpdateStats()).is_empty()

    def test_update_stats_accumulate_sums_every_counter(self):
        total = UpdateStats()
        total.accumulate(UpdateStats(batches_applied=1, cells_invalidated=7))
        total.accumulate(UpdateStats(batches_applied=1, pairs_retracted=2))
        assert total.batches_applied == 2
        assert total.cells_invalidated == 7 and total.pairs_retracted == 2


class TestStreamFormat:
    def test_parse_batches_comments_and_separators(self):
        text = """
        # a comment
        insert P 10 1.5 2.5   # trailing comment
        delete Q 3
        ---
        insert Q 11 7.0 8.0
        """
        batches = parse_update_stream(text.splitlines())
        assert [len(b) for b in batches] == [2, 1]
        assert batches[0].updates[0] == Update("insert", "P", 10, Point(1.5, 2.5))
        assert batches[0].updates[1] == Update("delete", "Q", 3)

    def test_format_parse_roundtrip(self):
        batches = [
            UpdateBatch([Update("insert", "P", 1, Point(0.125, 9_999.75))]),
            UpdateBatch([Update("delete", "Q", 2), Update("insert", "Q", 3, Point(1, 2))]),
        ]
        parsed = parse_update_stream(format_update_stream(batches).splitlines())
        assert parsed == batches

    def test_load_update_stream_reads_files(self, tmp_path):
        path = tmp_path / "stream.txt"
        path.write_text("insert P 1 2.0 3.0\n---\ndelete P 1\n", encoding="utf-8")
        batches = load_update_stream(str(path))
        assert [len(b) for b in batches] == [1, 1]

    @pytest.mark.parametrize(
        "line, message",
        [
            ("upsert P 1 2 3", "unknown operation"),
            ("insert X 1 2 3", "unknown side"),
            ("insert P one 2 3", "object id must be an integer"),
            ("insert P 1 two 3", "coordinates must be numbers"),
            ("insert P 1 2", "takes 4 arguments"),
            ("delete P 1 2.0 3.0", "takes 2 arguments"),
        ],
    )
    def test_malformed_lines_carry_the_line_number(self, line, message):
        with pytest.raises(UpdateStreamError, match="line 2") as excinfo:
            parse_update_stream(["delete Q 7", line])
        assert message in str(excinfo.value)

    def test_duplicate_op_reported_at_its_own_line(self):
        with pytest.raises(UpdateStreamError, match="line 2.*duplicate delete"):
            parse_update_stream(["delete Q 7", "delete Q 7", "---"])

    def test_insert_delete_conflict_reported_at_its_own_line(self):
        with pytest.raises(UpdateStreamError, match="line 3.*both inserts and deletes"):
            parse_update_stream(["delete P 1", "insert Q 5 1.0 2.0", "delete Q 5"])

    def test_separator_resets_batch_consistency_tracking(self):
        batches = parse_update_stream(["delete Q 7", "---", "delete Q 7"])
        assert [len(b) for b in batches] == [1, 1]


class TestSessionGuards:
    def test_engine_apply_updates_without_session_fails(self):
        engine = JoinEngine()
        with pytest.raises(ValueError, match="no dynamic session is open"):
            engine.apply_updates(UpdateBatch([Update("delete", "P", 1)]))

    def test_sharded_config_rejected(self, small_workload):
        engine = JoinEngine()
        with pytest.raises(ValueError, match="serial executor"):
            engine.open_dynamic(
                small_workload.tree_p,
                small_workload.tree_q,
                EngineConfig(executor="sharded"),
            )

    def test_trees_must_share_a_disk(self, small_workload):
        from repro.datasets.workload import WorkloadConfig, build_workload

        other = build_workload(WorkloadConfig(n_p=20, n_q=20))
        with pytest.raises(ValueError, match="share one DiskManager"):
            JoinEngine().open_dynamic(small_workload.tree_p, other.tree_q)

    def test_invalid_updates_rejected_before_any_state_change(self, small_workload):
        engine = JoinEngine()
        session = engine.open_dynamic(
            small_workload.tree_p, small_workload.tree_q, domain=small_workload.domain
        )
        pairs_before = session.pair_set()
        existing = session.cells_p[0].site
        cases = [
            (Update("delete", "P", 99_999), "no such point"),
            (Update("insert", "P", 0, Point(1.0, 1.0)), "already stored"),
            (Update("insert", "P", 77_000, existing), "already exists at"),
            (Update("delete", "P", 0, Point(-5.0, -5.0)), "does not match"),
        ]
        for update, message in cases:
            batch = UpdateBatch(
                [Update("insert", "Q", 88_000, Point(123.0, 456.0)), update]
            )
            with pytest.raises(ValueError, match=message):
                session.apply_updates(batch)
        # Duplicate coordinates are rejected within one batch too (the twin
        # being pending rather than stored must make no difference).
        with pytest.raises(ValueError, match="already exists at"):
            session.apply_updates(
                UpdateBatch(
                    [
                        Update("insert", "P", 88_100, Point(77.0, 88.0)),
                        Update("insert", "P", 88_101, Point(77.0, 88.0)),
                    ]
                )
            )
        # Validation runs before application: nothing changed.
        session.check_consistency()
        assert session.pair_set() == pairs_before
        assert 88_000 not in session.cells_q
        assert 88_100 not in session.cells_p and 88_101 not in session.cells_p
