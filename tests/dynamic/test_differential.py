"""The differential update-stream harness.

Every scenario replays an update stream through a
:class:`~repro.dynamic.DynamicJoinSession` and, after **each** batch,
rebuilds the join from scratch over the current pointsets — through the
engine (NM on the live trees, which the session just mutated) and through
the index-free brute oracle — asserting exact pair-set equality.  That is
the subsystem's correctness contract: incremental == rebuild, always.

Backends: the session-side workloads honour ``$REPRO_STORAGE`` (the CI
tier-1 matrix), and one scenario additionally parametrizes all three
backends explicitly.  Both ``delta_candidates`` strategies (tree filter /
diagram scan) are exercised against the same streams.
"""

import pytest

from repro.datasets.workload import (
    DynamicWorkloadConfig,
    WorkloadConfig,
    build_workload,
    generate_update_batches,
)
from repro.engine import EngineConfig, JoinEngine
from repro.geometry.point import Point
from repro.join.baseline import brute_force_cij_pairs
from repro.dynamic import Update, UpdateBatch


def _live_points(session, side):
    cells = session.cells_p if side == "P" else session.cells_q
    return {oid: cell.site for oid, cell in cells.items()}


def _rebuild_pairs(engine, session):
    """A from-scratch engine join over the session's current (mutated) trees."""
    result = engine.run(
        "nm", session.tree_p, session.tree_q, domain=session.domain
    )
    return result.pair_set()


def _oracle_pairs(session):
    points_p = _live_points(session, "P")
    points_q = _live_points(session, "Q")
    return brute_force_cij_pairs(
        list(points_p.values()),
        list(points_q.values()),
        session.domain,
        oids_p=list(points_p),
        oids_q=list(points_q),
    )


def _replay(session, batches, engine, check_oracle=True):
    """Apply every batch, asserting incremental == rebuild after each."""
    previous = session.pair_set()
    for batch in batches:
        delta = session.apply_updates(batch)
        session.check_consistency()
        # The delta is exactly the difference between consecutive answers.
        assert previous | set(delta.added) == session.pairs | set(delta.removed)
        assert set(delta.added).isdisjoint(set(delta.removed))
        assert set(delta.added) <= session.pairs
        assert set(delta.removed).isdisjoint(session.pairs)
        assert session.pair_set() == _rebuild_pairs(engine, session)
        if check_oracle:
            assert session.pair_set() == _oracle_pairs(session)
        previous = session.pair_set()


@pytest.fixture
def engine():
    return JoinEngine()


class TestScriptedStreams:
    def _open(self, engine, n_p=60, n_q=50, seed=3, **config_overrides):
        workload = build_workload(WorkloadConfig(n_p=n_p, n_q=n_q, seed=seed))
        config = EngineConfig(**config_overrides) if config_overrides else None
        session = engine.open_dynamic(
            workload.tree_p, workload.tree_q, config, domain=workload.domain
        )
        return workload, session

    def test_bootstrap_matches_engine_and_oracle(self, engine):
        _, session = self._open(engine)
        assert session.pair_set() == _rebuild_pairs(engine, session)
        assert session.pair_set() == _oracle_pairs(session)

    @pytest.mark.parametrize("delta_candidates", ["filter", "scan"])
    def test_mixed_stream_both_candidate_strategies(self, engine, delta_candidates):
        workload, session = self._open(engine, delta_candidates=delta_candidates)
        batches = generate_update_batches(
            workload,
            DynamicWorkloadConfig(batches=4, batch_size=6, seed=21),
        )
        _replay(session, batches, engine)

    def test_insert_only_stream(self, engine):
        workload, session = self._open(engine)
        batches = generate_update_batches(
            workload,
            DynamicWorkloadConfig(batches=3, batch_size=5, insert_fraction=1.0, seed=5),
        )
        _replay(session, batches, engine)

    def test_delete_only_stream(self, engine):
        workload, session = self._open(engine)
        batches = generate_update_batches(
            workload,
            DynamicWorkloadConfig(batches=4, batch_size=8, insert_fraction=0.0, seed=6),
        )
        assert all(u.op == "delete" for b in batches for u in b)
        _replay(session, batches, engine)

    def test_single_side_stream(self, engine):
        workload, session = self._open(engine)
        batches = generate_update_batches(
            workload,
            DynamicWorkloadConfig(batches=3, batch_size=6, sides="P", seed=8),
        )
        assert all(u.side == "P" for b in batches for u in b)
        _replay(session, batches, engine)

    def test_boundary_targeting_batches(self, engine):
        """Inserts landing on maintained cell vertices and edge midpoints —
        the configurations where the tie convention matters most."""
        workload, session = self._open(engine, n_p=40, n_q=35, seed=9)
        # Collect boundary locations of the current diagram before mutating.
        targets = []
        for cell in list(session.cells_p.values())[:6]:
            vertices = cell.polygon.vertices
            if len(vertices) < 2:
                continue
            a, b = vertices[0], vertices[1]
            targets.append(Point(a.x, a.y))
            targets.append(Point((a.x + b.x) / 2.0, (a.y + b.y) / 2.0))
        assert targets, "expected at least one multi-vertex cell"
        taken = {(c.site.x, c.site.y) for c in session.cells_q.values()}
        inserts = [
            Update("insert", "Q", 70_000 + i, point)
            for i, point in enumerate(targets)
            if (point.x, point.y) not in taken
        ]
        _replay(session, [UpdateBatch(inserts)], engine)
        # ... and deleting them again restores the previous answer shape.
        removals = UpdateBatch(
            [Update("delete", "Q", u.oid) for u in inserts]
        )
        _replay(session, [removals], engine)

    def test_batch_may_reinsert_at_a_deleted_location(self, engine):
        """Deletes release their coordinates within the batch (application
        order is deletes-then-inserts), so replacing a point under a fresh
        oid in one atomic batch is legal — and still exactly differential."""
        _, session = self._open(engine)
        victim = min(session.cells_p)
        location = session.cells_p[victim].site
        batch = UpdateBatch(
            [
                Update("delete", "P", victim),
                Update("insert", "P", 60_000, Point(location.x, location.y)),
            ]
        )
        _replay(session, [batch], engine)
        assert 60_000 in session.cells_p and victim not in session.cells_p

    def test_churn_shrinks_then_regrows_a_side(self, engine):
        """Delete P down to the minimum, then regrow it — the session must
        survive near-empty diagrams (single cells cover the whole domain)."""
        workload, session = self._open(engine, n_p=10, n_q=8, seed=12)
        live = sorted(session.cells_p)
        down = [
            UpdateBatch([Update("delete", "P", oid)]) for oid in live[: len(live) - 1]
        ]
        _replay(session, down, engine)
        assert session.point_count("P") == 1
        regrow = [
            UpdateBatch(
                [Update("insert", "P", 500 + i, Point(123.0 + 77.0 * i, 4_567.0 - 13.0 * i))]
            )
            for i in range(4)
        ]
        _replay(session, regrow, engine)


@pytest.mark.parametrize("storage", ["memory", "file", "sqlite"])
class TestAcrossBackends:
    def test_stream_on_backend(self, engine, storage, tmp_path):
        """The maintenance layer is backend-agnostic: the same stream yields
        the same incremental answers when pages live in a file or SQLite."""
        path = None
        if storage != "memory":
            path = str(tmp_path / f"dynamic.{storage}")
        workload = build_workload(
            WorkloadConfig(n_p=45, n_q=40, seed=4, storage=storage, storage_path=path)
        )
        with workload:
            session = engine.open_dynamic(
                workload.tree_p, workload.tree_q, domain=workload.domain
            )
            batches = generate_update_batches(
                workload,
                DynamicWorkloadConfig(batches=3, batch_size=6, seed=31),
            )
            _replay(session, batches, engine)


class TestUpdateAccounting:
    def test_incremental_beats_rebuild_on_small_batches(self, engine):
        """The point of the subsystem: a small batch invalidates a small
        neighbourhood, not the ``|P| + |Q|`` cells a rebuild recomputes."""
        workload = build_workload(WorkloadConfig(n_p=150, n_q=150, seed=13))
        session = engine.open_dynamic(
            workload.tree_p, workload.tree_q, domain=workload.domain
        )
        rebuild_cells = len(session.cells_p) + len(session.cells_q)
        batches = generate_update_batches(
            workload, DynamicWorkloadConfig(batches=3, batch_size=4, seed=41)
        )
        for batch in batches:
            delta = session.apply_updates(batch)
            assert 0 < delta.stats.cells_invalidated < rebuild_cells / 2
        assert session.stats.batches_applied == 3
        assert session.stats.updates_applied == 12

    def test_delta_stats_ride_on_each_batch(self, engine):
        workload = build_workload(WorkloadConfig(n_p=40, n_q=40, seed=14))
        session = engine.open_dynamic(
            workload.tree_p, workload.tree_q, domain=workload.domain
        )
        [batch] = generate_update_batches(
            workload, DynamicWorkloadConfig(batches=1, batch_size=5, seed=51)
        )
        delta = session.apply_updates(batch)
        assert delta.stats.batches_applied == 1
        assert delta.stats.updates_applied == 5
        assert delta.stats.pairs_emitted == len(delta.added)
        assert delta.stats.pairs_retracted == len(delta.removed)
        assert session.stats.cells_invalidated == delta.stats.cells_invalidated
