"""Property-based differential testing of random update streams.

Hypothesis drives random interleaved insert/delete streams (including
streams that delete a side down to one point and streams landing new
points on the snapped grid the base sets came from) against a
:class:`~repro.dynamic.DynamicJoinSession`.  After every batch the
maintained pair set must equal the index-free brute oracle computed over
the current pointsets, the session bookkeeping must be internally
consistent, and both source R-trees must satisfy their structural
invariants.

Tier-1 runs these derandomized (see tests/conftest.py); the scheduled
``HYPOTHESIS_PROFILE=explore`` CI job re-enables randomized search.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.synthetic import DOMAIN
from repro.datasets.workload import WorkloadConfig, build_workload
from repro.dynamic import DynamicJoinSession, Update, UpdateBatch
from repro.engine import EngineConfig
from repro.join.baseline import brute_force_cij_pairs
from tests.conftest import distinct_pointsets, grid_points_strategy

#: An op template: (kind, side selector, payload draw).  Deletes pick a live
#: oid by index so every drawn stream is applicable by construction.
_op_template = st.tuples(
    st.sampled_from(["insert", "delete"]),
    st.sampled_from(["P", "Q"]),
    st.integers(min_value=0, max_value=10_000),
    grid_points_strategy(),
)

_streams = st.lists(
    st.lists(_op_template, min_size=1, max_size=5),
    min_size=1,
    max_size=3,
)


def _materialise(batch_templates, live, taken, next_oid):
    """Turn op templates into an applicable :class:`UpdateBatch`, or None."""
    updates = []
    touched = {"P": set(), "Q": set()}
    for kind, side, pick, point in batch_templates:
        if kind == "delete":
            candidates = [oid for oid in sorted(live[side]) if oid not in touched[side]]
            if len(candidates) <= 1:
                continue  # keep every side non-empty
            oid = candidates[pick % len(candidates)]
            touched[side].add(oid)
            del live[side][oid]
            updates.append(Update("delete", side, oid))
        else:
            if (point.x, point.y) in taken[side]:
                continue
            oid = next_oid[side]
            next_oid[side] += 1
            touched[side].add(oid)
            live[side][oid] = point
            taken[side].add((point.x, point.y))
            updates.append(Update("insert", side, oid, point))
    return UpdateBatch(updates) if updates else None


class TestRandomStreams:
    @given(
        distinct_pointsets(min_size=3, max_size=8),
        distinct_pointsets(min_size=3, max_size=8),
        _streams,
        st.sampled_from(["filter", "scan"]),
    )
    @settings(max_examples=20, deadline=None)
    def test_incremental_equals_oracle_after_every_batch(
        self, points_p, points_q, stream, delta_candidates
    ):
        workload = build_workload(
            WorkloadConfig(buffer_fraction=0.05), points_p=points_p, points_q=points_q
        )
        session = DynamicJoinSession(
            workload.tree_p,
            workload.tree_q,
            domain=DOMAIN,
            config=EngineConfig(delta_candidates=delta_candidates),
        )
        live = {
            "P": dict(enumerate(points_p)),
            "Q": dict(enumerate(points_q)),
        }
        taken = {
            side: {(p.x, p.y) for p in live[side].values()} for side in ("P", "Q")
        }
        next_oid = {"P": len(points_p) + 1000, "Q": len(points_q) + 1000}

        def oracle():
            return brute_force_cij_pairs(
                list(live["P"].values()),
                list(live["Q"].values()),
                DOMAIN,
                oids_p=list(live["P"]),
                oids_q=list(live["Q"]),
            )

        assert session.pair_set() == oracle()
        for batch_templates in stream:
            batch = _materialise(batch_templates, live, taken, next_oid)
            if batch is None:
                continue
            delta = session.apply_updates(batch)
            # Internal bookkeeping, structural R-tree invariants included.
            session.check_consistency()
            # The answer equals a from-scratch computation...
            assert session.pair_set() == oracle()
            # ...and the reported delta is exactly the answer's change.
            assert set(delta.added) <= session.pairs
            assert set(delta.removed).isdisjoint(session.pairs)

    @given(
        distinct_pointsets(min_size=4, max_size=7),
        distinct_pointsets(min_size=4, max_size=7),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=10, deadline=None)
    def test_delete_heavy_stream_down_to_singletons(self, points_p, points_q, pick):
        """Delete-only churn down to one point per side, one op per batch."""
        workload = build_workload(
            WorkloadConfig(buffer_fraction=0.05), points_p=points_p, points_q=points_q
        )
        session = DynamicJoinSession(workload.tree_p, workload.tree_q, domain=DOMAIN)
        live = {"P": dict(enumerate(points_p)), "Q": dict(enumerate(points_q))}
        step = 0
        while len(live["P"]) > 1 or len(live["Q"]) > 1:
            side = "P" if len(live["P"]) > 1 and (step % 2 == 0 or len(live["Q"]) == 1) else "Q"
            oids = sorted(live[side])
            oid = oids[(pick + step) % len(oids)]
            del live[side][oid]
            session.apply_updates(UpdateBatch([Update("delete", side, oid)]))
            session.check_consistency()
            assert session.pair_set() == brute_force_cij_pairs(
                list(live["P"].values()),
                list(live["Q"].values()),
                DOMAIN,
                oids_p=list(live["P"]),
                oids_q=list(live["Q"]),
            )
            step += 1
        # Two singletons always join: both cells are the whole domain.
        assert session.pair_set() == {
            (next(iter(live["P"])), next(iter(live["Q"])))
        }
