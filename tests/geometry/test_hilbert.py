"""Tests for the Hilbert space-filling curve helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.hilbert import hilbert_index, hilbert_sorted, hilbert_value
from repro.geometry.point import Point
from repro.geometry.rect import Rect

DOMAIN = Rect(0.0, 0.0, 10_000.0, 10_000.0)


class TestHilbertIndex:
    def test_order_one_curve_layout(self):
        # Order-1 Hilbert curve visits (0,0), (0,1), (1,1), (1,0).
        assert hilbert_index(0, 0, order=1) == 0
        assert hilbert_index(0, 1, order=1) == 1
        assert hilbert_index(1, 1, order=1) == 2
        assert hilbert_index(1, 0, order=1) == 3

    def test_indices_are_a_bijection_on_small_grid(self):
        order = 3
        side = 1 << order
        values = {hilbert_index(x, y, order) for x in range(side) for y in range(side)}
        assert values == set(range(side * side))

    def test_out_of_range_coordinates_rejected(self):
        with pytest.raises(ValueError):
            hilbert_index(4, 0, order=2)
        with pytest.raises(ValueError):
            hilbert_index(-1, 0, order=2)

    @given(st.integers(min_value=0, max_value=63), st.integers(min_value=0, max_value=63))
    def test_neighbouring_cells_have_close_indices_on_average(self, x, y):
        # Locality sanity check: a one-step move changes the index by less
        # than the full curve length.
        order = 6
        side = 1 << order
        here = hilbert_index(x, y, order)
        if x + 1 < side:
            assert abs(hilbert_index(x + 1, y, order) - here) < side * side


class TestHilbertValue:
    def test_points_outside_domain_are_clamped(self):
        inside = hilbert_value(Point(0.0, 0.0), DOMAIN)
        outside = hilbert_value(Point(-500.0, -500.0), DOMAIN)
        assert inside == outside

    def test_sorted_indices_cover_all_points(self):
        points = [Point(100.0 * i, 50.0 * i) for i in range(20)]
        order = hilbert_sorted(points, DOMAIN)
        assert sorted(order) == list(range(20))

    def test_spatially_close_points_are_close_in_order(self):
        cluster_a = [Point(10.0 + i, 10.0 + i) for i in range(5)]
        cluster_b = [Point(9000.0 + i, 9000.0 + i) for i in range(5)]
        points = cluster_a + cluster_b
        order = hilbert_sorted(points, DOMAIN)
        positions_a = [order.index(i) for i in range(5)]
        positions_b = [order.index(i) for i in range(5, 10)]
        # All of cluster A appears contiguously before or after all of B.
        assert max(positions_a) < min(positions_b) or max(positions_b) < min(positions_a)
