"""Tests for repro.geometry.rect."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from tests.conftest import coordinates, points_strategy


def rects_strategy():
    """Arbitrary valid rectangles inside the domain."""
    return st.builds(
        lambda x1, y1, x2, y2: Rect(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2)),
        coordinates(),
        coordinates(),
        coordinates(),
        coordinates(),
    )


class TestConstruction:
    def test_degenerate_rect_is_rejected(self):
        with pytest.raises(ValueError):
            Rect(5.0, 0.0, 1.0, 10.0)

    def test_from_point_is_degenerate_but_valid(self):
        r = Rect.from_point(Point(3.0, 4.0))
        assert r.area() == 0.0
        assert r.contains_point(Point(3.0, 4.0))

    def test_from_points_is_tight(self):
        r = Rect.from_points([Point(1.0, 5.0), Point(4.0, 2.0), Point(3.0, 3.0)])
        assert (r.xmin, r.ymin, r.xmax, r.ymax) == (1.0, 2.0, 4.0, 5.0)

    def test_from_points_rejects_empty(self):
        with pytest.raises(ValueError):
            Rect.from_points([])

    def test_union_all_covers_every_input(self):
        rects = [Rect(0, 0, 1, 1), Rect(5, 5, 6, 7), Rect(2, -1, 3, 0)]
        union = Rect.union_all(rects)
        assert all(union.contains_rect(r) for r in rects)

    def test_union_all_rejects_empty(self):
        with pytest.raises(ValueError):
            Rect.union_all([])


class TestMeasures:
    def test_area_and_perimeter(self):
        r = Rect(0.0, 0.0, 4.0, 3.0)
        assert r.area() == 12.0
        assert r.perimeter() == 14.0

    def test_center_and_corners(self):
        r = Rect(0.0, 0.0, 2.0, 4.0)
        assert r.center() == Point(1.0, 2.0)
        assert len(r.corners()) == 4
        assert Point(0.0, 0.0) in r.corners()

    def test_enlargement_zero_when_contained(self):
        outer = Rect(0, 0, 10, 10)
        inner = Rect(2, 2, 3, 3)
        assert outer.enlargement(inner) == 0.0
        assert inner.enlargement(outer) == pytest.approx(99.0)

    def test_expanded_grows_every_side(self):
        r = Rect(1, 1, 2, 2).expanded(0.5)
        assert (r.xmin, r.ymin, r.xmax, r.ymax) == (0.5, 0.5, 2.5, 2.5)

    def test_sample_grid_sizes(self):
        r = Rect(0, 0, 1, 1)
        assert len(r.sample_grid(3)) == 9
        assert r.sample_grid(1) == [r.center()]


class TestPredicates:
    def test_intersects_touching_rectangles(self):
        assert Rect(0, 0, 1, 1).intersects(Rect(1, 0, 2, 1))

    def test_disjoint_rectangles_do_not_intersect(self):
        assert not Rect(0, 0, 1, 1).intersects(Rect(2, 2, 3, 3))

    def test_intersection_of_overlapping(self):
        common = Rect(0, 0, 4, 4).intersection(Rect(2, 1, 6, 3))
        assert common == Rect(2, 1, 4, 3)

    def test_intersection_of_disjoint_is_none(self):
        assert Rect(0, 0, 1, 1).intersection(Rect(5, 5, 6, 6)) is None

    def test_contains_rect_and_point(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains_rect(Rect(1, 1, 2, 2))
        assert not outer.contains_rect(Rect(5, 5, 11, 6))
        assert outer.contains_point(Point(10.0, 10.0))
        assert not outer.contains_point(Point(10.1, 5.0))


class TestDistances:
    def test_mindist_zero_inside(self):
        r = Rect(0, 0, 10, 10)
        assert r.mindist_point(Point(5.0, 5.0)) == 0.0

    def test_mindist_to_corner(self):
        r = Rect(0, 0, 1, 1)
        assert r.mindist_point(Point(4.0, 5.0)) == pytest.approx(5.0)

    def test_mindist_to_side(self):
        r = Rect(0, 0, 1, 1)
        assert r.mindist_point(Point(0.5, 3.0)) == pytest.approx(2.0)

    def test_maxdist_reaches_far_corner(self):
        r = Rect(0, 0, 1, 1)
        assert r.maxdist_point(Point(0.0, 0.0)) == pytest.approx(2 ** 0.5)

    def test_mindist_rect_zero_when_overlapping(self):
        assert Rect(0, 0, 2, 2).mindist_rect(Rect(1, 1, 3, 3)) == 0.0

    def test_mindist_rect_positive_when_disjoint(self):
        assert Rect(0, 0, 1, 1).mindist_rect(Rect(4, 1, 5, 2)) == pytest.approx(3.0)


class TestRectProperties:
    @given(rects_strategy(), points_strategy())
    def test_mindist_is_a_lower_bound_on_contained_points(self, rect, query):
        lower = rect.mindist_point(query)
        for corner in rect.corners() + [rect.center()]:
            assert lower <= query.distance_to(corner) + 1e-6

    @given(rects_strategy(), rects_strategy())
    def test_union_contains_both(self, a, b):
        union = a.union(b)
        assert union.contains_rect(a)
        assert union.contains_rect(b)

    @given(rects_strategy(), rects_strategy())
    def test_intersection_consistent_with_intersects(self, a, b):
        common = a.intersection(b)
        assert (common is not None) == a.intersects(b)
        if common is not None:
            assert a.contains_rect(common)
            assert b.contains_rect(common)

    @given(rects_strategy(), points_strategy())
    def test_mindist_sq_matches_mindist(self, rect, query):
        assert rect.mindist_sq_point(query) == pytest.approx(
            rect.mindist_point(query) ** 2, abs=1e-6
        )
