"""Tests for repro.geometry.segment."""

import pytest
from hypothesis import given

from repro.geometry.point import Point
from repro.geometry.segment import Segment
from tests.conftest import points_strategy


class TestSegment:
    def test_length_and_midpoint(self):
        seg = Segment(Point(0.0, 0.0), Point(6.0, 8.0))
        assert seg.length() == pytest.approx(10.0)
        assert seg.midpoint() == Point(3.0, 4.0)

    def test_project_parameter_endpoints(self):
        seg = Segment(Point(0.0, 0.0), Point(10.0, 0.0))
        assert seg.project_parameter(Point(0.0, 5.0)) == pytest.approx(0.0)
        assert seg.project_parameter(Point(10.0, -3.0)) == pytest.approx(1.0)
        assert seg.project_parameter(Point(5.0, 7.0)) == pytest.approx(0.5)

    def test_project_parameter_degenerate_segment(self):
        seg = Segment(Point(2.0, 2.0), Point(2.0, 2.0))
        assert seg.project_parameter(Point(9.0, 9.0)) == 0.0
        assert seg.distance_to_point(Point(5.0, 6.0)) == pytest.approx(5.0)

    def test_closest_point_clamps_to_endpoints(self):
        seg = Segment(Point(0.0, 0.0), Point(10.0, 0.0))
        assert seg.closest_point_to(Point(-5.0, 0.0)) == Point(0.0, 0.0)
        assert seg.closest_point_to(Point(20.0, 1.0)) == Point(10.0, 0.0)

    def test_distance_to_point_perpendicular(self):
        seg = Segment(Point(0.0, 0.0), Point(10.0, 0.0))
        assert seg.distance_to_point(Point(4.0, 3.0)) == pytest.approx(3.0)

    def test_point_at_interpolates(self):
        seg = Segment(Point(0.0, 0.0), Point(4.0, 8.0))
        assert seg.point_at(0.25) == Point(1.0, 2.0)


class TestSegmentProperties:
    @given(points_strategy(), points_strategy(), points_strategy())
    def test_distance_never_exceeds_endpoint_distances(self, a, b, q):
        seg = Segment(a, b)
        d = seg.distance_to_point(q)
        assert d <= q.distance_to(a) + 1e-6
        assert d <= q.distance_to(b) + 1e-6

    @given(points_strategy(), points_strategy(), points_strategy())
    def test_closest_point_lies_on_segment_bbox(self, a, b, q):
        seg = Segment(a, b)
        c = seg.closest_point_to(q)
        assert min(a.x, b.x) - 1e-6 <= c.x <= max(a.x, b.x) + 1e-6
        assert min(a.y, b.y) - 1e-6 <= c.y <= max(a.y, b.y) + 1e-6

    @given(points_strategy(), points_strategy())
    def test_distance_zero_for_points_on_segment(self, a, b):
        seg = Segment(a, b)
        assert seg.distance_to_point(seg.midpoint()) == pytest.approx(0.0, abs=1e-6)
