"""Tests for repro.geometry.halfplane."""

import pytest
from hypothesis import assume, given

from repro.geometry.halfplane import Halfplane, bisector_halfplane, perpendicular_bisector
from repro.geometry.point import Point, dist, midpoint
from tests.conftest import points_strategy


class TestHalfplane:
    def test_contains_and_value_signs(self):
        # x <= 5
        hp = Halfplane(1.0, 0.0, 5.0)
        assert hp.contains(Point(4.0, 100.0))
        assert hp.contains(Point(5.0, -3.0))
        assert not hp.contains(Point(5.1, 0.0))
        assert hp.value(Point(7.0, 0.0)) == pytest.approx(2.0)

    def test_signed_distance_matches_geometry(self):
        hp = Halfplane(0.0, 2.0, 4.0)  # 2y <= 4, i.e. y <= 2
        assert hp.signed_distance(Point(0.0, 5.0)) == pytest.approx(3.0)
        assert hp.signed_distance(Point(0.0, -1.0)) == pytest.approx(-3.0)

    def test_degenerate_halfplane_rejected_for_distance(self):
        with pytest.raises(ValueError):
            Halfplane(0.0, 0.0, 1.0).signed_distance(Point(0.0, 0.0))

    def test_boundary_points_lie_on_boundary(self):
        hp = Halfplane(1.0, 2.0, 3.0)
        for p in hp.boundary_points(span=5.0):
            assert hp.value(p) == pytest.approx(0.0, abs=1e-9)


class TestBisector:
    def test_identical_points_rejected(self):
        with pytest.raises(ValueError):
            bisector_halfplane(Point(1.0, 1.0), Point(1.0, 1.0))

    def test_p_side_contains_p(self):
        p, q = Point(2.0, 3.0), Point(8.0, 1.0)
        hp = bisector_halfplane(p, q)
        assert hp.contains(p)
        assert not hp.contains(q)

    def test_midpoint_on_boundary(self):
        p, q = Point(0.0, 0.0), Point(4.0, 2.0)
        hp = bisector_halfplane(p, q)
        assert hp.value(midpoint(p, q)) == pytest.approx(0.0, abs=1e-9)

    def test_perpendicular_bisector_points_are_equidistant(self):
        p, q = Point(1.0, 7.0), Point(5.0, -1.0)
        a, b = perpendicular_bisector(p, q)
        for x in (a, b):
            assert dist(x, p) == pytest.approx(dist(x, q), rel=1e-9)


class TestBisectorProperties:
    @given(points_strategy(), points_strategy(), points_strategy())
    def test_membership_matches_distance_comparison(self, p, q, probe):
        assume(p != q)
        hp = bisector_halfplane(p, q)
        closer_to_p = dist(probe, p) <= dist(probe, q) + 1e-6
        # Allow a tolerance band around the boundary where both answers are
        # acceptable due to floating point.
        if abs(dist(probe, p) - dist(probe, q)) > 1e-6:
            assert hp.contains(probe) == closer_to_p

    @given(points_strategy(), points_strategy())
    def test_bisectors_are_complementary(self, p, q):
        assume(p != q)
        hp_pq = bisector_halfplane(p, q)
        hp_qp = bisector_halfplane(q, p)
        probe = Point((p.x + 2 * q.x) / 3 + 1.0, (p.y + 2 * q.y) / 3)
        if abs(dist(probe, p) - dist(probe, q)) > 1e-6:
            assert hp_pq.contains(probe) != hp_qp.contains(probe)
