"""Degenerate-input and bit-equivalence tests for the array kernels.

:mod:`repro.geometry.kernels` promises *bit-identical* results to the
scalar geometry layer — not "close", identical — because the engine's
``compute="kernel"`` mode must reproduce every pruning decision, clip and
counter of the scalar oracle byte for byte.  These tests attack the
promise where floating point is most treacherous:

* coincident sites (zero-length bisector normals);
* exactly-colinear bisectors — the pinned degenerate input of
  ``tests/join/test_boundary_ties.py``, where two cells touch in a
  zero-area segment;
* clips whose output collapses to fewer than three vertices (empty or
  single-corner contact);
* near-colinear random inputs via hypothesis, where the scalar and a
  naively reassociated vectorised formula would round differently.
"""

from __future__ import annotations

import math
import random

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.synthetic import DOMAIN, uniform_points
from repro.datasets.workload import build_indexed_pointset
from repro.geometry import kernels as gk
from repro.geometry.halfplane import Halfplane, bisector_halfplane
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.tolerance import BOUNDARY_EPS
from repro.storage.disk import DiskManager
from repro.voronoi.batch import compute_voronoi_cells
from repro.voronoi.single import CellComputationStats
from tests.join.test_boundary_ties import (
    EXPECTED_PAIRS,
    POINTS_P,
    POINTS_Q,
)

UNIT_SQUARE = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]


def scalar_clip(ring, a, b, c):
    """The scalar oracle: ``ConvexPolygon.clip_halfplane`` on a tuple ring."""
    clipped = gk.polygon_from_ring(ring).clip_halfplane(Halfplane(a, b, c))
    return [(v.x, v.y) for v in clipped.vertices]


def indexed(points):
    disk = DiskManager()
    tree = build_indexed_pointset(disk, "RP", points, domain=DOMAIN)
    return disk, tree


def cells_fingerprint(cells):
    """Exact vertex tuples per oid (bit-identical comparison)."""
    return {
        oid: tuple((v.x, v.y) for v in cell.polygon.vertices)
        for oid, cell in cells.items()
    }


class TestCoincidentSites:
    def test_coincident_points_have_no_bisector(self):
        """The scalar layer refuses ``⊥(p, p)``; the kernels never build it
        either (coincident sites are masked out of the candidate set), so
        the contract to pin is the explicit rejection."""
        p = Point(3.25, 4.75)
        with pytest.raises(ValueError):
            bisector_halfplane(p, p)

    def test_zero_normal_halfplane_clip_matches_scalar(self):
        """A degenerate zero-normal halfplane ``0*x + 0*y <= c``: both
        layers fall back to the coefficient-scaled tolerance, keeping the
        ring for ``c >= 0`` and emptying it for ``c < -tol``."""
        ring = list(UNIT_SQUARE)
        for c, expected in [(0.0, ring), (5.0, ring), (-1.0, [])]:
            assert gk.clip_ring(ring, 0.0, 0.0, c) == expected
            assert scalar_clip(ring, 0.0, 0.0, c) == expected
            arr = gk.clip_halfplane_array(
                np.array(ring, dtype=np.float64), 0.0, 0.0, c
            )
            assert [tuple(v) for v in arr] == expected

    def test_batch_group_with_coincident_sites(self):
        """Two group members sharing one site: each must skip the other as
        a refiner (a site never clips its own location), identically in
        both compute modes — cells and every counter."""
        points = uniform_points(80, seed=41)
        points.append(points[12])  # exact duplicate of an existing site
        _, tree = indexed(points)
        group = [(12, points[12]), (80, points[80]), (30, points[30])]
        scalar_stats, kernel_stats = CellComputationStats(), CellComputationStats()
        scalar = compute_voronoi_cells(
            tree, group, DOMAIN, stats=scalar_stats, compute="scalar"
        )
        kernel = compute_voronoi_cells(
            tree, group, DOMAIN, stats=kernel_stats, compute="kernel"
        )
        assert cells_fingerprint(kernel) == cells_fingerprint(scalar)
        assert vars(kernel_stats) == vars(scalar_stats)
        # The duplicate members really do share the (possibly degenerate)
        # cell rather than annihilating each other.
        assert scalar[12].polygon.vertices == scalar[80].polygon.vertices


class TestColinearBisectors:
    """The pinned input of ``test_boundary_ties``: the bisector of the two
    P points and the bisector of Q1/Q2 both fall exactly on x = 203.625."""

    def test_colinear_bisector_clip_is_bit_identical(self):
        domain_ring = gk.ring_of_rect(Rect(0.0, 0.0, 10_000.0, 10_000.0))
        for p, q in [(POINTS_P[0], POINTS_P[1]), (POINTS_Q[1], POINTS_Q[2])]:
            hp = bisector_halfplane(p, q)
            kernel = gk.clip_ring(domain_ring, hp.a, hp.b, hp.c)
            assert kernel == scalar_clip(domain_ring, hp.a, hp.b, hp.c)
            # Both clips keep the domain's left edge and cut exactly on the
            # shared vertical line x = 203.625.
            assert {x for x, _ in kernel} == {0.0, 203.625}

    def test_zero_area_contact_excluded_by_open_sat(self):
        """The two half-domains meeting on x = 203.625 intersect under the
        closed SAT but not the open one, exactly like the scalar pair."""
        domain = Rect(0.0, 0.0, 407.25, 67.0)
        ring = gk.ring_of_rect(domain)
        left_hp = bisector_halfplane(POINTS_P[0], POINTS_P[1])
        right_hp = bisector_halfplane(POINTS_P[1], POINTS_P[0])
        left = np.array(gk.clip_ring(ring, left_hp.a, left_hp.b, left_hp.c))
        right = np.array(gk.clip_ring(ring, right_hp.a, right_hp.b, right_hp.c))
        assert gk.sat_intersects(left, right, boundary_counts=True)
        assert not gk.sat_intersects(left, right, boundary_counts=False)
        scalar_left = gk.polygon_from_array(left)
        scalar_right = gk.polygon_from_array(right)
        assert scalar_left.intersects(scalar_right)
        assert not scalar_left.intersects_interior(scalar_right)

    @pytest.mark.parametrize("method", ["nm", "pm", "fm"])
    def test_join_on_pinned_input_matches_scalar(self, method):
        from repro import common_influence_join

        domain = Rect(0.0, 0.0, 10_000.0, 10_000.0)
        scalar = common_influence_join(
            POINTS_P, POINTS_Q, method=method, domain=domain, compute="scalar"
        )
        kernel = common_influence_join(
            POINTS_P, POINTS_Q, method=method, domain=domain, compute="kernel"
        )
        assert kernel.pairs == scalar.pairs
        assert kernel.pair_set() == EXPECTED_PAIRS


class TestDegenerateClipResults:
    def test_fully_excluded_ring_clips_to_empty(self):
        ring = list(UNIT_SQUARE)
        # x <= -1 excludes the whole square.
        assert gk.clip_ring(ring, 1.0, 0.0, -1.0) == []
        assert scalar_clip(ring, 1.0, 0.0, -1.0) == []
        arr = gk.clip_halfplane_array(
            np.array(ring, dtype=np.float64), 1.0, 0.0, -1.0
        )
        assert arr.shape == (0, 2)

    def test_single_vertex_contact_clips_to_empty(self):
        """A halfplane touching the ring in exactly one corner: the scalar
        min-value guard empties the polygon, and so must the kernels."""
        ring = list(UNIT_SQUARE)
        # x + y <= 0 touches only the corner (0, 0).
        assert gk.clip_ring(ring, 1.0, 1.0, 0.0) == []
        assert scalar_clip(ring, 1.0, 1.0, 0.0) == []
        arr = gk.clip_halfplane_array(
            np.array(ring, dtype=np.float64), 1.0, 1.0, 0.0
        )
        assert arr.shape == (0, 2)

    def test_sub_tolerance_sliver_clips_to_empty(self):
        """A clip keeping only a sliver thinner than the boundary epsilon
        collapses to empty via the tolerance guard in both layers."""
        ring = list(UNIT_SQUARE)
        a, b, c = 1.0, 0.0, BOUNDARY_EPS / 2.0  # keep x <= eps/2
        assert gk.clip_ring(ring, a, b, c) == []
        assert scalar_clip(ring, a, b, c) == []

    def test_empty_inputs_are_inert(self):
        empty = np.empty((0, 2), dtype=np.float64)
        square = np.array(UNIT_SQUARE, dtype=np.float64)
        assert gk.clip_ring([], 1.0, 0.0, 0.5) == []
        assert len(gk.clip_halfplane_array(empty, 1.0, 0.0, 0.5)) == 0
        assert not gk.sat_intersects(empty, square, boundary_counts=True)
        assert not gk.sat_intersects(square, empty, boundary_counts=True)
        assert not gk.points_in_polygon(
            empty, np.array([0.5]), np.array([0.5]), BOUNDARY_EPS
        ).any()
        ring, vdist, reach, clips = gk.refine_ring_nearest_first(
            [], 0.0, 0.0, [1.0], [1.0], [1.4], [], 0.0
        )
        assert (ring, vdist, reach, clips) == ([], [], 0.0, 0)


def scalar_refine_oracle(ring, site, others):
    """The scalar nearest-first walk (``_approximate_cell`` shape) built
    from ``ConvexPolygon``/``Halfplane`` primitives only."""
    polygon = gk.polygon_from_ring(ring)
    candidates = sorted(
        ((site.distance_to(o), o) for o in others), key=lambda pair: pair[0]
    )
    vdist = [site.distance_to(v) for v in polygon.vertices]
    reach = 2.0 * max(vdist) if vdist else 0.0
    clips = 0
    for distance, other in candidates:
        if distance > reach:
            break
        if any(other.distance_to(v) < d for v, d in zip(polygon.vertices, vdist)):
            polygon = polygon.clip_halfplane(bisector_halfplane(site, other))
            vdist = [site.distance_to(v) for v in polygon.vertices]
            reach = 2.0 * max(vdist) if vdist else 0.0
            clips += 1
            if polygon.is_empty():
                break
    return [(v.x, v.y) for v in polygon.vertices], vdist, reach, clips


def assert_refine_matches_oracle(site, others, domain):
    ring = gk.ring_of_rect(domain)
    candidates = sorted(
        ((site.distance_to(o), o) for o in others), key=lambda pair: pair[0]
    )
    ds = [d for d, _ in candidates]
    oxs = [o.x for _, o in candidates]
    oys = [o.y for _, o in candidates]
    vdist = gk.ring_distances(ring, site.x, site.y)
    reach = 2.0 * max(vdist) if vdist else 0.0
    got = gk.refine_ring_nearest_first(
        ring, site.x, site.y, oxs, oys, ds, vdist, reach
    )
    want = scalar_refine_oracle(ring, site, others)
    assert (list(got[0]), got[1], got[2], got[3]) == want


class TestNearestFirstRefinement:
    def test_random_sites_match_scalar_walk(self):
        rng = random.Random(7)
        for _ in range(25):
            site = Point(rng.uniform(0, 100), rng.uniform(0, 100))
            others = [
                Point(rng.uniform(0, 100), rng.uniform(0, 100))
                for _ in range(rng.randrange(1, 12))
            ]
            assert_refine_matches_oracle(site, others, Rect(0, 0, 100, 100))

    def test_colinear_candidates_match_scalar_walk(self):
        """All sites on one line: every bisector is parallel, successive
        clips leave slab-shaped cells."""
        site = Point(50.0, 25.0)
        others = [Point(x, 25.0) for x in (10.0, 30.0, 60.0, 80.0, 95.0)]
        assert_refine_matches_oracle(site, others, Rect(0, 0, 100, 50))

    def test_duplicate_distances_keep_candidate_order(self):
        """Equidistant candidates (exact ties in ``ds``): the kernel must
        process them in the given stable order, like the scalar loop."""
        site = Point(50.0, 50.0)
        others = [
            Point(40.0, 50.0),
            Point(60.0, 50.0),
            Point(50.0, 40.0),
            Point(50.0, 60.0),
        ]
        assert_refine_matches_oracle(site, others, Rect(0, 0, 100, 100))


coordinate = st.floats(
    min_value=0.0, max_value=512.0, allow_nan=False, allow_infinity=False
)
jitter = st.floats(
    min_value=-1e-6, max_value=1e-6, allow_nan=False, allow_infinity=False
)


class TestNearColinearProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        xs=st.lists(coordinate, min_size=2, max_size=8, unique=True),
        jitters=st.lists(jitter, min_size=8, max_size=8),
    )
    def test_near_colinear_bisector_clips_bit_identically(self, xs, jitters):
        """Sites within 1e-6 of one horizontal line: the bisectors are
        near-colinear near-vertical lines, the worst case for reassociated
        arithmetic.  Every clip must still match the scalar oracle bit for
        bit."""
        sites = [
            Point(x, 100.0 + jitters[i % len(jitters)]) for i, x in enumerate(xs)
        ]
        domain_ring = gk.ring_of_rect(Rect(0.0, 0.0, 512.0, 512.0))
        for p in sites[:2]:
            for q in sites:
                if p is q:
                    continue
                hp = bisector_halfplane(p, q)
                assert gk.clip_ring(
                    domain_ring, hp.a, hp.b, hp.c
                ) == scalar_clip(domain_ring, hp.a, hp.b, hp.c)

    @settings(max_examples=40, deadline=None)
    @given(
        xs=st.lists(coordinate, min_size=3, max_size=9, unique=True),
        jitters=st.lists(jitter, min_size=9, max_size=9),
    )
    def test_near_colinear_refinement_matches_scalar_walk(self, xs, jitters):
        sites = [
            Point(x, 100.0 + jitters[i % len(jitters)]) for i, x in enumerate(xs)
        ]
        assert_refine_matches_oracle(
            sites[0], sites[1:], Rect(0.0, 0.0, 512.0, 512.0)
        )

    @settings(max_examples=40, deadline=None)
    @given(
        xs=st.lists(coordinate, min_size=4, max_size=10, unique=True),
        jitters=st.lists(jitter, min_size=10, max_size=10),
        margin_sign=st.sampled_from([1.0, -1.0]),
    )
    def test_containment_mask_matches_scalar_predicate(
        self, xs, jitters, margin_sign
    ):
        """``points_in_polygon`` against ``_contains_point`` with both
        margin conventions, probing points that sit near the cell border."""
        sites = [
            Point(x, 100.0 + jitters[i % len(jitters)]) for i, x in enumerate(xs)
        ]
        ring, _, _, _ = gk.refine_ring_nearest_first(
            gk.ring_of_rect(Rect(0.0, 0.0, 512.0, 512.0)),
            sites[0].x,
            sites[0].y,
            *_sorted_candidates(sites[0], sites[1:]),
        )
        if len(ring) < 3:
            return
        polygon = gk.polygon_from_ring(ring)
        margin = margin_sign * BOUNDARY_EPS
        probes = [Point(p.x, p.y) for p in sites] + [
            Point(x, y) for x, y in ring
        ]
        mask = gk.points_in_polygon(
            np.array(ring, dtype=np.float64),
            np.array([p.x for p in probes]),
            np.array([p.y for p in probes]),
            margin,
        )
        scalar = [polygon._contains_point(p, margin) for p in probes]
        assert mask.tolist() == scalar


def _sorted_candidates(site, others):
    candidates = sorted(
        ((site.distance_to(o), o) for o in others), key=lambda pair: pair[0]
    )
    ring = gk.ring_of_rect(Rect(0.0, 0.0, 512.0, 512.0))
    vdist = gk.ring_distances(ring, site.x, site.y)
    return (
        [o.x for _, o in candidates],
        [o.y for _, o in candidates],
        [d for d, _ in candidates],
        vdist,
        2.0 * max(vdist) if vdist else 0.0,
    )
