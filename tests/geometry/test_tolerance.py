"""Regression tests for the unified numeric tolerance policy.

Historically the geometry predicates used four independent epsilons
(``1e-7`` in ``polygon.py``, ``1e-9`` in ``halfplane.py`` and
``influence.py``, ``1e-6`` in ``dynamic/maintenance.py``).  The observable
bug: a point within ``[1e-9, 1e-7]`` of a clip boundary was *outside* the
halfplane according to ``Halfplane.contains`` yet *kept* by
``ConvexPolygon.clip_halfplane`` — two predicates answering the same
topological question differently.  All boundary predicates now share
:data:`repro.geometry.tolerance.BOUNDARY_EPS` with the same normal-norm
scaling, so a near-boundary point gets one consistent verdict everywhere.
"""

import math
import pathlib
import re
import tokenize

import repro
from repro.geometry.halfplane import Halfplane, bisector_halfplane
from repro.geometry.point import Point
from repro.geometry.polygon import ConvexPolygon
from repro.geometry.tolerance import BOUNDARY_EPS, CONTAINMENT_EPS, TIE_SLACK

#: Distance from the clip boundary chosen strictly between the two historic
#: epsilons: far enough that the old 1e-9 halfplane test called the point
#: outside, close enough that the 1e-7 clipping tolerance kept it.
NEAR = 1e-8
#: A distance clearly beyond the unified tolerance: everything must agree
#: the point is outside.
FAR = 1e-4

#: The clip boundary x <= 5 (unit normal, so tolerances are in plain
#: distance units).
HP = Halfplane(1.0, 0.0, 5.0)


def square(x0: float, x1: float, y0: float = 0.0, y1: float = 1.0) -> ConvexPolygon:
    return ConvexPolygon(
        [Point(x0, y0), Point(x1, y0), Point(x1, y1), Point(x0, y1)]
    )


class TestUnifiedBoundaryVerdict:
    """One point near the boundary, one verdict from every predicate."""

    def test_constants_are_ordered_by_looseness(self):
        # containment (distance-vs-distance) < boundary (geometric) < tie
        # slack (deliberately conservative); the regression distance sits
        # inside the historic disagreement window.
        assert CONTAINMENT_EPS < BOUNDARY_EPS < TIE_SLACK
        assert CONTAINMENT_EPS < NEAR < BOUNDARY_EPS

    def test_halfplane_contains_agrees_with_clipping_near_boundary(self):
        p = Point(5.0 + NEAR, 0.5)
        # Halfplane verdict: within tolerance of the boundary -> contained.
        # (The historic 1e-9-scaled test said False here.)
        assert HP.contains(p)
        # Clipping verdict: a polygon vertex at the same signed distance
        # survives the clip unchanged -> the clip also treats it as inside.
        poly = square(4.0, 5.0 + NEAR)
        clipped = poly.clip_halfplane(HP)
        assert any(v.x == 5.0 + NEAR for v in clipped.vertices)

    def test_halfplane_contains_agrees_with_clipping_far_outside(self):
        p = Point(5.0 + FAR, 0.5)
        assert not HP.contains(p)
        clipped = square(4.0, 5.0 + FAR).clip_halfplane(HP)
        assert p not in clipped.vertices
        assert all(v.x <= 5.0 + BOUNDARY_EPS for v in clipped.vertices)

    def test_sat_interior_agrees_near_boundary(self):
        """The SAT tests see the same boundary: a polygon whose gap to
        another is below the tolerance *touches* it (closed test True),
        and the touching contact has zero area (open test False)."""
        inside = square(4.0, 5.0)  # right edge exactly on the boundary
        near = square(5.0 + NEAR, 5.5, 0.25, 0.75)  # NEAR beyond it
        assert inside.intersects(near)
        assert not inside.intersects_interior(near)

    def test_sat_agrees_far_outside(self):
        inside = square(4.0, 5.0)
        far = square(5.0 + FAR, 5.5, 0.25, 0.75)
        assert not inside.intersects(far)
        assert not inside.intersects_interior(far)

    def test_scaled_normals_get_the_same_geometric_tolerance(self):
        """The verdict must not depend on the magnitude of the halfplane
        coefficients: bisectors of nearby sites produce tiny normals,
        rescaled halfplanes produce huge ones, and the tolerance is scaled
        by the norm so both behave like the unit-normal case."""
        p = Point(5.0 + NEAR, 0.5)
        for scale in (1e-6, 1.0, 1e6):
            scaled = Halfplane(HP.a * scale, HP.b * scale, HP.c * scale)
            assert scaled.contains(p), scale
            assert not scaled.contains(Point(5.0 + FAR, 0.5)), scale

    def test_bisector_contains_matches_clip_of_domain(self):
        """End to end on a real bisector: the halfplane verdict for a
        near-boundary point matches whether clipping keeps that point."""
        a, b = Point(100.0, 100.0), Point(300.0, 100.0)
        hp = bisector_halfplane(a, b)  # boundary x = 200
        norm = math.sqrt(hp.a * hp.a + hp.b * hp.b)
        probe = Point(200.0 + NEAR, 150.0)
        assert hp.contains(probe)
        assert hp.value(probe) <= BOUNDARY_EPS * norm
        cell = ConvexPolygon(
            [Point(0.0, 0.0), Point(probe.x, 0.0), Point(probe.x, 200.0), Point(0.0, 200.0)]
        ).clip_halfplane(hp)
        assert any(v.x == probe.x for v in cell.vertices)


#: A float literal written in scientific notation with a negative exponent
#: (``1e-6``, ``2.5E-9``, ...) — the shape every historic private epsilon
#: took.  Plain decimals like ``0.5`` or ``10.0`` are workload parameters,
#: not tolerances, and are not matched.
EPSILON_LITERAL = re.compile(r"^\d+(?:\.\d+)?[eE]-\d+$")


class TestToleranceUnificationStaysUnified:
    """Source scan: ``tolerance.py`` is the only module defining epsilons.

    PR 6 folded four independent epsilons into
    ``repro.geometry.tolerance``; a fifth (``tolerance = 1e-6`` in
    ``join/baseline.py``) escaped that sweep and was only caught in review.
    This scan makes the unification self-enforcing: any new
    negative-exponent literal anywhere in ``src/repro`` outside
    ``tolerance.py`` fails the suite with a pointer here.  The scan uses
    ``tokenize`` so literals quoted in comments and docstrings (for
    example the history recounted in ``halfplane.py``) do not trip it —
    only real NUMBER tokens count.
    """

    def _scan(self):
        package_root = pathlib.Path(repro.__file__).resolve().parent
        offenders = []
        for source in sorted(package_root.rglob("*.py")):
            with tokenize.open(source) as handle:
                for tok in tokenize.generate_tokens(handle.readline):
                    if tok.type == tokenize.NUMBER and EPSILON_LITERAL.match(tok.string):
                        offenders.append(
                            (source.relative_to(package_root).as_posix(), tok.start[0], tok.string)
                        )
        return offenders

    def test_only_tolerance_module_defines_epsilon_literals(self):
        outside = [o for o in self._scan() if o[0] != "geometry/tolerance.py"]
        assert not outside, (
            "epsilon literals outside repro.geometry.tolerance — import "
            "BOUNDARY_EPS / CONTAINMENT_EPS / TIE_SLACK instead of "
            f"hardcoding: {outside}"
        )

    def test_scan_still_sees_the_canonical_definitions(self):
        """Guard the guard: if the tokenizer walk or the regex rot, the
        scan would pass vacuously — so pin that it finds the three
        canonical definitions in ``tolerance.py`` itself."""
        canonical = {
            (line, text)
            for path, line, text in self._scan()
            if path == "geometry/tolerance.py"
        }
        assert {text for _, text in canonical} == {"1e-7", "1e-9", "1e-6"}
