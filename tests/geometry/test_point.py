"""Tests for repro.geometry.point."""

import math

import pytest
from hypothesis import given

from repro.geometry.point import Point, centroid, dist, dist_sq, midpoint
from tests.conftest import points_strategy


class TestPoint:
    def test_distance_to_matches_euclidean_formula(self):
        a = Point(0.0, 0.0)
        b = Point(3.0, 4.0)
        assert a.distance_to(b) == pytest.approx(5.0)

    def test_distance_is_symmetric(self):
        a = Point(1.5, 2.5)
        b = Point(-3.0, 7.0)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_distance_sq_is_square_of_distance(self):
        a = Point(1.0, 2.0)
        b = Point(4.0, 6.0)
        assert a.distance_sq_to(b) == pytest.approx(a.distance_to(b) ** 2)

    def test_distance_to_self_is_zero(self):
        p = Point(12.0, -8.0)
        assert p.distance_to(p) == 0.0

    def test_points_are_hashable_and_equal_by_value(self):
        assert Point(1.0, 2.0) == Point(1.0, 2.0)
        assert len({Point(1.0, 2.0), Point(1.0, 2.0), Point(3.0, 4.0)}) == 2

    def test_points_are_immutable(self):
        p = Point(1.0, 2.0)
        with pytest.raises(AttributeError):
            p.x = 5.0

    def test_translated_moves_by_offsets(self):
        assert Point(1.0, 2.0).translated(3.0, -1.0) == Point(4.0, 1.0)

    def test_as_tuple_and_iteration(self):
        p = Point(7.0, 9.0)
        assert p.as_tuple() == (7.0, 9.0)
        assert tuple(p) == (7.0, 9.0)

    def test_ordering_is_lexicographic(self):
        assert Point(1.0, 5.0) < Point(2.0, 0.0)
        assert Point(1.0, 1.0) < Point(1.0, 2.0)


class TestModuleHelpers:
    def test_dist_and_method_agree(self):
        a = Point(0.0, 1.0)
        b = Point(2.0, 3.0)
        assert dist(a, b) == pytest.approx(a.distance_to(b))

    def test_dist_sq_avoids_sqrt(self):
        a = Point(0.0, 0.0)
        b = Point(2.0, 3.0)
        assert dist_sq(a, b) == pytest.approx(13.0)

    def test_midpoint_is_halfway(self):
        assert midpoint(Point(0.0, 0.0), Point(4.0, 6.0)) == Point(2.0, 3.0)

    def test_centroid_of_symmetric_square(self):
        square = [Point(0.0, 0.0), Point(2.0, 0.0), Point(2.0, 2.0), Point(0.0, 2.0)]
        assert centroid(square) == Point(1.0, 1.0)

    def test_centroid_of_single_point_is_itself(self):
        assert centroid([Point(5.0, 6.0)]) == Point(5.0, 6.0)

    def test_centroid_rejects_empty_input(self):
        with pytest.raises(ValueError):
            centroid([])

    def test_centroid_accepts_generators(self):
        assert centroid(Point(float(i), 0.0) for i in range(3)) == Point(1.0, 0.0)


class TestPointProperties:
    @given(points_strategy(), points_strategy())
    def test_triangle_inequality_with_origin(self, a, b):
        origin = Point(0.0, 0.0)
        assert dist(a, b) <= dist(a, origin) + dist(origin, b) + 1e-6

    @given(points_strategy(), points_strategy())
    def test_distance_non_negative_and_zero_iff_equal(self, a, b):
        d = dist(a, b)
        assert d >= 0.0
        if a == b:
            assert d == 0.0

    @given(points_strategy(), points_strategy())
    def test_midpoint_is_equidistant(self, a, b):
        m = midpoint(a, b)
        assert math.isclose(dist(a, m), dist(b, m), rel_tol=1e-9, abs_tol=1e-6)
