"""Property-based tests for convex polygon clipping and intersection."""

import pytest
from hypothesis import given, settings

from repro.geometry.halfplane import bisector_halfplane
from repro.geometry.polygon import ConvexPolygon
from repro.geometry.rect import Rect
from tests.conftest import distinct_pointsets, points_strategy

DOMAIN = Rect(0.0, 0.0, 10_000.0, 10_000.0)


def cells_from_sites(sites):
    """Brute-force Voronoi cells of every site, clipped to the domain."""
    cells = []
    for site in sites:
        polygon = ConvexPolygon.from_rect(DOMAIN)
        for other in sites:
            if other == site:
                continue
            polygon = polygon.clip_halfplane(bisector_halfplane(site, other))
        cells.append((site, polygon))
    return cells


class TestClippingProperties:
    @given(distinct_pointsets(min_size=2, max_size=8), points_strategy())
    @settings(max_examples=60, deadline=None)
    def test_clipping_never_grows_area(self, sites, probe):
        polygon = ConvexPolygon.from_rect(DOMAIN)
        previous_area = polygon.area()
        site = sites[0]
        for other in sites[1:]:
            polygon = polygon.clip_halfplane(bisector_halfplane(site, other))
            area = polygon.area()
            assert area <= previous_area + 1e-6
            previous_area = area

    @given(distinct_pointsets(min_size=2, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_voronoi_cell_contains_its_site(self, sites):
        for site, polygon in cells_from_sites(sites):
            assert polygon.contains_point(site, eps=1e-6)

    @given(distinct_pointsets(min_size=2, max_size=7))
    @settings(max_examples=40, deadline=None)
    def test_voronoi_cells_tile_the_domain(self, sites):
        cells = cells_from_sites(sites)
        total = sum(polygon.area() for _, polygon in cells)
        assert total == pytest.approx(DOMAIN.area(), rel=1e-6)

    @given(distinct_pointsets(min_size=2, max_size=7), points_strategy())
    @settings(max_examples=60, deadline=None)
    def test_cell_membership_matches_nearest_site(self, sites, probe):
        cells = cells_from_sites(sites)
        distances = [probe.distance_to(site) for site, _ in cells]
        nearest = min(distances)
        for (site, polygon), distance in zip(cells, distances):
            if distance > nearest + 1e-6:
                # Strictly farther sites must not claim the probe point
                # (except within a numeric tolerance strip at boundaries).
                if polygon.contains_point(probe, eps=0.0):
                    assert distance == pytest.approx(nearest, abs=1e-3)
            elif distance == nearest:
                assert polygon.contains_point(probe, eps=1e-6)


class TestIntersectionProperties:
    @given(distinct_pointsets(min_size=3, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_intersection_is_commutative_on_cells(self, sites):
        cells = [polygon for _, polygon in cells_from_sites(sites)]
        for i in range(len(cells)):
            for j in range(i + 1, len(cells)):
                assert cells[i].intersects(cells[j]) == cells[j].intersects(cells[i])

    @given(distinct_pointsets(min_size=3, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_intersection_area_never_exceeds_either_operand(self, sites):
        cells = [polygon for _, polygon in cells_from_sites(sites)]
        for i in range(len(cells)):
            for j in range(i + 1, len(cells)):
                common = cells[i].intersection(cells[j])
                assert common.area() <= cells[i].area() + 1e-6
                assert common.area() <= cells[j].area() + 1e-6

    @given(distinct_pointsets(min_size=3, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_nonempty_intersection_implies_intersects(self, sites):
        cells = [polygon for _, polygon in cells_from_sites(sites)]
        for i in range(len(cells)):
            for j in range(i + 1, len(cells)):
                common = cells[i].intersection(cells[j])
                if not common.is_empty() and common.area() > 1e-6:
                    assert cells[i].intersects(cells[j])
