"""Tests for the Φ(L, p) influence region (Equation 3 and Lemma 3)."""

import pytest
from hypothesis import given, settings

from repro.geometry.influence import (
    entry_pruned_by_candidate,
    phi_contains_point,
    phi_contains_point_piecewise,
    polygon_within_phi,
    rect_sides,
)
from repro.geometry.point import Point
from repro.geometry.polygon import ConvexPolygon
from repro.geometry.rect import Rect
from repro.geometry.segment import Segment
from tests.conftest import points_strategy


class TestPhiMembership:
    def test_point_near_p_is_inside(self):
        segment = Segment(Point(10.0, 0.0), Point(10.0, 10.0))
        p = Point(0.0, 5.0)
        assert phi_contains_point(segment, p, Point(1.0, 5.0))

    def test_point_near_segment_is_outside(self):
        segment = Segment(Point(10.0, 0.0), Point(10.0, 10.0))
        p = Point(0.0, 5.0)
        assert not phi_contains_point(segment, p, Point(9.5, 5.0))

    def test_p_itself_is_always_inside(self):
        segment = Segment(Point(3.0, 3.0), Point(8.0, 3.0))
        p = Point(1.0, 9.0)
        assert phi_contains_point(segment, p, p)

    def test_equidistant_location_counts_as_inside(self):
        segment = Segment(Point(4.0, 0.0), Point(4.0, 10.0))
        p = Point(0.0, 5.0)
        assert phi_contains_point(segment, p, Point(2.0, 5.0))

    @given(points_strategy(), points_strategy(), points_strategy(), points_strategy())
    @settings(max_examples=150, deadline=None)
    def test_direct_and_piecewise_formulations_agree(self, a, b, p, location):
        segment = Segment(a, b)
        direct = phi_contains_point(segment, p, location)
        piecewise = phi_contains_point_piecewise(segment, p, location)
        assert direct == piecewise


class TestLemma3:
    def test_polygon_inside_phi(self):
        segment = Segment(Point(100.0, 0.0), Point(100.0, 100.0))
        p = Point(0.0, 50.0)
        target = ConvexPolygon.from_rect(Rect(0.0, 40.0, 10.0, 60.0))
        assert polygon_within_phi(target, segment, p)

    def test_polygon_partially_outside_phi(self):
        segment = Segment(Point(20.0, 0.0), Point(20.0, 100.0))
        p = Point(0.0, 50.0)
        target = ConvexPolygon.from_rect(Rect(0.0, 40.0, 18.0, 60.0))
        assert not polygon_within_phi(target, segment, p)

    def test_empty_polygon_is_vacuously_inside(self):
        segment = Segment(Point(0.0, 0.0), Point(1.0, 0.0))
        assert polygon_within_phi(ConvexPolygon.empty(), segment, Point(5.0, 5.0))

    @given(points_strategy(), points_strategy(), points_strategy())
    @settings(max_examples=80, deadline=None)
    def test_vertex_containment_implies_sample_containment(self, a, b, p):
        """Lemma 3: if all vertices are inside Φ, interior samples are too."""
        segment = Segment(a, b)
        target = ConvexPolygon.from_rect(Rect(2000.0, 2000.0, 2400.0, 2300.0))
        if polygon_within_phi(target, segment, p):
            for probe in target.bounding_rect().sample_grid(3):
                assert phi_contains_point(segment, p, probe)


class TestEntryPruning:
    def test_candidate_between_entry_and_target_prunes(self):
        # Candidate sits between the far-away entry MBR and the target cell,
        # so no point inside the MBR can reach the target with its cell.
        entry_mbr = Rect(8000.0, 8000.0, 9000.0, 9000.0)
        target = ConvexPolygon.from_rect(Rect(100.0, 100.0, 300.0, 300.0))
        candidate = Point(350.0, 350.0)
        assert entry_pruned_by_candidate(entry_mbr, target, candidate)

    def test_far_candidate_does_not_prune(self):
        entry_mbr = Rect(400.0, 100.0, 600.0, 300.0)
        target = ConvexPolygon.from_rect(Rect(100.0, 100.0, 300.0, 300.0))
        candidate = Point(9000.0, 9000.0)
        assert not entry_pruned_by_candidate(entry_mbr, target, candidate)

    def test_empty_target_is_always_pruned(self):
        entry_mbr = Rect(0.0, 0.0, 10.0, 10.0)
        assert entry_pruned_by_candidate(entry_mbr, ConvexPolygon.empty(), Point(1.0, 1.0))

    def test_rect_sides_form_the_boundary(self):
        rect = Rect(0.0, 0.0, 4.0, 2.0)
        sides = rect_sides(rect)
        assert len(sides) == 4
        total_length = sum(side.length() for side in sides)
        assert total_length == pytest.approx(rect.perimeter())

    def test_pruning_rule_is_safe(self):
        """If a candidate prunes an MBR, no point inside the MBR can have a
        Voronoi cell (w.r.t. a set containing the candidate) reaching the
        target polygon."""
        entry_mbr = Rect(6000.0, 6000.0, 7000.0, 7000.0)
        target = ConvexPolygon.from_rect(Rect(500.0, 500.0, 900.0, 900.0))
        candidate = Point(1200.0, 1200.0)
        if entry_pruned_by_candidate(entry_mbr, target, candidate):
            from repro.geometry.halfplane import bisector_halfplane

            domain = ConvexPolygon.from_rect(Rect(0.0, 0.0, 10_000.0, 10_000.0))
            for hidden in entry_mbr.sample_grid(3):
                cell = domain.clip_halfplane(bisector_halfplane(hidden, candidate))
                assert not cell.intersects(target)
