"""Tests for repro.geometry.polygon (convex polygons and clipping)."""

import pytest

from repro.geometry.halfplane import Halfplane, bisector_halfplane
from repro.geometry.point import Point
from repro.geometry.polygon import ConvexPolygon
from repro.geometry.rect import Rect

UNIT_SQUARE = Rect(0.0, 0.0, 10.0, 10.0)


class TestConstruction:
    def test_from_rect_has_four_ccw_vertices(self):
        poly = ConvexPolygon.from_rect(UNIT_SQUARE)
        assert len(poly) == 4
        assert poly.area() == pytest.approx(100.0)

    def test_empty_polygon(self):
        poly = ConvexPolygon.empty()
        assert poly.is_empty()
        assert poly.area() == 0.0
        assert not poly.contains_point(Point(0.0, 0.0))

    def test_clockwise_input_is_reoriented(self):
        cw = [Point(0, 0), Point(0, 4), Point(4, 4), Point(4, 0)]
        poly = ConvexPolygon(cw)
        assert poly.area() == pytest.approx(16.0)
        # Shoelace on the stored ring must be positive (CCW).
        verts = poly.vertices
        shoelace = sum(
            verts[i].x * verts[(i + 1) % len(verts)].y
            - verts[(i + 1) % len(verts)].x * verts[i].y
            for i in range(len(verts))
        )
        assert shoelace > 0

    def test_duplicate_vertices_are_removed(self):
        poly = ConvexPolygon(
            [Point(0, 0), Point(0, 0), Point(4, 0), Point(4, 4), Point(0, 4), Point(0, 0)]
        )
        assert len(poly) == 4

    def test_degenerate_two_vertex_polygon_is_empty(self):
        poly = ConvexPolygon([Point(0, 0), Point(1, 1)])
        assert poly.is_empty()

    def test_equality_and_hash(self):
        a = ConvexPolygon.from_rect(UNIT_SQUARE)
        b = ConvexPolygon.from_rect(UNIT_SQUARE)
        assert a == b
        assert hash(a) == hash(b)


class TestMeasures:
    def test_triangle_area_and_centroid(self):
        tri = ConvexPolygon([Point(0, 0), Point(6, 0), Point(0, 6)])
        assert tri.area() == pytest.approx(18.0)
        assert tri.centroid() == Point(2.0, 2.0)

    def test_centroid_of_empty_polygon_raises(self):
        with pytest.raises(ValueError):
            ConvexPolygon.empty().centroid()

    def test_bounding_rect(self):
        tri = ConvexPolygon([Point(1, 2), Point(5, 3), Point(2, 8)])
        rect = tri.bounding_rect()
        assert rect == Rect(1, 2, 5, 8)

    def test_bounding_rect_of_empty_raises(self):
        with pytest.raises(ValueError):
            ConvexPolygon.empty().bounding_rect()


class TestContainsPoint:
    def test_interior_boundary_and_exterior(self):
        square = ConvexPolygon.from_rect(UNIT_SQUARE)
        assert square.contains_point(Point(5.0, 5.0))
        assert square.contains_point(Point(0.0, 5.0))
        assert square.contains_point(Point(10.0, 10.0))
        assert not square.contains_point(Point(10.5, 5.0))
        assert not square.contains_point(Point(-0.1, 0.0))


class TestClipping:
    def test_clip_keeps_half_of_square(self):
        square = ConvexPolygon.from_rect(UNIT_SQUARE)
        clipped = square.clip_halfplane(Halfplane(1.0, 0.0, 5.0))  # x <= 5
        assert clipped.area() == pytest.approx(50.0)
        assert clipped.bounding_rect() == Rect(0, 0, 5, 10)

    def test_clip_by_non_cutting_halfplane_is_identity(self):
        square = ConvexPolygon.from_rect(UNIT_SQUARE)
        clipped = square.clip_halfplane(Halfplane(1.0, 0.0, 50.0))  # x <= 50
        assert clipped.vertices == square.vertices

    def test_clip_away_everything_gives_empty(self):
        square = ConvexPolygon.from_rect(UNIT_SQUARE)
        clipped = square.clip_halfplane(Halfplane(1.0, 0.0, -5.0))  # x <= -5
        assert clipped.is_empty()

    def test_clip_empty_polygon_stays_empty(self):
        assert ConvexPolygon.empty().clip_halfplane(Halfplane(1.0, 0.0, 5.0)).is_empty()

    def test_sequential_bisector_clips_form_voronoi_cell(self):
        # The cell of (2,2) among {(2,2), (8,2), (2,8)} within the square.
        site = Point(2.0, 2.0)
        square = ConvexPolygon.from_rect(UNIT_SQUARE)
        cell = square.clip_halfplane(bisector_halfplane(site, Point(8.0, 2.0)))
        cell = cell.clip_halfplane(bisector_halfplane(site, Point(2.0, 8.0)))
        assert cell.contains_point(site)
        assert cell.area() == pytest.approx(25.0)
        assert not cell.contains_point(Point(6.0, 6.0))

    def test_clip_rect_matches_intersection_with_rect_polygon(self):
        tri = ConvexPolygon([Point(-5, -5), Point(15, 0), Point(5, 15)])
        window = Rect(0, 0, 10, 10)
        a = tri.clip_rect(window)
        b = tri.intersection(ConvexPolygon.from_rect(window))
        assert a.area() == pytest.approx(b.area(), rel=1e-9)


class TestIntersection:
    def test_overlapping_squares_intersect(self):
        a = ConvexPolygon.from_rect(Rect(0, 0, 4, 4))
        b = ConvexPolygon.from_rect(Rect(2, 2, 6, 6))
        assert a.intersects(b)
        assert a.intersection(b).area() == pytest.approx(4.0)

    def test_disjoint_squares_do_not_intersect(self):
        a = ConvexPolygon.from_rect(Rect(0, 0, 1, 1))
        b = ConvexPolygon.from_rect(Rect(5, 5, 6, 6))
        assert not a.intersects(b)
        assert a.intersection(b).is_empty()

    def test_touching_squares_count_as_intersecting(self):
        a = ConvexPolygon.from_rect(Rect(0, 0, 2, 2))
        b = ConvexPolygon.from_rect(Rect(2, 0, 4, 2))
        assert a.intersects(b)

    def test_nested_polygons_intersect(self):
        outer = ConvexPolygon.from_rect(Rect(0, 0, 10, 10))
        inner = ConvexPolygon.from_rect(Rect(4, 4, 5, 5))
        assert outer.intersects(inner)
        assert inner.intersects(outer)

    def test_intersects_rect_helper(self):
        tri = ConvexPolygon([Point(0, 0), Point(4, 0), Point(0, 4)])
        assert tri.intersects_rect(Rect(1, 1, 2, 2))
        assert not tri.intersects_rect(Rect(5, 5, 6, 6))

    def test_empty_polygon_never_intersects(self):
        square = ConvexPolygon.from_rect(UNIT_SQUARE)
        assert not ConvexPolygon.empty().intersects(square)
        assert not square.intersects(ConvexPolygon.empty())

    def test_edge_halfplanes_reconstruct_polygon(self):
        tri = ConvexPolygon([Point(0, 0), Point(6, 0), Point(0, 6)])
        rebuilt = ConvexPolygon.from_rect(UNIT_SQUARE)
        for hp in tri.edge_halfplanes():
            rebuilt = rebuilt.clip_halfplane(hp)
        assert rebuilt.area() == pytest.approx(tri.area(), rel=1e-9)
