"""Crash safety of the slotted file store.

A page update writes its new record into a *different* slot before the old
slot is invalidated, and every record carries a CRC-32 of its contents.
Reopening a store after an interrupted write sequence must therefore see
either the old page or the new one — never a torn payload — because the
slot scan keeps, per page, the newest record whose checksum verifies.
"""

from __future__ import annotations

import struct

import pytest

from repro.storage.backends import FilePageStore, _REC_HEADER, _SimulatedCrash


@pytest.fixture
def store_path(tmp_path) -> str:
    return str(tmp_path / "pages.bin")


def reopen(path: str) -> FilePageStore:
    return FilePageStore(path)


class TestInterruptedWrites:
    def test_torn_update_recovers_old_payload(self, store_path):
        store = FilePageStore(store_path)
        store.write_page(1, "RP", {"version": 1}, 1024)
        store.write_page(2, "RP", "other", 1024)
        # Crash partway through writing version 2's record: only a prefix of
        # the new slot lands on disk, the directory is never updated, the
        # old slot is never invalidated.
        store._crash_after_bytes = _REC_HEADER.size + 3
        with pytest.raises(_SimulatedCrash):
            store.write_page(1, "RP", {"version": 2}, 1024)
        store._file.close()  # the "process" dies without cleanup

        recovered = reopen(store_path)
        try:
            assert recovered.read_page(1).payload == {"version": 1}
            assert recovered.read_page(2).payload == "other"
            assert sorted(recovered.page_ids()) == [1, 2]
        finally:
            recovered.close()

    def test_torn_header_recovers_old_payload(self, store_path):
        store = FilePageStore(store_path)
        store.write_page(1, "RP", "old", 1024)
        store._crash_after_bytes = 2  # not even the record magic completes
        with pytest.raises(_SimulatedCrash):
            store.write_page(1, "RP", "new", 1024)
        store._file.close()

        recovered = reopen(store_path)
        try:
            assert recovered.read_page(1).payload == "old"
        finally:
            recovered.close()

    def test_complete_record_wins_even_without_cleanup(self, store_path):
        """Crash *after* the new record is durable but *before* the old slot
        is invalidated: both records verify, the higher sequence wins."""
        store = FilePageStore(store_path)
        store.write_page(1, "RP", "old", 1024)

        def crash(_slot):
            raise _SimulatedCrash("died before invalidating the old slot")

        store._clear_slot = crash
        with pytest.raises(_SimulatedCrash):
            store.write_page(1, "RP", "new", 1024)
        store._file.close()

        recovered = reopen(store_path)
        try:
            assert recovered.read_page(1).payload == "new"
        finally:
            recovered.close()

    def test_corrupted_payload_bytes_never_surface(self, store_path):
        """Flipping bytes inside a record's payload invalidates its CRC; the
        scan must drop the page rather than decode garbage."""
        store = FilePageStore(store_path)
        store.write_page(1, "RP", {"k": "v"}, 1024)
        offset = store._slot_offset(store._dir[1][0]) + _REC_HEADER.size + 4
        store._file.seek(offset)
        store._file.write(b"\xff\xff\xff")
        store._file.flush()
        store._file.close()

        recovered = reopen(store_path)
        try:
            assert recovered.page_ids() == []
            with pytest.raises(KeyError):
                recovered.read_page(1)
        finally:
            recovered.close()

    def test_truncated_trailing_slot_is_ignored(self, store_path):
        """A crash can leave a half-extended file; the partial slot must
        read as free space, not as a page."""
        store = FilePageStore(store_path)
        store.write_page(1, "RP", "keep", 1024)
        end = store._slot_offset(2) - 100  # slot 1 exists only partially
        store._file.truncate(end)
        fake_header = struct.pack("<I", 0x43504A52)
        store._file.seek(store._slot_offset(1))
        store._file.write(fake_header)  # magic with no body behind it
        store._file.flush()
        store._file.close()

        recovered = reopen(store_path)
        try:
            assert recovered.page_ids() == [1]
            assert recovered.read_page(1).payload == "keep"
        finally:
            recovered.close()

    def test_freed_page_cannot_resurrect_from_torn_slot_reuse(self, store_path):
        """Regression: slot invalidation must zero the whole record header.

        Every record starts with the same 4-byte magic, so a write torn
        after exactly those bytes would re-arm a slot that was invalidated
        by zeroing only the magic — resurrecting the freed page with a
        valid checksum on reopen."""
        store = FilePageStore(store_path)
        store.write_page(1, "RP", "freed payload", 1024)
        store.free_page(1)
        store._crash_after_bytes = 4  # exactly the record magic lands
        with pytest.raises(_SimulatedCrash):
            store.write_page(2, "RP", "in flight", 1024)  # reuses the slot
        store._file.close()

        recovered = reopen(store_path)
        try:
            assert recovered.page_ids() == []
        finally:
            recovered.close()

    def test_old_version_cannot_resurrect_from_torn_slot_reuse(self, store_path):
        """Same hole for updates: page 1's superseded slot is reused by a
        torn write; reopen must see only version 2, never version 1."""
        store = FilePageStore(store_path)
        store.write_page(1, "RP", "version 1", 1024)
        store.write_page(1, "RP", "version 2", 1024)  # old slot invalidated
        store._crash_after_bytes = 4
        with pytest.raises(_SimulatedCrash):
            store.write_page(2, "RP", "in flight", 1024)  # reuses old slot
        store._file.close()

        recovered = reopen(store_path)
        try:
            assert recovered.page_ids() == [1]
            assert recovered.read_page(1).payload == "version 2"
        finally:
            recovered.close()

    def test_crash_during_initial_write_loses_only_that_page(self, store_path):
        store = FilePageStore(store_path)
        store.write_page(1, "RP", "committed", 1024)
        store._crash_after_bytes = _REC_HEADER.size + 1
        with pytest.raises(_SimulatedCrash):
            store.write_page(2, "RP", "in flight", 1024)
        store._file.close()

        recovered = reopen(store_path)
        try:
            assert recovered.page_ids() == [1]
            assert recovered.read_page(1).payload == "committed"
        finally:
            recovered.close()
