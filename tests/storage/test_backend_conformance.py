"""Backend-conformance suite: every PageStore behaves like the memory one.

One parametrized fixture runs the same scenarios over the memory, file,
SQLite and remote (page-server) backends: page round-trips, freeing, LRU
hit/miss accounting, buffer resizing and counter totals must be
indistinguishable across backends — only the physical byte movement
(``storage_stats``) may differ.
"""

from __future__ import annotations

import pytest

from repro.geometry.point import Point
from repro.geometry.polygon import ConvexPolygon
from repro.geometry.rect import Rect
from repro.index.entries import BranchEntry, LeafEntry, Node
from repro.storage.backends import (
    STORAGE_BACKENDS,
    FilePageStore,
    PageStore,
    PageStoreBase,
    SQLitePageStore,
    create_page_store,
    open_store,
)
from repro.storage.disk import DiskManager
from repro.voronoi.cell import VoronoiCell

BACKENDS = list(STORAGE_BACKENDS)


@pytest.fixture(params=BACKENDS)
def backend(request) -> str:
    return request.param


@pytest.fixture
def disk(backend) -> DiskManager:
    manager = DiskManager(buffer_pages=4, storage=backend)
    yield manager
    manager.close()


def make_leaf_node() -> Node:
    return Node(
        0,
        [
            LeafEntry.for_point(7, Point(1.5, 2.25)),
            LeafEntry.for_point(9, Point(4.0, 8.0)),
        ],
    )


def make_branch_node() -> Node:
    return Node(1, [BranchEntry(Rect(0.0, 0.0, 10.0, 10.0), 42)])


def make_cell_node() -> Node:
    polygon = ConvexPolygon(
        [Point(0.0, 0.0), Point(4.0, 0.0), Point(4.0, 3.0), Point(0.0, 3.0)]
    )
    cell = VoronoiCell(3, Point(2.0, 1.5), polygon)
    return Node(0, [LeafEntry.for_cell(3, cell.mbr(), cell, cell.vertex_count())])


class TestRoundTrips:
    def test_plain_payload_round_trip(self, disk):
        page = disk.allocate("RP", {"k": [1, 2, 3]}, size_bytes=64)
        disk.buffer.clear()
        assert disk.read(page) == {"k": [1, 2, 3]}
        assert disk.peek(page) == {"k": [1, 2, 3]}

    def test_point_node_round_trip(self, disk):
        page = disk.allocate("RP", make_leaf_node())
        disk.buffer.clear()
        node = disk.read(page)
        assert node.level == 0
        assert [e.oid for e in node.entries] == [7, 9]
        assert node.entries[0].payload == Point(1.5, 2.25)
        assert node.entries[0].mbr == Rect.from_point(Point(1.5, 2.25))
        assert node.entries[0].size_bytes == 20

    def test_branch_node_round_trip(self, disk):
        page = disk.allocate("RP", make_branch_node())
        disk.buffer.clear()
        node = disk.read(page)
        assert node.level == 1
        assert node.entries[0].child_page == 42
        assert node.entries[0].mbr == Rect(0.0, 0.0, 10.0, 10.0)

    def test_voronoi_cell_node_round_trip(self, disk):
        page = disk.allocate("RP_vor", make_cell_node())
        disk.buffer.clear()
        cell = disk.read(page).entries[0].payload
        assert cell.oid == 3
        assert cell.site == Point(2.0, 1.5)
        assert cell.polygon.vertices == (
            Point(0.0, 0.0),
            Point(4.0, 0.0),
            Point(4.0, 3.0),
            Point(0.0, 3.0),
        )
        assert cell.area() == pytest.approx(12.0)

    def test_overwrite_replaces_payload(self, disk):
        page = disk.allocate("RP", "before")
        disk.write(page, "after")
        disk.buffer.clear()
        assert disk.read(page) == "after"

    def test_write_preserves_tag_and_size(self, disk):
        page = disk.allocate("RQ", "x", size_bytes=77)
        disk.write(page, "y")
        assert disk.data_size_bytes("RQ") == 77
        disk.reset_counters()
        disk.buffer.clear()
        disk.read(page)
        assert disk.counters.by_tag == {"RQ": 1}

    def test_unknown_page_raises_keyerror(self, disk):
        with pytest.raises(KeyError):
            disk.read(999)
        with pytest.raises(KeyError):
            disk.write(999, "nope")
        with pytest.raises(KeyError):
            disk.peek(999)

    def test_free_releases_page(self, disk):
        page = disk.allocate("RP", 1)
        disk.free(page)
        with pytest.raises(KeyError):
            disk.read(page)
        assert disk.page_count() == 0

    def test_page_count_and_data_size_by_tag(self, disk):
        disk.allocate("RP", 1)
        disk.allocate("RP", 2, size_bytes=100)
        disk.allocate("RQ", 3)
        assert disk.page_count() == 3
        assert disk.page_count("RP") == 2
        assert disk.data_size_bytes("RP") == disk.page_size + 100
        assert disk.data_size_bytes("RQ") == disk.page_size


class TestAccountingParity:
    """The same access script yields the same counters on every backend."""

    @staticmethod
    def _run_script(backend: str):
        disk = DiskManager(buffer_pages=2, storage=backend)
        try:
            pages = [disk.allocate("RP", {"page": i}) for i in range(4)]
            disk.reset_counters()
            disk.buffer.clear()
            for page in pages:  # all cold: 4 misses
                disk.read(page)
            disk.read(pages[3])  # hit
            disk.read(pages[2])  # hit
            disk.read(pages[0])  # miss (evicted), evicts 3
            disk.read(pages[3])  # miss again
            with disk.suspend_io_accounting():
                disk.read(pages[1])  # uncharged
            disk.write(pages[1], {"page": "new"})
            disk.resize_buffer(1)
            disk.read(pages[1])  # buffer kept MRU page 1: hit
            disk.read(pages[2])  # miss
            counters = disk.counters.snapshot()
            return (
                counters.reads,
                counters.writes,
                counters.logical_reads,
                counters.buffer_hits,
                dict(counters.by_tag),
            )
        finally:
            disk.close()

    def test_counters_identical_across_backends(self):
        reference = self._run_script("memory")
        for backend_name in BACKENDS[1:]:
            assert self._run_script(backend_name) == reference, backend_name

    def test_buffered_read_hits_do_not_touch_backend(self, backend):
        disk = DiskManager(buffer_pages=4, storage=backend)
        try:
            page = disk.allocate("RP", make_leaf_node())
            disk.buffer.clear()
            disk.read(page)  # miss: moves bytes on serializing backends
            read_after_miss = disk.storage_stats().bytes_read
            disk.read(page)
            disk.read(page)
            assert disk.storage_stats().bytes_read == read_after_miss
            assert disk.counters.buffer_hits == 2
            if backend != "memory":
                assert read_after_miss > 0
        finally:
            disk.close()

    def test_bufferless_reads_always_move_bytes(self, backend):
        disk = DiskManager(buffer_pages=0, storage=backend)
        try:
            page = disk.allocate("RP", make_leaf_node())
            disk.read(page)
            first = disk.storage_stats().bytes_read
            disk.read(page)
            second = disk.storage_stats().bytes_read
            assert disk.counters.reads == 2
            assert disk.counters.buffer_hits == 0
            if backend == "memory":
                assert second == 0
            else:
                assert first > 0
                assert second == 2 * first  # every miss re-reads the bytes
        finally:
            disk.close()

    def test_peek_moves_no_counted_bytes(self, backend):
        disk = DiskManager(buffer_pages=0, storage=backend)
        try:
            page = disk.allocate("RP", make_leaf_node())
            disk.reset_counters()
            disk.peek(page)
            disk.peek(page)
            assert disk.counters.page_accesses == 0
            # Oracle/maintenance access stays out of storage_stats too, so
            # bytes_read keeps meaning "bytes pulled by buffer misses".
            assert disk.storage_stats().bytes_read == 0
        finally:
            disk.close()

    def test_set_buffer_fraction_matches_memory_semantics(self, backend):
        disk = DiskManager(storage=backend)
        try:
            for _ in range(100):
                disk.allocate("RP", 0)
            disk.set_buffer_fraction(0.05)
            assert disk.buffer.capacity == 5
            disk.set_buffer_fraction(0.0)
            assert disk.buffer.capacity == 0
        finally:
            disk.close()


class TestFreedPageRecycling:
    """Freeing must evict the page id from the buffer: a recycled id would
    otherwise inherit the dead page's residency and report a phantom hit."""

    def test_recycled_id_does_not_phantom_hit(self, backend):
        disk = DiskManager(buffer_pages=4, storage=backend)
        try:
            page = disk.allocate("RP", "original")
            disk.read(page)  # resident in the buffer
            disk.free(page)
            with disk.suspend_io_accounting():
                recycled = disk.allocate("RP", "recycled")
            assert recycled == page  # the id was recycled
            disk.reset_counters()
            disk.read(recycled)
            assert disk.counters.buffer_hits == 0  # must miss: never admitted
            assert disk.counters.reads == 1
            assert disk.read(recycled) == "recycled"
        finally:
            disk.close()

    def test_free_then_read_raises_even_if_buffered(self, backend):
        disk = DiskManager(buffer_pages=4, storage=backend)
        try:
            page = disk.allocate("RP", "x")
            disk.read(page)
            disk.free(page)
            with pytest.raises(KeyError):
                disk.read(page)
        finally:
            disk.close()


class TestPersistenceAcrossReopen:
    """File and SQLite stores survive a close/reopen cycle; page-id
    allocation resumes above the highest stored id."""

    @pytest.mark.parametrize("backend_name", ["file", "sqlite"])
    def test_reopen_sees_all_pages(self, backend_name, tmp_path):
        path = str(tmp_path / f"pages-{backend_name}")
        disk = DiskManager(storage=backend_name, storage_path=path)
        ids = [disk.allocate("RP", {"i": i}) for i in range(5)]
        node_page = disk.allocate("RQ", make_leaf_node())
        disk.free(ids[2])
        disk.store.close()

        reopened = DiskManager(store=create_page_store(backend_name, path))
        try:
            assert sorted(reopened.store.page_ids()) == sorted(
                [i for i in ids if i != ids[2]] + [node_page]
            )
            assert reopened.read(ids[0]) == {"i": 0}
            node = reopened.read(node_page)
            assert [e.oid for e in node.entries] == [7, 9]
            assert reopened.page_count("RP") == 4
            fresh = reopened.allocate("RP", "fresh")
            assert fresh > max(ids + [node_page])
        finally:
            reopened.close()

    def test_sqlite_is_readable_by_a_second_connection(self, tmp_path):
        path = str(tmp_path / "pages.sqlite")
        writer = SQLitePageStore(path)
        writer.write_page(1, "RP", {"shared": True}, 1024)
        reader = SQLitePageStore(path)
        reader.reopen_in_worker()  # read-only second connection
        try:
            assert reader.read_page(1).payload == {"shared": True}
            with pytest.raises(RuntimeError):
                reader.write_page(2, "RP", "nope", 1024)
        finally:
            reader.close()
            writer.close()


class TestFileStoreSpecifics:
    def test_payload_larger_than_slot_triggers_rebuild(self, tmp_path):
        store = FilePageStore(str(tmp_path / "grow.bin"), slot_size=256)
        try:
            store.write_page(1, "RP", "small", 1024)
            big = "x" * 4096
            store.write_page(2, "RP", big, 1024)
            assert store.read_page(1).payload == "small"
            assert store.read_page(2).payload == big
            assert store.stats().extra["slot_size"] >= 4096
        finally:
            store.close()

    def test_freed_slots_are_reused(self, tmp_path):
        store = FilePageStore(str(tmp_path / "reuse.bin"))
        try:
            for i in range(8):
                store.write_page(i, "RP", f"p{i}", 1024)
            file_bytes = store.stats().file_bytes
            for i in range(8):
                store.free_page(i)
            for i in range(8):
                store.write_page(100 + i, "RP", f"n{i}", 1024)
            assert store.stats().file_bytes == file_bytes
        finally:
            store.close()

    def test_seek_read_fallback_matches_mmap(self, tmp_path):
        plain = FilePageStore(str(tmp_path / "plain.bin"), use_mmap=False)
        mapped = FilePageStore(str(tmp_path / "mapped.bin"), use_mmap=True)
        try:
            node = make_cell_node()
            plain.write_page(1, "RP", node, 1024)
            mapped.write_page(1, "RP", node, 1024)
            a = plain.read_page(1).payload.entries[0].payload
            b = mapped.read_page(1).payload.entries[0].payload
            assert a.polygon.vertices == b.polygon.vertices
        finally:
            plain.close()
            mapped.close()

    def test_memory_backend_rejects_storage_path(self):
        with pytest.raises(ValueError, match="storage_path requires"):
            create_page_store("memory", "/tmp/nonsense.bin")
        with pytest.raises(ValueError, match="storage_path requires"):
            DiskManager(storage_path="/tmp/nonsense.bin")  # default backend

    def test_owned_temp_file_removed_on_close(self):
        store = FilePageStore()
        path = store.path
        store.write_page(1, "RP", "x", 1024)
        import os

        assert os.path.exists(path)
        store.close()
        assert not os.path.exists(path)


class TestCapabilityContract:
    """Every backend satisfies the PageStore protocol and states its
    capabilities honestly (the factory and executors gate on these flags,
    never on backend-name strings)."""

    EXPECTED_FLAGS = {
        # backend: (supports_async, supports_worker_reopen, supports_remote)
        "memory": (False, True, False),
        "file": (True, True, False),
        "sqlite": (True, True, False),
        "remote": (True, True, True),
    }

    def test_every_backend_satisfies_the_protocol(self, backend):
        store = create_page_store(backend)
        try:
            assert isinstance(store, PageStore)
            assert isinstance(store, PageStoreBase)
            assert store.name == backend
            flags = (
                store.supports_async,
                store.supports_worker_reopen,
                store.supports_remote,
            )
            assert flags == self.EXPECTED_FLAGS[backend]
        finally:
            store.close()

    def test_worker_spec_round_trips_through_factory(self, backend):
        store = create_page_store(backend)
        try:
            if store.location is None:
                with pytest.raises(ValueError, match="no shareable location"):
                    store.worker_spec()
                return
            spec = store.worker_spec()
            assert spec["backend"] == backend
            store.write_page(1, "RP", {"shared": True}, 1024)
            twin = create_page_store(spec["backend"], spec["path"])
            try:
                twin.reopen_in_worker()
                assert twin.read_page(1).payload == {"shared": True}
            finally:
                twin.close()
        finally:
            store.close()

    def test_open_store_parses_spec_strings(self, tmp_path):
        path = str(tmp_path / "spec.sqlite")
        store = open_store(f"sqlite:{path}")
        try:
            assert store.name == "sqlite"
            assert store.location == path
        finally:
            store.close()
        memory = open_store("memory")
        assert memory.name == "memory"
        # A live store passes through untouched.
        assert open_store(memory) is memory
        memory.close()
        with pytest.raises(ValueError, match="unknown storage backend"):
            open_store("carbonite")


class TestRemotePageServer:
    """Remote-specific behaviour on top of the shared conformance runs."""

    def test_remote_sqlite_backing_round_trip(self):
        disk = DiskManager(buffer_pages=2, storage="remote+sqlite")
        try:
            assert disk.storage_backend == "remote"
            assert disk.store.stats().extra["backend"] == "sqlite"
            page = disk.allocate("RP", make_leaf_node())
            disk.buffer.clear()
            assert [e.oid for e in disk.read(page).entries] == [7, 9]
        finally:
            disk.close()

    def test_two_clients_share_one_server(self):
        from repro.storage.pageserver import RemotePageStore, spawn_page_server

        server = spawn_page_server(backing="file")
        try:
            writer = RemotePageStore(address=f"{server.host}:{server.port}")
            reader = RemotePageStore(address=f"{server.host}:{server.port}")
            try:
                writer.write_page(7, "RP", {"via": "tcp"}, 1024)
                assert reader.read_page(7).payload == {"via": "tcp"}
                # Physical transport is per-client, not global.
                assert reader.stats().extra["owns_server"] is False
            finally:
                writer.close()
                reader.close()
        finally:
            server.stop()

    def test_server_killed_mid_run_fails_loudly(self):
        from repro.storage.pageserver import PageServerError, RemotePageStore

        store = RemotePageStore(backing="file")
        store.write_page(1, "RP", "still there?", 1024)
        try:
            store._server.process.kill()
            store._server.process.wait(timeout=10)
            with pytest.raises(PageServerError, match="page server"):
                store.read_page(1)
        finally:
            store.close()

    def test_batched_fetch_async_matches_read_page(self):
        from repro.storage.pageserver import RemotePageStore

        store = RemotePageStore(backing="file")
        try:
            for i in range(10):
                store.write_page(i, "RP", {"i": i}, 1024)
            records = store.fetch_async(list(range(10))).result()
            assert sorted(records) == list(range(10))
            assert all(records[i].payload == {"i": i} for i in range(10))
            stats = store.stats()
            assert stats.extra["batch_rpcs"] == 1
            assert stats.bytes_prefetched > 0
        finally:
            store.close()
