"""Unit tests for the asynchronous page-fetch pipeline.

The :class:`~repro.storage.prefetch.PrefetchScheduler` must (a) hide
simulated service latency behind computation — proven deterministically
with a :class:`~repro.storage.prefetch.SimulatedClock` — and (b) never
perturb the paper's logical cost model: buffer hits/misses and every
``IOCounters`` field are identical whether pages were prefetched or not.
"""

from __future__ import annotations

import pytest

from repro.storage.backends import MemoryPageStore, create_page_store
from repro.storage.disk import DiskManager
from repro.storage.prefetch import (
    PrefetchScheduler,
    PrefetchStats,
    SimulatedClock,
)

LATENCY = 0.5


def fill_store(store, pages=10):
    for page_id in range(1, pages + 1):
        store.write_page(page_id, "T", {"payload": page_id}, 64)
    return store


class TestSimulatedLatencyHiding:
    """The deterministic core claim: prefetching converts stall into overlap."""

    def test_synchronous_fetch_stalls_full_latency(self):
        store = fill_store(MemoryPageStore())
        clock = SimulatedClock()
        scheduler = PrefetchScheduler(store, latency=LATENCY, clock=clock)
        for page_id in (1, 2, 3):
            scheduler.fetch(page_id)
        assert scheduler.stats.sync_fetches == 3
        assert scheduler.stats.stall_time == pytest.approx(3 * LATENCY)
        assert scheduler.stats.overlap_time == 0.0
        assert clock.now() == pytest.approx(3 * LATENCY)

    def test_prefetch_with_enough_compute_hides_all_latency(self):
        store = fill_store(MemoryPageStore())
        clock = SimulatedClock()
        scheduler = PrefetchScheduler(store, latency=LATENCY, clock=clock)
        scheduler.request([1, 2, 3])
        clock.advance(10 * LATENCY)  # computation outlasts the service time
        for page_id in (1, 2, 3):
            scheduler.fetch(page_id)
        stats = scheduler.stats
        assert stats.prefetch_hits == 3
        assert stats.stall_time == 0.0
        assert stats.overlap_time == pytest.approx(3 * LATENCY)
        assert stats.overlap_time > 0

    def test_partial_overlap_splits_stall_and_hidden_time(self):
        store = fill_store(MemoryPageStore())
        clock = SimulatedClock()
        scheduler = PrefetchScheduler(store, latency=LATENCY, clock=clock)
        scheduler.request([1])
        clock.advance(LATENCY / 5)  # compute covers only 20% of the service
        scheduler.fetch(1)
        stats = scheduler.stats
        assert stats.stall_time == pytest.approx(LATENCY * 4 / 5)
        assert stats.overlap_time == pytest.approx(LATENCY / 5)
        # The consumer waited until the page was ready, never longer.
        assert clock.now() == pytest.approx(LATENCY / 5 + LATENCY * 4 / 5)

    def test_batch_service_is_serialized_not_parallel(self):
        """The simulated disk serves one page at a time: consuming a
        freshly requested batch with no intervening computation stalls for
        the batch's *full* serial service, exactly like the synchronous
        baseline — prefetching must not hand out N services for the price
        of one."""
        store = fill_store(MemoryPageStore())
        clock = SimulatedClock()
        scheduler = PrefetchScheduler(store, latency=LATENCY, clock=clock)
        scheduler.request([1, 2, 3])
        for page_id in (1, 2, 3):
            scheduler.fetch(page_id)
        stats = scheduler.stats
        assert stats.stall_time == pytest.approx(3 * LATENCY)
        assert stats.overlap_time == pytest.approx(0.0)
        assert clock.now() == pytest.approx(3 * LATENCY)

    def test_demand_miss_queues_behind_inflight_prefetches(self):
        store = fill_store(MemoryPageStore())
        clock = SimulatedClock()
        scheduler = PrefetchScheduler(store, latency=LATENCY, clock=clock)
        scheduler.request([1, 2])  # disk busy until 2·LATENCY
        scheduler.fetch(3)  # unstaged: queues behind both services
        assert scheduler.stats.stall_time == pytest.approx(3 * LATENCY)

    def test_prefetch_beats_synchronous_on_the_same_trace(self):
        """The headline comparison, exactly reproducible: same pages, same
        compute, with and without prefetching."""

        def run(prefetch: bool) -> PrefetchStats:
            store = fill_store(MemoryPageStore())
            clock = SimulatedClock()
            scheduler = PrefetchScheduler(store, latency=LATENCY, clock=clock)
            for page_id in range(1, 6):
                if prefetch:
                    scheduler.request([page_id + 1])  # stage the next page
                clock.advance(LATENCY)  # one batch worth of computation
                scheduler.fetch(page_id)
            return scheduler.stats

        sync = run(prefetch=False)
        overlapped = run(prefetch=True)
        assert overlapped.stall_time < sync.stall_time
        assert overlapped.overlap_time > 0
        # Page 1 was never staged (nothing precedes it): one sync stall.
        assert overlapped.stall_time == pytest.approx(LATENCY)
        assert overlapped.overlap_time == pytest.approx(4 * LATENCY)


class TestSchedulerSemantics:
    def test_request_dedups_staged_pages(self):
        store = fill_store(MemoryPageStore())
        scheduler = PrefetchScheduler(store)
        assert scheduler.request([1, 2, 2, 3]) == 3
        assert scheduler.request([2, 3, 4]) == 1
        assert scheduler.stats.pages_prefetched == 4

    def test_consumed_page_leaves_staging_and_can_be_reissued(self):
        store = fill_store(MemoryPageStore())
        scheduler = PrefetchScheduler(store)
        scheduler.request([1])
        scheduler.fetch(1)
        assert 1 not in scheduler.staged_pages
        assert scheduler.request([1]) == 1

    def test_drain_counts_unconsumed_pages_as_wasted(self):
        store = fill_store(MemoryPageStore())
        scheduler = PrefetchScheduler(store)
        scheduler.request([1, 2, 3])
        scheduler.fetch(2)
        assert scheduler.drain() == 2
        stats = scheduler.stats
        assert stats.prefetch_hits == 1
        assert stats.prefetch_wasted == 2
        assert scheduler.staged_pages == []

    def test_unknown_page_in_request_is_harmless(self):
        store = fill_store(MemoryPageStore())
        scheduler = PrefetchScheduler(store)
        scheduler.request([999])
        # The staged fetch produced nothing; the demand read must still
        # surface the backend's own error through the synchronous path.
        with pytest.raises(KeyError):
            scheduler.fetch(999)

    def test_fetch_returns_exact_records(self):
        store = fill_store(MemoryPageStore())
        scheduler = PrefetchScheduler(store)
        scheduler.request([5])
        record = scheduler.fetch(5)
        assert record.payload == {"payload": 5}
        assert record.tag == "T"


@pytest.mark.parametrize("backend", ["memory", "file", "sqlite"])
class TestBackendAsyncFetch:
    """fetch_async on every backend returns the same records as read_page."""

    def test_async_batch_matches_sync_reads(self, backend, tmp_path):
        path = str(tmp_path / f"pages-{backend}") if backend != "memory" else None
        store = create_page_store(backend, path)
        try:
            fill_store(store, pages=6)
            handle = store.fetch_async([2, 4, 999])
            records = handle.result()
            assert sorted(records) == [2, 4]
            for page_id in (2, 4):
                expected = store.read_page(page_id, count=False)
                assert records[page_id].payload == expected.payload
                assert records[page_id].tag == expected.tag
                assert records[page_id].size_bytes == expected.size_bytes
            if backend != "memory":
                assert store.stats().bytes_prefetched > 0
                # Async traffic never pollutes the synchronous-miss bytes.
                assert store.stats().bytes_read == 0
        finally:
            store.close()


class TestDiskManagerIntegration:
    """The disk routes physical fetches through the scheduler without
    changing what the paper's cost model charges."""

    def make_disk(self, clock=None, latency=0.0):
        disk = DiskManager(
            buffer_pages=2, fetch_latency=latency, fetch_clock=clock
        )
        pages = [disk.allocate("T", {"n": n}) for n in range(6)]
        disk.buffer.clear()
        disk.reset_counters()
        return disk, pages

    def test_counters_identical_with_and_without_prefetch(self):
        trace_counters = []
        for use_prefetch in (False, True):
            disk, pages = self.make_disk()
            scheduler = disk.enable_prefetch()
            if use_prefetch:
                scheduler.request(pages)
            for page_id in pages + pages[:3]:  # re-reads exercise the buffer
                disk.read(page_id)
            counters = disk.counters
            trace_counters.append(
                (
                    counters.reads,
                    counters.writes,
                    counters.logical_reads,
                    counters.buffer_hits,
                    dict(counters.by_tag),
                )
            )
            if use_prefetch:
                assert disk.storage_stats().prefetch_hits > 0
        assert trace_counters[0] == trace_counters[1]

    def test_simulated_latency_overlap_through_the_disk(self):
        clock = SimulatedClock()
        disk, pages = self.make_disk(clock=clock, latency=LATENCY)
        scheduler = disk.prefetcher
        assert scheduler is not None  # latency alone attaches the pipeline
        scheduler.request(pages[:3])
        clock.advance(10 * LATENCY)
        for page_id in pages[:3]:
            disk.read(page_id)
        stats = disk.storage_stats()
        assert stats.overlap_time == pytest.approx(3 * LATENCY)
        assert stats.stall_time == 0.0
        # The remaining pages were never staged: full synchronous stalls.
        for page_id in pages[3:]:
            disk.read(page_id)
        stats = disk.storage_stats()
        assert stats.stall_time == pytest.approx(3 * LATENCY)

    def test_resident_pages_are_not_issued(self):
        """A page the disk already holds decoded (buffer-resident) is
        skipped at request time: its read never touches the backend, so
        staging it would only waste backend bytes and simulated disk
        service."""
        disk, pages = self.make_disk()
        scheduler = disk.enable_prefetch()
        disk.read(pages[0])  # now buffer-resident
        assert scheduler.request([pages[0], pages[1]]) == 1
        assert scheduler.staged_pages == [pages[1]]
        disk.read(pages[0])  # served from the decoded cache
        assert disk.storage_stats().prefetch_hits == 0

    def test_free_invalidates_staged_pages(self):
        """A freed id's staged record must never resurface as the content
        of the recycled id (mirrors the decoded-cache guard in free)."""
        disk, pages = self.make_disk()
        scheduler = disk.enable_prefetch()
        scheduler.request([pages[0]])
        disk.free(pages[0])
        assert pages[0] not in scheduler.staged_pages
        assert disk.storage_stats().prefetch_wasted == 1
        recycled = disk.allocate("T", {"fresh": True})
        assert recycled == pages[0]  # freed ids are recycled
        disk.buffer.clear()
        assert disk.read(recycled) == {"fresh": True}

    def test_failed_staged_fetch_charges_one_service(self):
        """A staged fetch that falls back to the synchronous path reuses
        the service slot queued at request time instead of occupying the
        simulated disk twice for one page."""
        store = fill_store(MemoryPageStore())
        clock = SimulatedClock()
        scheduler = PrefetchScheduler(store, latency=LATENCY, clock=clock)
        scheduler.request([999])  # staged, but the store has no page 999
        store.write_page(999, "T", {"late": True}, 64)
        record = scheduler.fetch(999)  # async batch yields nothing -> sync
        assert record.payload == {"late": True}
        assert scheduler.stats.stall_time == pytest.approx(LATENCY)
        assert clock.now() == pytest.approx(LATENCY)

    def test_close_drains_the_scheduler(self):
        disk, pages = self.make_disk()
        scheduler = disk.enable_prefetch()
        scheduler.request(pages[:2])
        disk.close()
        assert disk.storage_stats().prefetch_wasted == 2


class TestLeafBatchPlannerWaste:
    """Regression: the serial ``next_batch`` leaf planner must not strand
    speculation at the end of the traversal.

    Each leaf's plan is the leaf's own page plus a speculative candidate
    set; mid-traversal, candidates the filter pruned are re-requested (and
    consumed) by later batches, but the *final* planned batch has no
    successor — its unread speculation used to sit in the staging area
    until drain and show up as ``prefetch_wasted``.  The planner now
    issues only the certainly-read leaf page with the final plan, so on a
    fig8-shaped workload every prefetched page is consumed.
    """

    def test_fig8_shaped_run_wastes_no_prefetched_pages(self):
        from repro.datasets.synthetic import uniform_points
        from repro.experiments.drivers.common import run_cij

        result = run_cij(
            "nm",
            uniform_points(400, seed=8),
            uniform_points(400, seed=18),
            storage="file",
            prefetch="next_batch",
        )
        stats = result.storage
        assert stats.pages_prefetched > 0
        assert stats.prefetch_wasted == 0
        assert stats.prefetch_hits == stats.pages_prefetched


from repro.engine.algorithms import JoinAlgorithm


class _FailingPrepare(JoinAlgorithm):
    """A materialising algorithm whose MAT phase dies after staging pages.

    Mimics FM's prepare — which reads (and with prefetch attached, stages)
    pages before the executor ever starts — so an exception here exercises
    the drain on the engine's MAT error path.
    """

    name = "failing-prepare"
    display_name = "FAILING-PREPARE"
    materialises = True
    supports_sharding = False
    supports_handoff = False

    def __init__(self):
        self.staged = 0

    def prepare(self, ctx):
        scheduler = ctx.disk.prefetcher
        assert scheduler is not None, "engine.run must attach prefetch first"
        self.staged = scheduler.request(ctx.disk.store.page_ids()[:6])
        assert self.staged > 0
        raise RuntimeError("injected MAT failure")


def _make_failing_nm(fail_on_call):
    from repro.engine.algorithms import NMJoin

    class _FailingNM(NMJoin):
        """NM whose unit pipeline dies on its ``fail_on_call``-th shard."""

        calls = 0

        def process_units(self, ctx, units):
            type(self).calls += 1
            if type(self).calls == fail_on_call:
                for _ in zip(units, range(1)):
                    pass  # consume one unit: the failure is mid-stream
                raise RuntimeError("injected shard failure")
            return super().process_units(ctx, units)

    return _FailingNM()


class TestErrorPathCleanup:
    """A run that dies mid-flight must leave the disk as a finished run
    would: nothing staged (unconsumed speculation charged as wasted), the
    buffer rewound, and the backend's private prefetch handles closed once
    the disk closes — regressions here only surface as fd exhaustion and
    cross-run counter corruption in a long-running server."""

    def _workload(self, tmp_path, storage):
        from repro.datasets.workload import WorkloadConfig, build_workload

        path = str(tmp_path / f"pages.{storage}") if storage != "memory" else None
        return build_workload(
            WorkloadConfig(n_p=120, n_q=120, seed=9, storage=storage, storage_path=path)
        )

    @pytest.mark.parametrize("storage", ["file", "sqlite"])
    def test_mat_phase_failure_still_drains(self, storage, tmp_path):
        from repro.engine import JoinEngine

        workload = self._workload(tmp_path, storage)
        with workload:
            engine = JoinEngine()
            algorithm = _FailingPrepare()
            with pytest.raises(RuntimeError, match="injected MAT"):
                engine.run(
                    algorithm,
                    workload.tree_p,
                    workload.tree_q,
                    prefetch="next_batch",
                )
            scheduler = workload.disk.prefetcher
            assert scheduler is not None
            assert scheduler.staged_pages == []
            assert workload.disk.storage_stats().prefetch_wasted == algorithm.staged

    @pytest.mark.parametrize("storage", ["file", "sqlite"])
    def test_shard_failure_drains_and_next_run_is_clean(self, storage, tmp_path):
        from repro.engine import JoinEngine

        workload = self._workload(tmp_path, storage)
        with workload:
            engine = JoinEngine()
            # Four inline shards; the second dies after staging the third's
            # pages, so speculation is in flight at the moment of failure.
            with pytest.raises(RuntimeError, match="injected shard"):
                engine.run(
                    _make_failing_nm(fail_on_call=2),
                    workload.tree_p,
                    workload.tree_q,
                    executor="sharded",
                    workers=4,
                    pool="inline",
                    prefetch="next_shard",
                )
            assert workload.disk.prefetcher.staged_pages == []
            assert workload.disk.storage_stats().prefetch_wasted > 0

            # The failed run left no residue: a measured follow-up run on
            # the same disk matches a fresh workload bit for bit.
            workload.reset_measurement()
            again = engine.run("nm", workload.tree_p, workload.tree_q)
            fresh_dir = tmp_path / "fresh"
            fresh_dir.mkdir()
            fresh_workload = self._workload(fresh_dir, storage)
            with fresh_workload:
                fresh = JoinEngine().run(
                    "nm", fresh_workload.tree_p, fresh_workload.tree_q
                )
            assert again.pair_set() == fresh.pair_set()
            assert again.stats.total_page_accesses == fresh.stats.total_page_accesses

    def test_failure_then_close_releases_prefetch_worker_and_handle(self, tmp_path):
        """After a mid-run failure, closing the workload must still shut
        the ThreadedPageFetch worker down and close the store's private
        ``rb`` handle — the leak the server's crash recovery would hit."""
        from repro.engine import JoinEngine

        workload = self._workload(tmp_path, "file")
        store = workload.disk.store
        with workload:
            with pytest.raises(RuntimeError, match="injected shard"):
                JoinEngine().run(
                    _make_failing_nm(fail_on_call=1),
                    workload.tree_p,
                    workload.tree_q,
                    executor="sharded",
                    workers=4,
                    pool="inline",
                    prefetch="next_shard",
                )
        assert store._async._pool is None
        assert store._prefetch_handle is None or store._prefetch_handle.closed
        assert store._file.closed
