"""Tests for the I/O counters."""

from repro.storage.counters import IOCounters


class TestIOCounters:
    def test_read_hit_vs_miss_accounting(self):
        counters = IOCounters()
        counters.record_read("RP", hit=False)
        counters.record_read("RP", hit=True)
        assert counters.reads == 1
        assert counters.logical_reads == 2
        assert counters.buffer_hits == 1
        assert counters.by_tag == {"RP": 1}

    def test_write_accounting(self):
        counters = IOCounters()
        counters.record_write("RQ")
        counters.record_write("RQ")
        assert counters.writes == 2
        assert counters.by_tag == {"RQ": 2}

    def test_page_accesses_is_reads_plus_writes(self):
        counters = IOCounters()
        counters.record_read("a", hit=False)
        counters.record_write("b")
        assert counters.page_accesses == 2

    def test_reset_zeroes_everything(self):
        counters = IOCounters()
        counters.record_read("a", hit=False)
        counters.record_write("a")
        counters.reset()
        assert counters.page_accesses == 0
        assert counters.logical_reads == 0
        assert counters.by_tag == {}

    def test_snapshot_is_independent(self):
        counters = IOCounters()
        counters.record_read("a", hit=False)
        snap = counters.snapshot()
        counters.record_read("a", hit=False)
        assert snap.reads == 1
        assert counters.reads == 2

    def test_diff_since_snapshot(self):
        counters = IOCounters()
        counters.record_read("a", hit=False)
        snap = counters.snapshot()
        counters.record_read("b", hit=False)
        counters.record_write("b")
        delta = counters.diff(snap)
        assert delta.reads == 1
        assert delta.writes == 1
        assert delta.by_tag == {"b": 2}

    def test_diff_drops_zero_tags(self):
        counters = IOCounters()
        counters.record_read("a", hit=False)
        snap = counters.snapshot()
        delta = counters.diff(snap)
        assert delta.by_tag == {}

    def test_merged_with_sums_fields(self):
        a = IOCounters()
        a.record_read("x", hit=False)
        b = IOCounters()
        b.record_write("x")
        b.record_read("y", hit=True)
        merged = a.merged_with(b)
        assert merged.reads == 1
        assert merged.writes == 1
        assert merged.buffer_hits == 1
        assert merged.by_tag == {"x": 2}
