"""Tests for the LRU buffer."""

import pytest

from repro.storage.buffer import LRUBuffer


class TestLRUBuffer:
    def test_zero_capacity_never_hits(self):
        buffer = LRUBuffer(0)
        assert buffer.access("a") is False
        assert buffer.access("a") is False
        assert len(buffer) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUBuffer(-1)

    def test_repeated_access_hits(self):
        buffer = LRUBuffer(2)
        assert buffer.access(1) is False
        assert buffer.access(1) is True

    def test_lru_eviction_order(self):
        buffer = LRUBuffer(2)
        buffer.access(1)
        buffer.access(2)
        buffer.access(3)  # evicts 1
        assert buffer.access(1) is False  # miss: 1 was evicted, evicts 2
        assert buffer.access(3) is True
        assert buffer.access(2) is False

    def test_access_refreshes_recency(self):
        buffer = LRUBuffer(2)
        buffer.access(1)
        buffer.access(2)
        buffer.access(1)  # 1 becomes most recent
        buffer.access(3)  # evicts 2, not 1
        assert buffer.access(1) is True
        assert buffer.access(2) is False

    def test_contains_and_contents(self):
        buffer = LRUBuffer(3)
        for page in ("a", "b", "c"):
            buffer.access(page)
        assert "b" in buffer
        assert buffer.contents() == ["a", "b", "c"]

    def test_invalidate_removes_page(self):
        buffer = LRUBuffer(2)
        buffer.access("x")
        buffer.invalidate("x")
        assert "x" not in buffer
        assert buffer.access("x") is False

    def test_invalidate_missing_page_is_noop(self):
        buffer = LRUBuffer(2)
        buffer.invalidate("never-seen")
        assert len(buffer) == 0

    def test_clear_empties_buffer(self):
        buffer = LRUBuffer(2)
        buffer.access(1)
        buffer.clear()
        assert len(buffer) == 0
        assert buffer.access(1) is False

    def test_resize_shrinks_and_evicts(self):
        buffer = LRUBuffer(4)
        for page in range(4):
            buffer.access(page)
        buffer.resize(2)
        assert len(buffer) == 2
        assert buffer.contents() == [2, 3]

    def test_resize_to_negative_rejected(self):
        with pytest.raises(ValueError):
            LRUBuffer(2).resize(-5)

    def test_capacity_never_exceeded(self):
        buffer = LRUBuffer(3)
        for page in range(100):
            buffer.access(page)
            assert len(buffer) <= 3


class TestResizeInvalidateInterplay:
    """Edge cases of resizing and invalidation interacting (the Figure 8a
    buffer sweep resizes live buffers between measured runs)."""

    def test_shrink_below_occupancy_keeps_most_recent(self):
        buffer = LRUBuffer(5)
        for page in range(5):
            buffer.access(page)
        buffer.access(1)  # refresh 1: LRU order is now 0,2,3,4,1
        buffer.resize(2)
        assert buffer.contents() == [4, 1]
        assert buffer.capacity == 2
        # The evicted pages really are gone: re-access misses and evicts LRU.
        assert buffer.access(0) is False
        assert buffer.contents() == [1, 0]

    def test_shrink_to_zero_then_grow_again(self):
        buffer = LRUBuffer(3)
        for page in "abc":
            buffer.access(page)
        buffer.resize(0)
        assert len(buffer) == 0
        assert buffer.access("a") is False  # zero capacity admits nothing
        assert len(buffer) == 0
        buffer.resize(2)
        assert buffer.access("a") is False  # still cold after regrowing
        assert buffer.access("a") is True

    def test_invalidate_then_access_readmits_as_most_recent(self):
        buffer = LRUBuffer(2)
        buffer.access("x")
        buffer.access("y")
        buffer.invalidate("x")
        assert len(buffer) == 1
        # Re-access is a miss but must readmit "x" as most recent without
        # evicting "y" (the invalidation freed a slot).
        assert buffer.access("x") is False
        assert buffer.contents() == ["y", "x"]
        assert buffer.access("y") is True

    def test_invalidate_frees_room_before_shrink(self):
        buffer = LRUBuffer(4)
        for page in range(4):
            buffer.access(page)
        buffer.invalidate(3)  # occupancy 3: pages 0,1,2
        buffer.resize(3)      # shrink to exactly the new occupancy
        assert buffer.contents() == [0, 1, 2]  # nothing evicted
        buffer.resize(2)
        assert buffer.contents() == [1, 2]  # LRU page 0 evicted

    def test_invalidated_page_survives_resize_churn(self):
        buffer = LRUBuffer(3)
        for page in ("a", "b", "c"):
            buffer.access(page)
        buffer.invalidate("b")
        buffer.resize(1)
        assert buffer.contents() == ["c"]
        assert "b" not in buffer
        assert buffer.access("b") is False  # miss; evicts "c"
        assert buffer.contents() == ["b"]


class TestEvictionCallback:
    """The on_evict hook keeps the disk manager's decoded-payload cache in
    lock-step with the buffer, so every removal path must report."""

    def _tracked(self, capacity):
        evicted = []
        return LRUBuffer(capacity, on_evict=evicted.append), evicted

    def test_lru_eviction_reports(self):
        buffer, evicted = self._tracked(2)
        buffer.access(1)
        buffer.access(2)
        buffer.access(3)
        assert evicted == [1]

    def test_invalidate_reports_present_page(self):
        # Regression: the buffer stores None values, so presence must not be
        # detected with pop(page, None) — that silently swallowed the event
        # and left freed pages alive in the payload cache.
        buffer, evicted = self._tracked(2)
        buffer.access("x")
        buffer.invalidate("x")
        assert evicted == ["x"]

    def test_invalidate_missing_page_does_not_report(self):
        buffer, evicted = self._tracked(2)
        buffer.invalidate("never-seen")
        assert evicted == []

    def test_clear_reports_every_page(self):
        buffer, evicted = self._tracked(3)
        for page in ("a", "b", "c"):
            buffer.access(page)
        buffer.clear()
        assert evicted == ["a", "b", "c"]

    def test_resize_reports_shrink_evictions(self):
        buffer, evicted = self._tracked(4)
        for page in range(4):
            buffer.access(page)
        buffer.resize(2)
        assert evicted == [0, 1]

    def test_hit_does_not_report(self):
        buffer, evicted = self._tracked(2)
        buffer.access(1)
        buffer.access(1)
        assert evicted == []
