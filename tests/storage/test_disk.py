"""Tests for the simulated disk manager."""

import random

import pytest

from repro.geometry.point import Point
from repro.index.rtree import RTree
from repro.storage.backends import STORAGE_BACKENDS
from repro.storage.disk import DiskManager


class TestDiskManager:
    def test_invalid_page_size_rejected(self):
        with pytest.raises(ValueError):
            DiskManager(page_size=0)

    def test_allocate_charges_a_write(self):
        disk = DiskManager()
        disk.allocate("RP", payload={"node": 1})
        assert disk.counters.writes == 1
        assert disk.counters.by_tag == {"RP": 1}

    def test_read_returns_payload_and_charges_miss(self):
        disk = DiskManager(buffer_pages=0)
        page = disk.allocate("RP", payload="hello")
        assert disk.read(page) == "hello"
        assert disk.counters.reads == 1

    def test_buffered_read_is_free_after_first_access(self):
        disk = DiskManager(buffer_pages=4)
        page = disk.allocate("RP", payload="x")
        disk.reset_counters()
        disk.buffer.clear()
        disk.read(page)
        disk.read(page)
        assert disk.counters.reads == 1
        assert disk.counters.buffer_hits == 1
        assert disk.counters.logical_reads == 2

    def test_write_updates_payload(self):
        disk = DiskManager()
        page = disk.allocate("RP", payload=1)
        disk.write(page, payload=2)
        assert disk.peek(page) == 2
        assert disk.counters.writes == 2

    def test_peek_does_not_charge(self):
        disk = DiskManager()
        page = disk.allocate("RP", payload=3)
        disk.reset_counters()
        assert disk.peek(page) == 3
        assert disk.counters.page_accesses == 0

    def test_reading_unknown_page_raises(self):
        disk = DiskManager()
        with pytest.raises(KeyError):
            disk.read(999)

    def test_free_releases_page(self):
        disk = DiskManager()
        page = disk.allocate("RP", payload=3)
        disk.free(page)
        with pytest.raises(KeyError):
            disk.read(page)

    def test_page_count_and_data_size_by_tag(self):
        disk = DiskManager(page_size=512)
        disk.allocate("RP", payload=1)
        disk.allocate("RP", payload=2, size_bytes=100)
        disk.allocate("RQ", payload=3)
        assert disk.page_count() == 3
        assert disk.page_count("RP") == 2
        assert disk.data_size_bytes("RP") == 512 + 100

    def test_set_buffer_fraction_sizes_relative_to_pages(self):
        disk = DiskManager()
        for _ in range(100):
            disk.allocate("RP", payload=0)
        disk.set_buffer_fraction(0.05)
        assert disk.buffer.capacity == 5
        disk.set_buffer_fraction(0.0)
        assert disk.buffer.capacity == 0

    def test_negative_buffer_fraction_rejected(self):
        with pytest.raises(ValueError):
            DiskManager().set_buffer_fraction(-0.1)

    def test_suspend_io_accounting(self):
        disk = DiskManager()
        with disk.suspend_io_accounting():
            page = disk.allocate("RP", payload="quiet")
            disk.read(page)
        assert disk.counters.page_accesses == 0
        disk.read(page)
        assert disk.counters.page_accesses == 1

    def test_suspension_nests_and_restores(self):
        disk = DiskManager()
        with disk.suspend_io_accounting():
            with disk.suspend_io_accounting():
                disk.allocate("RP", payload=1)
            disk.allocate("RP", payload=2)
        assert disk.counters.page_accesses == 0
        disk.allocate("RP", payload=3)
        assert disk.counters.page_accesses == 1

    def test_resize_buffer_delegates(self):
        disk = DiskManager(buffer_pages=2)
        disk.resize_buffer(10)
        assert disk.buffer.capacity == 10

    def test_freed_page_id_is_recycled(self):
        disk = DiskManager()
        first = disk.allocate("RP", "a")
        second = disk.allocate("RP", "b")
        disk.free(first)
        assert disk.allocate("RP", "c") == first  # recycled
        assert disk.allocate("RP", "d") == second + 1  # counter resumes

    def test_free_evicts_page_from_buffer(self):
        # Regression: without eviction, a recycled id inherits the freed
        # page's buffer residency and its first read phantom-hits.
        disk = DiskManager(buffer_pages=4)
        page = disk.allocate("RP", "original")
        disk.read(page)
        assert page in disk.buffer
        disk.free(page)
        assert page not in disk.buffer

    def test_storage_stats_reports_memory_backend(self):
        disk = DiskManager()
        disk.allocate("RP", "x")
        stats = disk.storage_stats()
        assert stats.backend == "memory" == disk.storage_backend
        assert stats.pages == 1
        assert stats.bytes_read == 0 and stats.bytes_written == 0


@pytest.mark.parametrize("backend", list(STORAGE_BACKENDS))
class TestFreedIdRecycling:
    """Delete-heavy streams recycle page ids aggressively; a recycled id
    must never resurrect the freed page's decoded payload from the cache
    (which would silently serve stale bytes on the serializing backends)."""

    @pytest.fixture
    def disk(self, backend):
        manager = DiskManager(buffer_pages=4, storage=backend)
        yield manager
        manager.close()

    def test_recycled_id_serves_the_new_payload(self, disk):
        page = disk.allocate("RP", Point(1.0, 2.0))
        assert disk.read(page) == Point(1.0, 2.0)  # decode now cached
        disk.free(page)
        recycled = disk.allocate("RP", Point(9.0, 9.0))
        assert recycled == page
        assert disk.read(recycled) == Point(9.0, 9.0)
        disk.buffer.clear()
        # Off-cache read goes to the backend: the bytes match too.
        assert disk.read(recycled) == Point(9.0, 9.0)

    def test_free_under_suspended_accounting_still_purges_the_decode(self, disk):
        page = disk.allocate("RP", Point(1.0, 2.0))
        disk.read(page)
        with disk.suspend_io_accounting():
            disk.free(page)
            recycled = disk.allocate("RP", Point(3.0, 4.0))
        assert recycled == page
        # The suspended allocate must not inherit buffer residency (a stale
        # decode would otherwise phantom-hit here instead of re-reading).
        assert disk.read(recycled) == Point(3.0, 4.0)

    def test_freed_page_read_fails_even_when_it_was_cached(self, disk):
        page = disk.allocate("RP", Point(5.0, 6.0))
        disk.read(page)  # resident + decoded
        disk.free(page)
        with pytest.raises(KeyError):
            disk.read(page)
        with pytest.raises(KeyError):
            disk.peek(page)

    def test_delete_heavy_rtree_stream_never_decodes_stale_nodes(self, backend):
        """End-to-end pin: condense-tree frees pages, later inserts recycle
        the ids for brand-new nodes, and every read must decode the new
        node — across all backends, through the buffer and around it."""
        with DiskManager(buffer_pages=6, storage=backend) as disk:
            tree = RTree(disk, "RP", page_size=256)
            rng = random.Random(99)
            live = {}
            next_oid = 0
            for _ in range(120):
                point = Point(
                    round(rng.uniform(0, 10_000), 3), round(rng.uniform(0, 10_000), 3)
                )
                tree.insert_point(next_oid, point)
                live[next_oid] = point
                next_oid += 1
            for _ in range(200):
                if live and rng.random() < 0.55:
                    oid = rng.choice(sorted(live))
                    assert tree.delete_point(oid, live.pop(oid))
                else:
                    point = Point(
                        round(rng.uniform(0, 10_000), 3),
                        round(rng.uniform(0, 10_000), 3),
                    )
                    tree.insert_point(next_oid, point)
                    live[next_oid] = point
                    next_oid += 1
            tree.check_invariants(enforce_min_fill=True)
            stored = {(e.oid, e.payload.x, e.payload.y) for e in tree.all_leaf_entries()}
            assert stored == {(o, p.x, p.y) for o, p in live.items()}
            # A cold re-read straight off the backend agrees as well.
            disk.buffer.clear()
            cold = {(e.oid, e.payload.x, e.payload.y) for e in tree.all_leaf_entries()}
            assert cold == stored
