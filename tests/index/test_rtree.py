"""Tests for the disk-backed Guttman R-tree."""

import random

import pytest

from repro.datasets.synthetic import uniform_points
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.rtree import RTree, capacities_for_page
from repro.storage.disk import DiskManager


def build_tree(points, leaf_capacity=8, branch_capacity=8):
    disk = DiskManager()
    tree = RTree(disk, "RP", leaf_capacity=leaf_capacity, branch_capacity=branch_capacity)
    for oid, point in enumerate(points):
        tree.insert_point(oid, point)
    return disk, tree


class TestCapacities:
    def test_capacities_for_default_page(self):
        leaf, branch = capacities_for_page(1024)
        assert leaf == 51
        assert branch == 28

    def test_minimum_capacity_is_two(self):
        leaf, branch = capacities_for_page(8)
        assert leaf == 2
        assert branch == 2

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            RTree(DiskManager(), "RP", leaf_capacity=1)


class TestInsertionAndStructure:
    def test_empty_tree_properties(self):
        tree = RTree(DiskManager(), "RP")
        assert tree.is_empty()
        assert len(tree) == 0
        assert tree.node_count() == 0
        with pytest.raises(ValueError):
            tree.read_root()

    def test_single_point_tree(self):
        _, tree = build_tree([Point(5.0, 5.0)])
        assert not tree.is_empty()
        assert tree.height == 1
        assert len(tree) == 1
        assert tree.domain() == Rect(5, 5, 5, 5)

    def test_inserts_split_nodes_and_grow_height(self):
        points = uniform_points(200, seed=1)
        _, tree = build_tree(points, leaf_capacity=8, branch_capacity=8)
        assert len(tree) == 200
        assert tree.height >= 2
        assert tree.leaf_count() > 1
        tree.check_invariants()

    def test_all_leaf_entries_preserves_every_point(self):
        points = uniform_points(150, seed=2)
        _, tree = build_tree(points)
        entries = tree.all_leaf_entries()
        assert len(entries) == 150
        assert {e.oid for e in entries} == set(range(150))
        assert {e.payload for e in entries} == set(points)

    def test_invariants_hold_for_various_capacities(self):
        points = uniform_points(120, seed=3)
        for capacity in (3, 5, 16):
            _, tree = build_tree(points, leaf_capacity=capacity, branch_capacity=capacity)
            tree.check_invariants()
            assert len(tree.all_leaf_entries()) == 120


class TestRangeSearch:
    def test_range_search_matches_linear_scan(self):
        points = uniform_points(300, seed=4)
        _, tree = build_tree(points)
        rng = random.Random(0)
        for _ in range(20):
            x1, x2 = sorted(rng.uniform(0, 10_000) for _ in range(2))
            y1, y2 = sorted(rng.uniform(0, 10_000) for _ in range(2))
            region = Rect(x1, y1, x2, y2)
            expected = {i for i, p in enumerate(points) if region.contains_point(p)}
            found = {e.oid for e in tree.range_search(region)}
            assert found == expected

    def test_range_search_on_empty_tree(self):
        tree = RTree(DiskManager(), "RP")
        assert tree.range_search(Rect(0, 0, 1, 1)) == []

    def test_count_in_range_and_predicate_filter(self):
        points = [Point(float(i), float(i)) for i in range(10)]
        _, tree = build_tree(points)
        region = Rect(0, 0, 4.5, 4.5)
        assert tree.count_in_range(region) == 5
        odd = tree.range_search_where(region, lambda e: e.oid % 2 == 1)
        assert {e.oid for e in odd} == {1, 3}


class TestTraversal:
    def test_iter_leaf_nodes_visits_every_leaf_once(self):
        points = uniform_points(200, seed=5)
        _, tree = build_tree(points)
        leaves = list(tree.iter_leaf_nodes())
        assert len(leaves) == tree.leaf_count()
        oids = [e.oid for leaf in leaves for e in leaf.entries]
        assert sorted(oids) == list(range(200))

    def test_hilbert_order_covers_all_leaves(self):
        points = uniform_points(200, seed=6)
        _, tree = build_tree(points)
        dfs_oids = sorted(e.oid for leaf in tree.iter_leaf_nodes("dfs") for e in leaf.entries)
        hil_oids = sorted(e.oid for leaf in tree.iter_leaf_nodes("hilbert") for e in leaf.entries)
        assert dfs_oids == hil_oids

    def test_unknown_traversal_order_rejected(self):
        points = uniform_points(20, seed=6)
        _, tree = build_tree(points)
        with pytest.raises(ValueError):
            list(tree.iter_leaf_nodes(order="bogus"))

    def test_iter_all_nodes_counts_match_node_count(self):
        points = uniform_points(150, seed=7)
        _, tree = build_tree(points)
        assert len(list(tree.iter_all_nodes())) == tree.node_count()


class TestIOAccounting:
    def test_reads_are_charged_through_the_disk(self):
        points = uniform_points(100, seed=8)
        disk, tree = build_tree(points)
        disk.reset_counters()
        disk.buffer.clear()
        list(tree.iter_leaf_nodes())
        assert disk.counters.reads == tree.node_count()

    def test_buffer_reduces_repeated_traversal_cost(self):
        points = uniform_points(100, seed=9)
        disk, tree = build_tree(points)
        disk.resize_buffer(tree.node_count())
        disk.buffer.clear()
        disk.reset_counters()
        list(tree.iter_leaf_nodes())
        first_pass = disk.counters.reads
        list(tree.iter_leaf_nodes())
        assert disk.counters.reads == first_pass  # second pass fully buffered

    def test_peek_access_is_free(self):
        points = uniform_points(50, seed=10)
        disk, tree = build_tree(points)
        disk.reset_counters()
        tree.all_leaf_entries()
        tree.node_count()
        assert disk.counters.page_accesses == 0
