"""Tests for bottom-up bulk loading."""

import pytest

from repro.datasets.synthetic import DOMAIN, uniform_points
from repro.geometry.point import Point
from repro.geometry.polygon import ConvexPolygon
from repro.geometry.rect import Rect
from repro.index.bulkload import StreamingBulkLoader, bulk_load_points, bulk_load_records
from repro.index.entries import LeafEntry
from repro.index.rtree import RTree
from repro.storage.disk import DiskManager


class TestBulkLoadPoints:
    def test_rejects_empty_input(self):
        with pytest.raises(ValueError):
            bulk_load_points(DiskManager(), "RP", [])

    def test_rejects_mismatched_oids(self):
        with pytest.raises(ValueError):
            bulk_load_points(DiskManager(), "RP", [Point(0, 0)], oids=[1, 2])

    def test_contains_every_point(self):
        points = uniform_points(200, seed=1)
        tree = bulk_load_points(DiskManager(), "RP", points, domain=DOMAIN)
        entries = tree.all_leaf_entries()
        assert len(entries) == 200
        assert {e.payload for e in entries} == set(points)
        assert len(tree) == 200

    def test_structure_invariants_hold(self):
        points = uniform_points(500, seed=2)
        tree = bulk_load_points(DiskManager(), "RP", points, domain=DOMAIN)
        tree.check_invariants()

    def test_leaf_utilisation_is_high(self):
        points = uniform_points(400, seed=3)
        tree = bulk_load_points(DiskManager(), "RP", points, domain=DOMAIN)
        # Packed loading fills leaves to capacity except possibly the last.
        assert tree.leaf_count() <= (400 + tree.leaf_capacity - 1) // tree.leaf_capacity + 1

    def test_single_leaf_tree_when_everything_fits(self):
        points = uniform_points(10, seed=4)
        tree = bulk_load_points(DiskManager(), "RP", points, domain=DOMAIN)
        assert tree.height == 1
        assert tree.leaf_count() == 1

    def test_range_query_matches_linear_scan(self):
        points = uniform_points(300, seed=5)
        tree = bulk_load_points(DiskManager(), "RP", points, domain=DOMAIN)
        region = Rect(2000, 2000, 6000, 7000)
        expected = {i for i, p in enumerate(points) if region.contains_point(p)}
        assert {e.oid for e in tree.range_search(region)} == expected

    def test_construction_cost_equals_pages_written(self):
        points = uniform_points(300, seed=6)
        disk = DiskManager()
        tree = bulk_load_points(disk, "RP", points, domain=DOMAIN)
        assert disk.counters.writes == tree.node_count()
        assert disk.counters.reads == 0


class TestBulkLoadRecords:
    def test_variable_size_records_respect_page_size(self):
        disk = DiskManager(page_size=256)
        cells = []
        for i in range(40):
            rect = Rect(10.0 * i, 0.0, 10.0 * i + 5.0, 5.0)
            polygon = ConvexPolygon.from_rect(rect)
            cells.append(LeafEntry.for_cell(i, rect, polygon, vertex_count=4 + (i % 5)))
        tree = bulk_load_records(disk, "RV", cells, page_size=256)
        assert len(tree.all_leaf_entries()) == 40
        for leaf in tree.iter_leaf_nodes():
            assert leaf.byte_size() <= 256

    def test_streaming_loader_rejects_append_after_finish(self):
        tree = RTree(DiskManager(), "RP")
        loader = StreamingBulkLoader(tree)
        loader.append(LeafEntry.for_point(0, Point(1, 1)))
        loader.finish()
        with pytest.raises(RuntimeError):
            loader.append(LeafEntry.for_point(1, Point(2, 2)))

    def test_finish_twice_is_idempotent(self):
        tree = RTree(DiskManager(), "RP")
        loader = StreamingBulkLoader(tree)
        loader.extend(LeafEntry.for_point(i, Point(i, i)) for i in range(5))
        loader.finish()
        count = tree.node_count()
        loader.finish()
        assert tree.node_count() == count

    def test_empty_loader_produces_empty_tree(self):
        tree = RTree(DiskManager(), "RP")
        StreamingBulkLoader(tree).finish()
        assert tree.is_empty()

    def test_multi_level_packing(self):
        disk = DiskManager()
        tree = RTree(disk, "RP", leaf_capacity=4, branch_capacity=4)
        loader = StreamingBulkLoader(tree)
        loader.extend(LeafEntry.for_point(i, Point(float(i), 0.0)) for i in range(100))
        loader.finish()
        assert tree.height >= 3
        tree.check_invariants()
        assert len(tree.all_leaf_entries()) == 100
