"""Structural invariants of the R-tree under insert/delete streams.

The checker itself lives on the tree (:meth:`RTree.check_invariants`) so
the dynamic property tests can call it after every update batch; this
module drives it through targeted streams: grow-only, delete-only,
interleaved, delete-to-empty and bulk-loaded-then-condensed, plus direct
detection tests proving the checker actually rejects corrupted trees.
"""

import random

import pytest

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.bulkload import bulk_load_points
from repro.index.rtree import RTree
from repro.storage.disk import DiskManager


def _random_points(n, seed):
    rng = random.Random(seed)
    return {
        oid: Point(round(rng.uniform(0, 10_000), 3), round(rng.uniform(0, 10_000), 3))
        for oid in range(n)
    }


def _stored(tree):
    return {(e.oid, e.payload.x, e.payload.y) for e in tree.all_leaf_entries()}


@pytest.fixture
def small_tree():
    """An insertion-grown tree with a small page so it has several levels."""
    disk = DiskManager(buffer_pages=8)
    tree = RTree(disk, "RP", page_size=256)
    points = _random_points(200, seed=11)
    for oid, point in points.items():
        tree.insert_point(oid, point)
    return tree, points


class TestInsertStreams:
    def test_grow_only_stream_keeps_invariants(self, small_tree):
        tree, points = small_tree
        tree.check_invariants(enforce_min_fill=True)
        assert len(tree) == len(points)
        assert _stored(tree) == {(o, p.x, p.y) for o, p in points.items()}

    def test_invariants_hold_after_every_single_insert(self):
        disk = DiskManager()
        tree = RTree(disk, "RP", page_size=256)
        for oid, point in _random_points(80, seed=3).items():
            tree.insert_point(oid, point)
            tree.check_invariants(enforce_min_fill=True)


class TestDeleteStreams:
    def test_delete_only_stream_keeps_invariants(self, small_tree):
        tree, points = small_tree
        rng = random.Random(5)
        order = sorted(points)
        rng.shuffle(order)
        for oid in order[:150]:
            assert tree.delete_point(oid, points.pop(oid))
            tree.check_invariants(enforce_min_fill=True)
        assert _stored(tree) == {(o, p.x, p.y) for o, p in points.items()}

    def test_delete_to_empty_then_regrow(self, small_tree):
        tree, points = small_tree
        disk = tree.disk
        for oid, point in sorted(points.items()):
            assert tree.delete_point(oid, point)
        assert tree.is_empty() and len(tree) == 0
        assert disk.page_count("RP") == 0  # every page was freed
        tree.check_invariants()
        tree.insert_point(1, Point(5.0, 5.0))
        tree.check_invariants(enforce_min_fill=True)
        assert len(tree) == 1

    def test_delete_missing_entry_returns_false(self, small_tree):
        tree, points = small_tree
        before = _stored(tree)
        assert not tree.delete_point(10_000, Point(1.0, 1.0))
        assert not tree.delete_point(0, Point(-1.0, -1.0))  # wrong location
        assert _stored(tree) == before
        tree.check_invariants(enforce_min_fill=True)

    def test_interleaved_stream_keeps_invariants(self):
        disk = DiskManager(buffer_pages=8)
        tree = RTree(disk, "RP", page_size=256)
        rng = random.Random(17)
        live = {}
        next_oid = 0
        for step in range(500):
            if live and rng.random() < 0.45:
                oid = rng.choice(sorted(live))
                assert tree.delete_point(oid, live.pop(oid))
            else:
                point = Point(
                    round(rng.uniform(0, 10_000), 3), round(rng.uniform(0, 10_000), 3)
                )
                tree.insert_point(next_oid, point)
                live[next_oid] = point
                next_oid += 1
            if step % 25 == 0:
                tree.check_invariants(enforce_min_fill=True)
        tree.check_invariants(enforce_min_fill=True)
        assert len(tree) == len(live)
        assert _stored(tree) == {(o, p.x, p.y) for o, p in live.items()}

    def test_bulk_loaded_tree_survives_deletes(self):
        """Condense works on packed trees too (min fill not enforced: the
        trailing page per level may be underfull by construction)."""
        disk = DiskManager()
        points = _random_points(150, seed=23)
        tree = bulk_load_points(
            disk, "RP", list(points.values()), oids=list(points), page_size=256
        )
        tree.check_invariants()
        rng = random.Random(29)
        order = sorted(points)
        rng.shuffle(order)
        for oid in order[:120]:
            assert tree.delete_point(oid, points.pop(oid))
            tree.check_invariants()
        assert _stored(tree) == {(o, p.x, p.y) for o, p in points.items()}


class TestCheckerDetectsCorruption:
    """The checker must fail on trees that violate what it claims to check."""

    def test_detects_loose_parent_mbr(self, small_tree):
        tree, _ = small_tree
        root = tree.peek_node(tree.root_page)
        entry = root.entries[0]
        entry.mbr = entry.mbr.expanded(1.0)  # superset, but not exact
        tree.disk.write(tree.root_page, root)
        with pytest.raises(AssertionError):
            tree.check_invariants()

    def test_detects_wrong_size(self, small_tree):
        tree, _ = small_tree
        tree.size += 1
        with pytest.raises(AssertionError):
            tree.check_invariants()

    def test_detects_overflowing_node(self, small_tree):
        tree, _ = small_tree
        stack = [tree.root_page]
        leaf_page = None
        while stack:
            page = stack.pop()
            node = tree.peek_node(page)
            if node.is_leaf:
                leaf_page = page
                break
            stack.extend(e.child_page for e in node.entries)
        node = tree.peek_node(leaf_page)
        filler = [
            node.entries[0].__class__(
                90_000 + i, Rect.from_point(Point(i, i)), Point(i, i)
            )
            for i in range(tree.leaf_capacity + 1)
        ]
        node.entries.extend(filler)
        tree.disk.write(leaf_page, node)
        with pytest.raises(AssertionError):
            tree.check_invariants()

    def test_detects_min_fill_violation(self, small_tree):
        tree, points = small_tree
        # Manually orphan entries from a leaf until it underflows, without
        # running the condense pass.
        stack = [tree.root_page]
        while stack:
            page = stack.pop()
            node = tree.peek_node(page)
            if node.is_leaf:
                if page == tree.root_page:
                    pytest.skip("single-node tree cannot underflow")
                removed = len(node.entries) - 1
                node.entries[:] = node.entries[:1]
                tree.disk.write(page, node)
                tree.size -= removed
                break
            stack.extend(e.child_page for e in node.entries)
        with pytest.raises(AssertionError):
            tree.check_invariants(enforce_min_fill=True)
