"""Tests for R-tree entry and node primitives."""

import pytest

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.entries import (
    BRANCH_ENTRY_BYTES,
    CELL_ENTRY_HEADER_BYTES,
    CELL_VERTEX_BYTES,
    POINT_ENTRY_BYTES,
    BranchEntry,
    LeafEntry,
    Node,
)


class TestLeafEntry:
    def test_for_point_builds_degenerate_mbr(self):
        entry = LeafEntry.for_point(7, Point(3.0, 4.0))
        assert entry.oid == 7
        assert entry.mbr == Rect(3.0, 4.0, 3.0, 4.0)
        assert entry.payload == Point(3.0, 4.0)
        assert entry.size_bytes == POINT_ENTRY_BYTES

    def test_for_cell_size_grows_with_vertices(self):
        mbr = Rect(0, 0, 1, 1)
        small = LeafEntry.for_cell(1, mbr, "cell", vertex_count=3)
        large = LeafEntry.for_cell(2, mbr, "cell", vertex_count=8)
        assert small.size_bytes == CELL_ENTRY_HEADER_BYTES + 3 * CELL_VERTEX_BYTES
        assert large.size_bytes == CELL_ENTRY_HEADER_BYTES + 8 * CELL_VERTEX_BYTES
        assert large.size_bytes > small.size_bytes

    def test_for_cell_enforces_minimum_three_vertices(self):
        entry = LeafEntry.for_cell(1, Rect(0, 0, 1, 1), "cell", vertex_count=0)
        assert entry.size_bytes == CELL_ENTRY_HEADER_BYTES + 3 * CELL_VERTEX_BYTES


class TestNode:
    def test_leaf_flag_follows_level(self):
        assert Node(0).is_leaf
        assert not Node(1).is_leaf

    def test_mbr_covers_all_entries(self):
        node = Node(0, [LeafEntry.for_point(0, Point(0, 0)), LeafEntry.for_point(1, Point(5, 7))])
        assert node.mbr() == Rect(0, 0, 5, 7)

    def test_mbr_of_empty_node_raises(self):
        with pytest.raises(ValueError):
            Node(0).mbr()

    def test_byte_size_leaf_vs_branch(self):
        leaf = Node(0, [LeafEntry.for_point(i, Point(i, i)) for i in range(3)])
        branch = Node(1, [BranchEntry(Rect(0, 0, 1, 1), child_page=i) for i in range(3)])
        assert leaf.byte_size() == 3 * POINT_ENTRY_BYTES
        assert branch.byte_size() == 3 * BRANCH_ENTRY_BYTES
