"""Shared fixtures and hypothesis strategies for the test-suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import settings
from hypothesis import strategies as st

# Tier-1 is a deterministic gate: derandomize hypothesis so every run draws
# the same examples.  Randomized exploration runs via HYPOTHESIS_PROFILE=
# explore (locally and in the scheduled, non-blocking CI job): since the
# exclude-zero-area boundary-tie convention landed, the brute oracle and
# FM/PM/NM agree even on tolerance-degenerate configurations such as
# exactly colinear Voronoi bisectors (pinned in
# tests/join/test_boundary_ties.py).
settings.register_profile("deterministic", derandomize=True)
settings.register_profile("explore", derandomize=False)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "deterministic"))

from repro.datasets.synthetic import DOMAIN, uniform_points
from repro.datasets.workload import WorkloadConfig, build_workload
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.storage.disk import DiskManager


# ----------------------------------------------------------------------
# hypothesis strategies
# ----------------------------------------------------------------------
def coordinates(min_value: float = 0.0, max_value: float = 10_000.0):
    """Finite coordinates inside the paper's normalised domain."""
    return st.floats(
        min_value=min_value,
        max_value=max_value,
        allow_nan=False,
        allow_infinity=False,
        width=32,
    )


def points_strategy():
    """A single point inside the domain."""
    return st.builds(Point, coordinates(), coordinates())


def grid_points_strategy(step: float = 0.25):
    """Points snapped to a grid, guaranteeing a minimum pairwise separation.

    Voronoi-based properties use these: sites closer than the geometric
    tolerance of the polygon machinery produce degenerate sliver cells that
    no finite-precision implementation (including the paper's) can represent.
    """
    cells = int(10_000 / step)
    return st.builds(
        lambda ix, iy: Point(ix * step, iy * step),
        st.integers(min_value=0, max_value=cells),
        st.integers(min_value=0, max_value=cells),
    )


def distinct_pointsets(min_size: int = 2, max_size: int = 12):
    """Small lists of distinct, well-separated points (Voronoi sites)."""
    return st.lists(
        grid_points_strategy(),
        min_size=min_size,
        max_size=max_size,
        unique_by=lambda p: (p.x, p.y),
    )


# ----------------------------------------------------------------------
# fixtures
# ----------------------------------------------------------------------
@pytest.fixture
def domain() -> Rect:
    """The paper's [0, 10000]^2 space domain."""
    return DOMAIN


@pytest.fixture
def disk() -> DiskManager:
    """A fresh simulated disk with a small buffer."""
    return DiskManager(buffer_pages=8)


@pytest.fixture
def small_workload():
    """Two small uniform pointsets, indexed, with measurement reset."""
    config = WorkloadConfig(n_p=120, n_q=100, seed=7, buffer_fraction=0.05)
    return build_workload(config)


@pytest.fixture
def tiny_pointsets():
    """Two tiny pointsets used by exact-equivalence tests."""
    return uniform_points(40, seed=1), uniform_points(35, seed=2)
