"""Tests for best-first nearest-neighbour search."""

import random

import pytest

from repro.datasets.synthetic import DOMAIN, uniform_points
from repro.datasets.workload import build_indexed_pointset
from repro.geometry.point import Point, dist
from repro.index.rtree import RTree
from repro.query.nearest import (
    incremental_nearest,
    k_nearest_neighbors,
    nearest_neighbor,
    quadrant_nearest_neighbors,
)
from repro.storage.disk import DiskManager


@pytest.fixture(scope="module")
def indexed_points():
    points = uniform_points(300, seed=13)
    disk = DiskManager()
    tree = build_indexed_pointset(disk, "RP", points, domain=DOMAIN)
    return points, disk, tree


class TestIncrementalNearest:
    def test_results_come_out_in_distance_order(self, indexed_points):
        points, _, tree = indexed_points
        query = Point(5000.0, 5000.0)
        distances = [d for d, _ in incremental_nearest(tree, query)]
        assert distances == sorted(distances)
        assert len(distances) == len(points)

    def test_matches_linear_scan_ranking(self, indexed_points):
        points, _, tree = indexed_points
        rng = random.Random(1)
        for _ in range(5):
            query = Point(rng.uniform(0, 10_000), rng.uniform(0, 10_000))
            expected = sorted(range(len(points)), key=lambda i: dist(points[i], query))
            got = [e.oid for _, e in incremental_nearest(tree, query)]
            assert got[:20] == expected[:20]

    def test_empty_tree_yields_nothing(self):
        tree = RTree(DiskManager(), "RP")
        assert list(incremental_nearest(tree, Point(0, 0))) == []

    def test_lazy_consumption_reads_few_nodes(self, indexed_points):
        points, disk, tree = indexed_points
        disk.buffer.clear()
        disk.reset_counters()
        gen = incremental_nearest(tree, Point(1234.0, 5678.0))
        next(gen)
        assert disk.counters.reads < tree.node_count()


class TestNearestNeighborHelpers:
    def test_nearest_neighbor_matches_scan(self, indexed_points):
        points, _, tree = indexed_points
        query = Point(42.0, 4242.0)
        d, entry = nearest_neighbor(tree, query)
        expected = min(range(len(points)), key=lambda i: dist(points[i], query))
        assert entry.oid == expected
        assert d == pytest.approx(dist(points[expected], query))

    def test_nearest_neighbor_on_empty_tree(self):
        assert nearest_neighbor(RTree(DiskManager(), "RP"), Point(0, 0)) is None

    def test_k_nearest_sizes_and_order(self, indexed_points):
        points, _, tree = indexed_points
        query = Point(9000.0, 1000.0)
        results = k_nearest_neighbors(tree, query, 10)
        assert len(results) == 10
        assert [d for d, _ in results] == sorted(d for d, _ in results)

    def test_k_nearest_with_nonpositive_k(self, indexed_points):
        _, _, tree = indexed_points
        assert k_nearest_neighbors(tree, Point(0, 0), 0) == []
        assert k_nearest_neighbors(tree, Point(0, 0), -3) == []

    def test_k_larger_than_dataset_returns_all(self):
        points = uniform_points(15, seed=3)
        tree = build_indexed_pointset(DiskManager(), "RP", points, domain=DOMAIN)
        assert len(k_nearest_neighbors(tree, Point(0, 0), 100)) == 15


class TestQuadrantNN:
    def test_each_result_is_in_its_quadrant(self, indexed_points):
        points, _, tree = indexed_points
        query = Point(5000.0, 5000.0)
        ne, nw, sw, se = quadrant_nearest_neighbors(tree, query)
        assert ne.payload.x >= query.x and ne.payload.y >= query.y
        assert nw.payload.x < query.x and nw.payload.y >= query.y
        assert sw.payload.x < query.x and sw.payload.y < query.y
        assert se.payload.x >= query.x and se.payload.y < query.y

    def test_exclude_oid_is_respected(self):
        points = [Point(10.0, 10.0), Point(20.0, 20.0), Point(5.0, 5.0), Point(30.0, 5.0), Point(5.0, 30.0)]
        tree = build_indexed_pointset(DiskManager(), "RP", points, domain=DOMAIN)
        results = quadrant_nearest_neighbors(tree, points[0], exclude_oid=0)
        found_oids = {entry.oid for entry in results if entry is not None}
        assert 0 not in found_oids

    def test_empty_quadrants_return_none(self):
        points = [Point(10.0, 10.0)]
        tree = build_indexed_pointset(DiskManager(), "RP", points, domain=DOMAIN)
        results = quadrant_nearest_neighbors(tree, Point(0.0, 0.0))
        assert results[0] is not None  # NE quadrant holds the only point
        assert results[1] is None and results[2] is None and results[3] is None
