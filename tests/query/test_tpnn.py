"""Tests for the time-parameterised NN query used by TP-VOR."""

import pytest

from repro.datasets.synthetic import DOMAIN, uniform_points
from repro.datasets.workload import build_indexed_pointset
from repro.geometry.point import Point, dist
from repro.index.rtree import RTree
from repro.query.tpnn import crossing_parameter, tp_nearest_neighbor
from repro.storage.disk import DiskManager


class TestCrossingParameter:
    def test_halfway_crossing(self):
        # Moving from (0,0) towards (10,0); the bisector with (4,0) is x=2,
        # which is reached at t = 0.2.
        t = crossing_parameter(Point(0, 0), Point(10, 0), Point(4, 0))
        assert t == pytest.approx(0.2)

    def test_point_behind_never_crosses(self):
        t = crossing_parameter(Point(0, 0), Point(10, 0), Point(-5, 0))
        assert t == float("inf")

    def test_perpendicular_point_never_crosses(self):
        t = crossing_parameter(Point(0, 0), Point(10, 0), Point(0, 7))
        assert t == float("inf")

    def test_crossing_location_is_equidistant(self):
        site, target, other = Point(1, 2), Point(9, 8), Point(6, 1)
        t = crossing_parameter(site, target, other)
        loc = Point(site.x + t * (target.x - site.x), site.y + t * (target.y - site.y))
        assert dist(loc, site) == pytest.approx(dist(loc, other), rel=1e-9)


class TestTPNNQuery:
    def test_finds_first_bisector_crossed(self):
        points = [Point(0.0, 0.0), Point(10.0, 0.0), Point(20.0, 0.0), Point(6.0, 50.0)]
        tree = build_indexed_pointset(DiskManager(), "RP", points, domain=DOMAIN)
        hit = tp_nearest_neighbor(tree, points[0], Point(100.0, 0.0), exclude_oid=0, t_max=1.0)
        assert hit is not None
        t, entry = hit
        assert entry.oid == 1  # the nearest bisector along +x belongs to (10, 0)
        assert t == pytest.approx(0.05)

    def test_returns_none_when_no_crossing_before_target(self):
        points = [Point(0.0, 0.0), Point(5000.0, 0.0)]
        tree = build_indexed_pointset(DiskManager(), "RP", points, domain=DOMAIN)
        # Target is well before the bisector at x=2500.
        assert tp_nearest_neighbor(tree, points[0], Point(100.0, 0.0), exclude_oid=0) is None

    def test_empty_tree_and_degenerate_direction(self):
        tree = RTree(DiskManager(), "RP")
        assert tp_nearest_neighbor(tree, Point(0, 0), Point(1, 1)) is None
        points = [Point(0.0, 0.0), Point(5.0, 5.0)]
        full = build_indexed_pointset(DiskManager(), "RP", points, domain=DOMAIN)
        assert tp_nearest_neighbor(full, points[0], points[0], exclude_oid=0) is None

    def test_matches_linear_scan_on_random_data(self):
        points = uniform_points(200, seed=17)
        tree = build_indexed_pointset(DiskManager(), "RP", points, domain=DOMAIN)
        site = points[0]
        target = Point(site.x + 2000.0, site.y + 1500.0)
        expected_t = float("inf")
        expected_oid = None
        for oid, other in enumerate(points):
            if oid == 0:
                continue
            t = crossing_parameter(site, target, other)
            if t < expected_t:
                expected_t, expected_oid = t, oid
        hit = tp_nearest_neighbor(tree, site, target, exclude_oid=0, t_max=1.0)
        if expected_t >= 1.0:
            assert hit is None
        else:
            assert hit is not None
            assert hit[1].oid == expected_oid
            assert hit[0] == pytest.approx(expected_t)
