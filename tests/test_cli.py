"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_command_parses_scale(self):
        args = build_parser().parse_args(["run", "fig7", "--scale", "tiny"])
        assert args.command == "run"
        assert args.experiment == "fig7"
        assert args.scale == "tiny"

    def test_join_command_defaults(self):
        args = build_parser().parse_args(["join"])
        assert args.n_p == 500 and args.n_q == 500 and args.method == "nm"


class TestCommands:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "table3" in out

    def test_run_prints_a_table(self, capsys):
        assert main(["run", "fig10a", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "false hit ratio" in out.lower()

    def test_run_unknown_experiment_raises(self):
        with pytest.raises(ValueError):
            main(["run", "fig99"])

    def test_join_reports_pair_count(self, capsys):
        assert main(["join", "--n-p", "40", "--n-q", "30", "--method", "nm"]) == 0
        out = capsys.readouterr().out
        assert "result pairs" in out
        assert "page accesses" in out

    def test_invalid_join_method_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["join", "--method", "bogus"])

    def test_sharded_fm_join_runs(self, capsys):
        """--executor sharded is now legal for fm (partitioned traversal)."""
        assert main([
            "join", "--n-p", "40", "--n-q", "30", "--method", "fm",
            "--executor", "sharded", "--workers", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "sharded (2 workers)" in out


class TestWorkersValidation:
    """--workers used to be silently ignored with --executor serial; both
    contradictions are now rejected with a clear parser error."""

    def test_nonpositive_workers_rejected_everywhere(self, capsys):
        for argv in (
            ["join", "--workers", "0"],
            ["join", "--workers", "-3", "--executor", "sharded"],
        ):
            with pytest.raises(SystemExit) as excinfo:
                main(argv)
            assert excinfo.value.code == 2
            assert "--workers must be at least 1" in capsys.readouterr().err

    def test_workers_with_serial_executor_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["join", "--workers", "4"])  # serial is the default
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "no effect with --executor serial" in err

    def test_single_worker_with_serial_executor_allowed(self, capsys):
        """--workers 1 states the serial fact explicitly; not an error."""
        assert main(["join", "--n-p", "30", "--n-q", "20", "--workers", "1"]) == 0
        assert "result pairs" in capsys.readouterr().out

    def test_workers_with_sharded_executor_allowed(self, capsys):
        assert main([
            "join", "--n-p", "30", "--n-q", "20",
            "--executor", "sharded", "--workers", "3",
        ]) == 0
        assert "result pairs" in capsys.readouterr().out
