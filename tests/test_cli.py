"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_command_parses_scale(self):
        args = build_parser().parse_args(["run", "fig7", "--scale", "tiny"])
        assert args.command == "run"
        assert args.experiment == "fig7"
        assert args.scale == "tiny"

    def test_join_command_defaults(self):
        args = build_parser().parse_args(["join"])
        assert args.n_p == 500 and args.n_q == 500 and args.method == "nm"


class TestCommands:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "table3" in out

    def test_run_prints_a_table(self, capsys):
        assert main(["run", "fig10a", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "false hit ratio" in out.lower()

    def test_run_unknown_experiment_raises(self):
        with pytest.raises(ValueError):
            main(["run", "fig99"])

    def test_join_reports_pair_count(self, capsys):
        assert main(["join", "--n-p", "40", "--n-q", "30", "--method", "nm"]) == 0
        out = capsys.readouterr().out
        assert "result pairs" in out
        assert "page accesses" in out

    def test_invalid_join_method_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["join", "--method", "bogus"])
