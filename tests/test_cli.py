"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def stream_file(tmp_path):
    """A small valid update stream: one mixed batch, then a delete batch."""
    path = tmp_path / "stream.txt"
    path.write_text(
        "insert P 900 123.5 456.5\n"
        "insert Q 901 7000.0 2500.0\n"
        "---\n"
        "delete P 900\n",
        encoding="utf-8",
    )
    return str(path)


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_command_parses_scale(self):
        args = build_parser().parse_args(["run", "fig7", "--scale", "tiny"])
        assert args.command == "run"
        assert args.experiment == "fig7"
        assert args.scale == "tiny"

    def test_join_command_defaults(self):
        args = build_parser().parse_args(["join"])
        assert args.n_p == 500 and args.n_q == 500 and args.method == "nm"


class TestCommands:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "table3" in out

    def test_run_prints_a_table(self, capsys):
        assert main(["run", "fig10a", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "false hit ratio" in out.lower()

    def test_run_unknown_experiment_raises(self):
        with pytest.raises(ValueError):
            main(["run", "fig99"])

    def test_join_reports_pair_count(self, capsys):
        assert main(["join", "--n-p", "40", "--n-q", "30", "--method", "nm"]) == 0
        out = capsys.readouterr().out
        assert "result pairs" in out
        assert "page accesses" in out

    def test_invalid_join_method_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["join", "--method", "bogus"])

    def test_sharded_fm_join_runs(self, capsys):
        """--executor sharded is now legal for fm (partitioned traversal)."""
        assert main([
            "join", "--n-p", "40", "--n-q", "30", "--method", "fm",
            "--executor", "sharded", "--workers", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "sharded (2 workers)" in out


class TestWorkersValidation:
    """--workers used to be silently ignored with --executor serial; both
    contradictions are now rejected with a clear parser error."""

    def test_nonpositive_workers_rejected_everywhere(self, capsys):
        for argv in (
            ["join", "--workers", "0"],
            ["join", "--workers", "-3", "--executor", "sharded"],
        ):
            with pytest.raises(SystemExit) as excinfo:
                main(argv)
            assert excinfo.value.code == 2
            assert "--workers must be at least 1" in capsys.readouterr().err

    def test_workers_with_serial_executor_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["join", "--workers", "4"])  # serial is the default
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "no effect with --executor serial" in err

    def test_single_worker_with_serial_executor_allowed(self, capsys):
        """--workers 1 states the serial fact explicitly; not an error."""
        assert main(["join", "--n-p", "30", "--n-q", "20", "--workers", "1"]) == 0
        assert "result pairs" in capsys.readouterr().out

    def test_workers_with_sharded_executor_allowed(self, capsys):
        assert main([
            "join", "--n-p", "30", "--n-q", "20",
            "--executor", "sharded", "--workers", "3",
        ]) == 0
        assert "result pairs" in capsys.readouterr().out


class TestPrefetchFlags:
    """--prefetch drives the overlapped-I/O pipeline; contradictory
    combinations must be rejected loudly, not silently ignored."""

    def test_next_batch_join_runs_and_reports_pipeline(self, capsys):
        assert main([
            "join", "--n-p", "40", "--n-q", "30",
            "--prefetch", "next_batch", "--fetch-latency-ms", "0.1",
        ]) == 0
        out = capsys.readouterr().out
        assert "result pairs" in out
        assert "prefetch" in out
        assert "overlapped" in out

    def test_next_shard_requires_sharded_executor(self, capsys):
        assert main(["join", "--n-p", "30", "--n-q", "20",
                     "--prefetch", "next_shard"]) == 2
        err = capsys.readouterr().err
        assert "next_shard" in err and "sharded" in err

    def test_next_shard_with_sharded_executor_runs(self, capsys):
        assert main([
            "join", "--n-p", "40", "--n-q", "30",
            "--executor", "sharded", "--workers", "2",
            "--prefetch", "next_shard",
        ]) == 0
        assert "result pairs" in capsys.readouterr().out

    def test_prefetch_identical_pairs_and_accesses(self, capsys):
        """The CLI surfaces the invariant: pair and page-access lines are
        identical with and without --prefetch."""
        assert main(["join", "--n-p", "40", "--n-q", "30"]) == 0
        baseline = capsys.readouterr().out
        assert main(["join", "--n-p", "40", "--n-q", "30",
                     "--prefetch", "next_batch"]) == 0
        prefetched = capsys.readouterr().out

        def line(text, prefix):
            return next(l for l in text.splitlines() if l.startswith(prefix))

        assert line(prefetched, "result pairs") == line(baseline, "result pairs")
        assert line(prefetched, "page accesses") == line(baseline, "page accesses")

    def test_updates_with_prefetch_rejected(self, capsys, stream_file):
        with pytest.raises(SystemExit) as excinfo:
            main(["join", "--updates", stream_file, "--prefetch", "next_batch"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--updates" in err and "--prefetch" in err

    def test_updates_with_prefetch_off_allowed(self, capsys, stream_file):
        """--prefetch off states the synchronous default explicitly."""
        assert main([
            "join", "--n-p", "40", "--n-q", "30",
            "--updates", stream_file, "--prefetch", "off",
        ]) == 0
        assert "final pairs" in capsys.readouterr().out


class TestUpdateStreams:
    """--updates drives incremental maintenance; contradictory executor
    combinations and malformed stream files must fail with clear messages."""

    def test_updates_applies_stream_and_prints_deltas(self, capsys, stream_file):
        assert main([
            "join", "--n-p", "40", "--n-q", "30", "--updates", stream_file,
        ]) == 0
        out = capsys.readouterr().out
        assert "initial pairs" in out
        assert "batch  1" in out and "batch  2" in out
        assert "cells invalidated" in out
        assert "final pairs" in out and "update totals" in out

    def test_updates_with_sharded_executor_rejected(self, capsys, stream_file):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "join", "--updates", stream_file,
                "--executor", "sharded", "--workers", "2",
            ])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--updates requires --executor serial" in err

    def test_updates_with_reuse_handoff_rejected(self, capsys, stream_file):
        for handoff in ("auto", "always", "never"):
            with pytest.raises(SystemExit) as excinfo:
                main(["join", "--updates", stream_file, "--reuse-handoff", handoff])
            assert excinfo.value.code == 2
            err = capsys.readouterr().err
            assert "--reuse-handoff" in err and "--updates" in err

    def test_reuse_handoff_without_updates_still_allowed(self, capsys):
        assert main([
            "join", "--n-p", "30", "--n-q", "20",
            "--executor", "sharded", "--workers", "2", "--reuse-handoff", "always",
        ]) == 0
        assert "result pairs" in capsys.readouterr().out

    def test_malformed_stream_reports_line_number(self, capsys, tmp_path):
        bad = tmp_path / "bad.txt"
        bad.write_text("insert P 1 2.0 3.0\nfrobnicate Q 7\n", encoding="utf-8")
        assert main(["join", "--n-p", "30", "--n-q", "20", "--updates", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "update stream line 2" in err
        assert "frobnicate" in err

    def test_missing_stream_file_reports_clearly(self, capsys, tmp_path):
        missing = str(tmp_path / "nope.txt")
        assert main(["join", "--n-p", "30", "--n-q", "20", "--updates", missing]) == 2
        assert "cannot read --updates file" in capsys.readouterr().err

    def test_inapplicable_update_reports_its_batch(self, capsys, tmp_path):
        path = tmp_path / "stream.txt"
        path.write_text("delete P 99999\n", encoding="utf-8")
        assert main(["join", "--n-p", "30", "--n-q", "20", "--updates", str(path)]) == 2
        err = capsys.readouterr().err
        assert "update batch 1" in err and "no such point" in err


class TestDistributedFlags:
    """--executor distributed / --nodes: the distributed tier's CLI surface.

    Contradictions (nodes without the distributed executor, the
    non-sharding brute oracle, update streams) are rejected loudly with
    exit code 2, in the same style as --workers and --updates.
    """

    def test_distributed_join_runs_on_file_backend(self, capsys, tmp_path):
        assert main([
            "join", "--n-p", "40", "--n-q", "30",
            "--storage", "file", "--storage-path", str(tmp_path / "pages.bin"),
            "--executor", "distributed", "--nodes", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "executor        : distributed (2 nodes)" in out
        assert "result pairs" in out

    def test_nodes_with_serial_executor_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["join", "--nodes", "2"])  # serial is the default
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "no effect with --executor serial" in err

    def test_nodes_with_sharded_executor_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["join", "--executor", "sharded", "--nodes", "2"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "no effect with --executor sharded" in err

    def test_nonpositive_nodes_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["join", "--executor", "distributed", "--nodes", "0"])
        assert excinfo.value.code == 2
        assert "--nodes must be at least 1" in capsys.readouterr().err

    def test_distributed_brute_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "join", "--method", "brute",
                "--storage", "file", "--executor", "distributed",
            ])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "cannot run --method brute" in err

    def test_distributed_with_updates_rejected(self, capsys, stream_file):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "join", "--updates", stream_file,
                "--storage", "file", "--executor", "distributed",
            ])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--updates requires --executor serial" in err

    def test_distributed_memory_backend_reports_error(self, capsys):
        # No --storage: the default memory backend cannot be shared with
        # node subprocesses; the engine's rejection surfaces as exit 2.
        assert main([
            "join", "--n-p", "30", "--n-q", "20", "--executor", "distributed",
        ]) == 2
        assert "shared backend" in capsys.readouterr().err

    def test_unreachable_page_server_reports_error(self, capsys):
        # Port 1 is never a live page server: the connection failure is an
        # operator error (wrong address / server down), not a traceback.
        assert main([
            "join", "--n-p", "30", "--n-q", "20",
            "--page-server", "127.0.0.1:1",
        ]) == 2
        assert "could not reach the page server" in capsys.readouterr().err


class TestFaultToleranceFlags:
    """--node-timeout / --node-retries / --fault-plan: the fault-tolerance
    surface of the distributed tier.

    Each flag is distributed-only and rejected with exit code 2 elsewhere;
    a malformed fault-plan spec dies at parse time, not mid-run.
    """

    @pytest.mark.parametrize(
        "flag, value",
        [("--node-timeout", "5"), ("--node-retries", "1"),
         ("--fault-plan", "crash@node-0")],
    )
    def test_flags_require_distributed_executor(self, capsys, flag, value):
        with pytest.raises(SystemExit) as excinfo:
            main(["join", flag, value])  # serial is the default
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert f"{flag} configures distributed node fault tolerance" in err
        assert "no effect with --executor serial" in err

    def test_nonpositive_node_timeout_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["join", "--executor", "distributed", "--node-timeout", "0"])
        assert excinfo.value.code == 2
        assert "--node-timeout must be positive" in capsys.readouterr().err

    def test_negative_node_retries_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["join", "--executor", "distributed", "--node-retries", "-1"])
        assert excinfo.value.code == 2
        assert "--node-retries must be >= 0" in capsys.readouterr().err

    def test_malformed_fault_plan_rejected_at_parse_time(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "join", "--executor", "distributed",
                "--fault-plan", "meteor@node-0",
            ])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--fault-plan:" in err
        assert "meteor" in err

    def test_faulted_run_reports_quarantine_and_retries(self, capsys, tmp_path):
        # 150/140 points give PM several work units, so node-1 is
        # guaranteed to pull (and crash on) its first unit before node-0
        # can drain the queue.
        assert main([
            "join", "--n-p", "150", "--n-q", "140", "--method", "pm",
            "--storage", "file", "--storage-path", str(tmp_path / "pages.bin"),
            "--executor", "distributed", "--nodes", "2",
            "--fault-plan", "crash@node-1:after=0",
        ]) == 0
        out = capsys.readouterr().out
        assert "fault plan      : crash@node-1" in out
        assert "quarantined     : 1 node(s): node-1 (NodeCrashed)" in out
        assert "result pairs" in out

    def test_clean_faulted_run_reports_no_failures(self, capsys, tmp_path):
        assert main([
            "join", "--n-p", "40", "--n-q", "30", "--method", "pm",
            "--storage", "file", "--storage-path", str(tmp_path / "pages.bin"),
            "--executor", "distributed", "--nodes", "2",
            "--fault-plan", "ready_delay@node-1:seconds=0.05",
        ]) == 0
        out = capsys.readouterr().out
        assert "fault outcome   : no node failures observed" in out
