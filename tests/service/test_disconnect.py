"""Client-disconnect resilience of the join service.

A TCP client can vanish at any point: between sending a request and
reading its reply (mid-request), or while holding a delta subscription
(mid-subscription).  The server must retire the connection without
leaking anything it holds for it — the reader side of the handler task,
the subscriber registration, and above all the bounded admission queue's
slot, whose leak would eventually wedge the dataset behind permanent
``overloaded`` rejections.  The client library in turn must tear down
its reader task on close.
"""

from __future__ import annotations

import asyncio
import threading

from repro.service import DatasetSpec, JoinService, ServiceClient
from repro.service.protocol import encode_line

SPEC = dict(name="d", n_p=40, n_q=35, seed=3)


async def _settle(predicate, timeout: float = 5.0, interval: float = 0.02):
    """Await a loop-side condition with a deadline (no fixed sleeps)."""
    deadline = asyncio.get_running_loop().time() + timeout
    while True:
        if predicate():
            return
        if asyncio.get_running_loop().time() >= deadline:
            raise AssertionError("condition not reached before deadline")
        await asyncio.sleep(interval)


async def _raw_connect(host, port):
    """A protocol-naive connection: hello is read, nothing else is."""
    reader, writer = await asyncio.open_connection(host, port)
    hello = await reader.readline()
    assert b"hello" in hello
    return reader, writer


class TestMidRequestDisconnect:
    def test_slot_released_and_work_survives_client_death(self):
        """The client sends an update, then aborts before reading the
        reply.  The batch still applies (work is published through the
        snapshot, not the dead socket), the admission slot returns, and
        the server keeps serving."""

        async def scenario():
            service = JoinService([DatasetSpec(**SPEC)])
            host, port = await service.start()
            state = service.datasets["d"]
            try:
                # Stall the (single) worker thread so the update below is
                # deterministically still in flight when the client dies.
                gate = threading.Event()
                blocker = asyncio.ensure_future(state.submit(gate.wait))

                _reader, writer = await _raw_connect(host, port)
                writer.write(
                    encode_line(
                        {
                            "op": "update",
                            "dataset": "d",
                            "updates": ["insert P 9001 123.5 456.5"],
                            "id": "doomed",
                        }
                    )
                )
                await writer.drain()
                # The server admitted the update (it queues behind the
                # blocker)...
                await _settle(lambda: state.pending == 2)
                # ...and only now does the client die, reply undeliverable.
                writer.transport.abort()
                gate.set()
                await blocker
                # The batch still applies and every admission slot returns.
                await _settle(lambda: state.version == 1)
                await _settle(lambda: state.pending == 0)

                async with await ServiceClient.connect(host, port) as client:
                    response = await client.stats(dataset="d")
                    # A second mid-sized burst proves no slot leaked: the
                    # admission bound is still fully available.
                    for _ in range(state.spec.max_queue):
                        await client.window([0.0, 0.0, 9000.0, 9000.0], dataset="d")
                return response, state.pending
            finally:
                await service.close()

        response, pending = asyncio.run(scenario())
        assert response["version"] == 1
        assert response["points"]["P"] == SPEC["n_p"] + 1
        assert pending == 0

    def test_disconnect_before_request_read_is_harmless(self):
        async def scenario():
            service = JoinService([DatasetSpec(**SPEC)])
            host, port = await service.start()
            state = service.datasets["d"]
            try:
                _reader, writer = await _raw_connect(host, port)
                writer.transport.abort()  # die without ever sending a request
                await _settle(lambda: state.pending == 0)
                async with await ServiceClient.connect(host, port) as client:
                    return await client.join(dataset="d"), state.pending
            finally:
                await service.close()

        response, pending = asyncio.run(scenario())
        assert response["ok"]
        assert pending == 0


class TestMidSubscriptionDisconnect:
    def test_dead_subscriber_is_pruned_and_live_one_still_streams(self):
        async def scenario():
            service = JoinService([DatasetSpec(**SPEC)])
            host, port = await service.start()
            state = service.datasets["d"]
            try:
                # A subscriber that will die...
                doomed_reader, doomed_writer = await _raw_connect(host, port)
                doomed_writer.write(
                    encode_line({"op": "subscribe", "dataset": "d", "id": "s0"})
                )
                await doomed_writer.drain()
                await doomed_reader.readline()  # its subscribe ack
                assert len(state.subscribers) == 1
                doomed_writer.transport.abort()
                # ...whose handler notices the reset and unregisters it.
                await _settle(lambda: len(state.subscribers) == 0)

                # A healthy subscriber plus an updater: the broadcast path
                # must survive the earlier death and still deliver.
                async with await ServiceClient.connect(host, port) as sub:
                    await sub.subscribe(dataset="d")
                    async with await ServiceClient.connect(host, port) as upd:
                        await upd.update(
                            ["insert Q 9101 222.5 333.5"], dataset="d"
                        )
                    event = await sub.next_event()
                return event, len(state.subscribers)
            finally:
                await service.close()

        event, remaining_before_close = asyncio.run(scenario())
        assert event["event"] == "delta"
        assert event["version"] == 1

    def test_subscriber_killed_between_broadcasts_is_dropped(self):
        """Death detected *by* the broadcast (not the handler): a closing
        writer in the subscriber set is discarded, not written to."""

        async def scenario():
            service = JoinService([DatasetSpec(**SPEC)])
            host, port = await service.start()
            state = service.datasets["d"]
            try:
                _reader, writer = await _raw_connect(host, port)
                writer.write(
                    encode_line({"op": "subscribe", "dataset": "d", "id": "s0"})
                )
                await writer.drain()
                await _settle(lambda: len(state.subscribers) == 1)
                # Simulate the handler lagging behind the transport death:
                # mark the server-side writer closing, then broadcast.
                [server_writer] = list(state.subscribers)
                server_writer.close()
                async with await ServiceClient.connect(host, port) as upd:
                    await upd.update(["insert P 9201 77.5 88.5"], dataset="d")
                return len(state.subscribers) == 0 or all(
                    s.is_closing() for s in state.subscribers
                )
            finally:
                await service.close()

        assert asyncio.run(scenario())


class TestClientReaderCleanup:
    def test_close_retires_the_reader_task(self):
        async def scenario():
            service = JoinService([DatasetSpec(**SPEC)])
            host, port = await service.start()
            try:
                client = await ServiceClient.connect(host, port)
                await client.join(dataset="d")
                task = client._reader_task
                assert not task.done()
                await client.close()
                await asyncio.sleep(0)  # let the cancellation land
                return task.done()
            finally:
                await service.close()

        assert asyncio.run(scenario())

    def test_server_side_close_ends_reader_task_without_leak(self):
        """The server closing the connection ends the client's reader
        loop on EOF, with no cancellation needed."""

        async def scenario():
            service = JoinService([DatasetSpec(**SPEC)])
            host, port = await service.start()
            state = service.datasets["d"]
            try:
                client = await ServiceClient.connect(host, port)
                # Subscribing is the one op that exposes the server-side
                # writer; closing it hangs up on the client.
                await client.subscribe(dataset="d")
                task = client._reader_task
                [server_writer] = list(state.subscribers)
                server_writer.close()
                await asyncio.wait_for(asyncio.shield(task), timeout=5.0)
                done = task.done()
                await client.close()
                return done
            finally:
                await service.close()

        assert asyncio.run(scenario())
