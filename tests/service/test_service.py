"""Differential suite for the join service.

The correctness invariant of :mod:`repro.service`: every served response
is byte-equal to a serial replay of the same request order.  N
concurrent clients issue interleaved ``join``/``window``/``update``
requests; afterwards a fresh :class:`DynamicJoinSession` applies the
recorded update batches in the server's version order and every recorded
response line is re-derived and compared as raw canonical-JSON bytes —
across the memory, file, and sqlite backends.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.datasets.workload import WorkloadConfig, build_workload
from repro.dynamic.maintenance import DynamicJoinSession
from repro.dynamic.updates import parse_update_stream
from repro.engine import JoinEngine
from repro.service import DatasetSpec, JoinService, ServiceClient
from repro.service.protocol import (
    canonical_json,
    decode_line,
    encode_line,
    ok_response,
    pairs_payload,
    ServiceError,
)

N_P = 60
N_Q = 55
SEED = 3


def make_spec(storage, tmp_path, **kwargs):
    path = None
    if storage != "memory":
        path = str(tmp_path / f"svc.{storage}")
    defaults = dict(
        name="d", n_p=N_P, n_q=N_Q, seed=SEED, storage=storage, storage_path=path
    )
    defaults.update(kwargs)
    return DatasetSpec(**defaults)


def client_script(k):
    """Client ``k``'s deterministic request sequence (disjoint oids, so
    every interleaving of the scripts is conflict-free)."""
    base = 10_000 * (k + 1)
    rect = [150.0 * k, 100.0 * k, 150.0 * k + 4500.0, 100.0 * k + 4500.0]
    d = "d"
    return [
        {"op": "join", "dataset": d, "id": f"{k}-0"},
        {"op": "window", "dataset": d, "window": rect, "id": f"{k}-1"},
        {
            "op": "update",
            "dataset": d,
            "updates": [
                f"insert P {base} {100.5 + 17 * k} {200.5 + 13 * k}",
                f"insert Q {base + 1} {300.5 + 11 * k} {400.5 + 7 * k}",
            ],
            "id": f"{k}-2",
        },
        {"op": "join", "dataset": d, "id": f"{k}-3"},
        {"op": "update", "dataset": d, "updates": [f"delete P {base}"], "id": f"{k}-4"},
        {"op": "window", "dataset": d, "window": rect, "id": f"{k}-5"},
        {"op": "stats", "dataset": d, "id": f"{k}-6"},
        {"op": "join", "dataset": d, "id": f"{k}-7"},
    ]


async def run_clients(spec, n_clients):
    """Serve ``n_clients`` concurrent scripted clients; return records."""
    service = JoinService([spec])
    host, port = await service.start()
    records = []

    async def one_client(k):
        async with await ServiceClient.connect(host, port) as client:
            for request in client_script(k):
                response = await client.request(request)
                records.append((request, response))

    try:
        await asyncio.gather(*(one_client(k) for k in range(n_clients)))
    finally:
        await service.close()
    return records


def snapshot_payloads(session, version):
    return {
        "pairs": pairs_payload(session.pairs),
        "points": {"P": session.point_count("P"), "Q": session.point_count("Q")},
        "update_stats": {
            "updates_applied": session.stats.updates_applied,
            "batches_applied": session.stats.batches_applied,
            "cells_invalidated": session.stats.cells_invalidated,
            "pairs_emitted": session.stats.pairs_emitted,
            "pairs_retracted": session.stats.pairs_retracted,
        },
        "version": version,
    }


def replay_and_compare(spec, records):
    """Re-derive every recorded response serially and compare raw bytes."""
    for _request, response in records:
        assert response.get("ok"), f"a scripted request failed: {response}"

    updates_by_version = {}
    for request, response in records:
        if request["op"] == "update":
            version = response["version"]
            assert version not in updates_by_version, "duplicate version"
            updates_by_version[version] = (request, response)
    max_version = max([0, *updates_by_version])
    assert sorted(updates_by_version) == list(range(1, max_version + 1))

    reads_by_version = {}
    for request, response in records:
        if request["op"] != "update":
            reads_by_version.setdefault(response["version"], []).append(
                (request, response)
            )

    # The replay runs on the memory backend regardless of what the server
    # used: the maintained answer must not depend on the page store.
    workload = build_workload(WorkloadConfig(n_p=spec.n_p, n_q=spec.n_q, seed=spec.seed))
    with workload:
        session = DynamicJoinSession(
            workload.tree_p, workload.tree_q, domain=workload.domain
        )
        for version in range(0, max_version + 1):
            if version > 0:
                request, response = updates_by_version[version]
                [batch] = parse_update_stream(request["updates"])
                delta = session.apply_updates(batch)
                expected = ok_response(
                    "update",
                    request["id"],
                    {
                        "version": version,
                        "added": pairs_payload(delta.added),
                        "removed": pairs_payload(delta.removed),
                        "batch_stats": {
                            "updates_applied": delta.stats.updates_applied,
                            "batches_applied": delta.stats.batches_applied,
                            "cells_invalidated": delta.stats.cells_invalidated,
                            "pairs_emitted": delta.stats.pairs_emitted,
                            "pairs_retracted": delta.stats.pairs_retracted,
                        },
                    },
                )
                assert encode_line(expected) == encode_line(response)
            state = snapshot_payloads(session, version)
            for request, response in reads_by_version.get(version, []):
                op = request["op"]
                if op == "join":
                    expected = ok_response(
                        "join",
                        request["id"],
                        {
                            "version": version,
                            "count": len(state["pairs"]),
                            "pairs": state["pairs"],
                        },
                    )
                    assert encode_line(expected) == encode_line(response)
                elif op == "window":
                    from repro.geometry.rect import Rect

                    rect = Rect(*request["window"])
                    expected = ok_response(
                        "window",
                        request["id"],
                        {
                            "version": version,
                            "window": list(request["window"]),
                            "pairs": pairs_payload(session.window_pairs(rect)),
                        },
                    )
                    assert encode_line(expected) == encode_line(response)
                else:  # stats: deterministic fields; storage counters are
                    # I/O-history-dependent, so they are checked for
                    # presence and backend only.
                    assert response["version"] == version
                    assert response["pairs"] == len(state["pairs"])
                    assert response["points"] == state["points"]
                    assert response["update_stats"] == state["update_stats"]
                    assert response["storage"]["backend"] == (
                        spec.storage or response["storage"]["backend"]
                    )
        # The replayed end state matches a fresh engine run (which the
        # dynamic differential suite in turn pins against the oracle).
        # The domain must be the session's: engine.run would otherwise
        # derive it from the mutated tree MBRs and clip cells differently.
        result = JoinEngine().run(
            "nm", workload.tree_p, workload.tree_q, domain=workload.domain
        )
        assert result.pair_set() == session.pairs


@pytest.mark.parametrize("storage", ["memory", "file", "sqlite"])
class TestDifferentialService:
    def test_concurrent_clients_byte_equal_serial_replay(self, storage, tmp_path):
        spec = make_spec(storage, tmp_path)
        records = asyncio.run(run_clients(spec, n_clients=4))
        assert len(records) == 4 * 8
        replay_and_compare(spec, records)


class TestSubscribers:
    def test_streamed_delta_byte_equal_update_response(self):
        async def scenario():
            service = JoinService([DatasetSpec(name="d", n_p=40, n_q=40, seed=5)])
            host, port = await service.start()
            try:
                subscriber = await ServiceClient.connect(host, port)
                await subscriber.subscribe("d")
                async with await ServiceClient.connect(host, port) as updater:
                    responses = [
                        await updater.update(["insert P 7001 111.5 222.5"], "d"),
                        await updater.update(["delete P 7001", "insert Q 7002 333.5 444.5"], "d"),
                    ]
                events = [await subscriber.next_event() for _ in responses]
                await subscriber.close()
                return responses, events
            finally:
                await service.close()

        responses, events = asyncio.run(scenario())
        for response, event in zip(responses, events):
            assert event["event"] == "delta"
            assert event["dataset"] == "d"
            # The streamed delta is the response's delta, byte for byte.
            for key in ("version", "added", "removed"):
                assert encode_line(event[key]) == encode_line(response[key])
        assert [event["version"] for event in events] == [1, 2]


class TestAdmissionControl:
    def test_overload_is_a_loud_structured_rejection(self):
        async def scenario():
            service = JoinService(
                [DatasetSpec(name="d", n_p=30, n_q=30, seed=1, max_queue=1)]
            )
            host, port = await service.start()
            try:
                state = service.datasets["d"]
                # Occupy the single worker slot with a slow operation.
                blocker = asyncio.ensure_future(
                    state.submit(lambda: time.sleep(0.4))
                )
                await asyncio.sleep(0.05)  # let the blocker claim the slot
                async with await ServiceClient.connect(host, port) as client:
                    rejected = await client.request(
                        {"op": "window", "dataset": "d", "window": [0, 0, 9000, 9000], "id": 1}
                    )
                    await blocker
                    accepted = await client.request(
                        {"op": "window", "dataset": "d", "window": [0, 0, 9000, 9000], "id": 2}
                    )
                return rejected, accepted
            finally:
                await service.close()

        rejected, accepted = asyncio.run(scenario())
        assert rejected["ok"] is False
        assert rejected["error"]["code"] == "overloaded"
        assert "limit 1" in rejected["error"]["message"]
        assert rejected["id"] == 1  # the rejection names the request
        assert accepted["ok"] is True and accepted["id"] == 2


class TestWindowSemantics:
    def test_window_matches_first_principles_oracle(self):
        """The served window join equals the definition: pairs of the full
        CIJ whose common influence region meets the window with positive
        area — computed here from brute-force diagrams."""
        from repro.geometry.polygon import ConvexPolygon
        from repro.geometry.rect import Rect
        from repro.voronoi.diagram import brute_force_diagram

        window = [2000.0, 1500.0, 7000.0, 8000.0]

        async def scenario():
            service = JoinService([DatasetSpec(name="d", n_p=30, n_q=25, seed=9)])
            host, port = await service.start()
            try:
                async with await ServiceClient.connect(host, port) as client:
                    return await client.window(window, "d")
            finally:
                await service.close()

        response = asyncio.run(scenario())

        workload = build_workload(WorkloadConfig(n_p=30, n_q=25, seed=9))
        with workload:
            domain = workload.domain
            diagram_p = brute_force_diagram(workload.points_p, domain)
            diagram_q = brute_force_diagram(workload.points_q, domain)
            window_poly = ConvexPolygon.from_rect(Rect(*window))
            expected = set()
            for cell_p in diagram_p:
                for cell_q in diagram_q:
                    region = cell_p.common_region(cell_q)
                    if region.is_empty():
                        continue
                    if not cell_p.intersects(cell_q):
                        continue
                    if region.intersects_interior(window_poly):
                        expected.add((cell_p.oid, cell_q.oid))
        assert response["pairs"] == pairs_payload(expected)


class TestProtocolErrors:
    @staticmethod
    def _run_one(request):
        async def scenario():
            service = JoinService([DatasetSpec(name="d", n_p=20, n_q=20, seed=2)])
            host, port = await service.start()
            try:
                async with await ServiceClient.connect(host, port) as client:
                    return await client.request(request)
            finally:
                await service.close()

        return asyncio.run(scenario())

    def test_unknown_op(self):
        response = self._run_one({"op": "nuke", "dataset": "d", "id": 3})
        assert response["ok"] is False
        assert response["error"]["code"] == "bad_request"
        assert response["id"] == 3

    def test_unknown_dataset(self):
        response = self._run_one({"op": "join", "dataset": "nope"})
        assert response["error"]["code"] == "unknown_dataset"
        assert "'nope'" in response["error"]["message"]

    def test_malformed_window(self):
        response = self._run_one({"op": "window", "dataset": "d", "window": [1, 2, 3]})
        assert response["error"]["code"] == "bad_request"

    def test_inverted_window(self):
        response = self._run_one(
            {"op": "window", "dataset": "d", "window": [10.0, 0.0, 0.0, 10.0]}
        )
        assert response["error"]["code"] == "bad_request"
        assert "degenerate window" in response["error"]["message"]

    def test_update_of_missing_point_is_rejected_not_applied(self):
        response = self._run_one(
            {"op": "update", "dataset": "d", "updates": ["delete P 424242"]}
        )
        assert response["error"]["code"] == "update_rejected"

    def test_multi_batch_update_is_rejected(self):
        response = self._run_one(
            {
                "op": "update",
                "dataset": "d",
                "updates": ["insert P 5001 1.5 2.5", "---", "insert P 5002 3.5 4.5"],
            }
        )
        assert response["error"]["code"] == "bad_request"
        assert "exactly one batch" in response["error"]["message"]

    def test_non_json_line_does_not_kill_the_connection(self):
        async def scenario():
            service = JoinService([DatasetSpec(name="d", n_p=20, n_q=20, seed=2)])
            host, port = await service.start()
            try:
                reader, writer = await asyncio.open_connection(host, port)
                await reader.readline()  # hello
                writer.write(b"this is not json\n")
                await writer.drain()
                error_line = await reader.readline()
                writer.write(encode_line({"op": "join", "dataset": "d"}))
                await writer.drain()
                ok_line = await reader.readline()
                writer.close()
                await writer.wait_closed()
                return decode_line(error_line), decode_line(ok_line)
            finally:
                await service.close()

        error, ok = asyncio.run(scenario())
        assert error["ok"] is False and error["error"]["code"] == "bad_request"
        assert ok["ok"] is True and ok["op"] == "join"


class TestServeCommand:
    def test_cli_serve_end_to_end(self, tmp_path):
        """``python -m repro.cli serve`` binds, announces its port, serves
        a join and an update, and shuts down cleanly on SIGINT."""
        import os
        import signal
        import subprocess
        import sys

        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--port",
                "0",
                "--n-p",
                "30",
                "--n-q",
                "30",
                "--storage",
                "file",
                "--storage-path",
                str(tmp_path / "serve.file"),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            banner = process.stdout.readline().strip()
            assert banner.startswith("serving on "), banner
            host, port = banner.removeprefix("serving on ").rsplit(":", 1)

            async def scenario():
                async with await ServiceClient.connect(host, int(port)) as client:
                    joined = await client.join()
                    updated = await client.update(["insert P 6001 123.5 456.5"])
                    return joined, updated

            joined, updated = asyncio.run(scenario())
            assert joined["version"] == 0 and joined["count"] == len(joined["pairs"])
            assert updated["version"] == 1
        finally:
            process.send_signal(signal.SIGINT)
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
        assert process.returncode == 0


class TestCanonicalJson:
    def test_sorted_compact_ascii(self):
        assert canonical_json({"b": 1, "a": [1.5, "ü"]}) == '{"a":[1.5,"\\u00fc"],"b":1}'

    def test_oversized_line_rejected(self):
        from repro.service.protocol import MAX_LINE_BYTES

        with pytest.raises(ServiceError, match="exceeds"):
            decode_line(b"x" * (MAX_LINE_BYTES + 1))
