"""Command-line interface: run paper experiments and ad-hoc joins.

Examples
--------
List the available experiments::

    python -m repro.cli list

Reproduce Figure 7 at the default (small) scale::

    python -m repro.cli run fig7

Run every experiment at the tiny scale and write a markdown report::

    python -m repro.cli run-all --scale tiny --markdown report.md

Join two uniform pointsets with NM-CIJ::

    python -m repro.cli join --n-p 500 --n-q 500 --method nm

Same join, sharded across four worker processes by the engine (every CIJ
variant shards: NM/PM by R_Q leaves, FM by top-level R'_P join partitions)::

    python -m repro.cli join --n-p 500 --n-q 500 --executor sharded --workers 4
    python -m repro.cli join --n-p 500 --n-q 500 --method fm --executor sharded --workers 4

Sharded NM with the boundary handoff, so the REUSE buffer carries P-cells
across shard boundaries exactly like the serial run::

    python -m repro.cli join --executor sharded --workers 4 --reuse-handoff always

Distributed join: the same work units pulled over NDJSON by two node
subprocesses that reopen the shared on-disk backend read-only (needs
--storage file or sqlite; merged output is byte-identical to serial)::

    python -m repro.cli join --n-p 500 --n-q 500 --storage file --executor distributed --nodes 2

Same join with pages stored in (and read back from) a real file::

    python -m repro.cli join --n-p 500 --n-q 500 --storage file

Remote storage: serve pages from a separate page-server process, then run
a two-node distributed join against it — no shared filesystem needed
(``--storage remote`` alone spawns a private server; ``remote+sqlite``
picks the server's backing store)::

    python -m repro.storage.pageserver --backing file --port 9321 &
    python -m repro.cli join --n-p 500 --n-q 500 --page-server 127.0.0.1:9321 \
        --executor distributed --nodes 2

File-backed join with overlapped I/O: upcoming batches' candidate pages are
fetched asynchronously while the current batch computes, and a simulated
2 ms/page service time makes the hidden latency visible in the summary::

    python -m repro.cli join --storage file --prefetch next_batch --fetch-latency-ms 2

Apply a dynamic update stream after the initial join and print the pair
delta of every batch (see :mod:`repro.dynamic.updates` for the file
format)::

    python -m repro.cli join --n-p 500 --n-q 500 --updates stream.txt
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro import common_influence_join, uniform_points
from repro.experiments import list_experiments, run_experiment
from repro.storage.backends import REMOTE_BACKINGS, STORAGE_BACKENDS
from repro.storage.pageserver import PageServerError

#: Everything --storage accepts: the four base backends plus the
#: "remote+backing" forms that pick a spawned page server's own store.
_STORAGE_CHOICES = tuple(STORAGE_BACKENDS) + tuple(
    f"remote+{backing}" for backing in REMOTE_BACKINGS
)


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="cij",
        description="Common Influence Join (CIJ) reproduction — experiments and joins",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")

    run = subparsers.add_parser("run", help="run one experiment and print its table")
    run.add_argument("experiment", help="experiment id, e.g. fig7 or table3")
    run.add_argument("--scale", default="small", help="tiny | small | medium | large")

    run_all = subparsers.add_parser("run-all", help="run every registered experiment")
    run_all.add_argument("--scale", default="small", help="tiny | small | medium | large")
    run_all.add_argument(
        "--markdown", default=None, help="also write a markdown report to this path"
    )

    join = subparsers.add_parser("join", help="run a CIJ on synthetic pointsets")
    join.add_argument("--n-p", type=int, default=500, help="points in P")
    join.add_argument("--n-q", type=int, default=500, help="points in Q")
    join.add_argument("--seed", type=int, default=0, help="random seed")
    join.add_argument(
        "--method",
        default="nm",
        choices=("nm", "pm", "fm", "brute"),
        help="algorithm (brute = the quadratic oracle baseline)",
    )
    join.add_argument(
        "--executor",
        default="serial",
        choices=("serial", "sharded", "distributed"),
        help="engine executor: serial (paper semantics), sharded "
        "(R_Q leaves for nm/pm, top-level R'_P partitions for fm, local "
        "workers), or distributed (the same units pulled by node "
        "subprocesses over the shared file/sqlite backend)",
    )
    join.add_argument(
        "--workers",
        type=int,
        default=None,
        help="shards / worker processes for the sharded executor (default 2; "
        "only valid with --executor sharded)",
    )
    join.add_argument(
        "--nodes",
        type=int,
        default=None,
        help="worker subprocesses for the distributed executor (default 2; "
        "only valid with --executor distributed)",
    )
    join.add_argument(
        "--node-timeout",
        type=float,
        default=None,
        help="seconds of node silence (no reply, no heartbeat) before the "
        "distributed executor quarantines a hung node and retries its unit "
        "elsewhere (default 60; only valid with --executor distributed)",
    )
    join.add_argument(
        "--node-retries",
        type=int,
        default=None,
        help="times one unit may be re-run on another node after a node "
        "failure; 0 aborts on the first failure (default 2; only valid "
        "with --executor distributed)",
    )
    join.add_argument(
        "--fault-plan",
        default=None,
        metavar="SPEC",
        help="deterministic fault injection for the distributed tier, e.g. "
        "'crash@node-1:after=2;ready_delay@node-0:seconds=0.2' — merged "
        "pairs and counters stay byte-identical to serial regardless "
        "(testing knob; only valid with --executor distributed)",
    )
    join.add_argument(
        "--reuse-handoff",
        default=None,
        choices=("auto", "always", "never"),
        help="carry NM's REUSE buffer across shard boundaries (sharded "
        "executor): auto (the default) enables it for the free inline "
        "pool, always chains forked workers too (work-optimal pipeline), "
        "never keeps shards independent",
    )
    join.add_argument(
        "--updates",
        default=None,
        metavar="FILE",
        help="after the initial join, apply this update-stream file "
        "incrementally (one 'insert SIDE OID X Y' / 'delete SIDE OID' per "
        "line, batches separated by '---') and print each batch's pair "
        "delta; requires --executor serial",
    )
    join.add_argument(
        "--storage",
        default=None,
        choices=_STORAGE_CHOICES,
        help="page-store backend (default: $REPRO_STORAGE or memory); "
        "remote serves pages from a page-server process over TCP "
        "(remote+file / remote+sqlite pick the spawned server's backing "
        "store)",
    )
    join.add_argument(
        "--storage-path",
        default=None,
        help="backing file for --storage file|sqlite, or HOST:PORT of an "
        "already-running page server for --storage remote (default: owned "
        "temp file / a freshly spawned server)",
    )
    join.add_argument(
        "--page-server",
        default=None,
        metavar="HOST:PORT",
        help="attach to an already-running page server "
        "(python -m repro.storage.pageserver); shorthand for "
        "--storage remote --storage-path HOST:PORT",
    )
    join.add_argument(
        "--prefetch",
        default=None,
        choices=("off", "next_batch", "next_shard"),
        help="overlapped I/O: issue upcoming batches' candidate page reads "
        "while the current batch computes (next_shard stages the next "
        "shard's opening pages; requires --executor sharded and runs the "
        "shards inline, overlapping via the async reader thread); pairs "
        "and logical hit/miss counters are identical to off",
    )
    join.add_argument(
        "--prefetch-depth",
        type=int,
        default=None,
        help="units of lookahead for --prefetch (default 2)",
    )
    join.add_argument(
        "--fetch-latency-ms",
        type=float,
        default=None,
        help="simulated per-page disk service latency in milliseconds; "
        "the summary then reports stalled vs overlapped time",
    )
    join.add_argument(
        "--compute",
        default=None,
        choices=("scalar", "kernel"),
        help="geometry inner loops: scalar (pure Python, the oracle) or "
        "kernel (vectorised NumPy; identical pairs, stats and counters) "
        "(default: $REPRO_COMPUTE or scalar)",
    )

    serve = subparsers.add_parser(
        "serve",
        help="run the long-lived join service (newline-delimited JSON over TCP)",
        description="Serve concurrent join/window/update/stats requests from "
        "a warm dynamic session per dataset; see repro.service for the "
        "protocol.  Updates stream to subscribed connections as delta "
        "events.",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=0, help="TCP port (0 picks a free one)"
    )
    serve.add_argument("--dataset", default="default", help="dataset name")
    serve.add_argument("--n-p", type=int, default=200, help="points in P")
    serve.add_argument("--n-q", type=int, default=200, help="points in Q")
    serve.add_argument("--seed", type=int, default=0, help="random seed")
    serve.add_argument(
        "--storage",
        default=None,
        choices=_STORAGE_CHOICES,
        help="page-store backend (default: $REPRO_STORAGE or memory)",
    )
    serve.add_argument(
        "--storage-path",
        default=None,
        help="backing file for --storage file|sqlite, or HOST:PORT of an "
        "already-running page server for --storage remote (default: owned "
        "temp file / a freshly spawned server)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=32,
        help="queued-plus-running window/update operations per dataset "
        "before requests are rejected as overloaded",
    )
    return parser


def _cmd_list() -> int:
    for experiment_id in list_experiments():
        print(experiment_id)
    return 0


def _cmd_run(experiment: str, scale: str) -> int:
    result = run_experiment(experiment, scale=scale)
    print(result.to_text())
    return 0


def _cmd_run_all(scale: str, markdown: Optional[str]) -> int:
    sections = []
    for experiment_id in list_experiments():
        start = time.perf_counter()
        result = run_experiment(experiment_id, scale=scale)
        elapsed = time.perf_counter() - start
        print(result.to_text())
        print(f"[{experiment_id} completed in {elapsed:.1f}s]\n")
        sections.append(result.to_markdown())
    if markdown:
        with open(markdown, "w", encoding="utf-8") as handle:
            handle.write("\n\n".join(sections) + "\n")
        print(f"markdown report written to {markdown}")
    return 0


def _validate_workers(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    """Resolve and validate the --workers/--executor combination.

    ``--workers`` used to be accepted (and silently ignored) with the
    serial executor; now the contradiction is rejected loudly, as is a
    non-positive worker count with any executor.
    """
    if args.workers is not None and args.workers < 1:
        parser.error(f"--workers must be at least 1 (got {args.workers})")
    if args.executor == "serial" and args.workers is not None and args.workers > 1:
        parser.error(
            f"--workers {args.workers} has no effect with --executor serial; "
            "use --executor sharded to run shards in parallel"
        )
    return args.workers if args.workers is not None else 2


def _validate_nodes(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    """Resolve and validate the --nodes/--executor/--method combination.

    ``--nodes`` only means something to the distributed executor, and the
    distributed executor only runs algorithms that shard — both
    contradictions are rejected loudly instead of being ignored.
    """
    if args.nodes is not None and args.nodes < 1:
        parser.error(f"--nodes must be at least 1 (got {args.nodes})")
    if args.executor != "distributed" and args.nodes is not None:
        parser.error(
            f"--nodes {args.nodes} has no effect with --executor "
            f"{args.executor}; use --executor distributed to run units on "
            "node subprocesses"
        )
    if args.executor == "distributed" and args.method == "brute":
        parser.error(
            "--executor distributed cannot run --method brute: the oracle "
            "baseline does not shard into work units (use --method nm|pm|fm, "
            "or --executor serial for brute)"
        )
    return args.nodes if args.nodes is not None else 2


def _validate_fault_tolerance(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> None:
    """Validate the distributed fault-tolerance flags.

    All three only mean something to the distributed executor; a bad
    fault-plan spec is rejected at parse time, not deep inside a run.
    """
    for flag, value in (
        ("--node-timeout", args.node_timeout),
        ("--node-retries", args.node_retries),
        ("--fault-plan", args.fault_plan),
    ):
        if value is not None and args.executor != "distributed":
            parser.error(
                f"{flag} configures distributed node fault tolerance and has "
                f"no effect with --executor {args.executor}; use "
                "--executor distributed"
            )
    if args.node_timeout is not None and args.node_timeout <= 0:
        parser.error(f"--node-timeout must be positive (got {args.node_timeout})")
    if args.node_retries is not None and args.node_retries < 0:
        parser.error(f"--node-retries must be >= 0 (got {args.node_retries})")
    if args.fault_plan is not None:
        from repro.engine.faults import FaultPlan

        try:
            FaultPlan.from_spec(args.fault_plan)
        except ValueError as error:
            parser.error(f"--fault-plan: {error}")


def _resolve_storage(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> "tuple[Optional[str], Optional[str]]":
    """Fold ``--page-server`` into the (storage, storage_path) pair.

    ``--page-server HOST:PORT`` is shorthand for attaching to a running
    page server; contradictions with an explicit ``--storage``/
    ``--storage-path`` are rejected loudly instead of being ignored.
    """
    storage, storage_path = args.storage, args.storage_path
    address = getattr(args, "page_server", None)
    if address is None:
        return storage, storage_path
    host, sep, port = address.rpartition(":")
    if not sep or not host or not port.isdigit():
        parser.error(f"--page-server expects HOST:PORT (got {address!r})")
    if storage is not None and storage != "remote":
        parser.error(
            f"--page-server attaches to a running server and contradicts "
            f"--storage {storage}; the backing store is the server's "
            "business (drop --storage, or pass --storage remote)"
        )
    if storage_path is not None and storage_path != address:
        parser.error(
            "--page-server and --storage-path name the same server address "
            "two ways; pass one of them"
        )
    return "remote", address


def _validate_updates(parser: argparse.ArgumentParser, args: argparse.Namespace) -> None:
    """Reject executor/handoff combinations that contradict ``--updates``.

    Incremental maintenance mutates the shared source trees, which shard
    workers must never do, and it bypasses the sharded REUSE machinery
    entirely — both contradictions fail loudly instead of being ignored.
    """
    if args.updates is None:
        return
    if args.executor != "serial":
        parser.error(
            f"--updates requires --executor serial: incremental maintenance "
            f"mutates the source trees, which {args.executor!r} shard workers "
            "cannot do (drop --executor, or apply the updates first)"
        )
    if args.reuse_handoff is not None:
        parser.error(
            "--reuse-handoff applies to sharded NM-CIJ shard boundaries and "
            "has no effect on --updates maintenance; drop one of the flags"
        )
    if args.prefetch is not None and args.prefetch != "off":
        parser.error(
            "--updates cannot run with --prefetch: incremental maintenance "
            "interleaves structural writes with its reads, which the async "
            "fetch pipeline does not support; drop --prefetch (or apply the "
            "updates after a prefetched static join)"
        )


def _cmd_join(
    n_p: int,
    n_q: int,
    seed: int,
    method: str,
    executor: str,
    workers: int,
    nodes: int,
    reuse_handoff: str,
    storage: Optional[str],
    storage_path: Optional[str],
    updates: Optional[str] = None,
    prefetch: Optional[str] = None,
    prefetch_depth: Optional[int] = None,
    fetch_latency_ms: Optional[float] = None,
    compute: Optional[str] = None,
    node_timeout: Optional[float] = None,
    node_retries: Optional[int] = None,
    fault_plan: Optional[str] = None,
) -> int:
    points_p = uniform_points(n_p, seed=seed)
    points_q = uniform_points(n_q, seed=seed + 10_000)
    if updates is not None:
        return _cmd_join_with_updates(points_p, points_q, storage, storage_path, updates)
    try:
        result = common_influence_join(
            points_p,
            points_q,
            method=method,
            executor=executor,
            workers=workers,
            nodes=nodes,
            node_timeout=node_timeout,
            node_retries=node_retries,
            fault_plan=fault_plan,
            reuse_handoff=reuse_handoff,
            storage=storage,
            storage_path=storage_path,
            prefetch=prefetch if prefetch is not None else "off",
            prefetch_depth=prefetch_depth if prefetch_depth is not None else 2,
            fetch_latency=(fetch_latency_ms or 0.0) / 1000.0,
            compute=compute,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except PageServerError as error:
        # An unreachable, dead or misbehaving page server is an operator
        # problem (wrong --page-server address, server not running), not
        # an internal failure: surface it like the other usage errors.
        print(f"error: {error}", file=sys.stderr)
        return 2
    stats = result.stats
    print(f"algorithm       : {stats.algorithm}")
    if executor == "distributed":
        print(f"executor        : {executor} ({nodes} nodes)")
        _print_fault_report(fault_plan)
    elif executor != "serial":
        print(f"executor        : {executor} ({workers} workers)")
    if storage is not None:
        where = f" at {storage_path}" if storage_path else ""
        print(f"storage         : {storage}{where}")
    if compute is not None:
        print(f"compute         : {compute}")
    print(f"result pairs    : {len(result.pairs)}")
    print(f"page accesses   : {stats.total_page_accesses} (MAT {stats.mat_page_accesses} + JOIN {stats.join_page_accesses})")
    print(f"CPU seconds     : {stats.total_cpu_seconds:.2f}")
    if stats.filter_candidates:
        print(f"false hit ratio : {stats.false_hit_ratio:.3f}")
    io = result.storage
    if io is not None and (prefetch not in (None, "off") or fetch_latency_ms):
        print(
            f"prefetch        : {io.pages_prefetched} issued, "
            f"{io.prefetch_hits} hit, {io.prefetch_wasted} wasted"
        )
        print(
            f"I/O latency     : {io.stall_time * 1000:.1f} ms stalled, "
            f"{io.overlap_time * 1000:.1f} ms overlapped with compute"
        )
    return 0


def _print_fault_report(fault_plan: Optional[str]) -> None:
    """Summarise the last distributed run's fault-tolerance activity.

    The report lives on the executor (not in :class:`JoinStats`): the
    statistics fingerprint must stay byte-identical to serial, faults or
    not, so retry/quarantine accounting is deliberately out-of-band.
    """
    from repro import default_engine

    executor = getattr(default_engine(), "last_executor", None)
    report = getattr(executor, "last_run_report", None)
    if report is None:
        return
    if fault_plan is not None:
        print(f"fault plan      : {report.get('faults_planned')}")
    quarantined = report.get("quarantined") or {}
    retries = report.get("retries") or {}
    if quarantined:
        names = ", ".join(
            f"{node} ({reason.split(':', 1)[0]})"
            for node, reason in sorted(quarantined.items())
        )
        print(f"quarantined     : {len(quarantined)} node(s): {names}")
    if retries:
        total = sum(retries.values())
        units = ", ".join(str(index) for index in sorted(retries))
        print(f"units retried   : {total} retry(ies) over unit(s) {units}")
    if fault_plan is not None and not quarantined and not retries:
        print("fault outcome   : no node failures observed")


def _cmd_join_with_updates(
    points_p,
    points_q,
    storage: Optional[str],
    storage_path: Optional[str],
    updates_path: str,
) -> int:
    """Initial join plus an incremental update stream, printing pair deltas.

    The maintenance bootstrap derives the initial answer itself (it is
    algorithm-independent), so ``--method`` does not apply here.
    """
    from repro import DOMAIN, Rect, default_engine
    from repro.datasets.workload import WorkloadConfig, build_workload
    from repro.dynamic import load_update_stream

    try:
        batches = load_update_stream(updates_path)
    except OSError as error:
        print(f"error: cannot read --updates file: {error}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    domain = DOMAIN.union(Rect.from_points(list(points_p) + list(points_q)))
    config = WorkloadConfig(domain=domain, storage=storage, storage_path=storage_path)
    engine = default_engine()
    with build_workload(config, points_p=points_p, points_q=points_q) as workload:
        # The session bootstrap *is* the initial join (every algorithm
        # returns the same pair set), so no separate measured run is paid.
        session = engine.open_dynamic(workload.tree_p, workload.tree_q, domain=domain)
        print("algorithm       : delta-CIJ (incremental maintenance)")
        print(f"initial pairs   : {len(session.pairs)}")
        for number, batch in enumerate(batches, start=1):
            try:
                delta = session.apply_updates(batch)
            except ValueError as error:
                print(f"error: update batch {number}: {error}", file=sys.stderr)
                return 2
            print(
                f"batch {number:2d}        : {len(batch)} updates  "
                f"+{len(delta.added)} pairs  -{len(delta.removed)} pairs  "
                f"({delta.stats.cells_invalidated} cells invalidated)"
            )
        totals = session.stats
        print(f"final pairs     : {len(session.pairs)}")
        print(
            f"update totals   : {totals.updates_applied} updates in "
            f"{totals.batches_applied} batches, "
            f"{totals.cells_invalidated} cells invalidated, "
            f"+{totals.pairs_emitted}/-{totals.pairs_retracted} pairs"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import DatasetSpec, JoinService

    if args.max_queue < 1:
        print(f"error: --max-queue must be at least 1 (got {args.max_queue})", file=sys.stderr)
        return 2
    spec = DatasetSpec(
        name=args.dataset,
        n_p=args.n_p,
        n_q=args.n_q,
        seed=args.seed,
        storage=args.storage,
        storage_path=args.storage_path,
        max_queue=args.max_queue,
    )

    async def _run() -> None:
        service = JoinService([spec])
        host, port = await service.start(args.host, args.port)
        state = service.datasets[spec.name]
        print(f"serving on {host}:{port}", flush=True)
        print(
            f"dataset {spec.name!r}: |P|={state.snapshot.points_p} "
            f"|Q|={state.snapshot.points_q} pairs={len(state.snapshot.pairs)} "
            f"storage={state.workload.disk.storage_backend}",
            flush=True,
        )
        try:
            await service.serve_forever()
        finally:
            await service.close()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point used by both ``python -m repro.cli`` and the ``cij`` script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.experiment, args.scale)
    if args.command == "run-all":
        return _cmd_run_all(args.scale, args.markdown)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "join":
        workers = _validate_workers(parser, args)
        nodes = _validate_nodes(parser, args)
        _validate_fault_tolerance(parser, args)
        _validate_updates(parser, args)
        storage, storage_path = _resolve_storage(parser, args)
        return _cmd_join(
            args.n_p,
            args.n_q,
            args.seed,
            args.method,
            args.executor,
            workers,
            nodes,
            args.reuse_handoff if args.reuse_handoff is not None else "auto",
            storage,
            storage_path,
            args.updates,
            args.prefetch,
            args.prefetch_depth,
            args.fetch_latency_ms,
            args.compute,
            args.node_timeout,
            args.node_retries,
            args.fault_plan,
        )
    parser.error(f"unhandled command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
