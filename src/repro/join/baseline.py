"""Ground-truth CIJ oracle.

The oracle computes both Voronoi diagrams directly from Equation 2 (clipping
the domain by every bisector) and tests all cell pairs for intersection.  It
is quadratic and index-free, which makes it slow but trivially correct; the
whole test-suite validates the three R-tree algorithms against it.

A second, independently-derived oracle based on the *definition* of the join
(there exists a location closer to ``p`` than all of ``P`` and closer to
``q`` than all of ``Q``) is also provided: for each candidate pair the
common region is computed and a witness location inside it is checked by
exhaustive nearest-neighbour comparison.  Having two oracles that agree
protects the tests against a bug shared by the polygon machinery.
"""

from __future__ import annotations

from typing import Optional, Sequence, Set, Tuple

from repro.geometry.point import Point, dist
from repro.geometry.rect import Rect
from repro.geometry.tolerance import TIE_SLACK
from repro.join.result import CIJResult, JoinStats
from repro.voronoi.diagram import brute_force_diagram


def brute_force_cij(
    points_p: Sequence[Point],
    points_q: Sequence[Point],
    domain: Rect,
    oids_p: Optional[Sequence[int]] = None,
    oids_q: Optional[Sequence[int]] = None,
) -> CIJResult:
    """Compute ``CIJ(P, Q)`` from first principles (no indexes, no pruning)."""
    diagram_p = brute_force_diagram(points_p, domain, oids=oids_p)
    diagram_q = brute_force_diagram(points_q, domain, oids=oids_q)
    pairs = diagram_p.intersecting_pairs(diagram_q)
    stats = JoinStats(algorithm="BRUTE")
    return CIJResult(pairs=pairs, stats=stats)


def brute_force_cij_pairs(
    points_p: Sequence[Point],
    points_q: Sequence[Point],
    domain: Rect,
    oids_p: Optional[Sequence[int]] = None,
    oids_q: Optional[Sequence[int]] = None,
) -> Set[Tuple[int, int]]:
    """The oracle result as a set of ``(p_oid, q_oid)`` pairs."""
    return brute_force_cij(points_p, points_q, domain, oids_p, oids_q).pair_set()


def definitional_cij_pairs(
    points_p: Sequence[Point],
    points_q: Sequence[Point],
    domain: Rect,
    oids_p: Optional[Sequence[int]] = None,
    oids_q: Optional[Sequence[int]] = None,
) -> Set[Tuple[int, int]]:
    """Second oracle: verify each intersecting pair by a witness location.

    For every pair whose common region has positive area, the centroid of
    that region is used as a witness ``r`` and checked to be at least as
    close to ``p`` as to every other point of ``P`` (and symmetrically for
    ``q``).  Pairs whose cells only touch in a zero-area contact (a
    degenerate segment or point region) are excluded — the library-wide
    boundary-tie convention shared with :meth:`VoronoiCell.intersects`.
    """
    if oids_p is None:
        oids_p = list(range(len(points_p)))
    if oids_q is None:
        oids_q = list(range(len(points_q)))
    diagram_p = brute_force_diagram(points_p, domain, oids=oids_p)
    diagram_q = brute_force_diagram(points_q, domain, oids=oids_q)
    # The witness test compares two distances with a tie slack; like the
    # dynamic invalidation scan it must use the library-wide constant, not
    # a private epsilon (this literal escaped the PR 6 unification).
    tolerance = TIE_SLACK
    result: Set[Tuple[int, int]] = set()
    for cell_p in diagram_p:
        for cell_q in diagram_q:
            region = cell_p.common_region(cell_q)
            if region.is_empty() or region.area() <= tolerance:
                # A degenerate region (fewer than three vertices, or three
                # or more colinear ones with vanishing area) is a zero-area
                # contact, which the tie convention excludes from the join.
                continue
            witness = region.centroid()
            if _is_witness(witness, cell_p.site, points_p, tolerance) and _is_witness(
                witness, cell_q.site, points_q, tolerance
            ):
                result.add((cell_p.oid, cell_q.oid))
    return result


def _is_witness(location: Point, site: Point, points: Sequence[Point], tol: float) -> bool:
    """Whether ``location`` is (weakly) closer to ``site`` than to all points."""
    base = dist(location, site)
    for other in points:
        if dist(location, other) < base - tol:
            return False
    return True
