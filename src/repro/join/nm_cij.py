"""NM-CIJ: the non-blocking, no-materialisation CIJ algorithm (Algorithm 6).

The algorithm traverses ``R_Q`` leaf by leaf (Hilbert order).  For every
leaf it

1. computes the Voronoi cells of the leaf's points in batch (Algorithm 2),
2. runs the batch ConditionalFilter against ``R_P`` (Algorithm 5) to obtain
   the candidate set ``C_P``,
3. obtains the exact cells of the candidates — from the REUSE buffer filled
   by the previous leaf when possible, otherwise by a batch computation —
4. reports ``(p, q)`` whenever the two exact cells intersect; candidates
   lying *inside* a target cell are reported for that target without an
   intersection test.

No Voronoi R-tree is ever built, so result pairs start streaming out after
only a few page accesses, and the total I/O stays close to the lower bound
of reading both source trees once.

The per-leaf loop lives in :func:`process_q_leaves` so that the engine's
sharded executor can run disjoint Hilbert-contiguous slices of the leaf
sequence in parallel workers; :func:`nm_cij` is the classic serial entry
point, now a thin wrapper over :class:`repro.engine.JoinEngine`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.geometry.rect import Rect
from repro.index.entries import Node
from repro.index.rtree import RTree
from repro.join.conditional_filter import (
    FilterStats,
    batch_conditional_filter,
    candidate_cells_from_buffer,
)
from repro.join.result import CIJResult, JoinStats
from repro.storage.counters import IOCounters
from repro.voronoi.batch import compute_cells_for_leaf, compute_voronoi_cells
from repro.voronoi.cell import VoronoiCell
from repro.voronoi.single import CellComputationStats


def process_q_leaves(
    tree_p: RTree,
    tree_q: RTree,
    leaves: Iterable[Node],
    domain: Rect,
    stats: JoinStats,
    cell_stats: CellComputationStats,
    filter_stats: FilterStats,
    start_counters: IOCounters,
    reuse_cells: bool = True,
    use_phi_pruning: bool = True,
    initial_reuse: Optional[Dict[int, VoronoiCell]] = None,
    compute: str = "scalar",
    cell_cache: Optional[Dict[int, VoronoiCell]] = None,
) -> Tuple[List[Tuple[int, int]], Dict[int, VoronoiCell]]:
    """Run the NM-CIJ per-leaf pipeline over a sequence of ``R_Q`` leaves.

    This is the complete join when ``leaves`` is the full Hilbert-ordered
    leaf stream (the serial executor passes the lazy iterator straight
    through, preserving the paper's interleaving of I/O and output), and
    one shard's work when it is a contiguous slice of that stream.  The
    produced pairs depend only on the leaves themselves, never on buffer
    state or the REUSE carry-over, so concatenating shard outputs in leaf
    order reproduces the serial pair list exactly.

    ``compute`` selects the scalar (oracle) or vectorised-kernel inner
    loops; pairs, stats and counters are byte-identical either way.

    ``initial_reuse`` seeds the REUSE buffer for the first leaf: the
    sharded executor's boundary handoff passes shard *k*'s final buffer
    here so shard *k+1* reuses the cells the serial run would have carried
    across the boundary instead of recomputing them.  The final buffer
    (the cells of the last processed leaf) is returned alongside the pairs
    so it can be handed to the next shard in turn.

    ``cell_cache`` (``EngineConfig.cell_cache``) is a per-node cache of
    exact ``P``-cells that outlives the per-leaf REUSE buffer: candidates
    missing from the buffer are served from it before any computation, and
    freshly computed cells are added to it.  A Voronoi cell depends only on
    ``P`` and the domain — never on the query leaf — so a cached cell is
    identical to a recomputed one and the pair output cannot change; what
    does change is the cost model (fewer ``cells_computed_p`` and fewer
    ``tree_p`` accesses than the paper's recomputation counters), which is
    why the cache is opt-in and the saving is reported separately as
    ``stats.cells_cached_p``.

    Progress samples are recorded after every leaf relative to
    ``start_counters`` (shard-local counters for a forked worker).
    """
    disk = tree_q.disk
    pairs: List[Tuple[int, int]] = []
    reuse_buffer: Dict[int, VoronoiCell] = (
        dict(initial_reuse) if reuse_cells and initial_reuse else {}
    )

    for leaf in leaves:
        # (1) Voronoi cells of the Q points in this leaf.
        cells_q = compute_cells_for_leaf(
            tree_q, leaf.entries, domain, stats=cell_stats, compute=compute
        )
        stats.cells_computed_q += len(cells_q)

        # (2) Filter phase: candidate P points for the whole batch.
        target_polygons = [cell.polygon for cell in cells_q.values()]
        candidates = batch_conditional_filter(
            target_polygons,
            tree_p,
            domain,
            use_phi_pruning=use_phi_pruning,
            stats=filter_stats,
            compute=compute,
        )
        stats.filter_candidates += len(candidates)

        # (3) Refinement phase: exact cells of the candidates, reusing the
        # cells computed for the previous leaf where possible.
        if reuse_cells:
            missing, cells_p = candidate_cells_from_buffer(candidates, reuse_buffer)
            stats.cells_reused_p += len(cells_p)
        else:
            missing, cells_p = list(candidates), {}
        if missing and cell_cache is not None:
            still_missing = []
            for candidate in missing:
                oid = candidate[0]
                cached = cell_cache.get(oid)
                if cached is not None:
                    cells_p[oid] = cached
                    stats.cells_cached_p += 1
                else:
                    still_missing.append(candidate)
            missing = still_missing
        if missing:
            computed = compute_voronoi_cells(
                tree_p, missing, domain, stats=cell_stats, compute=compute
            )
            stats.cells_computed_p += len(computed)
            cells_p.update(computed)
            if cell_cache is not None:
                cell_cache.update(computed)

        # (4) Report intersecting pairs.  Candidates strictly inside a
        # target cell are guaranteed hits for that target (case 1 of
        # Section IV-A); the strict test keeps the shortcut consistent with
        # the exclude-zero-area tie convention of the exact predicate, and
        # points on the boundary simply fall through to it.
        joined_candidates = set()
        if compute == "kernel":
            _report_pairs_kernel(
                cells_q, candidates, cells_p, pairs, joined_candidates
            )
        else:
            candidate_mbrs = {p_oid: cells_p[p_oid].mbr() for p_oid, _ in candidates}
            for q_oid, cell_q in cells_q.items():
                q_mbr = cell_q.mbr()
                for p_oid, p_point in candidates:
                    cell_p = cells_p[p_oid]
                    if cell_q.polygon.contains_point_interior(p_point) or (
                        candidate_mbrs[p_oid].intersects(q_mbr)
                        and cell_p.intersects(cell_q)
                    ):
                        pairs.append((p_oid, q_oid))
                        joined_candidates.add(p_oid)
        stats.filter_true_hits += len(joined_candidates)

        # The REUSE buffer is replaced by the cells of the current batch.
        reuse_buffer = cells_p if reuse_cells else {}

        accesses = disk.counters.diff(start_counters).page_accesses
        stats.record_progress(accesses, len(pairs))

    return pairs, reuse_buffer


def _report_pairs_kernel(
    cells_q: Dict[int, VoronoiCell],
    candidates: List[Tuple[int, "object"]],
    cells_p: Dict[int, VoronoiCell],
    pairs: List[Tuple[int, int]],
    joined_candidates: set,
) -> None:
    """Kernel twin of the step-(4) pair loop.

    Per target cell, one vectorised interior-containment test over all
    candidate points and one vectorised MBR mask replace the per-candidate
    Python predicates; the exact SAT predicate stays scalar (the cells are
    ~6-vertex rings, where NumPy dispatch loses to tight Python) and runs
    only for MBR-overlapping pairs, exactly like the scalar loop.  Pair
    emission order (target-major, candidate order within a target) is
    preserved.
    """
    if not candidates:
        return
    from repro.geometry import kernels as gk
    from repro.geometry.tolerance import BOUNDARY_EPS

    np = gk.np
    cpx = np.array([p.x for _, p in candidates])
    cpy = np.array([p.y for _, p in candidates])
    cand_mbrs = [cells_p[p_oid].mbr() for p_oid, _ in candidates]
    c_xmin = np.array([r.xmin for r in cand_mbrs])
    c_ymin = np.array([r.ymin for r in cand_mbrs])
    c_xmax = np.array([r.xmax for r in cand_mbrs])
    c_ymax = np.array([r.ymax for r in cand_mbrs])
    for q_oid, cell_q in cells_q.items():
        q_mbr = cell_q.mbr()
        q_arr = gk.polygon_to_array(cell_q.polygon)
        contained = gk.points_in_polygon(q_arr, cpx, cpy, BOUNDARY_EPS)
        overlap = gk.rects_intersect_mask(
            c_xmin, c_ymin, c_xmax, c_ymax,
            q_mbr.xmin, q_mbr.ymin, q_mbr.xmax, q_mbr.ymax,
        )
        for i in np.flatnonzero(contained | overlap):
            p_oid = candidates[i][0]
            if contained[i] or cells_p[p_oid].intersects(cell_q):
                pairs.append((p_oid, q_oid))
                joined_candidates.add(p_oid)


def nm_cij(
    tree_p: RTree,
    tree_q: RTree,
    domain: Optional[Rect] = None,
    reuse_cells: bool = True,
    use_phi_pruning: bool = True,
) -> CIJResult:
    """Run NM-CIJ and return the result pairs with a full cost breakdown.

    Parameters
    ----------
    tree_p, tree_q:
        Source R-trees over ``P`` and ``Q`` sharing one disk manager.
    domain:
        Space domain ``U``; defaults to the union of the two tree MBRs.
    reuse_cells:
        Enable the REUSE buffer that carries the exact ``P``-cells of the
        previous leaf batch over to the next one (Section IV-B); disabling
        it gives the NO-REUSE variant of Figure 11.
    use_phi_pruning:
        Enable the Lemma-3 non-leaf pruning rule inside the filter phase;
        disabling it is an ablation, not a paper configuration.
    """
    from repro.engine import default_engine  # local import breaks the cycle

    return default_engine().run(
        "nm",
        tree_p,
        tree_q,
        domain=domain,
        reuse_cells=reuse_cells,
        use_phi_pruning=use_phi_pruning,
    )
