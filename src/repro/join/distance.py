"""ε-distance join between two point R-trees.

One of the two classical pointset joins the paper contrasts CIJ with: the
result is every pair ``(p, q)`` with ``dist(p, q) <= ε``.  The algorithm is
the synchronous traversal adapted to follow entry pairs with
``mindist(e_P, e_Q) <= ε``.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.geometry.point import dist
from repro.index.rtree import RTree


def epsilon_distance_join(
    tree_p: RTree, tree_q: RTree, epsilon: float
) -> Iterator[Tuple[int, int, float]]:
    """Yield ``(p_oid, q_oid, distance)`` for pairs within ``epsilon``.

    Raises
    ------
    ValueError
        If ``epsilon`` is negative.
    """
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    if tree_p.is_empty() or tree_q.is_empty():
        return
    stack: List[Tuple[int, int]] = [(tree_p.root_page, tree_q.root_page)]
    while stack:
        page_p, page_q = stack.pop()
        node_p = tree_p.read_node(page_p)
        node_q = tree_q.read_node(page_q)
        if node_p.is_leaf and node_q.is_leaf:
            for entry_p in node_p.entries:
                for entry_q in node_q.entries:
                    d = dist(entry_p.payload, entry_q.payload)
                    if d <= epsilon:
                        yield entry_p.oid, entry_q.oid, d
        elif node_p.is_leaf:
            mbr_p = node_p.mbr()
            for entry_q in node_q.entries:
                if mbr_p.mindist_rect(entry_q.mbr) <= epsilon:
                    stack.append((page_p, entry_q.child_page))
        elif node_q.is_leaf:
            mbr_q = node_q.mbr()
            for entry_p in node_p.entries:
                if entry_p.mbr.mindist_rect(mbr_q) <= epsilon:
                    stack.append((entry_p.child_page, page_q))
        else:
            for entry_p in node_p.entries:
                for entry_q in node_q.entries:
                    if entry_p.mbr.mindist_rect(entry_q.mbr) <= epsilon:
                        stack.append((entry_p.child_page, entry_q.child_page))
