"""Multiway CIJ: the paper's future-work extension to more than two inputs.

The conclusions of the paper sketch "generalizing CIJ computation for
multiple pointsets".  The natural definition for ``m`` pointsets
``S_1, …, S_m`` returns every tuple ``(s_1, …, s_m)`` whose Voronoi cells
share at least one common location.  This module provides a materialisation
style evaluation (a generalisation of FM-CIJ): the Voronoi diagrams of all
inputs are computed, the ones after the first are indexed by bulk-loaded
R-trees, and tuples are assembled left-to-right while the running common
region stays non-empty.

The implementation targets correctness and clarity rather than the I/O
optimality of the pairwise NM-CIJ; the pairwise join remains the paper's
(and this library's) primary contribution.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

from repro.geometry.polygon import ConvexPolygon
from repro.geometry.rect import Rect
from repro.index.rtree import RTree
from repro.join.materialize import materialize_voronoi_rtree
from repro.join.result import CIJResult, JoinStats


def multiway_cij(
    trees: Sequence[RTree],
    domain: Optional[Rect] = None,
) -> CIJResult:
    """Compute the multiway CIJ of two or more R-tree-indexed pointsets.

    Returns tuples of oids (one per input, in input order) for every
    combination of points whose Voronoi cells have a common intersection.

    Raises
    ------
    ValueError
        If fewer than two trees are supplied or they use different disks.
    """
    if len(trees) < 2:
        raise ValueError("multiway CIJ needs at least two pointsets")
    disk = trees[0].disk
    if any(tree.disk is not disk for tree in trees):
        raise ValueError("all input trees must share one DiskManager")
    if domain is None:
        domain = trees[0].domain()
        for tree in trees[1:]:
            domain = domain.union(tree.domain())

    stats = JoinStats(algorithm=f"MW-CIJ[{len(trees)}]")
    start_counters = disk.counters.snapshot()
    start_time = time.perf_counter()

    # Materialise the Voronoi diagram of every input; inputs after the first
    # are indexed so the expansion step below can use range queries.
    first_tree, first_count = materialize_voronoi_rtree(
        trees[0], domain, tag=f"{trees[0].tag}_vor"
    )
    stats.cells_computed_p = first_count
    other_trees = []
    for tree in trees[1:]:
        voronoi_tree, count = materialize_voronoi_rtree(
            tree, domain, tag=f"{tree.tag}_vor"
        )
        stats.cells_computed_q += count
        other_trees.append(voronoi_tree)
    stats.mat_cpu_seconds = time.perf_counter() - start_time
    stats.mat_page_accesses = disk.counters.diff(start_counters).page_accesses

    # Assemble result tuples left to right, carrying the running common
    # influence region; a tuple dies as soon as the region becomes empty.
    join_start = time.perf_counter()
    results: List[Tuple[int, ...]] = []
    for entry in first_tree.all_leaf_entries():
        base_cell = entry.payload
        partial: List[Tuple[Tuple[int, ...], ConvexPolygon]] = [
            ((entry.oid,), base_cell.polygon)
        ]
        for voronoi_tree in other_trees:
            extended: List[Tuple[Tuple[int, ...], ConvexPolygon]] = []
            for oids, region in partial:
                for candidate in voronoi_tree.range_search(region.bounding_rect()):
                    common = region.intersection(candidate.payload.polygon)
                    if not common.is_empty():
                        extended.append((oids + (candidate.oid,), common))
            partial = extended
            if not partial:
                break
        results.extend(oids for oids, _ in partial)
    stats.join_cpu_seconds = time.perf_counter() - join_start
    stats.join_page_accesses = (
        disk.counters.diff(start_counters).page_accesses - stats.mat_page_accesses
    )
    return CIJResult(pairs=results, stats=stats)
