"""The theoretical lower-bound I/O cost (the "LB" line of the plots).

Footnote 3 of the paper: every point of ``P`` and ``Q`` participates in the
CIJ (each point's cell intersects at least one cell of the other diagram),
so any R-tree-based CIJ algorithm must visit every node of both trees at
least once.  The lower bound is therefore the total number of pages of the
two source trees.
"""

from __future__ import annotations

from repro.index.rtree import RTree


def lower_bound_io(tree_p: RTree, tree_q: RTree) -> int:
    """Minimum possible page accesses of any R-tree CIJ algorithm."""
    return tree_p.node_count() + tree_q.node_count()
