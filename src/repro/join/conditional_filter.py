"""ConditionalFilter: the filter phase of NM-CIJ (Algorithm 5).

Given a convex polygon ``T`` (the Voronoi cell of some ``q ∈ Q``) and the
R-tree ``R_P`` over ``P``, the filter computes a candidate set ``C_P`` of
points whose Voronoi cells *may* intersect ``T``:

* points are visited best-first by distance to the centroid of ``T``;
* a deheaped point ``p`` enters ``C_P`` only if its *approximate* cell
  ``V(p, C_P)`` — the cell induced by the candidates seen so far, a superset
  of the true cell — still intersects ``T``;
* a deheaped non-leaf entry ``e`` is pruned when it intersects no target
  polygon and some candidate ``p ∈ C_P`` places every target polygon inside
  ``Φ(L, p)`` for every side ``L`` of ``e`` (Lemma 3): no point below ``e``
  can then reach ``T`` with its Voronoi cell.

The batch variant processes all cells of one ``R_Q`` leaf at once, which is
what Algorithm 6 uses.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.geometry.halfplane import bisector_halfplane
from repro.geometry.point import Point, centroid
from repro.geometry.polygon import ConvexPolygon
from repro.geometry.rect import Rect
from repro.index.rtree import RTree
from repro.voronoi.cell import VoronoiCell

_POINT = 0
_CHILD = 1


@dataclass
class FilterStats:
    """Work counters of the filter phase (feeds Figure 10)."""

    heap_pops: int = 0
    points_examined: int = 0
    points_admitted: int = 0
    entries_pruned_phi: int = 0
    entries_expanded: int = 0

    def merge(self, other: "FilterStats") -> None:
        """Accumulate another stats record into this one."""
        self.heap_pops += other.heap_pops
        self.points_examined += other.points_examined
        self.points_admitted += other.points_admitted
        self.entries_pruned_phi += other.entries_pruned_phi
        self.entries_expanded += other.entries_expanded


def conditional_filter(
    target: ConvexPolygon,
    tree_p: RTree,
    domain: Rect,
    use_phi_pruning: bool = True,
    stats: Optional[FilterStats] = None,
    compute: str = "scalar",
) -> List[Tuple[int, Point]]:
    """Candidate points of ``P`` whose cells may intersect ``target``."""
    return batch_conditional_filter(
        [target],
        tree_p,
        domain,
        use_phi_pruning=use_phi_pruning,
        stats=stats,
        compute=compute,
    )


def batch_conditional_filter(
    targets: Sequence[ConvexPolygon],
    tree_p: RTree,
    domain: Rect,
    use_phi_pruning: bool = True,
    stats: Optional[FilterStats] = None,
    compute: str = "scalar",
) -> List[Tuple[int, Point]]:
    """Batch variant of Algorithm 5 for a group of target polygons.

    Parameters
    ----------
    targets:
        Non-empty convex polygons (Voronoi cells of one ``R_Q`` leaf).
    tree_p:
        The R-tree over ``P``.
    domain:
        Space domain ``U`` (starting approximation of candidate cells).
    use_phi_pruning:
        When ``False`` the Lemma-3 non-leaf pruning rule is disabled and
        every non-leaf entry is expanded; provided for the ablation bench
        that quantifies the rule's benefit.  Candidate admission (the
        approximate-cell test) is unaffected, so the result set is the same.
    stats:
        Optional shared work counters.
    compute:
        ``"scalar"`` (the oracle) or ``"kernel"`` (vectorised candidate
        ordering, Lemma-3 matrices and SAT tests; byte-identical result
        list and counters).

    Returns
    -------
    list of ``(oid, point)``
        The candidate set ``C_P`` in the order candidates were admitted.
    """
    polygons = [t for t in targets if not t.is_empty()]
    if not polygons:
        return []
    if tree_p.is_empty():
        return []
    stats = stats if stats is not None else FilterStats()
    if compute == "kernel":
        return _batch_conditional_filter_kernel(
            polygons, tree_p, domain, use_phi_pruning, stats
        )
    if compute != "scalar":
        raise ValueError(f"unknown compute mode: {compute!r}")

    group_center = centroid([polygon.centroid() for polygon in polygons])
    target_mbrs = [polygon.bounding_rect() for polygon in polygons]
    # Per-batch MBR work shared across all targets: the union MBR gives one
    # cheap rejection test before any per-target geometry runs.
    targets_mbr = Rect.union_all(target_mbrs)
    # All target vertices, flattened once: the Lemma-3 pruning test only
    # needs per-vertex distance comparisons (see _entry_pruned).
    target_vertices = [v for polygon in polygons for v in polygon.vertices]

    candidates: List[Tuple[int, Point]] = []
    counter = itertools.count()
    heap: List[tuple] = []

    def push_node(node) -> None:
        kind = _POINT if node.is_leaf else _CHILD
        for entry in node.entries:
            key = entry.mbr.mindist_point(group_center)
            heapq.heappush(heap, (key, next(counter), kind, entry))

    push_node(tree_p.read_node(tree_p.root_page))
    while heap:
        _, _, kind, entry = heapq.heappop(heap)
        stats.heap_pops += 1
        if kind == _POINT:
            stats.points_examined += 1
            point: Point = entry.payload
            approx = _approximate_cell(point, candidates, domain)
            if _polygon_hits_any_target(approx, targets_mbr, target_mbrs, polygons):
                candidates.append((entry.oid, point))
                stats.points_admitted += 1
        else:
            if _entry_overlaps_targets(entry.mbr, targets_mbr, target_mbrs, polygons):
                stats.entries_expanded += 1
                push_node(tree_p.read_node(entry.child_page))
                continue
            if use_phi_pruning and _entry_pruned(entry.mbr, target_vertices, candidates):
                stats.entries_pruned_phi += 1
                continue
            stats.entries_expanded += 1
            push_node(tree_p.read_node(entry.child_page))
    return candidates


def _batch_conditional_filter_kernel(
    polygons: Sequence[ConvexPolygon],
    tree_p: RTree,
    domain: Rect,
    use_phi_pruning: bool,
    stats: FilterStats,
) -> List[Tuple[int, Point]]:
    """Kernel twin of the scalar loop in :func:`batch_conditional_filter`.

    Traversal, counters and the admitted candidate list are byte-identical;
    the inner work is restructured onto the :mod:`repro.geometry.kernels`
    primitives — one vectorised distance/sort pass per examined point, a
    single candidate-by-vertex matrix for the Lemma-3 test, and array SAT
    for the target-hit tests.
    """
    from repro.geometry import kernels as gk

    gk.require_numpy()
    np = gk.np

    group_center = centroid([polygon.centroid() for polygon in polygons])
    target_mbrs = [polygon.bounding_rect() for polygon in polygons]
    targets_mbr = Rect.union_all(target_mbrs)
    target_arrays = [gk.polygon_to_array(polygon) for polygon in polygons]
    # Per-target MBR bounds as arrays: one vectorised Rect.intersects
    # replaces the per-target Python test.
    t_xmin = np.array([r.xmin for r in target_mbrs])
    t_ymin = np.array([r.ymin for r in target_mbrs])
    t_xmax = np.array([r.xmax for r in target_mbrs])
    t_ymax = np.array([r.ymax for r in target_mbrs])
    # All target vertices, flattened, for the Lemma-3 distance matrix.
    tvx = np.array([v.x for polygon in polygons for v in polygon.vertices])
    tvy = np.array([v.y for polygon in polygons for v in polygon.vertices])
    domain_ring = gk.ring_of_rect(domain)

    candidates: List[Tuple[int, Point]] = []
    # Candidate coordinates both as growing Python lists (cheap append) and
    # as arrays, rebuilt only when an admission invalidated them.
    cand_xs: List[float] = []
    cand_ys: List[float] = []
    arrays_stale = True
    cx = cy = None

    counter = itertools.count()
    heap: List[tuple] = []

    def push_node(node) -> None:
        kind = _POINT if node.is_leaf else _CHILD
        for entry in node.entries:
            key = entry.mbr.mindist_point(group_center)
            heapq.heappush(heap, (key, next(counter), kind, entry))

    def approximate_cell_ring(px: float, py: float):
        """Kernel ``_approximate_cell``: vectorised candidate ordering, then
        the nearest-first Lemma-1 ring walk."""
        if candidates:
            dx = cx - px
            dy = cy - py
            d = np.sqrt(dx * dx + dy * dy)
            keep = (cx != px) | (cy != py)
            idx = np.flatnonzero(keep)
            order = idx[np.argsort(d[idx], kind="stable")]
            oxs = cx[order]
            oys = cy[order]
            ds = d[order].tolist()
        else:
            oxs = oys = ds = []
        vdist = gk.ring_distances(domain_ring, px, py)
        reach = 2.0 * max(vdist)
        ring, _, _, _ = gk.refine_ring_nearest_first(
            domain_ring, px, py, oxs, oys, ds, vdist, reach
        )
        return ring

    def ring_hits_any_target(ring) -> bool:
        """Kernel ``_polygon_hits_any_target`` (union MBR, per-target MBR
        mask, then array SAT in target order)."""
        if len(ring) < 3:
            return False
        rxs = [p[0] for p in ring]
        rys = [p[1] for p in ring]
        xmin = min(rxs)
        ymin = min(rys)
        xmax = max(rxs)
        ymax = max(rys)
        if (
            xmax < targets_mbr.xmin
            or targets_mbr.xmax < xmin
            or ymax < targets_mbr.ymin
            or targets_mbr.ymax < ymin
        ):
            return False
        mask = gk.rects_intersect_mask(
            t_xmin, t_ymin, t_xmax, t_ymax, xmin, ymin, xmax, ymax
        )
        if not mask.any():
            return False
        ring_arr = np.array(ring, dtype=np.float64)
        for t in np.flatnonzero(mask):
            if gk.sat_intersects(ring_arr, target_arrays[t], True):
                return True
        return False

    def entry_overlaps_targets(mbr: Rect) -> bool:
        """Kernel ``_entry_overlaps_targets``."""
        if not mbr.intersects(targets_mbr):
            return False
        mask = gk.rects_intersect_mask(
            t_xmin, t_ymin, t_xmax, t_ymax, mbr.xmin, mbr.ymin, mbr.xmax, mbr.ymax
        )
        if not mask.any():
            return False
        for t in np.flatnonzero(mask):
            if gk.sat_intersects_rect(target_arrays[t], mbr):
                return True
        return False

    def entry_pruned(mbr: Rect) -> bool:
        """Kernel ``_entry_pruned``: the whole candidate-by-vertex Lemma-3
        comparison as one matrix expression."""
        if not candidates:
            return False
        md = gk.rect_mindist_to_points(
            mbr.xmin, mbr.ymin, mbr.xmax, mbr.ymax, tvx, tvy
        )
        cdx = cx[:, None] - tvx[None, :]
        cdy = cy[:, None] - tvy[None, :]
        cd = np.sqrt(cdx * cdx + cdy * cdy)
        return bool(np.any(np.all(cd <= md[None, :], axis=1)))

    push_node(tree_p.read_node(tree_p.root_page))
    while heap:
        _, _, kind, entry = heapq.heappop(heap)
        stats.heap_pops += 1
        if kind == _POINT:
            stats.points_examined += 1
            point: Point = entry.payload
            if arrays_stale:
                cx = np.array(cand_xs)
                cy = np.array(cand_ys)
                arrays_stale = False
            ring = approximate_cell_ring(point.x, point.y)
            if ring_hits_any_target(ring):
                candidates.append((entry.oid, point))
                cand_xs.append(point.x)
                cand_ys.append(point.y)
                arrays_stale = True
                stats.points_admitted += 1
        else:
            if entry_overlaps_targets(entry.mbr):
                stats.entries_expanded += 1
                push_node(tree_p.read_node(entry.child_page))
                continue
            if use_phi_pruning:
                if arrays_stale:
                    cx = np.array(cand_xs)
                    cy = np.array(cand_ys)
                    arrays_stale = False
                if entry_pruned(entry.mbr):
                    stats.entries_pruned_phi += 1
                    continue
            stats.entries_expanded += 1
            push_node(tree_p.read_node(entry.child_page))
    return candidates


def _approximate_cell(
    point: Point, candidates: Sequence[Tuple[int, Point]], domain: Rect
) -> ConvexPolygon:
    """``V(p, C_P)``: the cell of ``p`` induced by the current candidates.

    Because ``C_P ⊆ P``, this polygon is a superset of the exact cell
    ``V(p, P)``; if it already misses every target, the exact cell misses
    them too and ``p`` can be discarded.

    The candidates are applied in ascending distance from ``p`` and skipped
    once they can no longer refine the running polygon (Lemma 1 plus the
    influence-radius shortcut), so the construction cost stays proportional
    to the handful of candidates that actually shape the cell.
    """
    polygon = ConvexPolygon.from_rect(domain)
    ordered = sorted(
        (
            (point.distance_to(other), other)
            for _, other in candidates
            if other.x != point.x or other.y != point.y
        ),
        key=lambda pair: pair[0],
    )
    # Distances from the examined point to the current cell vertices are
    # cached so the Lemma-1 check costs one distance per (candidate, vertex).
    vertex_dists = [(v, point.distance_to(v)) for v in polygon.vertices]
    reach = 2.0 * max(d for _, d in vertex_dists)
    for distance, other in ordered:
        if distance > reach:
            break
        if not any(other.distance_to(v) < d for v, d in vertex_dists):
            continue
        polygon = polygon.clip_halfplane(bisector_halfplane(point, other))
        if polygon.is_empty():
            break
        vertex_dists = [(v, point.distance_to(v)) for v in polygon.vertices]
        reach = 2.0 * max(d for _, d in vertex_dists)
    return polygon


def _polygon_hits_any_target(
    polygon: ConvexPolygon,
    targets_mbr: Rect,
    target_mbrs: Sequence[Rect],
    targets: Sequence[ConvexPolygon],
) -> bool:
    """Whether ``polygon`` intersects at least one target cell.

    The batch-wide union MBR rejects most candidates with one test; a
    per-target MBR test then precedes the exact convex intersection test.
    """
    if polygon.is_empty():
        return False
    mbr = polygon.bounding_rect()
    if not mbr.intersects(targets_mbr):
        return False
    for target_mbr, target in zip(target_mbrs, targets):
        if mbr.intersects(target_mbr) and polygon.intersects(target):
            return True
    return False


def _entry_overlaps_targets(
    mbr: Rect,
    targets_mbr: Rect,
    target_mbrs: Sequence[Rect],
    polygons: Sequence[ConvexPolygon],
) -> bool:
    """Whether the entry MBR intersects any target polygon.

    Such an entry may contain points *inside* a target cell (guaranteed join
    partners), so it can never be pruned.  The union MBR of the whole batch
    is checked first so disjoint entries pay a single rectangle test.
    """
    if not mbr.intersects(targets_mbr):
        return False
    for target_mbr, polygon in zip(target_mbrs, polygons):
        if mbr.intersects(target_mbr) and polygon.intersects_rect(mbr):
            return True
    return False


def _entry_pruned(
    mbr: Rect,
    target_vertices: Sequence[Point],
    candidates: Sequence[Tuple[int, Point]],
) -> bool:
    """Lemma-3 pruning: some candidate blocks the whole subtree.

    The paper states the rule as "every target polygon T falls inside
    Φ(L, p) for every side L of the entry MBR".  Because the targets reaching
    this test never intersect the MBR (intersecting entries were already
    expanded), the conjunction over the four sides is equivalent to requiring
    ``dist(p, v) <= mindist(MBR, v)`` for every target vertex ``v``: the
    binding side of Φ is always the one nearest to ``v``, and the distance to
    that side equals the distance to the rectangle itself.  The test below
    uses that equivalent form; :func:`repro.geometry.influence.polygon_within_phi`
    implements the literal per-side formulation and the test-suite checks
    that the two agree.
    """
    for _, candidate in candidates:
        if all(
            candidate.distance_to(v) <= mbr.mindist_point(v) for v in target_vertices
        ):
            return True
    return False


def candidate_cells_from_buffer(
    candidates: Sequence[Tuple[int, Point]],
    reuse_buffer: Dict[int, VoronoiCell],
) -> Tuple[List[Tuple[int, Point]], Dict[int, VoronoiCell]]:
    """Split candidates into those with a buffered exact cell and the rest.

    Helper for the REUSE heuristic of NM-CIJ: returns the candidates that
    still need an exact cell computation and the mapping of reused cells.
    """
    missing: List[Tuple[int, Point]] = []
    reused: Dict[int, VoronoiCell] = {}
    for oid, point in candidates:
        cell = reuse_buffer.get(oid)
        if cell is not None and cell.site == point:
            reused[oid] = cell
        else:
            missing.append((oid, point))
    return missing, reused
