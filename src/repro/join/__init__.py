"""Join operators over R-tree-indexed pointsets.

The package contains the paper's three CIJ algorithms, the classical join
operators they are compared against in the introduction, the synchronous
traversal join used as a subroutine, and the oracles used for testing:

* :func:`~repro.join.fm_cij.fm_cij` — full materialisation (Algorithm 3),
* :func:`~repro.join.pm_cij.pm_cij` — partial materialisation (Algorithm 4),
* :func:`~repro.join.nm_cij.nm_cij` — non-blocking, no materialisation
  (Algorithms 5 and 6) with the REUSE cell buffer,
* :func:`~repro.join.synchronous.synchronous_join` — the R-tree intersection
  join of Brinkhoff et al.,
* :func:`~repro.join.distance.epsilon_distance_join`,
  :func:`~repro.join.closest_pairs.k_closest_pairs`,
  :func:`~repro.join.allnn.all_nearest_neighbors` — related-work operators,
* :func:`~repro.join.baseline.brute_force_cij` — the ground-truth oracle,
* :func:`~repro.join.lower_bound.lower_bound_io` — the LB line of the plots,
* :func:`~repro.join.multiway.multiway_cij` — the future-work extension to
  more than two pointsets.
"""

from repro.join.result import CIJResult, JoinStats, ProgressSample
from repro.join.baseline import brute_force_cij, brute_force_cij_pairs
from repro.join.lower_bound import lower_bound_io
from repro.join.synchronous import synchronous_join
from repro.join.distance import epsilon_distance_join
from repro.join.closest_pairs import k_closest_pairs
from repro.join.allnn import all_nearest_neighbors
from repro.join.conditional_filter import batch_conditional_filter, conditional_filter
from repro.join.fm_cij import fm_cij
from repro.join.pm_cij import pm_cij
from repro.join.nm_cij import nm_cij
from repro.join.multiway import multiway_cij

__all__ = [
    "CIJResult",
    "JoinStats",
    "ProgressSample",
    "brute_force_cij",
    "brute_force_cij_pairs",
    "lower_bound_io",
    "synchronous_join",
    "epsilon_distance_join",
    "k_closest_pairs",
    "all_nearest_neighbors",
    "conditional_filter",
    "batch_conditional_filter",
    "fm_cij",
    "pm_cij",
    "nm_cij",
    "multiway_cij",
]
