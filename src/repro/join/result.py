"""Result and statistics records shared by the three CIJ algorithms.

Every experiment in the paper reports one (or more) of: page accesses split
into materialisation (MAT) and join processing (JOIN), CPU time, the output
progressiveness curve, the false-hit ratio of the filter step, and the
number of exact Voronoi cells computed for points of P.  The
:class:`JoinStats` record carries all of them so that one run of an
algorithm can feed several figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, List, Optional, Set, Tuple

if TYPE_CHECKING:  # imported lazily to keep the result record dependency-free
    from repro.join.conditional_filter import FilterStats
    from repro.storage.backends import StorageStats
    from repro.voronoi.single import CellComputationStats


@dataclass(frozen=True)
class ProgressSample:
    """One point of the output-progressiveness curve (Figure 9b)."""

    page_accesses: int
    pairs_reported: int


@dataclass
class JoinStats:
    """Cost breakdown of one CIJ execution."""

    algorithm: str
    #: Physical page accesses spent materialising Voronoi R-trees (MAT).
    mat_page_accesses: int = 0
    #: Physical page accesses spent producing join results (JOIN).
    join_page_accesses: int = 0
    #: Wall-clock seconds spent in the materialisation phase.
    mat_cpu_seconds: float = 0.0
    #: Wall-clock seconds spent in the join phase.
    join_cpu_seconds: float = 0.0
    #: Exact Voronoi cells computed for points of P (counts recomputations).
    cells_computed_p: int = 0
    #: Exact Voronoi cells computed for points of Q.
    cells_computed_q: int = 0
    #: Cells of P obtained from the REUSE buffer instead of recomputation.
    cells_reused_p: int = 0
    #: Cells of P served by the opt-in per-node cell cache
    #: (``EngineConfig.cell_cache``); always 0 under paper semantics.
    cells_cached_p: int = 0
    #: Σ s_i — filter-phase candidates over all leaf batches (NM-CIJ only).
    filter_candidates: int = 0
    #: Σ s'_i — candidates that produced at least one join pair per batch.
    filter_true_hits: int = 0
    #: Output progressiveness samples (page accesses → pairs reported).
    progress: List[ProgressSample] = field(default_factory=list)

    @property
    def total_page_accesses(self) -> int:
        """MAT + JOIN page accesses — the headline metric of the paper."""
        return self.mat_page_accesses + self.join_page_accesses

    @property
    def total_cpu_seconds(self) -> float:
        """MAT + JOIN CPU time."""
        return self.mat_cpu_seconds + self.join_cpu_seconds

    @property
    def false_hit_ratio(self) -> float:
        """FHR = (Σ s_i − Σ s'_i) / Σ s'_i (Section V-B); 0 when undefined."""
        if self.filter_true_hits == 0:
            return 0.0
        return (self.filter_candidates - self.filter_true_hits) / self.filter_true_hits

    def record_progress(self, page_accesses: int, pairs_reported: int) -> None:
        """Append one progressiveness sample."""
        self.progress.append(ProgressSample(page_accesses, pairs_reported))

    def accumulate(self, other: "JoinStats") -> None:
        """Add another record's scalar counters into this one.

        Used by the sharded executor to merge per-shard statistics; the
        ``algorithm`` label and the ``progress`` curve are left to the
        caller, which knows the shard ordering.  Scalars are summed
        generically so a counter added to the dataclass can never be
        silently dropped from sharded-run statistics.
        """
        for field_info in fields(self):
            if field_info.name in ("algorithm", "progress"):
                continue
            setattr(
                self,
                field_info.name,
                getattr(self, field_info.name) + getattr(other, field_info.name),
            )


@dataclass
class CIJResult:
    """The pairs produced by a CIJ algorithm together with its statistics.

    Runs executed through :class:`repro.engine.JoinEngine` additionally
    carry the Voronoi-computation and filter-phase work counters, which the
    standalone entry points used to accumulate internally and then discard.
    """

    pairs: List[Tuple[int, int]]
    stats: JoinStats
    cell_stats: Optional["CellComputationStats"] = None
    filter_stats: Optional["FilterStats"] = None
    #: Physical byte movement and prefetch stall/overlap accounting of the
    #: run's disk, snapshotted when the engine run ends (lifetime values of
    #: the workload's disk manager, not a per-run delta).
    storage: Optional["StorageStats"] = None

    def pair_set(self) -> Set[Tuple[int, int]]:
        """The result as a set (order-insensitive comparison in tests)."""
        return set(self.pairs)

    def __len__(self) -> int:
        return len(self.pairs)
