"""FM-CIJ: the full-materialisation CIJ algorithm (Algorithm 3).

Both Voronoi diagrams are computed (BatchVoronoi per source leaf), indexed
into bulk-loaded R-trees ``R'_P`` and ``R'_Q``, and finally joined with the
synchronous-traversal intersection join.  The algorithm is *blocking*: no
result pair is produced before both Voronoi R-trees exist — and because the
synchronous traversal is a coupled walk over both trees rather than a
per-leaf pipeline, FM-CIJ is the one variant the engine cannot shard.

:func:`fm_cij` is the classic entry point, now a thin wrapper over
:class:`repro.engine.JoinEngine`; the synchronous join phase lives in
:func:`join_materialized_trees`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.geometry.rect import Rect
from repro.index.rtree import RTree
from repro.join.materialize import cells_intersect_entry
from repro.join.result import CIJResult, JoinStats
from repro.join.synchronous import synchronous_join
from repro.storage.counters import IOCounters


def join_materialized_trees(
    voronoi_p: RTree,
    voronoi_q: RTree,
    stats: JoinStats,
    start_counters: IOCounters,
    progress_interval: int = 1000,
) -> List[Tuple[int, int]]:
    """Intersection-join two materialised Voronoi R-trees (join phase only)."""
    disk = voronoi_p.disk
    pairs: List[Tuple[int, int]] = []
    for entry_p, entry_q in synchronous_join(
        voronoi_p, voronoi_q, refine=cells_intersect_entry
    ):
        pairs.append((entry_p.oid, entry_q.oid))
        if progress_interval and len(pairs) % progress_interval == 0:
            accesses = disk.counters.diff(start_counters).page_accesses
            stats.record_progress(accesses, len(pairs))
    return pairs


def fm_cij(
    tree_p: RTree,
    tree_q: RTree,
    domain: Optional[Rect] = None,
    progress_interval: int = 1000,
) -> CIJResult:
    """Run FM-CIJ and return the result pairs with a full cost breakdown.

    Parameters
    ----------
    tree_p, tree_q:
        Source R-trees over the pointsets ``P`` and ``Q``.  They must share
        a single :class:`~repro.storage.disk.DiskManager` so that the page
        accesses of every phase land in the same counters.
    domain:
        Space domain ``U``; defaults to the union of the two tree MBRs.
    progress_interval:
        Granularity (in produced pairs) of the progressiveness samples.
    """
    from repro.engine import default_engine  # local import breaks the cycle

    return default_engine().run(
        "fm",
        tree_p,
        tree_q,
        domain=domain,
        progress_interval=progress_interval,
    )
