"""FM-CIJ: the full-materialisation CIJ algorithm (Algorithm 3).

Both Voronoi diagrams are computed (BatchVoronoi per source leaf), indexed
into bulk-loaded R-trees ``R'_P`` and ``R'_Q``, and finally joined with the
synchronous-traversal intersection join.  The algorithm is *blocking*: no
result pair is produced before both Voronoi R-trees exist.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.geometry.rect import Rect
from repro.index.rtree import RTree
from repro.join.materialize import cells_intersect_entry, materialize_voronoi_rtree
from repro.join.result import CIJResult, JoinStats
from repro.join.synchronous import synchronous_join
from repro.voronoi.single import CellComputationStats


def fm_cij(
    tree_p: RTree,
    tree_q: RTree,
    domain: Optional[Rect] = None,
    progress_interval: int = 1000,
) -> CIJResult:
    """Run FM-CIJ and return the result pairs with a full cost breakdown.

    Parameters
    ----------
    tree_p, tree_q:
        Source R-trees over the pointsets ``P`` and ``Q``.  They must share
        a single :class:`~repro.storage.disk.DiskManager` so that the page
        accesses of every phase land in the same counters.
    domain:
        Space domain ``U``; defaults to the union of the two tree MBRs.
    progress_interval:
        Granularity (in produced pairs) of the progressiveness samples.
    """
    if tree_p.disk is not tree_q.disk:
        raise ValueError("both input trees must share one DiskManager")
    disk = tree_p.disk
    if domain is None:
        domain = tree_p.domain().union(tree_q.domain())
    stats = JoinStats(algorithm="FM-CIJ")
    cell_stats_p = CellComputationStats()
    cell_stats_q = CellComputationStats()

    # --- materialisation phase: build R'_P and R'_Q --------------------
    start_counters = disk.counters.snapshot()
    start_time = time.perf_counter()
    voronoi_p, count_p = materialize_voronoi_rtree(
        tree_p, domain, tag=f"{tree_p.tag}_vor", stats=cell_stats_p
    )
    voronoi_q, count_q = materialize_voronoi_rtree(
        tree_q, domain, tag=f"{tree_q.tag}_vor", stats=cell_stats_q
    )
    stats.cells_computed_p = count_p
    stats.cells_computed_q = count_q
    stats.mat_cpu_seconds = time.perf_counter() - start_time
    after_mat = disk.counters.snapshot()
    stats.mat_page_accesses = after_mat.diff(start_counters).page_accesses
    stats.record_progress(stats.mat_page_accesses, 0)

    # --- join phase: intersection join of the two Voronoi R-trees ------
    join_start = time.perf_counter()
    pairs = []
    for entry_p, entry_q in synchronous_join(
        voronoi_p, voronoi_q, refine=cells_intersect_entry
    ):
        pairs.append((entry_p.oid, entry_q.oid))
        if progress_interval and len(pairs) % progress_interval == 0:
            accesses = disk.counters.diff(start_counters).page_accesses
            stats.record_progress(accesses, len(pairs))
    stats.join_cpu_seconds = time.perf_counter() - join_start
    stats.join_page_accesses = (
        disk.counters.diff(start_counters).page_accesses - stats.mat_page_accesses
    )
    stats.record_progress(stats.total_page_accesses, len(pairs))
    return CIJResult(pairs=pairs, stats=stats)
