"""FM-CIJ: the full-materialisation CIJ algorithm (Algorithm 3).

Both Voronoi diagrams are computed (BatchVoronoi per source leaf), indexed
into bulk-loaded R-trees ``R'_P`` and ``R'_Q``, and finally joined with the
synchronous-traversal intersection join.  The algorithm is *blocking*: no
result pair is produced before both Voronoi R-trees exist.

The join phase is organised around the *partitioned* synchronous traversal
(:func:`repro.join.synchronous.partitioned_join_seeds`): the coupled walk
over both trees decomposes into one independent depth-first traversal per
top-level ``R'_P`` entry, each running against the MBR-pruned fan-in of the
top-level ``R'_Q`` entries.  Processing the partitions in order reproduces
the classic single-stack traversal byte for byte (pairs *and* page
accesses), and the engine's sharded executor distributes contiguous runs of
partitions across workers — so FM-CIJ shards exactly like the leaf-shaped
algorithms.

:func:`fm_cij` is the classic entry point, now a thin wrapper over
:class:`repro.engine.JoinEngine`; the join phase lives in
:func:`join_partitions` / :func:`join_materialized_trees`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.geometry.rect import Rect
from repro.index.rtree import RTree
from repro.join.materialize import cells_intersect_entry
from repro.join.result import CIJResult, JoinStats
from repro.join.synchronous import (
    JoinPartition,
    join_from_seeds,
    partitioned_join_seeds,
)
from repro.storage.counters import IOCounters


def fm_join_partitions(voronoi_p: RTree, voronoi_q: RTree) -> List[JoinPartition]:
    """The shard units of FM-CIJ's join phase (top-level ``R'_P`` slices)."""
    return partitioned_join_seeds(voronoi_p, voronoi_q)


def join_partitions(
    voronoi_p: RTree,
    voronoi_q: RTree,
    partitions: Sequence[JoinPartition],
    stats: JoinStats,
    start_counters: IOCounters,
    progress_interval: int = 1000,
) -> List[Tuple[int, int]]:
    """Run the synchronous join over a sequence of partitions.

    This is the complete join phase when ``partitions`` is the full list
    from :func:`fm_join_partitions`, and one shard's work when it is a
    contiguous slice of it.  Progress samples are recorded every
    ``progress_interval`` produced pairs relative to ``start_counters``
    (shard-local counters for a forked worker).
    """
    disk = voronoi_p.disk
    pairs: List[Tuple[int, int]] = []
    for partition in partitions:
        for entry_p, entry_q in join_from_seeds(
            voronoi_p, voronoi_q, partition.seeds, refine=cells_intersect_entry
        ):
            pairs.append((entry_p.oid, entry_q.oid))
            if progress_interval and len(pairs) % progress_interval == 0:
                accesses = disk.counters.diff(start_counters).page_accesses
                stats.record_progress(accesses, len(pairs))
    return pairs


def join_materialized_trees(
    voronoi_p: RTree,
    voronoi_q: RTree,
    stats: JoinStats,
    start_counters: IOCounters,
    progress_interval: int = 1000,
) -> List[Tuple[int, int]]:
    """Intersection-join two materialised Voronoi R-trees (join phase only,
    serial semantics: every partition in order)."""
    return join_partitions(
        voronoi_p,
        voronoi_q,
        fm_join_partitions(voronoi_p, voronoi_q),
        stats,
        start_counters,
        progress_interval=progress_interval,
    )


def fm_cij(
    tree_p: RTree,
    tree_q: RTree,
    domain: Optional[Rect] = None,
    progress_interval: int = 1000,
) -> CIJResult:
    """Run FM-CIJ and return the result pairs with a full cost breakdown.

    Parameters
    ----------
    tree_p, tree_q:
        Source R-trees over the pointsets ``P`` and ``Q``.  They must share
        a single :class:`~repro.storage.disk.DiskManager` so that the page
        accesses of every phase land in the same counters.
    domain:
        Space domain ``U``; defaults to the union of the two tree MBRs.
    progress_interval:
        Granularity (in produced pairs) of the progressiveness samples.
    """
    from repro.engine import default_engine  # local import breaks the cycle

    return default_engine().run(
        "fm",
        tree_p,
        tree_q,
        domain=domain,
        progress_interval=progress_interval,
    )
