"""Synchronous-traversal spatial intersection join (Brinkhoff et al. [9]).

FM-CIJ joins the two materialised Voronoi R-trees with this algorithm: both
trees are descended concurrently, following only pairs of entries whose MBRs
intersect.  At the leaf level an exact refinement predicate (convex polygon
intersection for Voronoi cells) decides whether a pair is reported.

The implementation also handles trees of different heights (the shorter
subtree is held fixed while the taller one is descended), which occurs when
the two Voronoi R-trees have different page counts.

Besides the classic single-stack :func:`synchronous_join`, the traversal is
exposed in *partitioned* form for the engine's sharded executor: the join
decomposes into one independent depth-first traversal per top-level entry
of ``tree_a`` (:func:`partitioned_join_seeds`), each seeded with that
entry's MBR-pruned fan-in of top-level ``tree_b`` entries and replayed by
:func:`join_from_seeds`.  The partitions are ordered so that concatenating
their outputs reproduces :func:`synchronous_join`'s pair sequence — and its
page-access sequence — byte for byte, which is what lets a parallel FM-CIJ
merge shard results into the exact serial answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple

from repro.index.entries import LeafEntry
from repro.index.rtree import RTree

RefinePredicate = Callable[[LeafEntry, LeafEntry], bool]


@dataclass(frozen=True)
class JoinPartition:
    """One independent slice of the synchronous join.

    ``seeds`` is the initial traversal stack (bottom to top): pairs of page
    ids whose subtrees are joined depth-first.  Partitions produced by
    :func:`partitioned_join_seeds` correspond to top-level entries of the
    first tree, in the order the single-stack traversal would have explored
    them.
    """

    seeds: Tuple[Tuple[int, int], ...]


def join_from_seeds(
    tree_a: RTree,
    tree_b: RTree,
    seeds: Tuple[Tuple[int, int], ...],
    refine: Optional[RefinePredicate] = None,
) -> Iterator[Tuple[LeafEntry, LeafEntry]]:
    """Depth-first synchronous join started from an explicit seed stack."""
    stack: List[Tuple[int, int]] = list(seeds)
    while stack:
        page_a, page_b = stack.pop()
        node_a = tree_a.read_node(page_a)
        node_b = tree_b.read_node(page_b)
        if node_a.is_leaf and node_b.is_leaf:
            for entry_a in node_a.entries:
                for entry_b in node_b.entries:
                    if not entry_a.mbr.intersects(entry_b.mbr):
                        continue
                    if refine is None or refine(entry_a, entry_b):
                        yield entry_a, entry_b
        elif node_a.is_leaf:
            node_mbr = node_a.mbr()
            for entry_b in node_b.entries:
                if node_mbr.intersects(entry_b.mbr):
                    stack.append((page_a, entry_b.child_page))
        elif node_b.is_leaf:
            node_mbr = node_b.mbr()
            for entry_a in node_a.entries:
                if entry_a.mbr.intersects(node_mbr):
                    stack.append((entry_a.child_page, page_b))
        else:
            for entry_a in node_a.entries:
                for entry_b in node_b.entries:
                    if entry_a.mbr.intersects(entry_b.mbr):
                        stack.append((entry_a.child_page, entry_b.child_page))


def partitioned_join_seeds(tree_a: RTree, tree_b: RTree) -> List[JoinPartition]:
    """Split the synchronous join by the top-level entries of ``tree_a``.

    Reads each root once (charged like the traversal's own first step) and
    returns independent partitions whose concatenated depth-first outputs
    equal :func:`synchronous_join`'s sequence exactly:

    * the single-stack traversal pushes the root fan-out in entry order and
      pops it LIFO, fully exploring each seed's subtree before the next —
      so partitions are emitted in *reversed* top-entry order, and each
      partition's seed stack keeps the original push order;
    * a top-level ``tree_a`` entry intersecting nothing contributes no seed
      pair (and no partition), exactly as the classic traversal never
      pushes it.

    When the root of ``tree_a`` is a leaf the traversal has no top level
    to split on and a single partition seeded with the root pairing is
    returned — decided from the tree's ``height`` attribute, without
    pre-reading either root, so the access sequence again matches the
    classic traversal (whose first pop performs those root reads).  A leaf
    root of ``tree_b`` under a taller ``tree_a`` still splits normally:
    both roots are read here and each intersecting top-level ``tree_a``
    entry becomes a partition seeded against ``tree_b``'s root page.
    """
    if tree_a.is_empty() or tree_b.is_empty():
        return []
    root_pair = (tree_a.root_page, tree_b.root_page)
    if tree_a.height <= 1:
        # The root of tree_a is a leaf: no top level to split on.  The
        # height attribute avoids a root read the classic traversal would
        # not have charged here (its first pop reads the roots instead).
        return [JoinPartition(seeds=(root_pair,))]
    node_a = tree_a.read_node(tree_a.root_page)
    node_b = tree_b.read_node(tree_b.root_page)
    partitions: List[JoinPartition] = []
    if node_b.is_leaf:
        mbr_b = node_b.mbr()
        for entry_a in reversed(node_a.entries):
            if entry_a.mbr.intersects(mbr_b):
                partitions.append(
                    JoinPartition(seeds=((entry_a.child_page, tree_b.root_page),))
                )
        return partitions
    for entry_a in reversed(node_a.entries):
        seeds = tuple(
            (entry_a.child_page, entry_b.child_page)
            for entry_b in node_b.entries
            if entry_a.mbr.intersects(entry_b.mbr)
        )
        if seeds:
            partitions.append(JoinPartition(seeds=seeds))
    return partitions


def synchronous_join(
    tree_a: RTree,
    tree_b: RTree,
    refine: Optional[RefinePredicate] = None,
) -> Iterator[Tuple[LeafEntry, LeafEntry]]:
    """Yield pairs of leaf entries with intersecting MBRs from both trees.

    Parameters
    ----------
    tree_a, tree_b:
        The two indexes to join.
    refine:
        Optional exact predicate applied to MBR-intersecting leaf pairs
        (e.g. convex polygon intersection).  When omitted, MBR intersection
        alone qualifies a pair.
    """
    if tree_a.is_empty() or tree_b.is_empty():
        return
    yield from join_from_seeds(
        tree_a, tree_b, ((tree_a.root_page, tree_b.root_page),), refine=refine
    )


def count_join_pairs(
    tree_a: RTree, tree_b: RTree, refine: Optional[RefinePredicate] = None
) -> int:
    """Number of qualifying pairs (convenience wrapper for tests)."""
    return sum(1 for _ in synchronous_join(tree_a, tree_b, refine=refine))
