"""Synchronous-traversal spatial intersection join (Brinkhoff et al. [9]).

FM-CIJ joins the two materialised Voronoi R-trees with this algorithm: both
trees are descended concurrently, following only pairs of entries whose MBRs
intersect.  At the leaf level an exact refinement predicate (convex polygon
intersection for Voronoi cells) decides whether a pair is reported.

The implementation also handles trees of different heights (the shorter
subtree is held fixed while the taller one is descended), which occurs when
the two Voronoi R-trees have different page counts.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Tuple

from repro.index.entries import LeafEntry
from repro.index.rtree import RTree

RefinePredicate = Callable[[LeafEntry, LeafEntry], bool]


def synchronous_join(
    tree_a: RTree,
    tree_b: RTree,
    refine: Optional[RefinePredicate] = None,
) -> Iterator[Tuple[LeafEntry, LeafEntry]]:
    """Yield pairs of leaf entries with intersecting MBRs from both trees.

    Parameters
    ----------
    tree_a, tree_b:
        The two indexes to join.
    refine:
        Optional exact predicate applied to MBR-intersecting leaf pairs
        (e.g. convex polygon intersection).  When omitted, MBR intersection
        alone qualifies a pair.
    """
    if tree_a.is_empty() or tree_b.is_empty():
        return
    stack: List[Tuple[int, int]] = [(tree_a.root_page, tree_b.root_page)]
    while stack:
        page_a, page_b = stack.pop()
        node_a = tree_a.read_node(page_a)
        node_b = tree_b.read_node(page_b)
        if node_a.is_leaf and node_b.is_leaf:
            for entry_a in node_a.entries:
                for entry_b in node_b.entries:
                    if not entry_a.mbr.intersects(entry_b.mbr):
                        continue
                    if refine is None or refine(entry_a, entry_b):
                        yield entry_a, entry_b
        elif node_a.is_leaf:
            node_mbr = node_a.mbr()
            for entry_b in node_b.entries:
                if node_mbr.intersects(entry_b.mbr):
                    stack.append((page_a, entry_b.child_page))
        elif node_b.is_leaf:
            node_mbr = node_b.mbr()
            for entry_a in node_a.entries:
                if entry_a.mbr.intersects(node_mbr):
                    stack.append((entry_a.child_page, page_b))
        else:
            for entry_a in node_a.entries:
                for entry_b in node_b.entries:
                    if entry_a.mbr.intersects(entry_b.mbr):
                        stack.append((entry_a.child_page, entry_b.child_page))


def count_join_pairs(
    tree_a: RTree, tree_b: RTree, refine: Optional[RefinePredicate] = None
) -> int:
    """Number of qualifying pairs (convenience wrapper for tests)."""
    return sum(1 for _ in synchronous_join(tree_a, tree_b, refine=refine))
