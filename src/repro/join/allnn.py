"""All-nearest-neighbour (AllNN) join.

Used by the grouped-nearest-neighbours application of the introduction: for
every point of an outer set ``L`` (houses), find its nearest neighbour in an
inner R-tree-indexed set ``P`` (hospitals).  The paper argues that answering
the hospital/park GROUP-BY question with two AllNN joins is much more
expensive than going through CIJ; the example in ``examples/`` reproduces
that comparison.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.geometry.point import Point
from repro.index.rtree import RTree
from repro.query.nearest import nearest_neighbor


def all_nearest_neighbors(
    outer: Sequence[Tuple[int, Point]], inner_tree: RTree
) -> Dict[int, Tuple[int, float]]:
    """For each ``(oid, point)`` of ``outer``, its NN in ``inner_tree``.

    Returns a mapping ``outer_oid -> (inner_oid, distance)``.  Outer points
    are processed independently with best-first NN searches; the shared LRU
    buffer of the disk manager captures whatever locality exists between
    consecutive queries.
    """
    results: Dict[int, Tuple[int, float]] = {}
    for oid, point in outer:
        hit = nearest_neighbor(inner_tree, point)
        if hit is None:
            continue
        distance, entry = hit
        results[oid] = (entry.oid, distance)
    return results


def grouped_nearest_pairs(
    outer: Sequence[Tuple[int, Point]], tree_p: RTree, tree_q: RTree
) -> Dict[Tuple[int, int], int]:
    """GROUP-BY count of outer points per (NN in P, NN in Q) combination.

    This is the expensive double-AllNN formulation of the grouped-NN
    analysis; the CIJ-based formulation only has to count outer points
    inside each common influence region of the (much smaller) CIJ result.
    """
    nn_p = all_nearest_neighbors(outer, tree_p)
    nn_q = all_nearest_neighbors(outer, tree_q)
    counts: Dict[Tuple[int, int], int] = {}
    for oid, _ in outer:
        if oid not in nn_p or oid not in nn_q:
            continue
        key = (nn_p[oid][0], nn_q[oid][0])
        counts[key] = counts.get(key, 0) + 1
    return counts
