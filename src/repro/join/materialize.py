"""Materialisation of Voronoi R-trees (shared by FM-CIJ and PM-CIJ).

Section III-C: the Voronoi diagram of a source tree is computed leaf by leaf
(in Hilbert order of the leaves) and the resulting cells are packed
sequentially into the pages of a new bulk-loaded R-tree.  Construction never
splits nodes, so its I/O cost is exactly the cost of writing the new tree's
pages, plus the reads performed by the batch cell computations.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.geometry.rect import Rect
from repro.index.bulkload import StreamingBulkLoader
from repro.index.entries import LeafEntry
from repro.index.rtree import RTree
from repro.voronoi.diagram import iter_diagram_cells
from repro.voronoi.single import CellComputationStats


def materialize_voronoi_rtree(
    source_tree: RTree,
    domain: Rect,
    tag: str,
    strategy: str = "batch",
    stats: Optional[CellComputationStats] = None,
    compute: str = "scalar",
) -> Tuple[RTree, int]:
    """Compute the Voronoi diagram of ``source_tree`` and index it.

    Parameters
    ----------
    source_tree:
        R-tree over the pointset whose diagram is materialised.
    domain:
        Space domain bounding every cell.
    tag:
        Page tag of the new tree (e.g. ``"RP_vor"``), used by experiments to
        attribute materialisation I/O.
    strategy:
        ``"batch"`` (Algorithm 2 per leaf, the default used by FM/PM-CIJ)
        or ``"iter"`` (Algorithm 1 per point).
    stats:
        Optional cell-computation work counters.
    compute:
        ``"scalar"`` or ``"kernel"`` inner loops for the batch cell
        computations (byte-identical cells either way); only the
        ``"batch"`` strategy is affected.

    Returns
    -------
    ``(tree, cell_count)``
        The bulk-loaded Voronoi R-tree and the number of cells it stores.
    """
    voronoi_tree = RTree(source_tree.disk, tag, page_size=source_tree.page_size)
    loader = StreamingBulkLoader(voronoi_tree)
    count = 0
    for cell in iter_diagram_cells(
        source_tree, domain, strategy=strategy, stats=stats, compute=compute
    ):
        loader.append(
            LeafEntry.for_cell(cell.oid, cell.mbr(), cell, cell.vertex_count())
        )
        count += 1
    loader.finish()
    return voronoi_tree, count


def cells_intersect_entry(entry_a: LeafEntry, entry_b: LeafEntry) -> bool:
    """Exact refinement predicate for two Voronoi-cell leaf entries."""
    return entry_a.payload.intersects(entry_b.payload)
