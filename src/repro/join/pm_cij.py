"""PM-CIJ: the partial-materialisation CIJ algorithm (Algorithm 4).

Only the Voronoi diagram of ``P`` is materialised into a bulk-loaded R-tree
``R'_P``.  The algorithm then traverses ``R_Q`` leaf by leaf, computes the
Voronoi cells of each leaf's points in batch, and probes ``R'_P`` with a
single range query covering the batch (block index nested loops).  Compared
to FM-CIJ it saves the construction and the re-reading of ``R'_Q``; like
FM-CIJ it is blocking until ``R'_P`` exists.

The probe loop lives in :func:`probe_q_leaves` so the engine's sharded
executor can split the leaf sequence across workers once ``R'_P`` exists;
:func:`pm_cij` is the classic serial entry point, now a thin wrapper over
:class:`repro.engine.JoinEngine`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.geometry.rect import Rect
from repro.index.entries import Node
from repro.index.rtree import RTree
from repro.join.result import CIJResult, JoinStats
from repro.storage.counters import IOCounters
from repro.voronoi.batch import compute_cells_for_leaf
from repro.voronoi.single import CellComputationStats


def probe_q_leaves(
    voronoi_p: RTree,
    tree_q: RTree,
    leaves: Iterable[Node],
    domain: Rect,
    stats: JoinStats,
    cell_stats: CellComputationStats,
    start_counters: IOCounters,
    compute: str = "scalar",
) -> List[Tuple[int, int]]:
    """Run the PM-CIJ probe pipeline over a sequence of ``R_Q`` leaves.

    For each leaf the Voronoi cells of its points are computed in batch and
    ``R'_P`` is probed with one range query enclosing the whole batch, as
    prescribed by Algorithm 4.  The output depends only on the leaves and
    the materialised diagram, so shard outputs concatenated in leaf order
    reproduce the serial pair list exactly.  ``compute`` selects the scalar
    (oracle) or vectorised-kernel inner loops; pairs, stats and counters
    are byte-identical either way.
    """
    disk = tree_q.disk
    pairs: List[Tuple[int, int]] = []
    for leaf in leaves:
        cells_q = compute_cells_for_leaf(
            tree_q, leaf.entries, domain, stats=cell_stats, compute=compute
        )
        stats.cells_computed_q += len(cells_q)
        # One range query whose region encloses all Voronoi cells of the
        # batch, as prescribed by Algorithm 4.
        batch_region = Rect.union_all(cell.mbr() for cell in cells_q.values())
        tree_p_candidates = voronoi_p.range_search(batch_region)
        if compute == "kernel":
            _probe_pairs_kernel(cells_q, tree_p_candidates, pairs)
        else:
            for cell_q in cells_q.values():
                cell_q_mbr = cell_q.mbr()
                for entry_p in tree_p_candidates:
                    if not entry_p.mbr.intersects(cell_q_mbr):
                        continue
                    if entry_p.payload.intersects(cell_q):
                        pairs.append((entry_p.oid, cell_q.oid))
        accesses = disk.counters.diff(start_counters).page_accesses
        stats.record_progress(accesses, len(pairs))
    return pairs


def _probe_pairs_kernel(cells_q, tree_p_candidates, pairs) -> None:
    """Kernel twin of the probe pair loop.

    One vectorised MBR mask per target cell replaces the per-candidate
    ``Rect.intersects`` calls; the exact SAT predicate stays scalar and
    runs only for the flagged candidates, in candidate order, so pair
    emission matches the scalar loop exactly.  (Keeping the SAT scalar is
    deliberate: the candidate polygons are ~6-vertex rings, where NumPy's
    per-call dispatch costs more than the tight Python predicate.)
    """
    if not tree_p_candidates:
        return
    from repro.geometry import kernels as gk

    np = gk.np
    c_xmin = np.array([e.mbr.xmin for e in tree_p_candidates])
    c_ymin = np.array([e.mbr.ymin for e in tree_p_candidates])
    c_xmax = np.array([e.mbr.xmax for e in tree_p_candidates])
    c_ymax = np.array([e.mbr.ymax for e in tree_p_candidates])
    for cell_q in cells_q.values():
        q_mbr = cell_q.mbr()
        overlap = gk.rects_intersect_mask(
            c_xmin, c_ymin, c_xmax, c_ymax,
            q_mbr.xmin, q_mbr.ymin, q_mbr.xmax, q_mbr.ymax,
        )
        for i in np.flatnonzero(overlap):
            entry_p = tree_p_candidates[i]
            if entry_p.payload.intersects(cell_q):
                pairs.append((entry_p.oid, cell_q.oid))


def pm_cij(
    tree_p: RTree,
    tree_q: RTree,
    domain: Optional[Rect] = None,
) -> CIJResult:
    """Run PM-CIJ and return the result pairs with a full cost breakdown."""
    from repro.engine import default_engine  # local import breaks the cycle

    return default_engine().run("pm", tree_p, tree_q, domain=domain)
