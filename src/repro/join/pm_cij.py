"""PM-CIJ: the partial-materialisation CIJ algorithm (Algorithm 4).

Only the Voronoi diagram of ``P`` is materialised into a bulk-loaded R-tree
``R'_P``.  The algorithm then traverses ``R_Q`` leaf by leaf, computes the
Voronoi cells of each leaf's points in batch, and probes ``R'_P`` with a
single range query covering the batch (block index nested loops).  Compared
to FM-CIJ it saves the construction and the re-reading of ``R'_Q``; like
FM-CIJ it is blocking until ``R'_P`` exists.

The probe loop lives in :func:`probe_q_leaves` so the engine's sharded
executor can split the leaf sequence across workers once ``R'_P`` exists;
:func:`pm_cij` is the classic serial entry point, now a thin wrapper over
:class:`repro.engine.JoinEngine`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.geometry.rect import Rect
from repro.index.entries import Node
from repro.index.rtree import RTree
from repro.join.result import CIJResult, JoinStats
from repro.storage.counters import IOCounters
from repro.voronoi.batch import compute_cells_for_leaf
from repro.voronoi.single import CellComputationStats


def probe_q_leaves(
    voronoi_p: RTree,
    tree_q: RTree,
    leaves: Iterable[Node],
    domain: Rect,
    stats: JoinStats,
    cell_stats: CellComputationStats,
    start_counters: IOCounters,
) -> List[Tuple[int, int]]:
    """Run the PM-CIJ probe pipeline over a sequence of ``R_Q`` leaves.

    For each leaf the Voronoi cells of its points are computed in batch and
    ``R'_P`` is probed with one range query enclosing the whole batch, as
    prescribed by Algorithm 4.  The output depends only on the leaves and
    the materialised diagram, so shard outputs concatenated in leaf order
    reproduce the serial pair list exactly.
    """
    disk = tree_q.disk
    pairs: List[Tuple[int, int]] = []
    for leaf in leaves:
        cells_q = compute_cells_for_leaf(tree_q, leaf.entries, domain, stats=cell_stats)
        stats.cells_computed_q += len(cells_q)
        # One range query whose region encloses all Voronoi cells of the
        # batch, as prescribed by Algorithm 4.
        batch_region = Rect.union_all(cell.mbr() for cell in cells_q.values())
        tree_p_candidates = voronoi_p.range_search(batch_region)
        for cell_q in cells_q.values():
            cell_q_mbr = cell_q.mbr()
            for entry_p in tree_p_candidates:
                if not entry_p.mbr.intersects(cell_q_mbr):
                    continue
                if entry_p.payload.intersects(cell_q):
                    pairs.append((entry_p.oid, cell_q.oid))
        accesses = disk.counters.diff(start_counters).page_accesses
        stats.record_progress(accesses, len(pairs))
    return pairs


def pm_cij(
    tree_p: RTree,
    tree_q: RTree,
    domain: Optional[Rect] = None,
) -> CIJResult:
    """Run PM-CIJ and return the result pairs with a full cost breakdown."""
    from repro.engine import default_engine  # local import breaks the cycle

    return default_engine().run("pm", tree_p, tree_q, domain=domain)
