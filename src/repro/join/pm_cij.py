"""PM-CIJ: the partial-materialisation CIJ algorithm (Algorithm 4).

Only the Voronoi diagram of ``P`` is materialised into a bulk-loaded R-tree
``R'_P``.  The algorithm then traverses ``R_Q`` leaf by leaf, computes the
Voronoi cells of each leaf's points in batch, and probes ``R'_P`` with a
single range query covering the batch (block index nested loops).  Compared
to FM-CIJ it saves the construction and the re-reading of ``R'_Q``; like
FM-CIJ it is blocking until ``R'_P`` exists.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.geometry.rect import Rect
from repro.index.rtree import RTree
from repro.join.materialize import materialize_voronoi_rtree
from repro.join.result import CIJResult, JoinStats
from repro.voronoi.batch import compute_cells_for_leaf
from repro.voronoi.single import CellComputationStats


def pm_cij(
    tree_p: RTree,
    tree_q: RTree,
    domain: Optional[Rect] = None,
) -> CIJResult:
    """Run PM-CIJ and return the result pairs with a full cost breakdown."""
    if tree_p.disk is not tree_q.disk:
        raise ValueError("both input trees must share one DiskManager")
    disk = tree_p.disk
    if domain is None:
        domain = tree_p.domain().union(tree_q.domain())
    stats = JoinStats(algorithm="PM-CIJ")
    cell_stats = CellComputationStats()

    # --- materialisation phase: build R'_P only -------------------------
    start_counters = disk.counters.snapshot()
    start_time = time.perf_counter()
    voronoi_p, count_p = materialize_voronoi_rtree(
        tree_p, domain, tag=f"{tree_p.tag}_vor", stats=cell_stats
    )
    stats.cells_computed_p = count_p
    stats.mat_cpu_seconds = time.perf_counter() - start_time
    after_mat = disk.counters.snapshot()
    stats.mat_page_accesses = after_mat.diff(start_counters).page_accesses
    stats.record_progress(stats.mat_page_accesses, 0)

    # --- join phase: probe R'_P with batches of Q cells -----------------
    join_start = time.perf_counter()
    pairs = []
    for leaf in tree_q.iter_leaf_nodes(order="hilbert"):
        cells_q = compute_cells_for_leaf(tree_q, leaf.entries, domain, stats=cell_stats)
        stats.cells_computed_q += len(cells_q)
        # One range query whose region encloses all Voronoi cells of the
        # batch, as prescribed by Algorithm 4.
        batch_region = Rect.union_all(cell.mbr() for cell in cells_q.values())
        tree_p_candidates = voronoi_p.range_search(batch_region)
        for cell_q in cells_q.values():
            cell_q_mbr = cell_q.mbr()
            for entry_p in tree_p_candidates:
                if not entry_p.mbr.intersects(cell_q_mbr):
                    continue
                if entry_p.payload.intersects(cell_q):
                    pairs.append((entry_p.oid, cell_q.oid))
        accesses = disk.counters.diff(start_counters).page_accesses
        stats.record_progress(accesses, len(pairs))
    stats.join_cpu_seconds = time.perf_counter() - join_start
    stats.join_page_accesses = (
        disk.counters.diff(start_counters).page_accesses - stats.mat_page_accesses
    )
    stats.record_progress(stats.total_page_accesses, len(pairs))
    return CIJResult(pairs=pairs, stats=stats)
