"""k-closest-pairs join between two point R-trees.

The second classical pointset join the paper contrasts CIJ with: the result
is the ``k`` pairs with the smallest distance.  The implementation combines
best-first search over pairs of tree entries (priority = ``mindist`` between
the two MBRs) with the synchronous traversal, as sketched in Section II-A.
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Tuple

from repro.geometry.point import dist
from repro.index.rtree import RTree

_PAIR_POINTS = 0
_PAIR_NODES = 1


def k_closest_pairs(tree_p: RTree, tree_q: RTree, k: int) -> List[Tuple[float, int, int]]:
    """The ``k`` closest pairs as ``(distance, p_oid, q_oid)`` tuples.

    Results are returned in ascending distance order.  Fewer than ``k``
    tuples are returned when the Cartesian product is smaller than ``k``.
    """
    if k <= 0 or tree_p.is_empty() or tree_q.is_empty():
        return []
    counter = itertools.count()
    heap: List[tuple] = []
    heapq.heappush(
        heap, (0.0, next(counter), _PAIR_NODES, tree_p.root_page, tree_q.root_page)
    )
    results: List[Tuple[float, int, int]] = []
    while heap and len(results) < k:
        key, _, kind, item_p, item_q = heapq.heappop(heap)
        if kind == _PAIR_POINTS:
            results.append((key, item_p.oid, item_q.oid))
            continue
        node_p = tree_p.read_node(item_p)
        node_q = tree_q.read_node(item_q)
        if node_p.is_leaf and node_q.is_leaf:
            for entry_p in node_p.entries:
                for entry_q in node_q.entries:
                    d = dist(entry_p.payload, entry_q.payload)
                    heapq.heappush(
                        heap, (d, next(counter), _PAIR_POINTS, entry_p, entry_q)
                    )
        elif node_p.is_leaf:
            for entry_q in node_q.entries:
                d = node_p.mbr().mindist_rect(entry_q.mbr)
                heapq.heappush(
                    heap, (d, next(counter), _PAIR_NODES, item_p, entry_q.child_page)
                )
        elif node_q.is_leaf:
            for entry_p in node_p.entries:
                d = entry_p.mbr.mindist_rect(node_q.mbr())
                heapq.heappush(
                    heap, (d, next(counter), _PAIR_NODES, entry_p.child_page, item_q)
                )
        else:
            for entry_p in node_p.entries:
                for entry_q in node_q.entries:
                    d = entry_p.mbr.mindist_rect(entry_q.mbr)
                    heapq.heappush(
                        heap,
                        (d, next(counter), _PAIR_NODES, entry_p.child_page, entry_q.child_page),
                    )
    return results
