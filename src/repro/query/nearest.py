"""Best-first nearest-neighbour search over R-trees.

The incremental algorithm of Hjaltason & Samet keeps a min-heap of tree
entries keyed by ``mindist`` to the query point and deheaps them in
ascending order; points therefore come out in exact distance order.  The
same visit order is reused by BF-VOR (Algorithm 1) to "discover early points
near p_i that refine V_c(p_i)".
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterator, List, Optional, Tuple

from repro.geometry.point import Point
from repro.index.entries import LeafEntry
from repro.index.rtree import RTree


def incremental_nearest(tree: RTree, query: Point) -> Iterator[Tuple[float, LeafEntry]]:
    """Yield ``(distance, leaf_entry)`` in ascending distance from ``query``.

    The generator reads tree nodes lazily, so consuming only the first few
    results costs only the node accesses needed for them.
    """
    if tree.is_empty():
        return
    counter = itertools.count()
    heap: List[Tuple[float, int, int, object]] = []
    root = tree.read_node(tree.root_page)
    _push_node_entries(heap, counter, root, query)
    while heap:
        dist, _, kind, item = heapq.heappop(heap)
        if kind == _KIND_POINT:
            yield dist, item
        else:
            node = tree.read_node(item)
            _push_node_entries(heap, counter, node, query)


def nearest_neighbor(tree: RTree, query: Point) -> Optional[Tuple[float, LeafEntry]]:
    """The single nearest entry to ``query``, or ``None`` for an empty tree."""
    for result in incremental_nearest(tree, query):
        return result
    return None


def k_nearest_neighbors(tree: RTree, query: Point, k: int) -> List[Tuple[float, LeafEntry]]:
    """The ``k`` nearest entries to ``query`` in ascending distance order."""
    if k <= 0:
        return []
    results: List[Tuple[float, LeafEntry]] = []
    for result in incremental_nearest(tree, query):
        results.append(result)
        if len(results) == k:
            break
    return results


def quadrant_nearest_neighbors(
    tree: RTree, query: Point, exclude_oid: Optional[int] = None
) -> List[Optional[LeafEntry]]:
    """Nearest neighbour of ``query`` in each of the four axis quadrants.

    This implements the constrained NN queries used by the approximate
    Voronoi-cell construction of Stanoi et al. [7]: the four quadrants are
    defined by the rectilinear lines through the query point, and the
    bisectors with the four quadrant NNs form a superset of the true cell.
    Entries whose ``oid`` equals ``exclude_oid`` (the query point itself,
    when it belongs to the indexed set) are skipped.

    Returns a list of four entries (or ``None`` where a quadrant is empty)
    ordered ``[NE, NW, SW, SE]``.
    """
    found: List[Optional[LeafEntry]] = [None, None, None, None]
    remaining = 4
    for _, entry in incremental_nearest(tree, query):
        if exclude_oid is not None and entry.oid == exclude_oid:
            continue
        p = entry.payload
        if not isinstance(p, Point):
            p = entry.mbr.center()
        if p.x >= query.x and p.y >= query.y:
            quadrant = 0
        elif p.x < query.x and p.y >= query.y:
            quadrant = 1
        elif p.x < query.x and p.y < query.y:
            quadrant = 2
        else:
            quadrant = 3
        if found[quadrant] is None:
            found[quadrant] = entry
            remaining -= 1
            if remaining == 0:
                break
    return found


_KIND_POINT = 0
_KIND_NODE = 1


def _push_node_entries(heap, counter, node, query: Point) -> None:
    if node.is_leaf:
        for entry in node.entries:
            dist = entry.mbr.mindist_point(query)
            heapq.heappush(heap, (dist, next(counter), _KIND_POINT, entry))
    else:
        for entry in node.entries:
            dist = entry.mbr.mindist_point(query)
            heapq.heappush(heap, (dist, next(counter), _KIND_NODE, entry.child_page))
