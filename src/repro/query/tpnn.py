"""Time-parameterised nearest-neighbour (TPNN) queries.

The TP-VOR baseline [Zhang et al., SIGMOD 2003] refines a Voronoi-cell
approximation by issuing a TPNN query from the site towards each vertex of
the current cell: as a virtual query location moves from the site ``p_i``
towards a vertex ``γ``, the TPNN query reports the first dataset point whose
perpendicular bisector with ``p_i`` is crossed, i.e. the first point that
takes over as nearest neighbour of the moving location.

Each TPNN query is answered by its own best-first traversal of the R-tree —
which is precisely why TP-VOR needs multiple traversals per cell while
BF-VOR needs one (the comparison of Figure 5).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Optional, Tuple

from repro.geometry.point import Point
from repro.index.entries import LeafEntry
from repro.index.rtree import RTree


def crossing_parameter(site: Point, target: Point, other: Point) -> float:
    """Parameter ``t`` at which ``site + t*(target - site)`` becomes
    equidistant from ``site`` and ``other``.

    Returns ``inf`` when the moving location never reaches the bisector for
    ``t >= 0`` (the other point lies "behind" the direction of motion).
    """
    dx = target.x - site.x
    dy = target.y - site.y
    ox = other.x - site.x
    oy = other.y - site.y
    denom = 2.0 * (dx * ox + dy * oy)
    if denom <= 0.0:
        return float("inf")
    return (ox * ox + oy * oy) / denom


def tp_nearest_neighbor(
    tree: RTree,
    site: Point,
    target: Point,
    exclude_oid: Optional[int] = None,
    t_max: float = 1.0,
) -> Optional[Tuple[float, LeafEntry]]:
    """Answer one TPNN query with a dedicated best-first R-tree traversal.

    Parameters
    ----------
    tree:
        R-tree over the pointset ``P``.
    site:
        The point ``p_i`` whose cell is being refined.
    target:
        The vertex ``γ`` towards which the virtual location moves.
    exclude_oid:
        Identifier of ``p_i`` itself inside the tree, skipped during search.
    t_max:
        The largest useful crossing parameter; 1.0 corresponds to the vertex
        itself.  Crossings beyond ``t_max`` are ignored, meaning the current
        cell boundary towards ``γ`` is already exact.

    Returns
    -------
    ``(t, entry)`` for the earliest-crossing point, or ``None`` when no point
    crosses within ``t_max``.
    """
    if tree.is_empty():
        return None
    direction_length = site.distance_to(target)
    if direction_length == 0.0:
        return None

    best_t = t_max
    best_entry: Optional[LeafEntry] = None
    counter = itertools.count()
    heap = []
    root = tree.read_node(tree.root_page)
    _push(heap, counter, root, site)
    while heap:
        mindist, _, kind, item = heapq.heappop(heap)
        # A point crossing the bisector at parameter t lies within
        # 2*t*|target-site| of the site, so anything farther cannot improve.
        if mindist > 2.0 * best_t * direction_length:
            break
        if kind == 0:
            entry: LeafEntry = item
            if exclude_oid is not None and entry.oid == exclude_oid:
                continue
            other = entry.payload if isinstance(entry.payload, Point) else entry.mbr.center()
            t = crossing_parameter(site, target, other)
            if t < best_t:
                best_t = t
                best_entry = entry
        else:
            node = tree.read_node(item)
            _push(heap, counter, node, site)
    if best_entry is None:
        return None
    return best_t, best_entry


def _push(heap, counter, node, site: Point) -> None:
    if node.is_leaf:
        for entry in node.entries:
            heapq.heappush(
                heap, (entry.mbr.mindist_point(site), next(counter), 0, entry)
            )
    else:
        for entry in node.entries:
            heapq.heappush(
                heap, (entry.mbr.mindist_point(site), next(counter), 1, entry.child_page)
            )
