"""Point-query operators over R-trees.

These are the building blocks the CIJ algorithms borrow from earlier work:

* best-first (incremental) nearest-neighbour search [Hjaltason & Samet 1999],
  whose priority-queue discipline also drives BF-VOR and ConditionalFilter,
* k-NN and constrained (quadrant) NN variants used by the approximate
  Voronoi-cell baseline of Stanoi et al.,
* the time-parameterised NN query [Tao & Papadias 2002] needed by the
  TP-VOR baseline of Zhang et al.
"""

from repro.query.nearest import (
    incremental_nearest,
    k_nearest_neighbors,
    nearest_neighbor,
    quadrant_nearest_neighbors,
)
from repro.query.tpnn import tp_nearest_neighbor

__all__ = [
    "incremental_nearest",
    "nearest_neighbor",
    "k_nearest_neighbors",
    "quadrant_nearest_neighbors",
    "tp_nearest_neighbor",
]
