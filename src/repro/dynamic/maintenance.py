"""Incremental CIJ maintenance under point insertions and deletions.

The paper's algorithms assume static pointsets; a production system serving
live traffic sees a stream of updates.  Rebuilding both Voronoi diagrams
and re-running the join for every batch costs ``Θ(|P| + |Q|)`` exact cell
computations; the :class:`DynamicJoinSession` keeps the join answer current
at a cost proportional to the *influence* of the batch instead:

1. **Invalidation** — a maintained cell ``V(t)`` can change only when a
   changed site ``s`` of the same side interacts with it.  For an insert,
   Lemma 1 gives the exact test: ``s`` clips ``V(t)`` iff ``s`` beats some
   vertex ``γ`` of the current cell (``dist(s, γ) < dist(γ, t)``).  For a
   delete, ``V(t)`` can only grow, and only if the bisector with ``s``
   contributed an edge — whose endpoints are equidistant, so the same
   vertex test with a tie tolerance is conservative-complete.  Both tests
   are guarded by the Lemma-1 influence radius (twice the largest
   vertex-to-site distance): any ``s`` farther than that from ``t`` cannot
   beat a vertex, by the triangle inequality.
2. **Recomputation** — the invalidated cells (plus the cells of inserted
   points) are recomputed exactly, in one BatchVoronoi pass against the
   already-updated source tree.
3. **Delta join** — only pairs incident to a dirty cell are re-evaluated.
   Deleted sites retract their recorded pairs outright.  For each dirty
   site the candidate partners are found either with the paper's
   ConditionalFilter against the opposite source tree (complete: every
   point whose exact cell intersects the target polygon is admitted) or by
   an MBR scan of the maintained opposite cells
   (:attr:`EngineConfig.delta_candidates`), and the recorded partner set is
   diffed against the fresh one.

A pair's membership depends only on its two cells, and every cell that can
change is invalidated, so the maintained pair set after ``apply_updates``
equals a from-scratch join over the updated pointsets — the differential
harness in ``tests/dynamic/`` replays exactly that equivalence, and the
update-phase work is accounted in :class:`~repro.dynamic.updates.UpdateStats`
(``cells_invalidated`` vs the ``|P| + |Q|`` a rebuild would pay).

Tree maintenance and cell recomputation run with the disk's I/O accounting
suspended: the paper's counters measure join executions, and keeping them
untouched lets a session interleave with measured `engine.run` rebuilds
(which is what the differential tests do).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.dynamic.updates import PairDelta, Update, UpdateBatch, UpdateStats
from repro.engine.config import EngineConfig
from repro.geometry.point import Point, dist
from repro.geometry.polygon import ConvexPolygon
from repro.geometry.rect import Rect
from repro.geometry.tolerance import TIE_SLACK
from repro.index.rtree import RTree
from repro.join.conditional_filter import FilterStats, batch_conditional_filter
from repro.voronoi.batch import compute_cells_for_leaf, compute_voronoi_cells
from repro.voronoi.cell import VoronoiCell
from repro.voronoi.single import CellComputationStats

#: Tie tolerance of the delete-side invalidation test.  A bisector that
#: contributes an edge makes the edge's endpoints exactly equidistant from
#: the two sites; the slack only ever *adds* cells to the dirty set, which
#: recomputation then proves unchanged, so correctness never depends on it.
_TIE_TOLERANCE = TIE_SLACK


class DynamicJoinSession:
    """A maintained CIJ answer that absorbs insert/delete batches.

    Build one through :meth:`repro.engine.JoinEngine.open_dynamic` (or
    directly); the session materialises both Voronoi diagrams once, derives
    the initial pair set from them, and then keeps both current under
    :meth:`apply_updates` without full recomputation.

    Attributes
    ----------
    pairs:
        The maintained join answer (a set of ``(p_oid, q_oid)`` tuples).
    stats:
        Accumulated :class:`UpdateStats` over every applied batch.
    cell_stats, filter_stats:
        Voronoi/filter work counters of the maintenance work, kept separate
        from any measured engine run.
    """

    def __init__(
        self,
        tree_p: RTree,
        tree_q: RTree,
        domain: Optional[Rect] = None,
        config: Optional[EngineConfig] = None,
        owns_disk: bool = False,
    ):
        if tree_p.disk is not tree_q.disk:
            raise ValueError("both input trees must share one DiskManager")
        self.tree_p = tree_p
        self.tree_q = tree_q
        #: When True, :meth:`close` also closes the shared DiskManager
        #: (and with it the file/sqlite page-store handles).  False by
        #: default: sessions opened over a caller-built workload must not
        #: pull the disk out from under it.
        self.owns_disk = owns_disk
        self._closed = False
        self.config = config if config is not None else EngineConfig()
        if self.config.executor != "serial":
            raise ValueError(
                "dynamic maintenance requires the serial executor; shard "
                "workers cannot mutate the shared source trees"
            )
        if domain is None:
            domain = tree_p.domain().union(tree_q.domain())
        self.domain = domain
        self.stats = UpdateStats()
        self.cell_stats = CellComputationStats()
        self.filter_stats = FilterStats()
        self.cells_p: Dict[int, VoronoiCell] = {}
        self.cells_q: Dict[int, VoronoiCell] = {}
        #: Cached Lemma-1 influence radius per maintained cell, so the
        #: invalidation scan costs one distance test per (cell, changed
        #: site) instead of rebuilding every cell's vertex distances.
        self._reaches: Dict[str, Dict[int, float]] = {"P": {}, "Q": {}}
        self._partners_p: Dict[int, Set[int]] = {}
        self._partners_q: Dict[int, Set[int]] = {}
        self.pairs: Set[Tuple[int, int]] = set()
        self._bootstrap()

    # ------------------------------------------------------------------
    # bootstrap
    # ------------------------------------------------------------------
    def _bootstrap(self) -> None:
        """Materialise both diagrams and derive the initial pair set.

        Partner discovery goes through :meth:`_partners_for_group`, one
        group per ``R_P`` leaf — NM-CIJ's amortisation: with the default
        tree filter each leaf batch costs a single pruned ``R_Q`` descent
        instead of one per cell (or the quadratic all-pairs MBR scan).
        """
        with self.tree_p.disk.suspend_io_accounting():
            leaf_groups: List[List[VoronoiCell]] = []
            if not self.tree_p.is_empty():
                for leaf in self.tree_p.iter_leaf_nodes(order="hilbert"):
                    computed = compute_cells_for_leaf(
                        self.tree_p, leaf.entries, self.domain, stats=self.cell_stats
                    )
                    self.cells_p.update(computed)
                    leaf_groups.append(list(computed.values()))
            self.cells_q = self._compute_all_cells(self.tree_q)
            for group in leaf_groups:
                for p_oid, partners in self._partners_for_group(group, "P").items():
                    self._partners_p[p_oid] = partners
                    for q_oid in partners:
                        self._partners_q.setdefault(q_oid, set()).add(p_oid)
                        self.pairs.add((p_oid, q_oid))
            for q_oid in self.cells_q:
                self._partners_q.setdefault(q_oid, set())
            for side, cells in (("P", self.cells_p), ("Q", self.cells_q)):
                self._reaches[side] = {
                    oid: self._cell_reach(cell) for oid, cell in cells.items()
                }

    def _compute_all_cells(self, tree: RTree) -> Dict[int, VoronoiCell]:
        """Exact cells of every stored point, one BatchVoronoi pass per leaf."""
        cells: Dict[int, VoronoiCell] = {}
        if tree.is_empty():
            return cells
        for leaf in tree.iter_leaf_nodes(order="hilbert"):
            cells.update(
                compute_cells_for_leaf(
                    tree, leaf.entries, self.domain, stats=self.cell_stats
                )
            )
        return cells

    @staticmethod
    def _cell_reach(cell: VoronoiCell) -> float:
        """Twice the largest vertex-to-site distance (the Lemma-1 radius)."""
        vertices = cell.polygon.vertices
        if not vertices:
            return 0.0
        return 2.0 * max(cell.site.distance_to(v) for v in vertices)

    # ------------------------------------------------------------------
    # update application
    # ------------------------------------------------------------------
    def apply_updates(self, batch: UpdateBatch) -> PairDelta:
        """Apply one batch and return the exact change to the join answer."""
        if self._closed:
            raise ValueError("the dynamic session is closed")
        if isinstance(batch, Update):
            batch = UpdateBatch([batch])
        batch_stats = UpdateStats(batches_applied=1, updates_applied=len(batch))
        self._validate(batch)
        with self.tree_p.disk.suspend_io_accounting():
            dirty_p = self._apply_side(batch.by_side("P"), "P", batch_stats)
            dirty_q = self._apply_side(batch.by_side("Q"), "Q", batch_stats)
            added, removed = self._delta_join(batch, dirty_p, dirty_q, batch_stats)
        self.stats.accumulate(batch_stats)
        return PairDelta(
            added=tuple(sorted(added)),
            removed=tuple(sorted(removed)),
            stats=batch_stats,
        )

    def _validate(self, batch: UpdateBatch) -> None:
        """Reject a batch that cannot apply cleanly, before touching state.

        Deletes are validated (and their coordinates released) first,
        mirroring the application order of :meth:`_apply_side`, so a batch
        may legally re-insert a new point at a location it deletes.  Insert
        locations are then checked against the remaining sites *and* the
        batch's own earlier inserts: coincident sites have no well-defined
        Voronoi cells, whether the twin is stored or pending.
        """
        coords = {
            side: {(c.site.x, c.site.y) for c in self._side(side)[0].values()}
            for side in ("P", "Q")
        }
        for update in batch:
            if update.op != "delete":
                continue
            cells, _ = self._side(update.side)
            stored = cells.get(update.oid)
            if stored is None:
                raise ValueError(
                    f"cannot delete {update.side} oid {update.oid}: "
                    "no such point is stored"
                )
            if update.point is not None and update.point != stored.site:
                raise ValueError(
                    f"cannot delete {update.side} oid {update.oid}: the given "
                    f"point {update.point.as_tuple()} does not match the "
                    f"stored {stored.site.as_tuple()}"
                )
            coords[update.side].discard((stored.site.x, stored.site.y))
        for update in batch:
            if update.op != "insert":
                continue
            cells, _ = self._side(update.side)
            if update.oid in cells:
                raise ValueError(
                    f"cannot insert {update.side} oid {update.oid}: "
                    "the id is already stored"
                )
            location = (update.point.x, update.point.y)
            if location in coords[update.side]:
                raise ValueError(
                    f"cannot insert {update.side} oid {update.oid}: a point "
                    f"already exists at {update.point.as_tuple()}"
                )
            coords[update.side].add(location)

    def _side(self, side: str) -> Tuple[Dict[int, VoronoiCell], RTree]:
        return (self.cells_p, self.tree_p) if side == "P" else (self.cells_q, self.tree_q)

    def _apply_side(
        self, updates: List[Update], side: str, batch_stats: UpdateStats
    ) -> Set[int]:
        """Apply one side's updates to its tree and diagram.

        Returns the oids whose cells were recomputed (inserted points
        included); deleted oids are dropped from the maintained diagram.
        """
        if not updates:
            return set()
        cells, tree = self._side(side)
        reaches = self._reaches[side]
        inserted = [u for u in updates if u.op == "insert"]
        deleted = [u for u in updates if u.op == "delete"]
        deleted_sites = [cells[u.oid].site for u in deleted]
        deleted_oids = {u.oid for u in deleted}

        # (1) Influence-bounded invalidation against the *current* diagram.
        dirty = self._invalidate(
            side, [u.point for u in inserted], deleted_sites, deleted_oids
        )

        # (2) Structural maintenance of the source tree.
        for update in deleted:
            tree.delete_point(update.oid, cells.pop(update.oid).site)
            reaches.pop(update.oid, None)
        for update in inserted:
            tree.insert_point(update.oid, update.point)

        # (3) Exact recomputation of every dirty + inserted cell.
        to_compute: List[Tuple[int, Point]] = [
            (oid, cells[oid].site) for oid in sorted(dirty)
        ]
        to_compute.extend((u.oid, u.point) for u in inserted)
        if to_compute:
            computed = compute_voronoi_cells(
                tree, to_compute, self.domain, stats=self.cell_stats
            )
            cells.update(computed)
            for oid, cell in computed.items():
                reaches[oid] = self._cell_reach(cell)
        batch_stats.cells_invalidated += len(to_compute)
        return dirty | {u.oid for u in inserted}

    def _invalidate(
        self,
        side: str,
        inserted_points: Sequence[Point],
        deleted_sites: Sequence[Point],
        deleted_oids: Set[int],
    ) -> Set[int]:
        """Maintained cells whose region can change under the batch.

        The cached influence radius rejects most (cell, changed site)
        combinations with a single distance test; the exact vertex tests
        run only for cells with some changed site inside their radius.
        """
        cells, _ = self._side(side)
        reaches = self._reaches[side]
        changed_sites = list(inserted_points) + list(deleted_sites)
        dirty: Set[int] = set()
        for oid, cell in cells.items():
            if oid in deleted_oids:
                continue
            site = cell.site
            reach = reaches[oid]
            if reach <= 0.0:
                dirty.add(oid)  # a degenerate cell is always recomputed
                continue
            if all(
                site.distance_to(s) > reach + _TIE_TOLERANCE for s in changed_sites
            ):
                continue
            vertex_dists = [(v, dist(v, site)) for v in cell.polygon.vertices]
            affected = any(
                site.distance_to(s) <= reach
                and any(dist(s, v) < d for v, d in vertex_dists)
                for s in inserted_points
            ) or any(
                site.distance_to(s) <= reach + _TIE_TOLERANCE
                and any(dist(s, v) <= d + _TIE_TOLERANCE for v, d in vertex_dists)
                for s in deleted_sites
            )
            if affected:
                dirty.add(oid)
        return dirty

    # ------------------------------------------------------------------
    # delta join
    # ------------------------------------------------------------------
    def _delta_join(
        self,
        batch: UpdateBatch,
        dirty_p: Set[int],
        dirty_q: Set[int],
        batch_stats: UpdateStats,
    ) -> Tuple[Set[Tuple[int, int]], Set[Tuple[int, int]]]:
        """Re-evaluate only pairs incident to dirty cells."""
        added: Set[Tuple[int, int]] = set()
        removed: Set[Tuple[int, int]] = set()

        # Deleted sites retract every recorded pair outright.
        for update in batch:
            if update.op != "delete":
                continue
            if update.side == "P":
                for q_oid in self._partners_p.pop(update.oid, set()):
                    self._partners_q[q_oid].discard(update.oid)
                    self._drop_pair((update.oid, q_oid), added, removed)
            else:
                for p_oid in self._partners_q.pop(update.oid, set()):
                    self._partners_p[p_oid].discard(update.oid)
                    self._drop_pair((p_oid, update.oid), added, removed)

        # Dirty cells re-derive their partner sets against the (now fully
        # current) opposite diagram — one grouped filter descent per side —
        # and both orientations agree on shared pairs because they test the
        # same two cells.
        fresh_p = self._partners_for_group(
            [self.cells_p[oid] for oid in sorted(dirty_p)], "P"
        )
        for p_oid in sorted(dirty_p):
            fresh = fresh_p[p_oid]
            stale = self._partners_p.get(p_oid, set())
            for q_oid in fresh - stale:
                self._partners_q.setdefault(q_oid, set()).add(p_oid)
                self._add_pair((p_oid, q_oid), added, removed)
            for q_oid in stale - fresh:
                self._partners_q[q_oid].discard(p_oid)
                self._drop_pair((p_oid, q_oid), added, removed)
            self._partners_p[p_oid] = fresh
        fresh_q = self._partners_for_group(
            [self.cells_q[oid] for oid in sorted(dirty_q)], "Q"
        )
        for q_oid in sorted(dirty_q):
            fresh = fresh_q[q_oid]
            stale = self._partners_q.get(q_oid, set())
            for p_oid in fresh - stale:
                self._partners_p.setdefault(p_oid, set()).add(q_oid)
                self._add_pair((p_oid, q_oid), added, removed)
            for p_oid in stale - fresh:
                self._partners_p[p_oid].discard(q_oid)
                self._drop_pair((p_oid, q_oid), added, removed)
            self._partners_q[q_oid] = fresh

        batch_stats.pairs_emitted += len(added)
        batch_stats.pairs_retracted += len(removed)
        return added, removed

    def _partners_for_group(
        self, group: Sequence[VoronoiCell], side: str
    ) -> Dict[int, Set[int]]:
        """Opposite-side partners of each cell in ``group``, per oid.

        With the default ``"filter"`` strategy the whole group shares one
        ConditionalFilter descent of the opposite tree (the filter is
        complete per target: every opposite point whose exact cell
        intersects some group polygon is admitted), and each cell then
        tests only the admitted candidates; ``"scan"`` checks each cell
        against the full maintained opposite diagram instead.
        """
        result: Dict[int, Set[int]] = {cell.oid: set() for cell in group}
        opposite_cells, opposite_tree = self._side("Q" if side == "P" else "P")
        if not group or not opposite_cells:
            return result
        if self.config.delta_candidates == "scan":
            for cell in group:
                result[cell.oid] = self._partners_by_scan(cell, opposite_cells)
            return result
        candidates = batch_conditional_filter(
            [cell.polygon for cell in group],
            opposite_tree,
            self.domain,
            use_phi_pruning=self.config.use_phi_pruning,
            stats=self.filter_stats,
        )
        candidate_cells = [
            (oid, opposite_cells[oid], opposite_cells[oid].mbr())
            for oid, _ in candidates
        ]
        for cell in group:
            mbr = cell.mbr()
            result[cell.oid] = {
                oid
                for oid, other, other_mbr in candidate_cells
                if mbr.intersects(other_mbr) and cell.intersects(other)
            }
        return result

    @staticmethod
    def _partners_by_scan(
        cell: VoronoiCell, opposite_cells: Dict[int, VoronoiCell]
    ) -> Set[int]:
        """MBR-prefiltered scan of the maintained opposite diagram."""
        mbr = cell.mbr()
        return {
            oid
            for oid, other in opposite_cells.items()
            if mbr.intersects(other.mbr()) and cell.intersects(other)
        }

    def _add_pair(self, pair, added, removed) -> None:
        if pair not in self.pairs:
            self.pairs.add(pair)
            removed.discard(pair)
            added.add(pair)

    def _drop_pair(self, pair, added, removed) -> None:
        if pair in self.pairs:
            self.pairs.discard(pair)
            added.discard(pair)
            removed.add(pair)

    # ------------------------------------------------------------------
    # windowed queries
    # ------------------------------------------------------------------
    def window_pairs(self, window: Rect) -> Set[Tuple[int, int]]:
        """The join restricted to a window: pairs whose common influence
        region meets ``window`` with positive area.

        Candidates come from one ConditionalFilter sub-rectangle descent of
        ``R_P`` with the window as the target polygon — complete, because a
        qualifying pair's common region is contained in ``V(p)``, so
        ``V(p)`` intersects the window and ``p`` is admitted.  Each
        candidate then tests only its maintained partners.  Zero-area
        contact with the window is excluded (open-set SAT), matching the
        library-wide boundary-tie convention.
        """
        if self._closed:
            raise ValueError("the dynamic session is closed")
        result: Set[Tuple[int, int]] = set()
        if not self.pairs or self.tree_p.is_empty():
            return result
        window_poly = ConvexPolygon.from_rect(window)
        if window_poly.is_empty():
            return result
        with self.tree_p.disk.suspend_io_accounting():
            candidates = batch_conditional_filter(
                [window_poly],
                self.tree_p,
                self.domain,
                use_phi_pruning=self.config.use_phi_pruning,
                stats=self.filter_stats,
            )
        for p_oid, _ in candidates:
            partners = self._partners_p.get(p_oid)
            if not partners:
                continue
            cell_p = self.cells_p[p_oid]
            for q_oid in partners:
                region = cell_p.common_region(self.cells_q[q_oid])
                if not region.is_empty() and region.intersects_interior(window_poly):
                    result.add((p_oid, q_oid))
        return result

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def close(self) -> None:
        """Release the maintained state; with ``owns_disk`` also the disk.

        A long-running server cycles many sessions over the same storage
        path — without an explicit close the old session keeps its trees,
        diagrams, and (transitively) the backend's file/sqlite handles
        alive until GC, which under load becomes real fd exhaustion.
        Closing is idempotent; a closed session rejects further
        :meth:`apply_updates`/:meth:`window_pairs`.
        """
        if self._closed:
            return
        self._closed = True
        disk = self.tree_p.disk if self.owns_disk else None
        self.cells_p.clear()
        self.cells_q.clear()
        self._partners_p.clear()
        self._partners_q.clear()
        self._reaches = {"P": {}, "Q": {}}
        self.pairs.clear()
        if disk is not None:
            disk.close()

    def __enter__(self) -> "DynamicJoinSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def pair_set(self) -> Set[Tuple[int, int]]:
        """A copy of the maintained join answer."""
        return set(self.pairs)

    def point_count(self, side: str) -> int:
        """Stored points on one side (``"P"`` or ``"Q"``)."""
        cells, _ = self._side(side)
        return len(cells)

    def check_consistency(self) -> None:
        """Assert internal bookkeeping invariants (used by the test-suite)."""
        assert set(self._partners_p) == set(self.cells_p)
        assert set(self._partners_q) == set(self.cells_q)
        assert set(self._reaches["P"]) == set(self.cells_p)
        assert set(self._reaches["Q"]) == set(self.cells_q)
        from_p = {
            (p, q) for p, partners in self._partners_p.items() for q in partners
        }
        from_q = {
            (p, q) for q, partners in self._partners_q.items() for p in partners
        }
        assert from_p == from_q == self.pairs
        assert len(self.tree_p) == len(self.cells_p)
        assert len(self.tree_q) == len(self.cells_q)
        self.tree_p.check_invariants()
        self.tree_q.check_invariants()
