"""Update records for dynamic CIJ workloads.

A dynamic workload is a sequence of :class:`UpdateBatch` objects, each a
group of point insertions/deletions against ``P`` and/or ``Q`` that the
maintenance layer (:mod:`repro.dynamic.maintenance`) applies atomically:
after :meth:`~repro.dynamic.maintenance.DynamicJoinSession.apply_updates`
returns, the maintained pair set equals a from-scratch join over the
updated pointsets, and the returned :class:`PairDelta` lists exactly the
pairs that appeared and disappeared.

The module is dependency-light (geometry only), and the package ``__init__``
exposes the session lazily, so the workload generators in
:mod:`repro.datasets.workload` build update streams without pulling in the
engine stack.

Update-stream files
-------------------
The CLI (``cij join --updates FILE``) reads a plain-text stream format, one
operation per line::

    # comments and blank lines are ignored
    insert P 500 1250.5 7300.0
    delete Q 17
    ---

A line of dashes ends the current batch; the final batch needs no
terminator.  ``insert`` takes a side (``P``/``Q``), a fresh object id and
the point coordinates; ``delete`` takes the side and the id of a currently
stored point.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.geometry.point import Point

#: Operation kinds accepted by :class:`Update`.
OPS = ("insert", "delete")
#: Join sides accepted by :class:`Update`.
SIDES = ("P", "Q")


@dataclass(frozen=True)
class Update:
    """One point insertion or deletion against one side of the join.

    ``point`` is required for inserts; for deletes it may be omitted when
    the maintenance layer can resolve the oid itself (the CLI stream format
    does exactly that), but a given point must match the stored one.
    """

    op: str
    side: str
    oid: int
    point: Optional[Point] = None

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ValueError(f"unknown update op {self.op!r}; expected one of {OPS}")
        if self.side not in SIDES:
            raise ValueError(
                f"unknown update side {self.side!r}; expected one of {SIDES}"
            )
        if self.op == "insert" and self.point is None:
            raise ValueError("insert updates must carry the point to insert")


@dataclass(frozen=True)
class UpdateBatch:
    """A group of updates applied (and accounted) as one maintenance step."""

    updates: Tuple[Update, ...]

    def __init__(self, updates: Iterable[Update]):
        object.__setattr__(self, "updates", tuple(updates))
        if not self.updates:
            raise ValueError("an update batch must contain at least one update")
        seen: Set[Tuple[str, str, int]] = set()
        for update in self.updates:
            key = (update.op, update.side, update.oid)
            if key in seen:
                raise ValueError(
                    f"duplicate {update.op} of {update.side} oid {update.oid} "
                    "in one batch"
                )
            seen.add(key)
            if (("delete" if update.op == "insert" else "insert"),
                    update.side, update.oid) in seen:
                raise ValueError(
                    f"batch both inserts and deletes {update.side} oid "
                    f"{update.oid}; split the operations across batches"
                )

    def __len__(self) -> int:
        return len(self.updates)

    def __iter__(self):
        return iter(self.updates)

    def by_side(self, side: str) -> List[Update]:
        """The batch's updates against one side, in stream order."""
        return [u for u in self.updates if u.side == side]


@dataclass
class UpdateStats:
    """Update-phase accounting, alongside the paper's MAT/JOIN split.

    Scalar counters accumulate over every applied batch; a per-batch
    snapshot rides on each :class:`PairDelta`.
    """

    #: Batches applied so far.
    batches_applied: int = 0
    #: Individual insert/delete operations applied.
    updates_applied: int = 0
    #: Maintained cells whose region could change and was recomputed
    #: (includes the cells of freshly inserted points).
    cells_invalidated: int = 0
    #: Result pairs removed from the maintained answer.
    pairs_retracted: int = 0
    #: Result pairs added to the maintained answer.
    pairs_emitted: int = 0

    def accumulate(self, other: "UpdateStats") -> None:
        """Add another record's counters into this one (generically, so a
        new counter can never be silently dropped from session totals)."""
        for field_info in fields(self):
            setattr(
                self,
                field_info.name,
                getattr(self, field_info.name) + getattr(other, field_info.name),
            )


@dataclass(frozen=True)
class PairDelta:
    """The change one update batch made to the join answer."""

    #: Pairs present after the batch but not before, sorted.
    added: Tuple[Tuple[int, int], ...]
    #: Pairs present before the batch but not after, sorted.
    removed: Tuple[Tuple[int, int], ...]
    #: Update-phase accounting for exactly this batch.
    stats: UpdateStats

    def __len__(self) -> int:
        return len(self.added) + len(self.removed)

    def is_empty(self) -> bool:
        return not self.added and not self.removed


class UpdateStreamError(ValueError):
    """A malformed update-stream file (carries the offending line number)."""

    def __init__(self, line_number: int, message: str):
        super().__init__(f"update stream line {line_number}: {message}")
        self.line_number = line_number


def parse_update_stream(lines: Iterable[str]) -> List[UpdateBatch]:
    """Parse the text stream format into batches (see the module docstring)."""
    batches: List[UpdateBatch] = []
    current: List[Update] = []
    #: (side, oid) pairs the current batch already touches: the batch-level
    #: consistency rules are enforced here, per line, so the diagnostic
    #: points at the offending line rather than the batch separator.
    touched: Set[Tuple[str, str, int]] = set()

    def flush(line_number: int) -> None:
        if not current:
            return
        try:
            batches.append(UpdateBatch(current))
        except ValueError as error:  # unreachable: enforced per line above
            raise UpdateStreamError(line_number, str(error)) from None
        current.clear()
        touched.clear()

    line_number = 0
    for line_number, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if set(line) == {"-"}:
            flush(line_number)
            continue
        tokens = line.split()
        op = tokens[0].lower()
        if op not in OPS:
            raise UpdateStreamError(
                line_number, f"unknown operation {tokens[0]!r}; expected insert/delete"
            )
        expected = 5 if op == "insert" else 3
        if len(tokens) != expected:
            raise UpdateStreamError(
                line_number,
                f"{op} takes {expected - 1} arguments "
                f"({'side oid x y' if op == 'insert' else 'side oid'}), "
                f"got {len(tokens) - 1}",
            )
        side = tokens[1].upper()
        if side not in SIDES:
            raise UpdateStreamError(
                line_number, f"unknown side {tokens[1]!r}; expected P or Q"
            )
        try:
            oid = int(tokens[2])
        except ValueError:
            raise UpdateStreamError(
                line_number, f"object id must be an integer, got {tokens[2]!r}"
            ) from None
        point = None
        if op == "insert":
            try:
                point = Point(float(tokens[3]), float(tokens[4]))
            except ValueError:
                raise UpdateStreamError(
                    line_number, f"coordinates must be numbers, got {tokens[3:5]!r}"
                ) from None
        if (op, side, oid) in touched:
            raise UpdateStreamError(
                line_number, f"duplicate {op} of {side} oid {oid} in one batch"
            )
        other_op = "delete" if op == "insert" else "insert"
        if (other_op, side, oid) in touched:
            raise UpdateStreamError(
                line_number,
                f"batch both inserts and deletes {side} oid {oid}; "
                "split the operations across batches (insert a new line of "
                "dashes between them)",
            )
        touched.add((op, side, oid))
        current.append(Update(op=op, side=side, oid=oid, point=point))
    flush(line_number + 1)
    return batches


def load_update_stream(path: str) -> List[UpdateBatch]:
    """Read and parse an update-stream file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_update_stream(handle)


def format_update_stream(batches: Sequence[UpdateBatch]) -> str:
    """Render batches in the stream format ``parse_update_stream`` reads."""
    blocks: List[str] = []
    for batch in batches:
        lines = []
        for update in batch:
            if update.op == "insert":
                lines.append(
                    f"insert {update.side} {update.oid} "
                    f"{update.point.x!r} {update.point.y!r}"
                )
            else:
                lines.append(f"delete {update.side} {update.oid}")
        blocks.append("\n".join(lines))
    return "\n---\n".join(blocks) + "\n"
