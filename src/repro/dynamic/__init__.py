"""repro.dynamic — incremental CIJ maintenance for dynamic workloads.

The paper's CIJ variants assume static pointsets; this subsystem keeps the
join answer current under insert/delete streams against ``P`` and ``Q``
without full recomputation::

    from repro import default_engine
    from repro.dynamic import Update, UpdateBatch

    session = default_engine().open_dynamic(tree_p, tree_q)
    delta = session.apply_updates(UpdateBatch([
        Update("insert", "P", 500, Point(1250.0, 7300.0)),
        Update("delete", "Q", 17),
    ]))
    # delta.added / delta.removed — exactly the pairs that changed

Only cells whose nearest-neighbour set can change are recomputed (bounded
by the Lemma-1 influence radius), and only pairs incident to those dirty
cells are re-evaluated; see :mod:`repro.dynamic.maintenance` for the
correctness argument and ``tests/dynamic/`` for the differential harness
that proves incremental == rebuild on every stream.
"""

from repro.dynamic.updates import (
    PairDelta,
    Update,
    UpdateBatch,
    UpdateStats,
    UpdateStreamError,
    format_update_stream,
    load_update_stream,
    parse_update_stream,
)


def __getattr__(name: str):
    # The update records above are dependency-light (geometry only) and
    # imported eagerly; the session pulls in the engine/join/voronoi stack,
    # so it loads lazily (PEP 562) — stream generators such as
    # repro.datasets.workload can build update streams without it.
    if name == "DynamicJoinSession":
        from repro.dynamic.maintenance import DynamicJoinSession

        return DynamicJoinSession
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "DynamicJoinSession",
    "PairDelta",
    "Update",
    "UpdateBatch",
    "UpdateStats",
    "UpdateStreamError",
    "format_update_stream",
    "load_update_stream",
    "parse_update_stream",
]
