"""TP-VOR: the multi-traversal Voronoi-cell baseline of Zhang et al. [10].

The cell approximation starts as the whole space domain.  For each vertex of
the current approximation, a time-parameterised NN query (TPNN) is issued
from the site towards that vertex; if some dataset point takes over as
nearest neighbour before the vertex is reached, its bisector refines the
cell (and the vertex set changes, invalidating earlier verifications).  The
procedure stops when every vertex has been verified.

Because the next TPNN target depends on the outcome of the previous one, the
queries cannot be merged: every TPNN is a separate R-tree traversal, which
is what makes TP-VOR more expensive than BF-VOR in Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set, Tuple

from repro.geometry.halfplane import bisector_halfplane
from repro.geometry.point import Point
from repro.geometry.polygon import ConvexPolygon
from repro.geometry.rect import Rect
from repro.index.rtree import RTree
from repro.query.tpnn import tp_nearest_neighbor
from repro.voronoi.cell import VoronoiCell

#: Safety bound on refinements; a planar Voronoi cell has on average six
#: edges, so hitting this bound indicates a degenerate input rather than a
#: legitimate cell.
_MAX_REFINEMENTS = 1000


@dataclass
class TPVorStats:
    """Work counters for a TP-VOR cell computation."""

    tpnn_queries: int = 0
    refinements: int = 0


def compute_voronoi_cell_tpvor(
    tree: RTree,
    site: Point,
    domain: Rect,
    site_oid: Optional[int] = None,
    stats: Optional[TPVorStats] = None,
) -> VoronoiCell:
    """Compute the exact Voronoi cell of ``site`` using the TP-VOR strategy.

    The result is identical to BF-VOR's; only the access pattern differs
    (one full traversal per TPNN query instead of a single shared one).
    """
    stats = stats if stats is not None else TPVorStats()
    oid = site_oid if site_oid is not None else -1
    cell = ConvexPolygon.from_rect(domain)
    if tree.is_empty():
        return VoronoiCell(oid, site, cell)

    refinements = 0
    verified: Set[Tuple[float, float]] = set()
    while refinements < _MAX_REFINEMENTS:
        target = _next_unverified_vertex(cell, verified)
        if target is None:
            break
        stats.tpnn_queries += 1
        hit = tp_nearest_neighbor(tree, site, target, exclude_oid=site_oid, t_max=1.0)
        if hit is None:
            verified.add((target.x, target.y))
            continue
        _, entry = hit
        other = entry.payload
        if other.x == site.x and other.y == site.y:
            # The site itself was returned (possible when the oid is not
            # supplied); treat the vertex as verified.
            verified.add((target.x, target.y))
            continue
        refined = cell.clip_halfplane(bisector_halfplane(site, other))
        if refined.vertices == cell.vertices:
            # Numerically no progress: accept the vertex rather than loop.
            verified.add((target.x, target.y))
            continue
        cell = refined
        refinements += 1
        stats.refinements += 1
        # The vertex ring changed; previously verified vertices that are no
        # longer part of the ring are irrelevant, surviving ones stay valid.
        current = {(v.x, v.y) for v in cell.vertices}
        verified &= current
    return VoronoiCell(oid, site, cell)


def _next_unverified_vertex(
    cell: ConvexPolygon, verified: Set[Tuple[float, float]]
) -> Optional[Point]:
    for vertex in cell.vertices:
        if (vertex.x, vertex.y) not in verified:
            return vertex
    return None
