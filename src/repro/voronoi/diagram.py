"""Voronoi diagrams: index-driven builders and a brute-force oracle.

FM-CIJ and PM-CIJ materialise complete Voronoi diagrams by visiting the leaf
nodes of the source R-tree and computing the cells of each leaf's points.
Two strategies are exposed, matching Section V-A of the paper:

* **ITER** — one :func:`~repro.voronoi.single.compute_voronoi_cell` call per
  point (Algorithm 1 per point),
* **BATCH** — one :func:`~repro.voronoi.batch.compute_voronoi_cells` call
  per leaf node (Algorithm 2), the method the CIJ algorithms use.

The brute-force builder clips the domain with every bisector and serves as
the ground-truth oracle for the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.geometry.halfplane import bisector_halfplane
from repro.geometry.point import Point
from repro.geometry.polygon import ConvexPolygon
from repro.geometry.rect import Rect
from repro.index.rtree import RTree
from repro.voronoi.batch import compute_cells_for_leaf
from repro.voronoi.cell import VoronoiCell
from repro.voronoi.single import CellComputationStats, compute_voronoi_cell


@dataclass
class VoronoiDiagram:
    """A complete Voronoi diagram: one bounded cell per generator point."""

    domain: Rect
    cells: Dict[int, VoronoiCell] = field(default_factory=dict)

    def add(self, cell: VoronoiCell) -> None:
        """Insert a cell, rejecting duplicate generator identifiers."""
        if cell.oid in self.cells:
            raise ValueError(f"duplicate Voronoi cell for oid {cell.oid}")
        self.cells[cell.oid] = cell

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[VoronoiCell]:
        return iter(self.cells.values())

    def cell_of(self, oid: int) -> VoronoiCell:
        """The cell of a given generator identifier."""
        return self.cells[oid]

    def locate(self, location: Point) -> Optional[VoronoiCell]:
        """The cell containing ``location`` (ties broken arbitrarily).

        Linear in the number of cells; intended for examples and tests, not
        for the join algorithms (which never need point location).
        """
        best: Optional[VoronoiCell] = None
        best_dist = float("inf")
        for cell in self.cells.values():
            d = cell.site.distance_to(location)
            if d < best_dist:
                best, best_dist = cell, d
        return best

    def total_area(self) -> float:
        """Sum of cell areas; equals the domain area for an exact diagram."""
        return sum(cell.area() for cell in self.cells.values())

    def intersecting_pairs(self, other: "VoronoiDiagram") -> List[Tuple[int, int]]:
        """All pairs of cell oids whose polygons properly overlap (nested
        loops over :meth:`VoronoiCell.intersects`, which excludes zero-area
        boundary contact).

        This is the brute-force CIJ used as a correctness oracle; it shares
        the tie convention with FM/PM/NM by construction.
        """
        pairs: List[Tuple[int, int]] = []
        for cell_a in self.cells.values():
            for cell_b in other.cells.values():
                if cell_a.intersects(cell_b):
                    pairs.append((cell_a.oid, cell_b.oid))
        return pairs


def compute_voronoi_diagram(
    tree: RTree,
    domain: Rect,
    strategy: str = "batch",
    leaf_order: str = "hilbert",
    stats: Optional[CellComputationStats] = None,
    compute: str = "scalar",
) -> VoronoiDiagram:
    """Build the full Voronoi diagram of an R-tree-indexed pointset.

    Parameters
    ----------
    tree:
        The source R-tree.
    domain:
        Space domain bounding every cell.
    strategy:
        ``"batch"`` (Algorithm 2 per leaf) or ``"iter"`` (Algorithm 1 per
        point), matching the ITER/BATCH comparison of Figure 6.
    leaf_order:
        Order in which source leaves are visited (``"hilbert"`` or
        ``"dfs"``); Hilbert order keeps consecutive groups spatially close.
    stats:
        Optional shared work counters.
    compute:
        ``"scalar"`` or ``"kernel"`` inner loops for the batch cell
        computations (byte-identical cells either way); the ``"iter"``
        strategy always runs scalar.
    """
    if strategy not in ("batch", "iter"):
        raise ValueError(f"unknown diagram strategy: {strategy!r}")
    diagram = VoronoiDiagram(domain)
    stats = stats if stats is not None else CellComputationStats()
    for leaf in tree.iter_leaf_nodes(order=leaf_order):
        if strategy == "batch":
            cells = compute_cells_for_leaf(
                tree, leaf.entries, domain, stats=stats, compute=compute
            )
            for cell in cells.values():
                diagram.add(cell)
        else:
            for entry in leaf.entries:
                cell = compute_voronoi_cell(
                    tree, entry.payload, domain, site_oid=entry.oid, stats=stats
                )
                diagram.add(cell)
    return diagram


def iter_diagram_cells(
    tree: RTree,
    domain: Rect,
    strategy: str = "batch",
    leaf_order: str = "hilbert",
    stats: Optional[CellComputationStats] = None,
    compute: str = "scalar",
) -> Iterator[VoronoiCell]:
    """Stream the cells of the diagram leaf-group by leaf-group.

    FM-CIJ and PM-CIJ consume the cells in this order and pack them straight
    into the bulk loader, so the full diagram never needs to be held in
    memory at once.  ``compute`` selects the scalar or kernel inner loops
    for the batch cell computations (byte-identical cells either way).
    """
    if strategy not in ("batch", "iter"):
        raise ValueError(f"unknown diagram strategy: {strategy!r}")
    stats = stats if stats is not None else CellComputationStats()
    for leaf in tree.iter_leaf_nodes(order=leaf_order):
        if strategy == "batch":
            cells = compute_cells_for_leaf(
                tree, leaf.entries, domain, stats=stats, compute=compute
            )
            for cell in cells.values():
                yield cell
        else:
            for entry in leaf.entries:
                yield compute_voronoi_cell(
                    tree, entry.payload, domain, site_oid=entry.oid, stats=stats
                )


# ----------------------------------------------------------------------
# brute-force oracle
# ----------------------------------------------------------------------
def brute_force_cell(
    site: Point,
    points: Iterable[Point],
    domain: Rect,
    oid: int = -1,
) -> VoronoiCell:
    """Exact cell of ``site`` by clipping the domain with every bisector.

    Quadratic in the dataset when used for every point; this is the
    definitional computation (Equation 2) used as ground truth.
    """
    polygon = ConvexPolygon.from_rect(domain)
    for other in points:
        if other.x == site.x and other.y == site.y:
            continue
        polygon = polygon.clip_halfplane(bisector_halfplane(site, other))
        if polygon.is_empty():
            break
    return VoronoiCell(oid, site, polygon)


def brute_force_diagram(
    points: Sequence[Point],
    domain: Rect,
    oids: Optional[Sequence[int]] = None,
) -> VoronoiDiagram:
    """Ground-truth Voronoi diagram computed directly from Equation 2."""
    if oids is None:
        oids = list(range(len(points)))
    if len(oids) != len(points):
        raise ValueError("oids and points must have the same length")
    diagram = VoronoiDiagram(domain)
    for oid, site in zip(oids, points):
        diagram.add(brute_force_cell(site, points, domain, oid=oid))
    return diagram
