"""The Voronoi-cell record shared by every algorithm in the library."""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.point import Point
from repro.geometry.polygon import ConvexPolygon
from repro.geometry.rect import Rect


@dataclass(frozen=True)
class VoronoiCell:
    """A Voronoi cell: the generator site, its identifier and the polygon.

    The polygon is always clipped to the space domain ``U`` used by the
    computation, so every cell is a bounded convex polygon — which is what
    the R-trees of FM-CIJ/PM-CIJ index and what the join predicate tests.
    """

    oid: int
    site: Point
    polygon: ConvexPolygon

    def mbr(self) -> Rect:
        """Minimum bounding rectangle of the cell polygon."""
        return self.polygon.bounding_rect()

    def area(self) -> float:
        """Area of the cell."""
        return self.polygon.area()

    def contains(self, location: Point) -> bool:
        """Whether ``location`` lies in this cell (closer to the site than
        to any other site of the generating pointset, up to boundary ties)."""
        return self.polygon.contains_point(location)

    def intersects(self, other: "VoronoiCell") -> bool:
        """The CIJ predicate: do the two influence regions properly overlap?

        Boundary-tie convention (shared by the brute-force oracle and by
        FM/PM/NM alike): the pair joins only when the common influence
        region has positive area.  Cells that touch in a zero-area contact
        — an edge segment or a single vertex, as happens when bisectors of
        the two pointsets fall exactly colinear — are *excluded*, matching
        the epsilon-guarded polygon predicates the algorithms already used.
        """
        return self.polygon.intersects_interior(other.polygon)

    def common_region(self, other: "VoronoiCell") -> ConvexPolygon:
        """The common influence region ``R(p, q)`` (possibly empty)."""
        return self.polygon.intersection(other.polygon)

    def vertex_count(self) -> int:
        """Number of polygon vertices (drives the entry size on disk)."""
        return len(self.polygon.vertices)
