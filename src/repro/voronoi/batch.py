"""BatchVoronoi: concurrent Voronoi-cell computation for a group of points.

Algorithm 2 of the paper.  When the cells of several nearby points (e.g. all
points stored in one leaf node) are needed, computing them one at a time
would read the same neighbourhood of the tree repeatedly.  BatchVoronoi runs
a single best-first traversal keyed by ``mindist`` to the *centroid* of the
group and refines every group member's cell as qualifying points are
discovered; a subtree is pruned only when it can refine none of the cells.

Implementation note: the Lemma-1/Lemma-2 tests loop over the vertex ring of
every group member's current cell.  To keep the batch cheap for large
groups, each member carries its *influence radius* — twice the largest
vertex-to-site distance of its current cell.  By the triangle inequality, a
point (or MBR) farther from the site than that radius can never beat any
vertex, so the per-vertex loop is skipped entirely for most (entry, member)
combinations.  This is a pure constant-factor optimisation; the pruning
decisions are identical to the plain formulation.

Two further hot-path optimisations (the Voronoi step dominates join cost,
see the Figure 7 breakdown):

* bisector clipping is ordered by neighbour distance.  Clipping the nearest
  sites first tightens a cell as early as possible, so later bisectors fail
  the Lemma-1 test and are never clipped at all — strictly fewer clip
  operations for identical cells — and the per-member loop stops at the
  first neighbour beyond the influence radius (every later one is farther
  still).
* the best-first traversal carries a group-wide termination bound.  Heap
  keys (``mindist`` to the group centroid) are popped in non-decreasing
  order, so once the key exceeds ``reach_m + dist(centroid, site_m)`` for
  every member ``m``, no remaining entry can refine any cell (Lemma 1 via
  the triangle inequality) and the whole traversal stops.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.geometry.halfplane import bisector_halfplane
from repro.geometry.point import Point, centroid, dist
from repro.geometry.polygon import ConvexPolygon
from repro.geometry.rect import Rect
from repro.index.entries import LeafEntry
from repro.index.rtree import RTree
from repro.voronoi.cell import VoronoiCell
from repro.voronoi.single import CellComputationStats

_POINT = 0
_CHILD = 1


class _MemberState:
    """Mutable per-member state: the running cell and its influence radius."""

    __slots__ = ("oid", "site", "polygon", "reach", "vertex_dists")

    def __init__(self, oid: int, site: Point, polygon: ConvexPolygon):
        self.oid = oid
        self.site = site
        self.polygon = polygon
        self.reach = 0.0
        self.vertex_dists = []
        self.update_reach()

    def update_reach(self) -> None:
        """Recompute the cached vertex distances and the influence radius."""
        site = self.site
        self.vertex_dists = [(v, site.distance_to(v)) for v in self.polygon.vertices]
        self.reach = (
            2.0 * max(d for _, d in self.vertex_dists) if self.vertex_dists else 0.0
        )

    def point_can_refine(self, other: Point) -> bool:
        """Lemma 1 with the cheap radius pre-check."""
        if self.site.distance_to(other) > self.reach:
            return False
        for gamma, gamma_dist in self.vertex_dists:
            if dist(other, gamma) < gamma_dist:
                return True
        return False

    def mbr_can_refine(self, mbr: Rect) -> bool:
        """Lemma 2 with the cheap radius pre-check."""
        if mbr.mindist_point(self.site) > self.reach:
            return False
        for gamma, gamma_dist in self.vertex_dists:
            if mbr.mindist_point(gamma) < gamma_dist:
                return True
        return False

    def refine(self, other: Point) -> None:
        """Clip the running cell by the bisector with ``other``."""
        self.polygon = self.polygon.clip_halfplane(bisector_halfplane(self.site, other))
        self.update_reach()


def compute_voronoi_cells(
    tree: RTree,
    group: Sequence[Tuple[int, Point]],
    domain: Rect,
    stats: Optional[CellComputationStats] = None,
    compute: str = "scalar",
) -> Dict[int, VoronoiCell]:
    """Compute the exact Voronoi cells of every ``(oid, point)`` in ``group``.

    Parameters
    ----------
    tree:
        R-tree over the full pointset ``P`` (the group members are normally
        stored in it; entries matching a group oid are skipped as refiners
        of their own cell but still refine the other cells of the group).
    group:
        Pairs of object identifier and site; must be non-empty and the oids
        must be unique.
    domain:
        Space domain ``U`` that bounds every cell.
    stats:
        Optional shared work counters.
    compute:
        ``"scalar"`` (pure-Python inner loops, the oracle) or ``"kernel"``
        (vectorised NumPy inner loops; byte-identical cells and counters,
        requires NumPy).

    Returns
    -------
    dict
        Mapping from oid to the exact :class:`VoronoiCell`.
    """
    if compute == "kernel":
        from repro.voronoi.batch_kernels import compute_voronoi_cells_kernel

        return compute_voronoi_cells_kernel(tree, group, domain, stats=stats)
    if compute != "scalar":
        raise ValueError(f"unknown compute mode: {compute!r}")
    members = list(group)
    if not members:
        raise ValueError("BatchVoronoi requires a non-empty group")
    oids = [oid for oid, _ in members]
    if len(set(oids)) != len(oids):
        raise ValueError("group oids must be unique")
    stats = stats if stats is not None else CellComputationStats()

    states: Dict[int, _MemberState] = {
        oid: _MemberState(oid, site, ConvexPolygon.from_rect(domain))
        for oid, site in members
    }
    if tree.is_empty():
        return {
            oid: VoronoiCell(oid, state.site, state.polygon)
            for oid, state in states.items()
        }

    # Points inside the group refine each other directly; doing this first
    # tightens every cell before the traversal starts, which strengthens the
    # Lemma-2 pruning of subtrees.  Neighbours are applied nearest-first so
    # the cell shrinks as quickly as possible and most of the farther
    # bisectors never pass the Lemma-1 test; once a neighbour lies beyond
    # the influence radius every later one does too, so the loop stops.
    for state in states.values():
        neighbours = sorted(
            (
                (state.site.distance_to(other_state.site), other_state.site)
                for other_state in states.values()
                if other_state.oid != state.oid
                and (
                    other_state.site.x != state.site.x
                    or other_state.site.y != state.site.y
                )
            ),
            key=lambda pair: pair[0],
        )
        for distance, other in neighbours:
            if distance > state.reach:
                break
            if state.point_can_refine(other):
                state.refine(other)
                stats.refinements += 1

    group_center = centroid([state.site for state in states.values()])
    member_list = list(states.values())
    center_dists = [state.site.distance_to(group_center) for state in member_list]
    counter = itertools.count()
    heap: List[tuple] = []

    def push_node(node) -> None:
        kind = _POINT if node.is_leaf else _CHILD
        for entry in node.entries:
            key = entry.mbr.mindist_point(group_center)
            heapq.heappush(heap, (key, next(counter), kind, entry))

    def termination_bound() -> float:
        # mindist(e, site_m) >= mindist(e, centroid) - dist(centroid, site_m),
        # so an entry with key beyond reach_m + dist(centroid, site_m) for
        # every member cannot pass any member's radius pre-check.
        return max(
            state.reach + center_dist
            for state, center_dist in zip(member_list, center_dists)
        )

    push_node(tree.read_node(tree.root_page))
    bound = termination_bound()
    while heap:
        key, _, kind, entry = heapq.heappop(heap)
        stats.heap_pops += 1
        if key > bound:
            # Heap keys only grow (child mindist >= parent mindist), so the
            # popped entry and everything still queued is prunable.
            stats.pruned_entries += 1 + len(heap)
            break
        if kind == _POINT:
            if _is_group_entry(entry, states):
                continue
            stats.points_examined += 1
            other = entry.payload
            refined_any = False
            for state in member_list:
                if state.point_can_refine(other):
                    state.refine(other)
                    stats.refinements += 1
                    refined_any = True
            if refined_any:
                bound = termination_bound()
            else:
                stats.pruned_entries += 1
        else:
            if any(state.mbr_can_refine(entry.mbr) for state in member_list):
                node = tree.read_node(entry.child_page)
                stats.nodes_expanded += 1
                push_node(node)
            else:
                stats.pruned_entries += 1
    return {
        oid: VoronoiCell(oid, state.site, state.polygon) for oid, state in states.items()
    }


def compute_cells_for_leaf(
    tree: RTree,
    leaf_entries: Iterable[LeafEntry],
    domain: Rect,
    stats: Optional[CellComputationStats] = None,
    compute: str = "scalar",
) -> Dict[int, VoronoiCell]:
    """Convenience wrapper: BatchVoronoi over the points of one leaf node."""
    group = [(entry.oid, entry.payload) for entry in leaf_entries]
    return compute_voronoi_cells(tree, group, domain, stats=stats, compute=compute)


def _is_group_entry(entry: LeafEntry, states: Dict[int, "_MemberState"]) -> bool:
    """Whether a deheaped point entry is one of the group members."""
    state = states.get(entry.oid)
    if state is None:
        return False
    other = entry.payload
    return isinstance(other, Point) and other.x == state.site.x and other.y == state.site.y
