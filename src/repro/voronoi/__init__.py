"""Voronoi-cell computation over R-tree-indexed pointsets.

This subpackage contains the paper's side contribution and its baselines:

* :func:`~repro.voronoi.single.compute_voronoi_cell` — **BF-VOR**
  (Algorithm 1): exact single-cell computation in one best-first traversal,
* :func:`~repro.voronoi.batch.compute_voronoi_cells` — **BatchVoronoi**
  (Algorithm 2): concurrent cell computation for a group of nearby points,
* :func:`~repro.voronoi.tpvor.compute_voronoi_cell_tpvor` — the TP-VOR
  baseline [Zhang et al. 2003] driven by repeated TPNN traversals,
* :func:`~repro.voronoi.approx.approximate_cell_quadrants` — the quadrant-NN
  approximation of Stanoi et al. [2001] (superset of the exact cell),
* :class:`~repro.voronoi.diagram.VoronoiDiagram` and builders (ITER, BATCH
  and a brute-force oracle) used by FM-CIJ, PM-CIJ and the test-suite.
"""

from repro.voronoi.cell import VoronoiCell
from repro.voronoi.single import compute_voronoi_cell
from repro.voronoi.batch import compute_voronoi_cells
from repro.voronoi.tpvor import compute_voronoi_cell_tpvor
from repro.voronoi.approx import approximate_cell_quadrants
from repro.voronoi.diagram import (
    VoronoiDiagram,
    brute_force_cell,
    brute_force_diagram,
    compute_voronoi_diagram,
)

__all__ = [
    "VoronoiCell",
    "compute_voronoi_cell",
    "compute_voronoi_cells",
    "compute_voronoi_cell_tpvor",
    "approximate_cell_quadrants",
    "VoronoiDiagram",
    "compute_voronoi_diagram",
    "brute_force_cell",
    "brute_force_diagram",
]
