"""BF-VOR: exact single-cell Voronoi computation in one R-tree traversal.

This is Algorithm 1 of the paper.  Starting from the whole space domain, the
cell approximation ``V_c(p_i)`` is refined by the bisector of every point
that can still affect it.  Entries are visited best-first by ``mindist`` to
the site, and an entry is expanded only when Lemma 2 fails to prune it —
i.e. when some current cell vertex ``γ`` satisfies
``mindist(e, γ) < dist(γ, p_i)``.

Each tree node is read at most once, so the node-access cost of a query is
bounded by the tree size and in practice stays close to the handful of
leaves around the site (Figure 5).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import List, Optional

from repro.geometry.halfplane import bisector_halfplane
from repro.geometry.point import Point, dist
from repro.geometry.polygon import ConvexPolygon
from repro.geometry.rect import Rect
from repro.index.entries import LeafEntry
from repro.index.rtree import RTree
from repro.voronoi.cell import VoronoiCell


@dataclass
class CellComputationStats:
    """Work counters for one (or one batch of) cell computation(s)."""

    heap_pops: int = 0
    pruned_entries: int = 0
    refinements: int = 0
    points_examined: int = 0
    nodes_expanded: int = 0

    def merge(self, other: "CellComputationStats") -> None:
        """Accumulate another stats record into this one."""
        self.heap_pops += other.heap_pops
        self.pruned_entries += other.pruned_entries
        self.refinements += other.refinements
        self.points_examined += other.points_examined
        self.nodes_expanded += other.nodes_expanded


#: Heap item kinds.
_POINT = 0
_CHILD = 1


def compute_voronoi_cell(
    tree: RTree,
    site: Point,
    domain: Rect,
    site_oid: Optional[int] = None,
    visit_order: str = "best-first",
    stats: Optional[CellComputationStats] = None,
) -> VoronoiCell:
    """Compute the exact Voronoi cell of ``site`` within the indexed pointset.

    Parameters
    ----------
    tree:
        R-tree over the pointset ``P`` that defines the cell.
    site:
        The generator point ``p_i``.  It does not strictly have to be stored
        in the tree (the cell of an external point is still well defined),
        but CIJ always computes cells of indexed points.
    domain:
        The space domain ``U`` to which the cell is clipped.
    site_oid:
        Identifier of the site inside the tree; entries with this oid (or
        with coordinates identical to the site) are skipped.
    visit_order:
        ``"best-first"`` is the paper's choice (priority = mindist to the
        site).  ``"depth-first"`` is provided for the ablation experiment
        that shows why the visit order matters: correctness is unaffected,
        but far more entries survive the Lemma-2 prune before the cell gets
        tight.
    stats:
        Optional counters that accumulate pruning/refinement work.

    Returns
    -------
    :class:`~repro.voronoi.cell.VoronoiCell`
        The exact cell ``V(p_i, P)`` clipped to ``domain``.
    """
    if visit_order not in ("best-first", "depth-first"):
        raise ValueError(f"unknown visit order: {visit_order!r}")
    stats = stats if stats is not None else CellComputationStats()
    oid = site_oid if site_oid is not None else -1
    cell_polygon = ConvexPolygon.from_rect(domain)
    if tree.is_empty():
        return VoronoiCell(oid, site, cell_polygon)

    best_first = visit_order == "best-first"
    counter = itertools.count()
    heap: List[tuple] = []

    def push_node(node) -> None:
        kind = _POINT if node.is_leaf else _CHILD
        for entry in node.entries:
            key = entry.mbr.mindist_point(site) if best_first else 0.0
            heapq.heappush(heap, (key, next(counter), kind, entry))

    push_node(tree.read_node(tree.root_page))
    # Influence radius: by the triangle inequality nothing farther from the
    # site than twice the largest vertex distance can beat any vertex, so
    # the per-vertex Lemma tests are skipped for such entries.
    reach = 2.0 * max(site.distance_to(v) for v in cell_polygon.vertices)
    while heap:
        key, _, kind, entry = heapq.heappop(heap)
        stats.heap_pops += 1
        if best_first and key > reach:
            # Best-first keys are popped in non-decreasing order (a child's
            # mindist is never below its parent's), so once the key passes
            # the influence radius nothing left on the heap can refine the
            # cell and the traversal stops (Lemma-1 early termination).
            stats.pruned_entries += 1 + len(heap)
            break
        vertices = cell_polygon.vertices
        if kind == _POINT:
            if _is_site_entry(entry, site, site_oid):
                continue
            stats.points_examined += 1
            other = entry.payload
            if site.distance_to(other) <= reach and _point_can_refine(
                other, site, vertices
            ):
                cell_polygon = cell_polygon.clip_halfplane(
                    bisector_halfplane(site, other)
                )
                stats.refinements += 1
                if cell_polygon.vertices:
                    reach = 2.0 * max(
                        site.distance_to(v) for v in cell_polygon.vertices
                    )
            else:
                stats.pruned_entries += 1
        else:
            if entry.mbr.mindist_point(site) <= reach and _mbr_can_refine(
                entry.mbr, site, vertices
            ):
                node = tree.read_node(entry.child_page)
                stats.nodes_expanded += 1
                push_node(node)
            else:
                stats.pruned_entries += 1
    return VoronoiCell(oid, site, cell_polygon)


def _is_site_entry(entry: LeafEntry, site: Point, site_oid: Optional[int]) -> bool:
    """Whether a leaf entry is the query site itself."""
    if site_oid is not None and entry.oid == site_oid:
        return True
    other = entry.payload
    return isinstance(other, Point) and other.x == site.x and other.y == site.y


def _point_can_refine(other: Point, site: Point, vertices) -> bool:
    """Lemma 1: ``other`` may refine the cell iff it beats some vertex γ."""
    for gamma in vertices:
        if dist(other, gamma) < dist(gamma, site):
            return True
    return False


def _mbr_can_refine(mbr: Rect, site: Point, vertices) -> bool:
    """Lemma 2: the subtree may refine the cell iff its MBR beats some γ."""
    for gamma in vertices:
        if mbr.mindist_point(gamma) < dist(gamma, site):
            return True
    return False
