"""Kernel BatchVoronoi: Algorithm 2 with array-native inner loops.

This is the ``compute="kernel"`` twin of
:func:`repro.voronoi.batch.compute_voronoi_cells`.  The best-first
traversal — heap order, group-wide termination bound, every counter in
:class:`~repro.voronoi.single.CellComputationStats` — is kept structurally
identical to the scalar implementation; the inner work is reorganised
around the :mod:`repro.geometry.kernels` primitives:

* each member's running cell lives as a plain tuple ring and is clipped
  with :func:`repro.geometry.kernels.clip_ring` (profiling showed NumPy's
  per-call dispatch loses to tight Python on 6-vertex rings);
* the group pre-refinement computes all pairwise site distances and the
  nearest-first candidate order with one vectorised pass per member, then
  walks it with Lemma-1 early termination;
* the per-pop Lemma-1/Lemma-2 tests for *all* members run as one masked
  matrix operation over padded per-member vertex arrays — the kernel's
  main win, replacing the scalar per-member/per-vertex Python loops.

Because the kernels are bit-identical to the scalar arithmetic (see
:mod:`repro.geometry.kernels`), every pruning decision, clip, heap pop and
returned cell polygon is byte-equal to the scalar path's — which the
differential test-suite pins across algorithms, backends and executors.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.geometry import kernels as gk
from repro.geometry.point import Point, centroid
from repro.geometry.rect import Rect
from repro.index.rtree import RTree
from repro.voronoi.cell import VoronoiCell
from repro.voronoi.single import CellComputationStats

_POINT = 0
_CHILD = 1


class _KernelMember:
    """Per-member state: tuple ring, cached site-to-vertex distances and
    the Lemma-1 influence radius (the kernel twin of
    ``repro.voronoi.batch._MemberState``)."""

    __slots__ = ("oid", "site", "sx", "sy", "ring", "vdist", "reach")

    def __init__(self, oid: int, site: Point, ring):
        self.oid = oid
        self.site = site
        self.sx = site.x
        self.sy = site.y
        self.set_ring(ring)

    def set_ring(self, ring) -> None:
        self.ring = ring
        self.vdist = gk.ring_distances(ring, self.sx, self.sy)
        self.reach = 2.0 * max(self.vdist) if self.vdist else 0.0

    def refine(self, ox: float, oy: float) -> None:
        """Clip the running cell by the bisector with ``(ox, oy)``."""
        a = 2.0 * (ox - self.sx)
        b = 2.0 * (oy - self.sy)
        c = (ox * ox + oy * oy) - (self.sx * self.sx + self.sy * self.sy)
        self.set_ring(gk.clip_ring(self.ring, a, b, c))


class _GroupIndex:
    """Padded per-member vertex matrices for the per-pop Lemma tests.

    ``VX``/``VY``/``VD`` are ``(M, W)`` matrices, one row per member,
    padded on the right; padding has ``VD = -inf`` so a padded slot can
    never "beat" (``dist < -inf`` is always false).  Refining member *i*
    rewrites row *i* only.  Scalar equivalence: the masks are computed
    from the pre-pop state, and refining member *i* never changes member
    *j*'s test, so batch evaluation equals the scalar member-by-member
    loop.
    """

    __slots__ = ("members", "SX", "SY", "REACH", "VX", "VY", "VD", "width")

    def __init__(self, members: List[_KernelMember]):
        np = gk.np
        self.members = members
        m = len(members)
        self.SX = np.array([s.sx for s in members])
        self.SY = np.array([s.sy for s in members])
        self.REACH = np.array([s.reach for s in members])
        self.width = max(4, max(len(s.ring) for s in members))
        self.VX = np.zeros((m, self.width))
        self.VY = np.zeros((m, self.width))
        self.VD = np.full((m, self.width), -np.inf)
        for i in range(m):
            self.update_row(i)

    def update_row(self, i: int) -> None:
        member = self.members[i]
        nv = len(member.ring)
        if nv > self.width:
            self._grow(nv)
        if nv:
            self.VX[i, :nv] = [p[0] for p in member.ring]
            self.VY[i, :nv] = [p[1] for p in member.ring]
            self.VD[i, :nv] = member.vdist
        self.VD[i, nv:] = -gk.np.inf
        self.REACH[i] = member.reach

    def _grow(self, need: int) -> None:
        np = gk.np
        new_width = max(need, 2 * self.width)
        m = len(self.members)
        for name in ("VX", "VY"):
            grown = np.zeros((m, new_width))
            grown[:, : self.width] = getattr(self, name)
            setattr(self, name, grown)
        grown = np.full((m, new_width), -np.inf)
        grown[:, : self.width] = self.VD
        self.VD = grown
        self.width = new_width

    def point_can_refine_mask(self, ox: float, oy: float):
        """Lemma 1 (with the radius pre-check) for every member at once."""
        np = gk.np
        sdx = self.SX - ox
        sdy = self.SY - oy
        in_radius = np.sqrt(sdx * sdx + sdy * sdy) <= self.REACH
        if not in_radius.any():
            return in_radius
        ddx = self.VX - ox
        ddy = self.VY - oy
        beat = np.sqrt(ddx * ddx + ddy * ddy) < self.VD
        return in_radius & beat.any(axis=1)

    def mbr_can_refine_any(self, mbr: Rect) -> bool:
        """Lemma 2 (with the radius pre-check): can the MBR refine *any*
        member's cell?"""
        site_md = gk.rect_mindist_to_points(
            mbr.xmin, mbr.ymin, mbr.xmax, mbr.ymax, self.SX, self.SY
        )
        in_radius = site_md <= self.REACH
        if not in_radius.any():
            return False
        vert_md = gk.rect_mindist_to_points(
            mbr.xmin, mbr.ymin, mbr.xmax, mbr.ymax, self.VX, self.VY
        )
        beat = vert_md < self.VD
        return bool((in_radius & beat.any(axis=1)).any())

    def termination_bound(self, cdist) -> float:
        """``max(reach_m + dist(centroid, site_m))`` over the members."""
        return float(gk.np.max(self.REACH + cdist))


def compute_voronoi_cells_kernel(
    tree: RTree,
    group: Sequence[Tuple[int, Point]],
    domain: Rect,
    stats: Optional[CellComputationStats] = None,
) -> Dict[int, VoronoiCell]:
    """Kernel twin of :func:`repro.voronoi.batch.compute_voronoi_cells`.

    Same contract, same counters, byte-identical cells; see the module
    docstring for the equivalence argument.
    """
    gk.require_numpy()
    np = gk.np
    members = list(group)
    if not members:
        raise ValueError("BatchVoronoi requires a non-empty group")
    oids = [oid for oid, _ in members]
    if len(set(oids)) != len(oids):
        raise ValueError("group oids must be unique")
    stats = stats if stats is not None else CellComputationStats()

    domain_ring = gk.ring_of_rect(domain)
    states: Dict[int, _KernelMember] = {
        oid: _KernelMember(oid, site, domain_ring) for oid, site in members
    }
    if tree.is_empty():
        return {
            oid: VoronoiCell(oid, m.site, gk.polygon_from_ring(m.ring))
            for oid, m in states.items()
        }

    member_list = list(states.values())
    # Group pre-refinement, nearest-first per member: one vectorised
    # distance/sort pass builds the scalar loop's sorted candidate order,
    # then the ring engine walks it with Lemma-1 early termination.
    sites_x = np.array([m.sx for m in member_list])
    sites_y = np.array([m.sy for m in member_list])
    for i, m in enumerate(member_list):
        dx = sites_x - m.sx
        dy = sites_y - m.sy
        d = np.sqrt(dx * dx + dy * dy)
        eligible = np.ones(len(member_list), dtype=bool)
        eligible[i] = False
        eligible &= (sites_x != m.sx) | (sites_y != m.sy)
        idx = np.flatnonzero(eligible)
        if idx.size == 0:
            continue
        order = idx[np.argsort(d[idx], kind="stable")]
        ring, vdist, reach, clips = gk.refine_ring_nearest_first(
            m.ring, m.sx, m.sy,
            sites_x[order], sites_y[order], d[order].tolist(),
            m.vdist, m.reach,
        )
        m.ring = ring
        m.vdist = vdist
        m.reach = reach
        stats.refinements += clips

    group_center = centroid([m.site for m in member_list])
    center_dists = np.array([m.site.distance_to(group_center) for m in member_list])
    counter = itertools.count()
    heap: List[tuple] = []
    index = _GroupIndex(member_list)

    def push_node(node) -> None:
        kind = _POINT if node.is_leaf else _CHILD
        for entry in node.entries:
            key = entry.mbr.mindist_point(group_center)
            heapq.heappush(heap, (key, next(counter), kind, entry))

    push_node(tree.read_node(tree.root_page))
    bound = index.termination_bound(center_dists)
    while heap:
        key, _, kind, entry = heapq.heappop(heap)
        stats.heap_pops += 1
        if key > bound:
            stats.pruned_entries += 1 + len(heap)
            break
        if kind == _POINT:
            if _is_group_entry(entry, states):
                continue
            stats.points_examined += 1
            other = entry.payload
            hits = np.flatnonzero(index.point_can_refine_mask(other.x, other.y))
            if hits.size:
                for i in hits:
                    member_list[i].refine(other.x, other.y)
                    stats.refinements += 1
                    index.update_row(i)
                bound = index.termination_bound(center_dists)
            else:
                stats.pruned_entries += 1
        else:
            if index.mbr_can_refine_any(entry.mbr):
                node = tree.read_node(entry.child_page)
                stats.nodes_expanded += 1
                push_node(node)
            else:
                stats.pruned_entries += 1
    return {
        oid: VoronoiCell(oid, m.site, gk.polygon_from_ring(m.ring))
        for oid, m in states.items()
    }


def _is_group_entry(entry, states: Dict[int, _KernelMember]) -> bool:
    """Whether a deheaped point entry is one of the group members (same
    test as the scalar module)."""
    state = states.get(entry.oid)
    if state is None:
        return False
    other = entry.payload
    return isinstance(other, Point) and other.x == state.sx and other.y == state.sy
