"""Quadrant-NN Voronoi-cell approximation (Stanoi et al. [7]).

The approximation finds the nearest neighbour of the site in each of the
four quadrants defined by the rectilinear lines through the site and clips
the domain with the corresponding bisectors.  The result is a *superset* of
the exact cell: it is cheap (four constrained NN searches folded into one
incremental traversal) but may strictly contain the true cell, which is why
the paper develops the exact BF-VOR instead.  The library keeps it both as a
historical baseline and as a fast pre-filter for applications that only need
an upper bound on the influence region.
"""

from __future__ import annotations

from typing import Optional

from repro.geometry.halfplane import bisector_halfplane
from repro.geometry.point import Point
from repro.geometry.polygon import ConvexPolygon
from repro.geometry.rect import Rect
from repro.index.rtree import RTree
from repro.query.nearest import quadrant_nearest_neighbors
from repro.voronoi.cell import VoronoiCell


def approximate_cell_quadrants(
    tree: RTree,
    site: Point,
    domain: Rect,
    site_oid: Optional[int] = None,
) -> VoronoiCell:
    """Superset approximation of ``V(site, P)`` from the four quadrant NNs."""
    oid = site_oid if site_oid is not None else -1
    polygon = ConvexPolygon.from_rect(domain)
    if tree.is_empty():
        return VoronoiCell(oid, site, polygon)
    for entry in quadrant_nearest_neighbors(tree, site, exclude_oid=site_oid):
        if entry is None:
            continue
        other = entry.payload
        if not isinstance(other, Point) or (other.x == site.x and other.y == site.y):
            continue
        polygon = polygon.clip_halfplane(bisector_halfplane(site, other))
    return VoronoiCell(oid, site, polygon)
