"""The coordinator: pull-based unit scheduling + deterministic merge.

The sharded executor used to split the unit sequence into ``workers``
contiguous chunks up front.  Static chunking is fragile under skew — one
dense cluster of ``R_Q`` leaves makes one chunk arbitrarily more expensive
than the rest and every other worker goes idle.  The
:class:`UnitCoordinator` replaces it with *pull* scheduling: workers ask
for the next unit when they finish the previous one, so a worker stuck on
an expensive unit simply stops pulling while the others drain the queue —
which is work stealing without a stealing protocol.

Assignment is *lease*-based, not consuming: a pulled unit stays owned by
the queue until its result is recorded.  When a worker dies mid-unit the
executor releases the lease and the unit returns to the queue for any
live worker — safe because every unit is a pure function of the shared
read-only backend, so re-execution yields byte-identical results and the
only cost of a failure is one unit's recomputation.  Releases are
bounded: a unit handed out ``max_attempts`` times without a result aborts
the run loudly instead of cycling forever through a poisoned unit.

Determinism is preserved by separating *assignment* from *merge order*:
whichever worker (or retry) produced a unit's result, results are folded
back in unit index order, so the merged pair list and every merged
statistic are byte-identical to the serial traversal (and to any other
assignment).  Duplicate results for one unit — a slow worker finishing a
unit the queue already reassigned — are idempotently ignored: the first
recorded result wins, and since units are pure the loser was identical
anyway.

For carry-chained algorithms (NM-CIJ with the REUSE handoff) the
coordinator degrades to a pipeline: unit ``k+1`` is not handed out until
unit ``k``'s result — whose outbound REUSE buffer seeds ``k+1`` — has been
recorded.  That reproduces the serial reuse chain exactly (work-optimal,
not wall-clock-optimal), matching the fork pool's boundary pipeline from
the pre-coordinator executor.  A released chained unit rewinds the
pipeline to its *recorded predecessor carry* (persisted with every
result), so a retry re-runs from exactly the inbound state the dead
worker saw.

The same coordinator instance serves every worker plane: the inline loop,
fork-pool dispatcher threads, and the per-node driver threads of the
distributed executor all call :meth:`next_assignment` /
:meth:`record_result` / :meth:`release` under one lock.
"""

from __future__ import annotations

import threading
from bisect import insort
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.algorithms import JoinContext
from repro.engine.units import WorkUnit


@dataclass(frozen=True)
class Assignment:
    """One unit handed to one worker, with its inbound carry (if chained)."""

    index: int
    unit: WorkUnit
    carry: Optional[object] = None
    #: 1 for the first handout of the unit, 2 for its first retry, ...
    attempt: int = 1


class UnitCoordinator:
    """Owns the unit queue, leases work on demand, merges in order.

    Thread-safe; one instance per join execution.  ``chained`` turns the
    queue into a carry pipeline (at most one unit outstanding at a time).
    ``max_attempts`` bounds how many times one unit may be leased before
    the run aborts (1 = no retries, the pre-fault-tolerance behaviour).
    """

    def __init__(
        self,
        units: Sequence[WorkUnit],
        chained: bool = False,
        max_attempts: int = 1,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self._units: List[WorkUnit] = list(units)
        self._chained = chained
        self._max_attempts = max_attempts
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        #: Unit indices awaiting (re)assignment, ascending.
        self._pending: List[int] = list(range(len(self._units)))
        #: Outstanding leases: unit index -> worker id.
        self._leases: Dict[int, str] = {}
        #: Times each unit has been handed out.
        self._attempts: Dict[int, int] = {}
        self._results: Dict[int, object] = {}
        self._carry: Optional[object] = None
        self._carry_ready = True  # the first unit needs no inbound carry
        self._error: Optional[BaseException] = None
        #: worker id -> unit indices handed to it, in pull order.  This is
        #: the scheduling trace the skew tests inspect: under skew the
        #: per-worker counts stay balanced, and across runs the traces may
        #: differ while the merged output does not.
        self.assignments: Dict[str, List[int]] = {}
        #: unit index -> times its lease was released back to the queue
        #: (the retry trace the fault-tolerance tests inspect).
        self.reassignments: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # worker-facing pull API
    # ------------------------------------------------------------------
    def next_assignment(self, worker_id: str) -> Optional[Assignment]:
        """The next unit for ``worker_id``; ``None`` when the run is done.

        Blocks while the queue is momentarily empty but leases are still
        outstanding — a leased unit may return to the queue if its worker
        dies — and, in chained mode, until the previous unit's result (and
        with it the inbound carry) is available.  A recorded abort
        unblocks every waiter with ``None``.
        """
        with self._ready:
            while True:
                if self._error is not None or self._done_locked():
                    return None
                if not self._pending or (self._chained and not self._carry_ready):
                    self._ready.wait()
                    continue
                index = self._pending.pop(0)
                self._attempts[index] = self._attempts.get(index, 0) + 1
                self._leases[index] = worker_id
                carry = self._carry if self._chained else None
                if self._chained:
                    # Pipeline: nothing else is handed out until this
                    # unit's outbound carry comes back (or the lease is
                    # released and the pipeline rewinds).
                    self._carry_ready = False
                self.assignments.setdefault(worker_id, []).append(index)
                return Assignment(
                    index=index,
                    unit=self._units[index],
                    carry=carry,
                    attempt=self._attempts[index],
                )

    def record_result(self, index: int, result) -> None:
        """Store one unit's :class:`ShardResult`; releases the pipeline.

        Idempotent: a duplicate result for an already-recorded unit (a
        worker finishing after its lease was reassigned and completed
        elsewhere) is dropped — units are pure, so it was identical.
        """
        with self._ready:
            self._leases.pop(index, None)
            if index not in self._results:
                self._results[index] = result
                if self._chained:
                    self._carry = result.carry
                    self._carry_ready = True
            self._ready.notify_all()

    def release(self, index: int, error: Optional[BaseException] = None) -> None:
        """Return a leased unit to the queue after its worker failed.

        The unit becomes available to any live worker; in chained mode the
        carry pipeline rewinds to the unit's recorded predecessor carry,
        so the retry re-runs from exactly the inbound state the failed
        worker saw.  Exceeding ``max_attempts`` aborts the run instead —
        a unit that kills every worker it touches is a poison unit, and
        cycling it forever would be the deadlock this layer exists to
        prevent.
        """
        with self._ready:
            self._leases.pop(index, None)
            if index in self._results or self._error is not None:
                self._ready.notify_all()
                return
            attempts = self._attempts.get(index, 0)
            if attempts >= self._max_attempts:
                abort = RuntimeError(
                    f"unit {index} failed on {attempts} worker(s) "
                    f"(max_attempts={self._max_attempts}); last failure: {error}"
                )
                abort.__cause__ = error
                self._error = abort
            else:
                insort(self._pending, index)
                self.reassignments[index] = self.reassignments.get(index, 0) + 1
                if self._chained:
                    # Rewind the pipeline: the retry's inbound carry is
                    # the recorded result of the predecessor unit.
                    predecessor = self._results.get(index - 1)
                    self._carry = (
                        predecessor.carry if predecessor is not None else None
                    )
                    self._carry_ready = True
            self._ready.notify_all()

    def abort(self, error: BaseException) -> None:
        """Record a run-fatal failure and wake every blocked puller."""
        with self._ready:
            if self._error is None:
                self._error = error
            self._ready.notify_all()

    @property
    def error(self) -> Optional[BaseException]:
        with self._lock:
            return self._error

    def _done_locked(self) -> bool:
        return len(self._results) >= len(self._units)

    @property
    def done(self) -> bool:
        """Every unit has a recorded result."""
        with self._lock:
            return self._done_locked()

    def outstanding(self) -> int:
        """Leases currently held by workers (diagnostics)."""
        with self._lock:
            return len(self._leases)

    def peek_pending(self, depth: int) -> List[WorkUnit]:
        """The next (up to) ``depth`` units awaiting assignment —
        advisory, for prefetch planning; does not consume them."""
        with self._lock:
            return [self._units[i] for i in self._pending[:depth]]

    # ------------------------------------------------------------------
    # deterministic ordered merge
    # ------------------------------------------------------------------
    def results_in_order(self) -> List[object]:
        """Every unit's result, in unit index order; raises if incomplete."""
        with self._lock:
            missing = [i for i in range(len(self._units)) if i not in self._results]
            if missing:
                raise RuntimeError(
                    f"coordinator missing results for units {missing[:5]}"
                    f"{'...' if len(missing) > 5 else ''}"
                )
            return [self._results[index] for index in range(len(self._units))]

    def merge(
        self,
        ctx: JoinContext,
        base_accesses: int,
        absorb_counters: bool,
    ) -> List[Tuple[int, int]]:
        """Fold unit results into the parent context, in unit order.

        Pairs are concatenated; scalar statistics are summed; each unit's
        progress curve is replayed at the offset of everything that ran
        before it, which keeps the merged curve monotone and identical
        across worker planes.  When the workers charged their own counter
        copies (fork, node subprocess) their deltas are absorbed into the
        parent counters so the shared disk's view stays complete.  Only
        *recorded* results are merged — the partial work of a worker that
        died mid-unit was never recorded, so retries cannot double-charge.
        """
        pairs: List[Tuple[int, int]] = []
        pair_base = 0
        for shard in self.results_in_order():
            ctx.stats.accumulate(shard.stats)
            ctx.cell_stats.merge(shard.cell_stats)
            ctx.filter_stats.merge(shard.filter_stats)
            for sample in shard.stats.progress:
                ctx.stats.record_progress(
                    base_accesses + sample.page_accesses,
                    pair_base + sample.pairs_reported,
                )
            if absorb_counters:
                ctx.disk.counters.absorb(shard.counters)
            base_accesses += shard.counters.page_accesses
            pair_base += len(shard.pairs)
            pairs.extend(shard.pairs)
        return pairs
