"""The coordinator: pull-based unit scheduling + deterministic merge.

The sharded executor used to split the unit sequence into ``workers``
contiguous chunks up front.  Static chunking is fragile under skew — one
dense cluster of ``R_Q`` leaves makes one chunk arbitrarily more expensive
than the rest and every other worker goes idle.  The
:class:`UnitCoordinator` replaces it with *pull* scheduling: workers ask
for the next unit when they finish the previous one, so a worker stuck on
an expensive unit simply stops pulling while the others drain the queue —
which is work stealing without a stealing protocol.

Determinism is preserved by separating *assignment* from *merge order*:
whichever worker produced a unit's result, results are folded back in unit
index order, so the merged pair list and every merged statistic are
byte-identical to the serial traversal (and to any other assignment).

For carry-chained algorithms (NM-CIJ with the REUSE handoff) the
coordinator degrades to a pipeline: unit ``k+1`` is not handed out until
unit ``k``'s result — whose outbound REUSE buffer seeds ``k+1`` — has been
recorded.  That reproduces the serial reuse chain exactly (work-optimal,
not wall-clock-optimal), matching the fork pool's boundary pipeline from
the pre-coordinator executor.

The same coordinator instance serves every worker plane: the inline loop,
fork-pool dispatcher threads, and the per-node driver threads of the
distributed executor all call :meth:`next_assignment` /
:meth:`record_result` under one lock.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.algorithms import JoinContext
from repro.engine.units import WorkUnit


@dataclass(frozen=True)
class Assignment:
    """One unit handed to one worker, with its inbound carry (if chained)."""

    index: int
    unit: WorkUnit
    carry: Optional[object] = None


class UnitCoordinator:
    """Owns the unit queue, hands out work on demand, merges in order.

    Thread-safe; one instance per join execution.  ``chained`` turns the
    queue into a carry pipeline (at most one unit outstanding at a time).
    """

    def __init__(self, units: Sequence[WorkUnit], chained: bool = False):
        self._units: List[WorkUnit] = list(units)
        self._chained = chained
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._next_index = 0
        self._results: Dict[int, object] = {}
        self._carry: Optional[object] = None
        self._carry_ready = True  # the first unit needs no inbound carry
        self._error: Optional[BaseException] = None
        #: worker id -> unit indices handed to it, in pull order.  This is
        #: the scheduling trace the skew tests inspect: under skew the
        #: per-worker counts stay balanced, and across runs the traces may
        #: differ while the merged output does not.
        self.assignments: Dict[str, List[int]] = {}

    # ------------------------------------------------------------------
    # worker-facing pull API
    # ------------------------------------------------------------------
    def next_assignment(self, worker_id: str) -> Optional[Assignment]:
        """The next unit for ``worker_id``; ``None`` when the queue is done.

        In chained mode the call blocks until the previous unit's result
        (and with it the inbound carry) is available; a recorded abort
        unblocks every waiter with ``None``.
        """
        with self._ready:
            while True:
                if self._error is not None or self._next_index >= len(self._units):
                    return None
                if self._chained and not self._carry_ready:
                    self._ready.wait()
                    continue
                index = self._next_index
                self._next_index += 1
                carry = self._carry if self._chained else None
                if self._chained:
                    # Pipeline: nothing else is handed out until this
                    # unit's outbound carry comes back.
                    self._carry_ready = False
                self.assignments.setdefault(worker_id, []).append(index)
                return Assignment(index=index, unit=self._units[index], carry=carry)

    def record_result(self, index: int, result) -> None:
        """Store one unit's :class:`ShardResult`; releases the pipeline."""
        with self._ready:
            self._results[index] = result
            if self._chained:
                self._carry = result.carry
                self._carry_ready = True
            self._ready.notify_all()

    def abort(self, error: BaseException) -> None:
        """Record a worker failure and wake every blocked puller."""
        with self._ready:
            if self._error is None:
                self._error = error
            self._ready.notify_all()

    @property
    def error(self) -> Optional[BaseException]:
        with self._lock:
            return self._error

    def peek_pending(self, depth: int) -> List[WorkUnit]:
        """The next (up to) ``depth`` units not yet handed out — advisory,
        for prefetch planning; does not consume them."""
        with self._lock:
            return self._units[self._next_index : self._next_index + depth]

    # ------------------------------------------------------------------
    # deterministic ordered merge
    # ------------------------------------------------------------------
    def results_in_order(self) -> List[object]:
        """Every unit's result, in unit index order; raises if incomplete."""
        with self._lock:
            missing = [i for i in range(len(self._units)) if i not in self._results]
            if missing:
                raise RuntimeError(
                    f"coordinator missing results for units {missing[:5]}"
                    f"{'...' if len(missing) > 5 else ''}"
                )
            return [self._results[index] for index in range(len(self._units))]

    def merge(
        self,
        ctx: JoinContext,
        base_accesses: int,
        absorb_counters: bool,
    ) -> List[Tuple[int, int]]:
        """Fold unit results into the parent context, in unit order.

        Pairs are concatenated; scalar statistics are summed; each unit's
        progress curve is replayed at the offset of everything that ran
        before it, which keeps the merged curve monotone and identical
        across worker planes.  When the workers charged their own counter
        copies (fork, node subprocess) their deltas are absorbed into the
        parent counters so the shared disk's view stays complete.
        """
        pairs: List[Tuple[int, int]] = []
        pair_base = 0
        for shard in self.results_in_order():
            ctx.stats.accumulate(shard.stats)
            ctx.cell_stats.merge(shard.cell_stats)
            ctx.filter_stats.merge(shard.filter_stats)
            for sample in shard.stats.progress:
                ctx.stats.record_progress(
                    base_accesses + sample.page_accesses,
                    pair_base + sample.pairs_reported,
                )
            if absorb_counters:
                ctx.disk.counters.absorb(shard.counters)
            base_accesses += shard.counters.page_accesses
            pair_base += len(shard.pairs)
            pairs.extend(shard.pairs)
        return pairs
