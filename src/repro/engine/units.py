"""The work-unit plane: serializable, ordered descriptors of join work.

The sharded executor used to pass *materialised* shard units around — the
``Node`` objects of ``R_Q`` leaves, :class:`~repro.join.synchronous.JoinPartition`
instances for FM — which tied scheduling to in-process object graphs (fork
inheritance).  A :class:`WorkUnit` instead names a unit by what is on disk:

* NM-CIJ / PM-CIJ — the page id of one Hilbert-ordered ``R_Q`` leaf;
* FM-CIJ — the seed page-id pairs of one top-level ``R'_P`` join partition.

That makes a unit (a) *serializable* — it crosses the NDJSON node protocol
as canonical JSON and a worker re-opens the pages from the shared backend —
and (b) *ordered* — ``index`` is the unit's position in the algorithm's
serial traversal, which is all the deterministic merge needs: results are
folded in index order, so the merged pair list is byte-identical to serial
no matter which worker produced which unit.

``needs_carry`` marks units that participate in a shard-boundary carry
chain (NM-CIJ's REUSE buffer): the coordinator then sequences them as a
pipeline, seeding each unit with its predecessor's outbound carry.

Enumeration (:meth:`~repro.engine.algorithms.JoinAlgorithm.work_units`) is
charged to the dispatching process exactly like the old ``shard_units``
path; *resolving* a descriptor back into a runnable object
(:meth:`~repro.engine.algorithms.JoinAlgorithm.resolve_unit`) is uncounted
(:meth:`~repro.index.rtree.RTree.peek_node`), mirroring fork semantics
where the already-read node objects crossed into workers for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple


@dataclass(frozen=True, order=True)
class WorkUnit:
    """One schedulable slice of a join phase, by page-range payload."""

    #: Registry name of the algorithm the unit belongs to (``"nm"``...).
    algorithm: str
    #: Position in the algorithm's serial unit order (the merge key).
    index: int
    #: Page-range payload: ``(leaf_page_id,)`` for the leaf-shaped
    #: algorithms, a tuple of ``(page_p, page_q)`` seed pairs for FM.
    payload: Tuple
    #: Whether the unit is part of the REUSE carry chain (handoff).
    needs_carry: bool = False

    def to_wire(self) -> Dict[str, Any]:
        """The unit as a JSON-safe mapping (tuples become lists)."""
        return {
            "algorithm": self.algorithm,
            "index": self.index,
            "payload": [
                list(item) if isinstance(item, tuple) else item
                for item in self.payload
            ],
            "needs_carry": self.needs_carry,
        }

    @staticmethod
    def from_wire(wire: Dict[str, Any]) -> "WorkUnit":
        """Rebuild a unit from :meth:`to_wire` output (lists become tuples)."""
        return WorkUnit(
            algorithm=wire["algorithm"],
            index=wire["index"],
            payload=tuple(
                tuple(item) if isinstance(item, list) else item
                for item in wire["payload"]
            ),
            needs_carry=bool(wire.get("needs_carry", False)),
        )
