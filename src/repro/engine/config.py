"""Engine configuration: one record that drives every join execution.

The :class:`EngineConfig` collects the knobs that used to be scattered over
the standalone algorithm functions (``reuse_cells``, ``use_phi_pruning``,
``progress_interval``) together with the execution strategy introduced by
the engine (``executor``, ``workers``, ``pool``).  It is a frozen dataclass
so a config can be shared between runs and safely inherited by forked
workers.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from repro.geometry.kernels import COMPUTE_MODES
from repro.geometry.rect import Rect
from repro.storage.backends import canonical_backend

#: Executor identifiers accepted by :attr:`EngineConfig.executor`.
EXECUTORS = ("serial", "sharded", "distributed")

#: Worker-pool strategies accepted by :attr:`EngineConfig.pool`.
POOLS = ("auto", "fork", "inline")

#: Shard-boundary REUSE handoff modes accepted by
#: :attr:`EngineConfig.reuse_handoff`.
HANDOFF_MODES = ("auto", "always", "never")

#: Candidate-discovery strategies of the dynamic delta join
#: (:attr:`EngineConfig.delta_candidates`).
DELTA_CANDIDATES = ("filter", "scan")

#: Prefetch pipeline modes accepted by :attr:`EngineConfig.prefetch`.
PREFETCH_MODES = ("off", "next_batch", "next_shard")


@dataclass(frozen=True)
class DistributedConfig:
    """The distributed tier's knobs, in one place.

    These used to sprawl over :class:`EngineConfig` as six flat fields
    (``nodes``, ``node_timeout``, ``node_retries``, ``node_min_ready``,
    ``fault_plan``, ``cell_cache``); they still exist there as deprecation
    shims — every legacy kwarg and CLI flag keeps working, and the two
    views are kept in sync by ``EngineConfig.__post_init__`` — but new code
    reads ``config.distributed.*``.

    Attributes
    ----------
    nodes, node_timeout, node_retries, min_ready, fault_plan, cell_cache:
        See the corresponding :class:`EngineConfig` attributes
        (``min_ready`` is the nested name of ``node_min_ready``).
    stage_hints:
        Whether the coordinator piggybacks its ``peek_pending()`` lookahead
        on unit assignments so nodes stage upcoming units' opening pages
        (one batched ``fetch_async`` overlapping the current unit's
        computation).  ``None`` (default) auto-enables exactly when the
        store is remote — that is where a round trip is worth hiding —
        and stays off for local file/sqlite nodes.  Logical counters are
        unaffected either way; staging shows up only in the node's
        transport stats (``pages_prefetched`` etc. in the run report).
    """

    nodes: int = 2
    node_timeout: float = 60.0
    node_retries: int = 2
    min_ready: Optional[int] = None
    fault_plan: Optional[str] = None
    cell_cache: bool = False
    stage_hints: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("nodes must be at least 1")
        if self.node_timeout <= 0:
            raise ValueError("node_timeout must be positive")
        if self.node_retries < 0:
            raise ValueError("node_retries must be >= 0")
        if self.min_ready is not None and self.min_ready < 1:
            raise ValueError("node_min_ready must be at least 1")


#: EngineConfig's legacy flat distributed fields → their DistributedConfig
#: names, with the flat defaults (the shim-sync logic needs both).
_DISTRIBUTED_SHIMS = {
    "nodes": ("nodes", 2),
    "node_timeout": ("node_timeout", 60.0),
    "node_retries": ("node_retries", 2),
    "node_min_ready": ("min_ready", None),
    "fault_plan": ("fault_plan", None),
    "cell_cache": ("cell_cache", False),
}


@dataclass(frozen=True)
class EngineConfig:
    """Execution parameters for one :class:`repro.engine.JoinEngine` run.

    Attributes
    ----------
    executor:
        ``"serial"`` preserves the paper's single-threaded semantics;
        ``"sharded"`` schedules the algorithm's work units — Hilbert-
        ordered ``R_Q`` leaves for NM-CIJ/PM-CIJ, top-level ``R'_P`` join
        partitions for FM-CIJ — across local workers through the pull-based
        coordinator; ``"distributed"`` runs the same coordinator over
        ``nodes`` worker subprocesses that reopen the shared file/sqlite
        backend read-only and speak the NDJSON unit protocol
        (:mod:`repro.engine.node`).  Merged pairs and deterministic
        counters are byte-identical to serial for every executor.
    workers:
        Number of local worker processes for the sharded executor.
    distributed:
        The distributed tier's knobs as one nested
        :class:`DistributedConfig`.  ``None`` (default) derives it from
        the flat shim fields below, which keep working as deprecation
        shims; passing both a nested value and a conflicting flat kwarg is
        an error.  New code reads ``config.distributed.*``.
    nodes:
        Number of worker subprocesses for the distributed executor.  Each
        node is a separate interpreter (``python -m repro.engine.node``)
        with its own read-only handle on the shared backend, so the tier
        needs an on-disk store (``file`` or ``sqlite``; ``memory`` is
        rejected at execution time).
    node_timeout:
        Seconds of per-request *silence* (no reply, no heartbeat) after
        which the distributed executor declares a node hung, quarantines
        it and releases its leased unit back to the queue.  Heartbeats
        count as liveness, so a slow-but-alive unit computation does not
        trip the timeout.
    node_retries:
        How many times one unit may be re-leased to another node after
        its worker failed (crash, hang, protocol error).  ``0`` restores
        the pre-fault-tolerance behaviour: the first node failure aborts
        the run.  A unit that fails on ``node_retries + 1`` workers is
        treated as poisoned and aborts the run loudly.
    node_min_ready:
        Readiness quorum that opens the distributed drive phase.  ``None``
        (default) waits for every spawned node — the original all-nodes
        barrier, which keeps unit pulls balanced.  A smaller value starts
        the run as soon as that many nodes are up; slower nodes join the
        pull loop mid-run (elastic late join).
    fault_plan:
        Deterministic fault-injection spec for the distributed tier
        (:mod:`repro.engine.faults`), e.g.
        ``"crash@node-1:after=2;ready_delay@node-0:seconds=0.2"``.
        Testing/chaos knob: merged pairs and deterministic counters must
        stay byte-identical to serial no matter which faults fire.  Only
        meaningful with ``executor="distributed"``.
    pool:
        ``"fork"`` runs shards in forked ``multiprocessing`` workers,
        ``"inline"`` runs them sequentially in-process (same shard/merge
        path, useful for tests and platforms without ``fork``), ``"auto"``
        tries ``fork`` and falls back to ``inline``.
    reuse_handoff:
        Whether a sharded NM-CIJ carries the REUSE buffer across shard
        boundaries, so the ``P``-cells computed for shard *k*'s last leaf
        are visible to shard *k+1* instead of recomputed.  ``"always"``
        chains the handoff in every pool (under ``fork`` the shards then
        run as a pipeline: work-optimal — recomputation drops to exactly
        serial levels — but not wall-clock-optimal); ``"never"`` keeps
        every shard independent (maximum parallelism, boundary cells
        recomputed); ``"auto"`` (default) enables the handoff only when
        ``pool="inline"`` is configured, where the shards run sequentially
        anyway and the handoff costs nothing.
    reuse_cells:
        NM-CIJ's REUSE buffer (Section IV-B).
    use_phi_pruning:
        NM-CIJ's Lemma-3 non-leaf pruning rule.
    progress_interval:
        Granularity (in produced pairs) of FM-CIJ's progressiveness samples.
    domain:
        Space domain ``U``; defaults to the union of the two tree MBRs.
    storage:
        Page-store backend the run's workload lives on
        (``"memory" | "file" | "sqlite" | "remote"``; the remote backend
        also accepts ``remote+file`` / ``remote+sqlite`` to pick the
        spawned page server's backing).  ``None`` accepts whatever the
        trees were built on; a concrete value makes the engine verify the
        trees' disk really uses that backend, so a config and a workload
        built from different sources cannot silently disagree.  The
        workload builders (:func:`repro.datasets.workload.build_workload`,
        :func:`repro.common_influence_join`, the CLI and the experiment
        drivers) use the same names to construct the disk.
    storage_path:
        Backing path for the serializing backends (``None`` = an owned
        temporary file).  Like ``storage``, a concrete value is verified
        against the trees' page store at run time; the workload builders
        use it to place the store.
    delta_candidates:
        How a :class:`~repro.dynamic.DynamicJoinSession` finds the
        candidate partners of a dirty cell during incremental maintenance:
        ``"filter"`` (default) probes the opposite source tree with the
        paper's ConditionalFilter, ``"scan"`` MBR-scans the maintained
        opposite diagram (an independent path the differential tests use
        to cross-check the filter).
    prefetch:
        Overlapped-I/O mode of the run (:mod:`repro.storage.prefetch`).
        ``"off"`` (default) keeps every page fetch synchronous, as in the
        paper's cost model.  ``"next_batch"`` issues the MBR-pruned
        candidate pages of upcoming units (``R_Q`` leaf batches for NM/PM,
        synchronous-traversal partitions for FM) while the current batch
        computes its Voronoi cells.  ``"next_shard"`` additionally makes
        the sharded executor stage the next shard's opening pages while
        the current shard runs; it requires the sharded executor and runs
        the shards through the inline pool (staged pages live in the
        dispatching process, so ``pool="fork"`` is rejected and ``"auto"``
        resolves to inline — the overlap comes from the backend's async
        reader thread, not from forked workers).
        Whatever the mode, the emitted pairs and the logical hit/miss
        counters are byte-identical to ``"off"``; only the physical
        stall/overlap accounting in ``disk.storage_stats()`` changes.
    prefetch_depth:
        How many units ahead the ``next_batch``/``next_shard`` pipelines
        plan (also the number of opening units staged per shard).
    compute:
        Geometry inner-loop implementation: ``"scalar"`` (pure Python, the
        oracle) or ``"kernel"`` (vectorised NumPy kernels from
        :mod:`repro.geometry.kernels`; requires NumPy).  Pairs, join/filter
        statistics and every I/O counter are byte-identical across modes —
        only wall-clock CPU changes.  ``None`` (default) resolves at run
        time from ``$REPRO_COMPUTE``, falling back to ``"scalar"``.
        Dynamic maintenance (:mod:`repro.dynamic`) always runs scalar.
    cell_cache:
        Opt-in per-node cache of exact ``P`` Voronoi cells that outlives
        NM-CIJ's per-leaf REUSE buffer, deduping recomputation across the
        work units a node executes.  A cell depends only on ``P`` and the
        domain, so pairs are unchanged; the recomputation counters
        (``cells_computed_p`` and ``tree_p`` accesses) drop below the
        paper's cost model, which is why this is off by default and the
        saving is reported separately as ``JoinStats.cells_cached_p``.
    """

    executor: str = "serial"
    workers: int = 2
    nodes: int = 2
    node_timeout: float = 60.0
    node_retries: int = 2
    node_min_ready: Optional[int] = None
    fault_plan: Optional[str] = None
    distributed: Optional[DistributedConfig] = None
    pool: str = "auto"
    reuse_handoff: str = "auto"
    reuse_cells: bool = True
    use_phi_pruning: bool = True
    progress_interval: int = 1000
    domain: Optional[Rect] = None
    storage: Optional[str] = None
    storage_path: Optional[str] = None
    delta_candidates: str = "filter"
    prefetch: str = "off"
    prefetch_depth: int = 2
    compute: Optional[str] = None
    cell_cache: bool = False

    def __post_init__(self) -> None:
        self._sync_distributed()
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {self.executor!r}; expected one of {EXECUTORS}"
            )
        if self.pool not in POOLS:
            raise ValueError(f"unknown pool {self.pool!r}; expected one of {POOLS}")
        if self.reuse_handoff not in HANDOFF_MODES:
            raise ValueError(
                f"unknown reuse_handoff {self.reuse_handoff!r}; "
                f"expected one of {HANDOFF_MODES}"
            )
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.fault_plan is not None:
            if self.executor != "distributed":
                raise ValueError(
                    "fault_plan injects node faults and requires "
                    "executor='distributed'"
                )
            from repro.engine.faults import FaultPlan

            FaultPlan.from_spec(self.fault_plan)  # fail fast on a bad spec
        if self.executor == "distributed" and self.prefetch != "off":
            raise ValueError(
                "prefetch is not available with executor='distributed': "
                "staged pages live in the coordinating process, which node "
                "subprocesses (their own handles, their own address space) "
                "would never see"
            )
        if self.storage is not None:
            canonical_backend(self.storage)  # fail fast on an unknown spec
        if self.delta_candidates not in DELTA_CANDIDATES:
            raise ValueError(
                f"unknown delta_candidates {self.delta_candidates!r}; "
                f"expected one of {DELTA_CANDIDATES}"
            )
        if self.prefetch not in PREFETCH_MODES:
            raise ValueError(
                f"unknown prefetch mode {self.prefetch!r}; "
                f"expected one of {PREFETCH_MODES}"
            )
        if self.prefetch_depth < 1:
            raise ValueError("prefetch_depth must be at least 1")
        if self.compute is not None and self.compute not in COMPUTE_MODES:
            raise ValueError(
                f"unknown compute mode {self.compute!r}; "
                f"expected one of {COMPUTE_MODES}"
            )
        if self.prefetch == "next_shard" and self.executor != "sharded":
            raise ValueError(
                "prefetch='next_shard' overlaps shard boundaries and requires "
                "executor='sharded'; use prefetch='next_batch' with the serial "
                "executor"
            )
        if self.prefetch == "next_shard" and self.pool == "fork":
            raise ValueError(
                "prefetch='next_shard' stages pages in the dispatching "
                "process, which forked workers (their own handles, their own "
                "address space) would never see; use pool='inline' (or "
                "'auto', which then runs the shards inline) or "
                "prefetch='next_batch'"
            )

    def _sync_distributed(self) -> None:
        """Keep the nested ``distributed`` block and the flat shims equal.

        Built without ``distributed``, the nested block is derived from the
        flat fields (every legacy kwarg keeps working).  Built *with* it,
        the nested block is authoritative and the flat shims are synced
        from it — unless a flat kwarg was also set to a conflicting
        non-default value, which is a contradiction reported loudly rather
        than silently resolved.
        """
        if self.distributed is None:
            object.__setattr__(
                self,
                "distributed",
                DistributedConfig(
                    **{
                        nested: getattr(self, flat)
                        for flat, (nested, _) in _DISTRIBUTED_SHIMS.items()
                    }
                ),
            )
            return
        for flat, (nested, default) in _DISTRIBUTED_SHIMS.items():
            flat_value = getattr(self, flat)
            nested_value = getattr(self.distributed, nested)
            if flat_value != default and flat_value != nested_value:
                raise ValueError(
                    f"conflicting distributed settings: {flat}={flat_value!r} "
                    f"(legacy kwarg) vs distributed.{nested}={nested_value!r}; "
                    "set the value in one place only"
                )
            object.__setattr__(self, flat, nested_value)

    def replace(self, **overrides) -> "EngineConfig":
        """A copy of this config with the given fields replaced.

        The flat distributed shims and the nested block stay coherent:
        overriding a flat field (``nodes=4``) rebuilds the nested block
        from the updated flat fields, while overriding ``distributed``
        resets any flat shim *not* explicitly overridden alongside it, so
        the nested value wins instead of colliding with a stale shim.
        """
        if "distributed" not in overrides and any(
            flat in overrides for flat in _DISTRIBUTED_SHIMS
        ):
            # Rebuild the nested block from the overridden flat fields,
            # carrying over what has no flat twin (stage_hints).
            overrides["distributed"] = DistributedConfig(
                stage_hints=self.distributed.stage_hints,
                **{
                    nested: overrides.get(flat, getattr(self.distributed, nested))
                    for flat, (nested, _) in _DISTRIBUTED_SHIMS.items()
                },
            )
        elif overrides.get("distributed") is not None:
            for flat, (_, default) in _DISTRIBUTED_SHIMS.items():
                overrides.setdefault(flat, default)
        return dataclasses.replace(self, **overrides)
