"""Executors: how the engine drives an algorithm's join phase.

* :class:`SerialExecutor` calls the algorithm's ``run_join`` directly and
  reproduces the paper's single-threaded semantics bit for bit.
* :class:`ShardedExecutor` enumerates the algorithm's ordered
  :class:`~repro.engine.units.WorkUnit` descriptors — Hilbert-ordered
  ``R_Q`` leaves for NM-CIJ/PM-CIJ, top-level ``R'_P`` join partitions for
  FM-CIJ — and schedules them through a pull-based
  :class:`~repro.engine.coordinator.UnitCoordinator` over local ``fork``
  workers (or inline, sequentially, through the very same unit/merge
  path).  Each unit runs against its own counter snapshot and the
  dispatch-time buffer state; the coordinator merges result pairs and
  every statistics record deterministically, in unit order, so the merged
  pair list is byte-identical to the serial one and the merged counters
  are the exact sum of the per-unit deltas.
* :class:`DistributedExecutor` runs the same coordinator over ``nodes``
  worker *subprocesses* (:mod:`repro.engine.node`) that reopen the shared
  file/sqlite backend read-only and exchange units and results over an
  NDJSON pipe protocol — the process-simulated form of an elastic worker
  tier over shared storage.

Parallel-correctness argument: the pairs a unit reports depend only on the
unit itself, the two source trees and the domain — never on buffer state,
the REUSE carry-over or the work of other units — so unit results merged
in unit order compose exactly like the serial loop, *whatever* the dynamic
assignment of units to workers was.  What *can* differ is cost: without
the handoff the REUSE buffer cannot carry cells across a unit boundary, so
a parallel NM-CIJ recomputes more ``P`` cells than the serial run.  The
*handoff* mode closes that gap: the coordinator chains the units into a
pipeline, seeding each with its predecessor's final REUSE buffer
(``JoinContext.carry``) — work-optimal (recomputation drops to exactly
serial levels), not wall-clock-optimal, and the cost is reported honestly
through the merged statistics either way.

The inline pool also isolates the shared LRU buffer: every unit starts
from the dispatch-time buffer state a forked worker would inherit, and the
parent's buffer is rewound afterwards — so inline, forked and node-based
executions produce identical counters, not just identical pairs.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.join.conditional_filter import FilterStats
from repro.join.result import JoinStats
from repro.storage.counters import IOCounters
from repro.voronoi.single import CellComputationStats

from repro.engine.algorithms import JoinAlgorithm, JoinContext
from repro.engine.config import EngineConfig
from repro.engine.coordinator import UnitCoordinator
from repro.engine.units import WorkUnit


@dataclass
class ShardResult:
    """Everything one work unit sends back to the merging coordinator."""

    index: int
    pairs: List[Tuple[int, int]]
    stats: JoinStats
    cell_stats: CellComputationStats
    filter_stats: FilterStats
    #: Page-traffic delta accumulated by this unit (its own snapshot diff).
    counters: IOCounters
    #: Outbound carry state (``supports_handoff`` algorithms).  Inside one
    #: process this is the live REUSE buffer; crossing the node protocol it
    #: is the buffer's JSON wire form, which the coordinator forwards
    #: opaquely to whichever node draws the next chained unit.
    carry: Optional[object] = None
    #: Worker-side physical transport snapshot riding along with the unit:
    #: ``{"worker": id, "seq": units-served, "stats": StorageStats dict}``.
    #: The stats are *cumulative* for the worker handle, so the executor
    #: keeps only the highest-``seq`` snapshot per worker and absorbs each
    #: worker's total exactly once — retries and quarantines cannot
    #: double-count (see ``DiskManager.absorb_worker_storage``).
    storage: Optional[Dict[str, object]] = None


class SerialExecutor:
    """Run the join phase exactly as the standalone functions used to."""

    name = "serial"

    def execute(self, algorithm: JoinAlgorithm, ctx: JoinContext) -> List[Tuple[int, int]]:
        return algorithm.run_join(ctx)


#: Worker-process state installed by the pool initializer (inherited cheaply
#: through ``fork``; only unit indices, carries and results cross the pipe).
_WORKER_STATE: Dict[str, object] = {}


def _worker_init(algorithm, ctx, units, handoff: bool = False) -> None:
    _WORKER_STATE["algorithm"] = algorithm
    _WORKER_STATE["ctx"] = ctx
    _WORKER_STATE["units"] = units
    _WORKER_STATE["handoff"] = handoff
    _WORKER_STATE["served"] = 0
    # The worker's forked buffer copy *is* the parent's dispatch-time
    # state; capture it so every unit this worker picks up starts from
    # it, even when the pool hands one worker many units.
    _WORKER_STATE["dispatch_buffer"] = ctx.disk.buffer_state()
    # The page dict / decoded cache arrive through fork copy-on-write, but
    # file descriptors and database connections must not be shared with the
    # parent: swap in this worker's own read-only backend handles.
    ctx.disk.reopen_for_worker()


def _worker_run_shard(index: int, carry: Optional[object] = None) -> ShardResult:
    algorithm = _WORKER_STATE["algorithm"]
    ctx = _WORKER_STATE["ctx"]
    units = _WORKER_STATE["units"]
    # Rewind to the dispatch-time buffer before every unit: a worker that
    # wins the queue race for another unit must not leak the previous
    # unit's warm pages into it (the inline pool rewinds identically,
    # keeping counters byte-equal across worker planes).
    ctx.disk.restore_buffer_state(_WORKER_STATE["dispatch_buffer"])
    result = _execute_shard(algorithm, ctx, [units[index]], index, carry=carry)
    if not _WORKER_STATE.get("handoff"):
        # Nobody consumes the outbound carry without the boundary handoff;
        # keep the (potentially large) REUSE buffer off the result pipe.
        result.carry = None
    # Cumulative transport snapshot of this worker's own handle (counters
    # were zeroed at reopen, so the parent's pre-fork traffic is excluded).
    _WORKER_STATE["served"] += 1
    result.storage = {
        "worker": f"fork-{os.getpid()}",
        "seq": _WORKER_STATE["served"],
        "stats": storage_stats_snapshot(ctx.disk),
    }
    return result


def storage_stats_snapshot(disk) -> Dict[str, object]:
    """A worker disk's ``storage_stats()`` as a plain (wire-safe) dict."""
    return dataclasses.asdict(disk.storage_stats())


def collect_worker_snapshot(
    snapshots: Dict[str, Tuple[int, Dict[str, object]]],
    lock: threading.Lock,
    result: ShardResult,
    worker_id: Optional[str] = None,
) -> None:
    """Keep the latest cumulative storage snapshot per worker handle."""
    if result.storage is None:
        return
    worker = str(result.storage.get("worker") or worker_id or "")
    if not worker:
        return
    seq = int(result.storage.get("seq", 0))
    stats = result.storage.get("stats")
    if not isinstance(stats, dict):
        return
    with lock:
        if seq >= snapshots.get(worker, (0, None))[0]:
            snapshots[worker] = (seq, stats)


def absorb_worker_snapshots(
    ctx: JoinContext, snapshots: Dict[str, Tuple[int, Dict[str, object]]]
) -> None:
    if snapshots:
        ctx.disk.absorb_worker_storage([stats for _, stats in snapshots.values()])


def _execute_shard(
    algorithm: JoinAlgorithm,
    parent_ctx: JoinContext,
    units: Sequence[object],
    index: int,
    carry: Optional[object] = None,
) -> ShardResult:
    """Process one unit batch with isolated statistics and a fresh counter
    base.

    In a forked worker or a node subprocess the disk object is the
    worker's own copy, so the snapshot/diff pair measures exactly this
    batch's traffic; inline, the same snapshot/diff isolates the delta on
    the shared counters.  ``carry`` seeds the inbound boundary state (the
    previous unit's REUSE buffer) when the handoff is enabled.  Units may
    arrive as :class:`~repro.engine.units.WorkUnit` descriptors, which are
    resolved back to runnable objects without charging I/O (the dispatcher
    already charged the enumeration).
    """
    materialised = [algorithm._materialised(parent_ctx, unit) for unit in units]
    disk = parent_ctx.disk
    snapshot = disk.counters.snapshot()
    stats = JoinStats(algorithm=algorithm.display_name)
    cell_stats = CellComputationStats()
    filter_stats = FilterStats()
    shard_ctx = JoinContext(
        tree_p=parent_ctx.tree_p,
        tree_q=parent_ctx.tree_q,
        domain=parent_ctx.domain,
        config=parent_ctx.config,
        stats=stats,
        cell_stats=cell_stats,
        filter_stats=filter_stats,
        start_counters=snapshot,
        prepared=parent_ctx.prepared,
        carry=carry,
        cell_cache=parent_ctx.cell_cache,
    )
    pairs = algorithm.process_units(shard_ctx, materialised)
    return ShardResult(
        index=index,
        pairs=pairs,
        stats=stats,
        cell_stats=cell_stats,
        filter_stats=filter_stats,
        counters=disk.counters.diff(snapshot),
        carry=shard_ctx.carry,
    )


class ShardedExecutor:
    """Schedule the algorithm's work units across local workers and merge."""

    name = "sharded"

    def __init__(self, workers: int = 2, pool: str = "auto", reuse_handoff: str = "auto"):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self.pool = pool
        self.reuse_handoff = reuse_handoff
        #: Scheduling trace of the most recent run (worker id -> unit
        #: indices, in pull order); inspection hook for the skew tests.
        self.last_assignments: Optional[Dict[str, List[int]]] = None

    def execute(self, algorithm: JoinAlgorithm, ctx: JoinContext) -> List[Tuple[int, int]]:
        if not algorithm.supports_sharding:
            raise ValueError(
                f"{algorithm.display_name} does not support sharded execution; "
                "its join phase has no shard units"
            )
        # Enumerating the units is part of the join and is charged to the
        # parent, once, before any worker starts.
        units = algorithm.work_units(ctx)
        if not units:
            return []
        handoff = self._handoff_enabled(algorithm)
        coordinator = UnitCoordinator(units, chained=handoff)
        base_accesses = ctx.disk.counters.diff(ctx.start_counters).page_accesses
        forked = False
        if (
            ctx.config.prefetch != "next_shard"
            and self.pool in ("auto", "fork")
            and len(units) > 1
        ):
            # next_shard staging lives in this process; forked workers
            # would never see it (the config rejects an explicit
            # pool='fork'), so it always runs inline, where the async
            # reader thread genuinely overlaps upcoming units' fetches
            # with the current unit's computation.
            forked = self._run_units_fork(algorithm, ctx, coordinator, units, handoff)
        if not forked:
            self._run_units_inline(algorithm, ctx, coordinator, len(units))
        self.last_assignments = dict(coordinator.assignments)
        return coordinator.merge(ctx, base_accesses, absorb_counters=forked)

    def _handoff_enabled(self, algorithm: JoinAlgorithm) -> bool:
        """Whether carry state is chained between units (a pipeline).

        ``"auto"`` enables the handoff only for the *configured* inline
        pool, where units run sequentially anyway and the serial REUSE
        chain is free; ``"always"`` additionally pipelines forked workers
        (work-optimal, not wall-clock-optimal); ``"never"`` disables it.
        """
        if not algorithm.supports_handoff:
            return False
        if self.reuse_handoff == "always":
            return True
        if self.reuse_handoff == "never":
            return False
        return self.pool == "inline"

    def _run_units_fork(
        self,
        algorithm: JoinAlgorithm,
        ctx: JoinContext,
        coordinator: UnitCoordinator,
        units: Sequence[WorkUnit],
        handoff: bool,
    ) -> bool:
        """Drain the coordinator through a fork pool; False = unavailable.

        One dispatcher thread per pool worker pulls assignments and blocks
        in ``pool.apply`` while its unit runs, so a worker stuck on an
        expensive unit stops pulling and the others drain the queue — the
        pull scheduling is identical to the inline and node planes.  Only
        pool *creation* falls back to inline; an error raised by the join
        itself inside a worker propagates unchanged.
        """
        size = min(self.workers, len(units))
        pool = self._make_fork_pool(algorithm, ctx, units, handoff, size)
        if pool is None:
            return False
        errors: List[BaseException] = []
        snapshots: Dict[str, Tuple[int, Dict[str, object]]] = {}
        snapshot_lock = threading.Lock()

        def drive(worker_id: str) -> None:
            while True:
                assignment = coordinator.next_assignment(worker_id)
                if assignment is None:
                    return
                try:
                    result = pool.apply(
                        _worker_run_shard, (assignment.index, assignment.carry)
                    )
                except BaseException as error:  # noqa: BLE001 - reraised below
                    errors.append(error)
                    coordinator.abort(error)
                    return
                collect_worker_snapshot(snapshots, snapshot_lock, result)
                coordinator.record_result(assignment.index, result)

        with pool:
            threads = [
                threading.Thread(target=drive, args=(f"fork-{i}",))
                for i in range(size)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        if errors:
            raise errors[0]
        absorb_worker_snapshots(ctx, snapshots)
        return True

    def _run_units_inline(
        self,
        algorithm: JoinAlgorithm,
        ctx: JoinContext,
        coordinator: UnitCoordinator,
        unit_count: int,
    ) -> None:
        """Sequential in-process drain through the same unit/merge path.

        Every unit is rewound to the dispatch-time buffer state a forked
        worker would inherit, so inline and forked runs charge identical
        counters; the parent's buffer is likewise rewound afterwards (a
        fork parent's buffer never sees the workers' traffic either).
        """
        isolate = unit_count > 1
        dispatch_state = ctx.disk.buffer_state() if isolate else None
        prefetcher = (
            ctx.disk.prefetcher if ctx.config.prefetch == "next_shard" else None
        )
        first = True
        try:
            while True:
                assignment = coordinator.next_assignment("inline-0")
                if assignment is None:
                    return
                if dispatch_state is not None and not first:
                    ctx.disk.restore_buffer_state(dispatch_state)
                first = False
                if prefetcher is not None:
                    # Stage upcoming units' opening pages now: the backend's
                    # worker thread fetches them while this unit computes.
                    pending = coordinator.peek_pending(ctx.config.prefetch_depth)
                    if pending:
                        pages = algorithm.prefetch_pages(ctx, pending)
                        if pages:
                            prefetcher.request(pages)
                try:
                    result = _execute_shard(
                        algorithm,
                        ctx,
                        [assignment.unit],
                        assignment.index,
                        carry=assignment.carry,
                    )
                except BaseException as error:  # noqa: BLE001 - reraised
                    coordinator.abort(error)
                    raise
                coordinator.record_result(assignment.index, result)
        finally:
            # Rewind even when a unit raises: the caller's drain then sees
            # the dispatch-time buffer, not a half-executed unit's, and a
            # follow-up run on the same disk starts from a known state.
            if dispatch_state is not None:
                ctx.disk.restore_buffer_state(dispatch_state)

    def _make_fork_pool(
        self,
        algorithm: JoinAlgorithm,
        ctx: JoinContext,
        units: Sequence[WorkUnit],
        handoff: bool,
        size: int,
    ):
        """A fork worker pool, or ``None`` when unavailable and pool='auto'."""
        try:
            context = multiprocessing.get_context("fork")
            return context.Pool(
                size,
                initializer=_worker_init,
                initargs=(algorithm, ctx, list(units), handoff),
            )
        except (OSError, ValueError, ImportError) as error:
            if self.pool == "fork":
                raise RuntimeError(f"fork worker pool unavailable: {error}") from error
            return None


class DistributedExecutor:
    """Run the coordinator over node subprocesses on a shared backend.

    Each node is a separate interpreter (``python -m repro.engine.node``)
    that reopens the run's file/sqlite store read-only, rebuilds the
    dispatch-time buffer state, and executes whatever units it pulls from
    the coordinator over an NDJSON pipe protocol
    (:mod:`repro.engine.node`).  Results merge in unit order, so pairs,
    statistics and deterministic counters are byte-identical to the serial
    run no matter how units were assigned.

    ``reuse_handoff="auto"`` *enables* the chained REUSE pipeline here
    (unlike the sharded executor's auto, which reserves it for the inline
    pool): a distributed run's default output must match serial counters
    exactly, and the chained pipeline — work-optimal, not
    wall-clock-optimal — is what restores the serial recomputation counts.

    Fault tolerance: a node failure (crash, silence past ``node_timeout``,
    protocol garbage, error reply) quarantines *that node* — killed,
    reaped, recorded in :attr:`quarantined` — and releases its leased unit
    back to the coordinator for any live node; a unit may be retried up to
    ``node_retries`` times before the run aborts.  Startup uses a
    min-quorum gate instead of an all-nodes barrier: the drive phase opens
    once ``min_ready`` nodes (default: all spawned) report ready, and
    slower nodes join the pull loop mid-run when their bootstrap finishes.
    The run degrades gracefully down to one survivor; only zero live
    workers with work still outstanding aborts loudly.
    """

    name = "distributed"

    #: Exponential retry backoff cap (seconds).
    MAX_BACKOFF = 1.0

    def __init__(
        self,
        nodes: int = 2,
        reuse_handoff: str = "auto",
        node_delays: Optional[Sequence[float]] = None,
        node_timeout: float = 60.0,
        node_retries: int = 2,
        min_ready: Optional[int] = None,
        fault_plan: Optional[object] = None,
        heartbeat_interval: Optional[float] = None,
        retry_backoff: float = 0.05,
        stage_hints: Optional[bool] = None,
    ):
        from repro.engine.faults import resolve_plan

        if nodes < 1:
            raise ValueError("nodes must be at least 1")
        if node_timeout <= 0:
            raise ValueError("node_timeout must be positive")
        if node_retries < 0:
            raise ValueError("node_retries must be >= 0")
        if min_ready is not None and min_ready < 1:
            raise ValueError("min_ready must be at least 1")
        self.nodes = nodes
        self.reuse_handoff = reuse_handoff
        #: Debug knob (tests only): artificial seconds each node sleeps per
        #: unit, indexed by node ordinal — used to force distinguishable
        #: pull interleavings in the skew/steal tests.
        self.node_delays = node_delays
        #: Max seconds of per-request *silence* (heartbeats count as
        #: liveness) before a node is declared hung and quarantined.
        self.node_timeout = node_timeout
        #: How many times one unit may be re-leased after failures.
        self.node_retries = node_retries
        #: Readiness quorum that opens the drive phase (None = all
        #: spawned nodes, the pre-elasticity barrier).
        self.min_ready = min_ready
        #: Deterministic fault plan (spec string or FaultPlan) — testing.
        self.fault_plan = resolve_plan(fault_plan)
        #: Piggyback coordinator lookahead on unit assignments so nodes
        #: stage upcoming units' opening pages (None = auto: on exactly
        #: when the store is remote, where a round trip is worth hiding).
        self.stage_hints = stage_hints
        self.heartbeat_interval = heartbeat_interval
        #: Base sleep before re-running a released unit (doubles per
        #: attempt, capped) so a transiently sick tier is not hammered.
        self.retry_backoff = retry_backoff
        #: Scheduling trace of the most recent run (node id -> unit
        #: indices, in pull order); inspection hook for the skew tests.
        self.last_assignments: Optional[Dict[str, List[int]]] = None
        #: node id -> failure description for nodes quarantined last run.
        self.quarantined: Dict[str, str] = {}
        #: unit index -> times its lease was released back (last run).
        self.retries: Dict[int, int] = {}
        #: node id -> subprocess pid (last run) — the reap tests poll these.
        self.node_pids: Dict[str, int] = {}
        #: Fault-injection + failure summary of the last run.
        self.last_run_report: Optional[Dict[str, object]] = None

    def _handoff_enabled(self, algorithm: JoinAlgorithm) -> bool:
        if not algorithm.supports_handoff:
            return False
        return self.reuse_handoff != "never"

    def execute(self, algorithm: JoinAlgorithm, ctx: JoinContext) -> List[Tuple[int, int]]:
        from repro.engine import node as node_plane

        if not algorithm.supports_sharding:
            raise ValueError(
                f"{algorithm.display_name} does not support distributed "
                "execution; its join phase has no shard units"
            )
        store = ctx.disk.store
        if not store.supports_worker_reopen or store.location is None:
            raise ValueError(
                "executor='distributed' needs a shared backend that node "
                "subprocesses can reopen read-only; use storage='file', "
                f"'sqlite' or 'remote' (the {store.name!r} store lives only "
                "in this process)"
            )
        units = algorithm.work_units(ctx)
        if not units:
            return []
        handoff = self._handoff_enabled(algorithm)
        # Auto stage-hints: over the remote page server every cold page is
        # a round trip, so the coordinator's lookahead is worth shipping;
        # local file/sqlite nodes read at memory-bus speed and skip it.
        stage = (
            self.stage_hints
            if self.stage_hints is not None
            else bool(store.supports_remote)
        )
        coordinator = UnitCoordinator(
            units, chained=handoff, max_attempts=self.node_retries + 1
        )
        base_accesses = ctx.disk.counters.diff(ctx.start_counters).page_accesses
        spec = node_plane.node_init_spec(algorithm, ctx, handoff, stage_hints=stage)
        count = min(self.nodes, len(units))
        quorum = min(self.min_ready if self.min_ready is not None else count, count)

        self.quarantined = {}
        self.node_pids = {}
        nodes: List[node_plane.NodeProcess] = []
        registry_lock = threading.Lock()
        snapshots: Dict[str, Tuple[int, Dict[str, object]]] = {}
        snapshot_lock = threading.Lock()
        state_lock = threading.Lock()
        state = {"ready": 0, "live": count}
        start_gate = threading.Event()
        errors: List[BaseException] = []

        def reevaluate_gate_locked() -> None:
            # Failed nodes shrink the quorum denominator: a run must not
            # wait forever for readiness that can no longer arrive.
            if state["ready"] >= min(quorum, state["live"]) or state["live"] == 0:
                start_gate.set()

        def mark_failed(
            worker_id: str,
            node: Optional["node_plane.NodeProcess"],
            error: BaseException,
        ) -> None:
            self.quarantined[worker_id] = f"{type(error).__name__}: {error}"
            if node is not None:
                node.quarantine()
            with state_lock:
                state["live"] -= 1
                if state["live"] == 0 and not coordinator.done:
                    exhausted = RuntimeError(
                        f"all {count} distributed nodes failed; last: "
                        f"{type(error).__name__}: {error}"
                    )
                    exhausted.__cause__ = error
                    coordinator.abort(exhausted)
                reevaluate_gate_locked()

        def run_node(ordinal: int) -> None:
            worker_id = f"node-{ordinal}"
            node: Optional[node_plane.NodeProcess] = None
            try:
                delay = 0.0
                if self.node_delays is not None and ordinal < len(self.node_delays):
                    delay = float(self.node_delays[ordinal])
                faults = (
                    self.fault_plan.for_node(worker_id) if self.fault_plan else None
                )
                node = node_plane.NodeProcess(
                    worker_id=worker_id,
                    spec=spec,
                    unit_delay=delay,
                    faults=faults,
                    heartbeat_interval=self.heartbeat_interval,
                )
                with registry_lock:
                    nodes.append(node)
                    self.node_pids[worker_id] = node.process.pid
                node.wait_ready(timeout=self.node_timeout)
            except node_plane.NodeFailure as error:
                mark_failed(worker_id, node, error)
                return
            except BaseException as error:  # noqa: BLE001 - reraised below
                errors.append(error)
                coordinator.abort(error)
                start_gate.set()
                return
            with state_lock:
                state["ready"] += 1
                reevaluate_gate_locked()
            # Min-quorum start: a node ready after the gate opened simply
            # sails through and joins the pull loop mid-run (late join).
            start_gate.wait()
            while True:
                assignment = coordinator.next_assignment(worker_id)
                if assignment is None:
                    return
                if assignment.attempt > 1 and self.retry_backoff > 0:
                    time.sleep(
                        min(
                            self.retry_backoff * 2 ** (assignment.attempt - 2),
                            self.MAX_BACKOFF,
                        )
                    )
                hints = None
                if stage:
                    # Ship the coordinator's lookahead with the assignment;
                    # the node computes the page plan itself (NM/PM unit
                    # planning reads the trees) and stages one batched
                    # fetch while this unit computes.
                    pending = coordinator.peek_pending(ctx.config.prefetch_depth)
                    if pending:
                        hints = [unit.to_wire() for unit in pending]
                try:
                    result = node.run_unit(
                        assignment, timeout=self.node_timeout, stage=hints
                    )
                except node_plane.NodeFailure as error:
                    # Lease back to the queue first, then retire the node:
                    # a sibling can pick the unit up immediately.
                    coordinator.release(assignment.index, error=error)
                    mark_failed(worker_id, node, error)
                    return
                except BaseException as error:  # noqa: BLE001 - reraised below
                    errors.append(error)
                    coordinator.abort(error)
                    return
                collect_worker_snapshot(
                    snapshots, snapshot_lock, result, worker_id=worker_id
                )
                coordinator.record_result(assignment.index, result)

        try:
            threads = [
                threading.Thread(
                    target=run_node, args=(ordinal,), name=f"drive-node-{ordinal}"
                )
                for ordinal in range(count)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            with registry_lock:
                survivors = [
                    node
                    for node in nodes
                    if node.worker_id not in self.quarantined
                ]
            for node in survivors:
                node.shutdown()
        self.retries = dict(coordinator.reassignments)
        self.last_assignments = dict(coordinator.assignments)
        self.last_run_report = {
            "nodes": count,
            "quorum": quorum,
            "quarantined": dict(self.quarantined),
            "retries": dict(self.retries),
            "faults_planned": (
                self.fault_plan.to_spec() if self.fault_plan else None
            ),
        }
        if errors:
            raise errors[0]
        if coordinator.error is not None:
            raise coordinator.error
        # Quarantined nodes' last snapshots are in here too: the traffic
        # they caused before failing is honest physical cost of the run.
        absorb_worker_snapshots(ctx, snapshots)
        return coordinator.merge(ctx, base_accesses, absorb_counters=True)


def executor_for(config: EngineConfig):
    """Instantiate the executor a config asks for."""
    if config.executor == "serial":
        return SerialExecutor()
    if config.executor == "sharded":
        return ShardedExecutor(
            workers=config.workers,
            pool=config.pool,
            reuse_handoff=config.reuse_handoff,
        )
    if config.executor == "distributed":
        dist = config.distributed
        return DistributedExecutor(
            nodes=dist.nodes,
            reuse_handoff=config.reuse_handoff,
            node_timeout=dist.node_timeout,
            node_retries=dist.node_retries,
            min_ready=dist.min_ready,
            fault_plan=dist.fault_plan,
            stage_hints=dist.stage_hints,
        )
    raise ValueError(f"unknown executor {config.executor!r}")
