"""Executors: how the engine drives an algorithm's join phase.

* :class:`SerialExecutor` calls the algorithm's ``run_join`` directly and
  reproduces the paper's single-threaded semantics bit for bit.
* :class:`ShardedExecutor` splits the algorithm's ordered shard units —
  Hilbert-ordered ``R_Q`` leaves for NM-CIJ/PM-CIJ, top-level ``R'_P``
  join partitions for FM-CIJ — into contiguous shards and processes them
  in parallel ``fork`` workers (or inline, sequentially, through the very
  same shard/merge path).  Each shard runs against its own counter
  snapshot; the parent merges result pairs and every statistics record
  deterministically, in shard order, so the merged pair list is
  byte-identical to the serial one and the merged counters are the exact
  sum of the per-shard deltas.

Parallel-correctness argument: the pairs a shard reports depend only on its
units, the two source trees and the domain — never on buffer state, the
REUSE carry-over or the work of other shards — so contiguous shards in unit
order compose exactly like the serial loop.  What *can* differ is cost: by
default the REUSE buffer cannot carry cells across a shard boundary, so a
parallel sharded NM-CIJ recomputes a few more ``P`` cells than the serial
run.  The *handoff* mode closes that gap: the final REUSE buffer of shard
``k`` is passed to shard ``k+1`` (``JoinContext.carry``), which restores
exactly the serial reuse chain — sequentially for the inline pool (where
it costs nothing) and as a worker pipeline under ``fork`` (work-optimal,
not wall-clock-optimal).  Either way the cost is reported honestly through
the merged statistics.

The inline fallback also isolates the shared LRU buffer: every shard starts
from the dispatch-time buffer state a forked worker would inherit, and the
parent's buffer is rewound afterwards — so inline and forked executions
produce identical counters, not just identical pairs.
"""

from __future__ import annotations

import math
import multiprocessing
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.join.conditional_filter import FilterStats
from repro.join.result import JoinStats
from repro.storage.counters import IOCounters
from repro.voronoi.single import CellComputationStats

from repro.engine.algorithms import JoinAlgorithm, JoinContext
from repro.engine.config import EngineConfig


@dataclass
class ShardResult:
    """Everything one shard sends back to the merging parent."""

    index: int
    pairs: List[Tuple[int, int]]
    stats: JoinStats
    cell_stats: CellComputationStats
    filter_stats: FilterStats
    #: Page-traffic delta accumulated by this shard (its own snapshot diff).
    counters: IOCounters
    #: Outbound shard-boundary state (``supports_handoff`` algorithms).
    carry: Optional[object] = None


class SerialExecutor:
    """Run the join phase exactly as the standalone functions used to."""

    name = "serial"

    def execute(self, algorithm: JoinAlgorithm, ctx: JoinContext) -> List[Tuple[int, int]]:
        return algorithm.run_join(ctx)


#: Worker-process state installed by the pool initializer (inherited cheaply
#: through ``fork``; only shard indices, carries and results cross the pipe).
_WORKER_STATE: Dict[str, object] = {}


def _worker_init(algorithm, ctx, chunks, handoff: bool = False) -> None:
    _WORKER_STATE["algorithm"] = algorithm
    _WORKER_STATE["ctx"] = ctx
    _WORKER_STATE["chunks"] = chunks
    _WORKER_STATE["handoff"] = handoff
    # The worker's forked buffer copy *is* the parent's dispatch-time
    # state; capture it so every shard this worker picks up starts from
    # it, even when the pool hands one worker several shards.
    _WORKER_STATE["dispatch_buffer"] = ctx.disk.buffer_state()
    # The page dict / decoded cache arrive through fork copy-on-write, but
    # file descriptors and database connections must not be shared with the
    # parent: swap in this worker's own read-only backend handles.
    ctx.disk.reopen_for_worker()


def _worker_run_shard(index: int, carry: Optional[object] = None) -> ShardResult:
    algorithm = _WORKER_STATE["algorithm"]
    ctx = _WORKER_STATE["ctx"]
    chunks = _WORKER_STATE["chunks"]
    # Rewind to the dispatch-time buffer before every shard: a worker that
    # wins the queue race for a second shard must not leak the previous
    # shard's warm pages into it (the inline fallback rewinds identically,
    # keeping counters byte-equal across pool strategies).
    ctx.disk.restore_buffer_state(_WORKER_STATE["dispatch_buffer"])
    result = _execute_shard(algorithm, ctx, chunks[index], index, carry=carry)
    if not _WORKER_STATE.get("handoff"):
        # Nobody consumes the outbound carry without the boundary handoff;
        # keep the (potentially large) REUSE buffer off the result pipe.
        result.carry = None
    return result


def _execute_shard(
    algorithm: JoinAlgorithm,
    parent_ctx: JoinContext,
    units: Sequence[object],
    index: int,
    carry: Optional[object] = None,
) -> ShardResult:
    """Process one shard with isolated statistics and a fresh counter base.

    In a forked worker the disk object is the worker's own copy, so the
    snapshot/diff pair measures exactly this shard's traffic; inline, the
    same snapshot/diff isolates the shard's delta on the shared counters.
    ``carry`` seeds the shard's inbound boundary state (the previous
    shard's REUSE buffer) when the handoff is enabled.
    """
    disk = parent_ctx.disk
    snapshot = disk.counters.snapshot()
    stats = JoinStats(algorithm=algorithm.display_name)
    cell_stats = CellComputationStats()
    filter_stats = FilterStats()
    shard_ctx = JoinContext(
        tree_p=parent_ctx.tree_p,
        tree_q=parent_ctx.tree_q,
        domain=parent_ctx.domain,
        config=parent_ctx.config,
        stats=stats,
        cell_stats=cell_stats,
        filter_stats=filter_stats,
        start_counters=snapshot,
        prepared=parent_ctx.prepared,
        carry=carry,
    )
    pairs = algorithm.process_units(shard_ctx, units)
    return ShardResult(
        index=index,
        pairs=pairs,
        stats=stats,
        cell_stats=cell_stats,
        filter_stats=filter_stats,
        counters=disk.counters.diff(snapshot),
        carry=shard_ctx.carry,
    )


class ShardedExecutor:
    """Partition the algorithm's shard units across workers and merge."""

    name = "sharded"

    def __init__(self, workers: int = 2, pool: str = "auto", reuse_handoff: str = "auto"):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self.pool = pool
        self.reuse_handoff = reuse_handoff

    def execute(self, algorithm: JoinAlgorithm, ctx: JoinContext) -> List[Tuple[int, int]]:
        if not algorithm.supports_sharding:
            raise ValueError(
                f"{algorithm.display_name} does not support sharded execution; "
                "its join phase has no shard units"
            )
        # Enumerating the units is part of the join and is charged to the
        # parent, once, before any worker starts.
        units = algorithm.shard_units(ctx)
        if not units:
            return []
        chunks = self._contiguous_chunks(units)
        base_accesses = ctx.disk.counters.diff(ctx.start_counters).page_accesses
        shard_results, forked = self._run_chunks(algorithm, ctx, chunks)
        return self._merge(ctx, shard_results, base_accesses, forked)

    # ------------------------------------------------------------------
    # sharding and dispatch
    # ------------------------------------------------------------------
    def _contiguous_chunks(self, units: Sequence[object]) -> List[Sequence[object]]:
        """Split the unit sequence into at most ``workers`` contiguous runs.

        Contiguity in unit order keeps each shard spatially coherent (the
        REUSE buffer stays effective within a leaf shard; FM partitions
        stay in traversal order) and makes the shard-order concatenation of
        outputs equal the serial pair list.
        """
        shard_count = max(1, min(self.workers, len(units)))
        size = math.ceil(len(units) / shard_count)
        return [units[i : i + size] for i in range(0, len(units), size)]

    def _handoff_enabled(self, algorithm: JoinAlgorithm) -> bool:
        """Whether shard-boundary carry state is threaded between shards.

        ``"auto"`` enables the handoff only for the *configured* inline
        pool, where shards run sequentially anyway and the serial REUSE
        chain is free; ``"always"`` additionally pipelines forked workers
        (work-optimal, not wall-clock-optimal); ``"never"`` disables it.
        """
        if not algorithm.supports_handoff:
            return False
        if self.reuse_handoff == "always":
            return True
        if self.reuse_handoff == "never":
            return False
        return self.pool == "inline"

    def _run_chunks(
        self, algorithm: JoinAlgorithm, ctx: JoinContext, chunks: List[Sequence[object]]
    ) -> Tuple[List[ShardResult], bool]:
        """Run every chunk, preferring forked workers; returns (results, forked)."""
        handoff = self._handoff_enabled(algorithm)
        if ctx.config.prefetch == "next_shard":
            # Shard-boundary staging lives in this process; forked workers
            # would never see it (the config rejects an explicit
            # pool='fork'), so 'auto' resolves to the inline path, where
            # the async reader thread genuinely overlaps the next shard's
            # fetches with the current shard's computation.
            return self._run_chunks_inline(algorithm, ctx, chunks, handoff), False
        if self.pool in ("auto", "fork") and len(chunks) > 1:
            pool = self._make_fork_pool(algorithm, ctx, chunks, handoff)
            if pool is not None:
                # Only pool *creation* falls back to inline; an error raised
                # by the join itself inside a worker propagates unchanged.
                with pool:
                    if handoff:
                        # Boundary-chained pipeline: each shard needs its
                        # predecessor's final REUSE buffer, so shards are
                        # dispatched in order and the carry crosses the
                        # pipe between workers via the parent.
                        results: List[ShardResult] = []
                        carry: Optional[object] = None
                        for index in range(len(chunks)):
                            result = pool.apply(_worker_run_shard, (index, carry))
                            carry = result.carry
                            results.append(result)
                        return results, True
                    return pool.map(_worker_run_shard, range(len(chunks))), True
        return self._run_chunks_inline(algorithm, ctx, chunks, handoff), False

    def _run_chunks_inline(
        self,
        algorithm: JoinAlgorithm,
        ctx: JoinContext,
        chunks: List[Sequence[object]],
        handoff: bool,
    ) -> List[ShardResult]:
        """Sequential fallback through the same shard/merge path.

        Every shard is rewound to the dispatch-time buffer state a forked
        worker would inherit, so inline and forked runs charge identical
        counters; the parent's buffer is likewise rewound afterwards (a
        fork parent's buffer never sees the workers' traffic either).
        """
        isolate = len(chunks) > 1
        dispatch_state = ctx.disk.buffer_state() if isolate else None
        prefetcher = (
            ctx.disk.prefetcher if ctx.config.prefetch == "next_shard" else None
        )
        results = []
        carry: Optional[object] = None
        try:
            for index, chunk in enumerate(chunks):
                if dispatch_state is not None and index > 0:
                    ctx.disk.restore_buffer_state(dispatch_state)
                if prefetcher is not None and index + 1 < len(chunks):
                    # Stage the next shard's opening pages now: the backend's
                    # worker thread fetches them while this shard computes.
                    pages = algorithm.prefetch_pages(ctx, chunks[index + 1])
                    if pages:
                        prefetcher.request(pages)
                result = _execute_shard(
                    algorithm, ctx, chunk, index, carry=carry if handoff else None
                )
                carry = result.carry
                results.append(result)
        finally:
            # Rewind even when a shard raises: the caller's drain then sees
            # the dispatch-time buffer, not a half-executed shard's, and a
            # follow-up run on the same disk starts from a known state.
            if dispatch_state is not None:
                ctx.disk.restore_buffer_state(dispatch_state)
        return results

    def _make_fork_pool(
        self,
        algorithm: JoinAlgorithm,
        ctx: JoinContext,
        chunks: List[Sequence[object]],
        handoff: bool,
    ):
        """A fork worker pool, or ``None`` when unavailable and pool='auto'."""
        try:
            context = multiprocessing.get_context("fork")
            return context.Pool(
                min(self.workers, len(chunks)),
                initializer=_worker_init,
                initargs=(algorithm, ctx, chunks, handoff),
            )
        except (OSError, ValueError, ImportError) as error:
            if self.pool == "fork":
                raise RuntimeError(f"fork worker pool unavailable: {error}") from error
            return None

    # ------------------------------------------------------------------
    # deterministic merge
    # ------------------------------------------------------------------
    def _merge(
        self,
        ctx: JoinContext,
        shard_results: List[ShardResult],
        base_accesses: int,
        forked: bool,
    ) -> List[Tuple[int, int]]:
        """Fold shard outputs into the parent context, in shard order.

        Pairs are concatenated; scalar statistics are summed; each shard's
        progress curve is replayed at the offset of everything that ran
        before it, which keeps the merged curve monotone and identical
        across pool strategies.  Under ``fork`` the workers charged their
        own counter copies, so their deltas are absorbed into the parent
        counters to keep the shared disk's view complete.
        """
        pairs: List[Tuple[int, int]] = []
        pair_base = 0
        for shard in sorted(shard_results, key=lambda result: result.index):
            ctx.stats.accumulate(shard.stats)
            ctx.cell_stats.merge(shard.cell_stats)
            ctx.filter_stats.merge(shard.filter_stats)
            for sample in shard.stats.progress:
                ctx.stats.record_progress(
                    base_accesses + sample.page_accesses,
                    pair_base + sample.pairs_reported,
                )
            if forked:
                ctx.disk.counters.absorb(shard.counters)
            base_accesses += shard.counters.page_accesses
            pair_base += len(shard.pairs)
            pairs.extend(shard.pairs)
        return pairs


def executor_for(config: EngineConfig):
    """Instantiate the executor a config asks for."""
    if config.executor == "serial":
        return SerialExecutor()
    if config.executor == "sharded":
        return ShardedExecutor(
            workers=config.workers,
            pool=config.pool,
            reuse_handoff=config.reuse_handoff,
        )
    raise ValueError(f"unknown executor {config.executor!r}")
