"""Executors: how the engine drives an algorithm's join phase.

* :class:`SerialExecutor` calls the algorithm's ``run_join`` directly and
  reproduces the paper's single-threaded semantics bit for bit.
* :class:`ShardedExecutor` splits the Hilbert-ordered ``R_Q`` leaf sequence
  into contiguous shards and processes them in parallel ``fork`` workers
  (or inline, sequentially, through the very same shard/merge path).  Each
  shard runs against its own counter snapshot; the parent merges result
  pairs and every statistics record deterministically, in shard order, so
  the merged pair list is byte-identical to the serial one and the merged
  counters are the exact sum of the per-shard deltas.

Parallel-correctness argument: the pairs a shard reports depend only on its
leaves, the two source trees and the domain — never on buffer state, the
REUSE carry-over or the work of other shards — so contiguous shards in leaf
order compose exactly like the serial loop.  What *does* differ is cost:
the REUSE buffer cannot carry cells across a shard boundary, so a sharded
NM-CIJ recomputes a few more ``P`` cells than the serial run.  That is
reported honestly through the merged statistics.
"""

from __future__ import annotations

import math
import multiprocessing
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.index.entries import Node
from repro.join.conditional_filter import FilterStats
from repro.join.result import JoinStats
from repro.storage.counters import IOCounters
from repro.voronoi.single import CellComputationStats

from repro.engine.algorithms import JoinAlgorithm, JoinContext
from repro.engine.config import EngineConfig


@dataclass
class ShardResult:
    """Everything one leaf shard sends back to the merging parent."""

    index: int
    pairs: List[Tuple[int, int]]
    stats: JoinStats
    cell_stats: CellComputationStats
    filter_stats: FilterStats
    #: Page-traffic delta accumulated by this shard (its own snapshot diff).
    counters: IOCounters


class SerialExecutor:
    """Run the join phase exactly as the standalone functions used to."""

    name = "serial"

    def execute(self, algorithm: JoinAlgorithm, ctx: JoinContext) -> List[Tuple[int, int]]:
        return algorithm.run_join(ctx)


#: Worker-process state installed by the pool initializer (inherited cheaply
#: through ``fork``; only shard indices and results cross the pipe).
_WORKER_STATE: Dict[str, object] = {}


def _worker_init(algorithm, ctx, chunks) -> None:
    _WORKER_STATE["algorithm"] = algorithm
    _WORKER_STATE["ctx"] = ctx
    _WORKER_STATE["chunks"] = chunks
    # The page dict / decoded cache arrive through fork copy-on-write, but
    # file descriptors and database connections must not be shared with the
    # parent: swap in this worker's own read-only backend handles.
    ctx.disk.reopen_for_worker()


def _worker_run_shard(index: int) -> ShardResult:
    algorithm = _WORKER_STATE["algorithm"]
    ctx = _WORKER_STATE["ctx"]
    chunks = _WORKER_STATE["chunks"]
    return _execute_shard(algorithm, ctx, chunks[index], index)


def _execute_shard(
    algorithm: JoinAlgorithm,
    parent_ctx: JoinContext,
    leaves: Sequence[Node],
    index: int,
) -> ShardResult:
    """Process one shard with isolated statistics and a fresh counter base.

    In a forked worker the disk object is the worker's own copy, so the
    snapshot/diff pair measures exactly this shard's traffic; inline, the
    same snapshot/diff isolates the shard's delta on the shared counters.
    """
    disk = parent_ctx.disk
    snapshot = disk.counters.snapshot()
    stats = JoinStats(algorithm=algorithm.display_name)
    cell_stats = CellComputationStats()
    filter_stats = FilterStats()
    shard_ctx = JoinContext(
        tree_p=parent_ctx.tree_p,
        tree_q=parent_ctx.tree_q,
        domain=parent_ctx.domain,
        config=parent_ctx.config,
        stats=stats,
        cell_stats=cell_stats,
        filter_stats=filter_stats,
        start_counters=snapshot,
        prepared=parent_ctx.prepared,
    )
    pairs = algorithm.process_leaves(shard_ctx, leaves)
    return ShardResult(
        index=index,
        pairs=pairs,
        stats=stats,
        cell_stats=cell_stats,
        filter_stats=filter_stats,
        counters=disk.counters.diff(snapshot),
    )


class ShardedExecutor:
    """Partition ``R_Q``'s Hilbert-ordered leaves across workers and merge."""

    name = "sharded"

    def __init__(self, workers: int = 2, pool: str = "auto"):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self.pool = pool

    def execute(self, algorithm: JoinAlgorithm, ctx: JoinContext) -> List[Tuple[int, int]]:
        if not algorithm.supports_sharding:
            raise ValueError(
                f"{algorithm.display_name} does not support sharded execution; "
                "its join phase is not a per-leaf pipeline"
            )
        # Enumerating the leaves is part of the join and is charged to the
        # parent, once, before any worker starts.
        leaves = list(ctx.tree_q.iter_leaf_nodes(order="hilbert"))
        if not leaves:
            return []
        chunks = self._contiguous_chunks(leaves)
        base_accesses = ctx.disk.counters.diff(ctx.start_counters).page_accesses
        shard_results, forked = self._run_chunks(algorithm, ctx, chunks)
        return self._merge(ctx, shard_results, base_accesses, forked)

    # ------------------------------------------------------------------
    # sharding and dispatch
    # ------------------------------------------------------------------
    def _contiguous_chunks(self, leaves: Sequence[Node]) -> List[List[Node]]:
        """Split the leaf sequence into at most ``workers`` contiguous runs.

        Contiguity in Hilbert order keeps each shard spatially coherent
        (the REUSE buffer stays effective within a shard) and makes the
        shard-order concatenation of outputs equal the serial pair list.
        """
        shard_count = max(1, min(self.workers, len(leaves)))
        size = math.ceil(len(leaves) / shard_count)
        return [leaves[i : i + size] for i in range(0, len(leaves), size)]

    def _run_chunks(
        self, algorithm: JoinAlgorithm, ctx: JoinContext, chunks: List[List[Node]]
    ) -> Tuple[List[ShardResult], bool]:
        """Run every chunk, preferring forked workers; returns (results, forked)."""
        if self.pool in ("auto", "fork") and len(chunks) > 1:
            pool = self._make_fork_pool(algorithm, ctx, chunks)
            if pool is not None:
                # Only pool *creation* falls back to inline; an error raised
                # by the join itself inside a worker propagates unchanged.
                with pool:
                    return pool.map(_worker_run_shard, range(len(chunks))), True
        results = [
            _execute_shard(algorithm, ctx, chunk, index)
            for index, chunk in enumerate(chunks)
        ]
        return results, False

    def _make_fork_pool(
        self, algorithm: JoinAlgorithm, ctx: JoinContext, chunks: List[List[Node]]
    ):
        """A fork worker pool, or ``None`` when unavailable and pool='auto'."""
        try:
            context = multiprocessing.get_context("fork")
            return context.Pool(
                min(self.workers, len(chunks)),
                initializer=_worker_init,
                initargs=(algorithm, ctx, chunks),
            )
        except (OSError, ValueError, ImportError) as error:
            if self.pool == "fork":
                raise RuntimeError(f"fork worker pool unavailable: {error}") from error
            return None

    # ------------------------------------------------------------------
    # deterministic merge
    # ------------------------------------------------------------------
    def _merge(
        self,
        ctx: JoinContext,
        shard_results: List[ShardResult],
        base_accesses: int,
        forked: bool,
    ) -> List[Tuple[int, int]]:
        """Fold shard outputs into the parent context, in shard order.

        Pairs are concatenated; scalar statistics are summed; each shard's
        progress curve is replayed at the offset of everything that ran
        before it, which keeps the merged curve monotone and identical
        across pool strategies.  Under ``fork`` the workers charged their
        own counter copies, so their deltas are absorbed into the parent
        counters to keep the shared disk's view complete.
        """
        pairs: List[Tuple[int, int]] = []
        pair_base = 0
        for shard in sorted(shard_results, key=lambda result: result.index):
            ctx.stats.accumulate(shard.stats)
            ctx.cell_stats.merge(shard.cell_stats)
            ctx.filter_stats.merge(shard.filter_stats)
            for sample in shard.stats.progress:
                ctx.stats.record_progress(
                    base_accesses + sample.page_accesses,
                    pair_base + sample.pairs_reported,
                )
            if forked:
                ctx.disk.counters.absorb(shard.counters)
            base_accesses += shard.counters.page_accesses
            pair_base += len(shard.pairs)
            pairs.extend(shard.pairs)
        return pairs


def executor_for(config: EngineConfig):
    """Instantiate the executor a config asks for."""
    if config.executor == "serial":
        return SerialExecutor()
    if config.executor == "sharded":
        return ShardedExecutor(workers=config.workers, pool=config.pool)
    raise ValueError(f"unknown executor {config.executor!r}")
