"""The node plane: worker subprocesses for the distributed executor.

A *node* is a separate interpreter (``python -m repro.engine.node``) that
simulates one member of an elastic worker tier over shared storage.  The
coordinating process sends it one ``init`` message describing the run —
which backend file to reopen, the R-tree roots and fanouts, the resident
buffer pages at dispatch time, the algorithm and its knobs — and then
streams ``unit`` messages; the node answers each with the unit's pairs,
statistics and counter delta.  Framing and encoding reuse the service
protocol's canonical NDJSON (:mod:`repro.service.protocol`): one JSON
object per line, sorted keys, pure ASCII — so a unit result is
byte-reproducible across runs and nodes.

Equivalence story, mirroring the fork pool exactly:

* the node opens the *same* pages the parent's workload wrote — the
  file/sqlite store is reopened read-only
  (:meth:`~repro.storage.disk.DiskManager.reopen_for_worker`);
* the dispatch-time LRU residency travels in the init spec; the node
  rebuilds the decoded cache with *uncounted* reads and rewinds to that
  state before **every** unit, so a node that pulls many units charges the
  same counters as if each unit ran in a fresh fork;
* each unit runs against the node's own counter snapshot and the parent
  absorbs the returned deltas, so merged counters are the exact sum of
  per-unit work.

The REUSE carry crosses the wire in an explicit JSON form (a list of
``[oid, site_x, site_y, vertices]`` cells) produced and consumed only by
nodes; the coordinator forwards it opaquely from one node's result to the
next chained unit's assignment, wherever that unit lands.

Fault story (this file is the detection side; injection lives in
:mod:`repro.engine.faults`):

* a dedicated reader thread per node turns the blocking pipe into a
  timed message queue, so the parent can bound how long it waits for any
  reply (``NodeTimeout``) instead of blocking forever on a hung child;
* the node emits ``heartbeat`` lines from a daemon thread while it
  computes, so a slow unit and a frozen interpreter are distinguishable:
  the request deadline is *silence*-based, refreshed by every message;
* child exit / broken pipes surface as ``NodeCrashed``, a structured
  ``error`` reply as ``NodeError``, undecodable bytes as
  ``NodeProtocolError`` — all subclasses of :class:`NodeFailure`, which
  the distributed executor treats as "quarantine this node and retry the
  unit elsewhere", never as run-fatal by itself.
"""

from __future__ import annotations

import os
import queue
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import fields
from typing import Any, Dict, List, Optional

from repro.geometry.point import Point
from repro.geometry.polygon import ConvexPolygon
from repro.geometry.rect import Rect
from repro.index.rtree import RTree
from repro.join.conditional_filter import FilterStats
from repro.join.result import JoinStats, ProgressSample
from repro.service.protocol import PROTOCOL_VERSION, decode_line, encode_line
from repro.storage.counters import IOCounters
from repro.storage.disk import DiskManager
from repro.voronoi.cell import VoronoiCell
from repro.voronoi.single import CellComputationStats


# ----------------------------------------------------------------------
# wire codecs (worker side encodes, parent side decodes)
# ----------------------------------------------------------------------
def stats_to_wire(stats: JoinStats) -> Dict[str, Any]:
    """A :class:`JoinStats` as a JSON-safe mapping (fields generically, so
    a counter added to the dataclass cannot be dropped from the wire)."""
    wire: Dict[str, Any] = {}
    for field_info in fields(stats):
        if field_info.name == "progress":
            wire["progress"] = [
                [sample.page_accesses, sample.pairs_reported]
                for sample in stats.progress
            ]
        else:
            wire[field_info.name] = getattr(stats, field_info.name)
    return wire


def stats_from_wire(wire: Dict[str, Any]) -> JoinStats:
    stats = JoinStats(algorithm=wire["algorithm"])
    for field_info in fields(stats):
        if field_info.name == "algorithm":
            continue
        if field_info.name == "progress":
            stats.progress = [
                ProgressSample(accesses, pairs_reported)
                for accesses, pairs_reported in wire["progress"]
            ]
        else:
            setattr(stats, field_info.name, wire[field_info.name])
    return stats


def record_to_wire(record) -> Dict[str, Any]:
    """Generic flat-int-dataclass codec (cell/filter statistics)."""
    return {f.name: getattr(record, f.name) for f in fields(record)}


def counters_to_wire(counters: IOCounters) -> Dict[str, Any]:
    return {
        "reads": counters.reads,
        "writes": counters.writes,
        "logical_reads": counters.logical_reads,
        "buffer_hits": counters.buffer_hits,
        "by_tag": dict(counters.by_tag),
    }


def counters_from_wire(wire: Dict[str, Any]) -> IOCounters:
    counters = IOCounters(
        reads=wire["reads"],
        writes=wire["writes"],
        logical_reads=wire["logical_reads"],
        buffer_hits=wire["buffer_hits"],
    )
    counters.by_tag = dict(wire["by_tag"])
    return counters


def carry_to_wire(carry: Optional[Dict[int, VoronoiCell]]) -> Optional[List]:
    """The REUSE buffer as JSON; ``repr``-exact doubles round-trip, so a
    cell survives the pipe bit for bit."""
    if carry is None:
        return None
    return [
        [
            oid,
            cell.site.x,
            cell.site.y,
            [[vertex.x, vertex.y] for vertex in cell.polygon.vertices],
        ]
        for oid, cell in carry.items()
    ]


def carry_from_wire(wire: Optional[List]) -> Optional[Dict[int, VoronoiCell]]:
    if wire is None:
        return None
    buffer: Dict[int, VoronoiCell] = {}
    for oid, site_x, site_y, vertices in wire:
        # Bypass ConvexPolygon.__init__: the transported ring is already
        # normalised and must round-trip bit for bit, not be re-cleaned
        # (same rationale as the page codec's cell decoder).
        polygon = ConvexPolygon.__new__(ConvexPolygon)
        polygon._vertices = tuple(Point(x, y) for x, y in vertices)
        buffer[oid] = VoronoiCell(oid, Point(site_x, site_y), polygon)
    return buffer


def _tree_spec(tree: RTree) -> Dict[str, Any]:
    return {
        "tag": tree.tag,
        "page_size": tree.page_size,
        "leaf_capacity": tree.leaf_capacity,
        "branch_capacity": tree.branch_capacity,
        "root_page": tree.root_page,
        "height": tree.height,
        "size": tree.size,
    }


def node_init_spec(
    algorithm, ctx, handoff: bool, stage_hints: bool = False
) -> Dict[str, Any]:
    """Everything a node needs to rebuild the run's read view.

    Trees are described by root/fanout metadata only — the pages
    themselves live in the shared store, which is the whole point of the
    tier.  The storage entry is the store's own ``worker_spec()`` (what a
    subprocess must reopen: backend name + shared location — a path for
    file/sqlite, a host:port for the remote page server).  ``resident``
    is the dispatch-time LRU residency (least to most recently used) the
    node rewinds to before every unit.  ``stage_hints`` tells the node to
    attach a prefetch scheduler and stage whatever unit lookahead the
    coordinator piggybacks on assignments.
    """
    disk = ctx.disk
    prepared = {
        name: _tree_spec(tree)
        for name, tree in ctx.prepared.items()
        if isinstance(tree, RTree)
    }
    resident, _cache = disk.buffer_state()
    storage = disk.store.worker_spec()
    storage.update(
        {
            "page_size": disk.page_size,
            "buffer_capacity": disk.buffer.capacity,
            "resident": list(resident),
        }
    )
    return {
        "version": PROTOCOL_VERSION,
        "algorithm": algorithm.name,
        "handoff": handoff,
        "storage": storage,
        "tree_p": _tree_spec(ctx.tree_p),
        "tree_q": _tree_spec(ctx.tree_q),
        "prepared": prepared,
        "domain": [ctx.domain.xmin, ctx.domain.ymin, ctx.domain.xmax, ctx.domain.ymax],
        "config": {
            "reuse_cells": ctx.config.reuse_cells,
            "use_phi_pruning": ctx.config.use_phi_pruning,
            "progress_interval": ctx.config.progress_interval,
            "compute": ctx.config.compute or "scalar",
            "cell_cache": ctx.config.cell_cache,
            "stage_hints": stage_hints,
            "prefetch_depth": ctx.config.prefetch_depth,
        },
    }


# ----------------------------------------------------------------------
# parent side: failure taxonomy + one subprocess handle per node
# ----------------------------------------------------------------------
class NodeFailure(RuntimeError):
    """One node became unusable.  The run may survive it: the distributed
    executor quarantines the node and releases its leased unit back to
    the coordinator instead of aborting the whole join."""


class NodeCrashed(NodeFailure):
    """The node process exited (or its pipe broke) without replying."""


class NodeTimeout(NodeFailure):
    """The node went silent past the request deadline (no reply, no
    heartbeat) — a hung interpreter as far as the parent can tell."""


class NodeError(NodeFailure):
    """The node answered with a structured ``error`` reply."""


class NodeProtocolError(NodeFailure):
    """The node sent bytes that do not decode as a protocol message."""


class NodeProcess:
    """Handle on one node subprocess speaking the unit protocol.

    A dedicated reader thread drains the node's stdout into a queue, so
    every receive takes an optional deadline; ``heartbeat`` lines refresh
    the deadline without being surfaced (silence, not slowness, is what
    times out).  ``faults`` is the node's slice of a
    :class:`~repro.engine.faults.FaultPlan` in wire form, forwarded
    verbatim inside the init message.
    """

    #: Seconds between child heartbeats (0 disables them).
    DEFAULT_HEARTBEAT = 0.25

    def __init__(
        self,
        worker_id: str,
        spec: Dict[str, Any],
        unit_delay: float = 0.0,
        faults: Optional[List[Dict[str, Any]]] = None,
        heartbeat_interval: Optional[float] = None,
    ):
        self.worker_id = worker_id
        package_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not existing else package_root + os.pathsep + existing
        )
        # stderr goes to an unlinked temp file: an unread PIPE would
        # deadlock a chatty child, and the tail makes death diagnosable.
        self._stderr = tempfile.TemporaryFile()
        self.process = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro.engine.node"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=self._stderr,
            env=env,
        )
        self._lines: "queue.Queue[Optional[bytes]]" = queue.Queue()
        self._reader = threading.Thread(
            target=self._read_loop, name=f"node-reader-{worker_id}", daemon=True
        )
        self._reader.start()
        message = dict(spec)
        message["type"] = "init"
        if unit_delay:
            message["unit_delay"] = unit_delay
        if faults:
            message["faults"] = list(faults)
        message["heartbeat"] = (
            self.DEFAULT_HEARTBEAT if heartbeat_interval is None else heartbeat_interval
        )
        self._send(message)
        self._ready = False

    def _read_loop(self) -> None:
        """Drain stdout into the line queue; a ``None`` sentinel marks EOF."""
        stdout = self.process.stdout
        try:
            for line in iter(stdout.readline, b""):
                self._lines.put(line)
        except (OSError, ValueError):
            pass  # pipe torn down under us (quarantine/shutdown)
        finally:
            self._lines.put(None)

    def _send(self, message: Dict[str, Any]) -> None:
        try:
            self.process.stdin.write(encode_line(message))
            self.process.stdin.flush()
        except (BrokenPipeError, OSError) as error:
            raise NodeCrashed(
                f"{self.worker_id} pipe broken on send: {error}"
                + self._stderr_suffix()
            ) from error

    def _stderr_tail(self) -> str:
        try:
            self._stderr.seek(0)
            return self._stderr.read()[-2000:].decode("utf-8", "replace").strip()
        except (OSError, ValueError):
            return ""

    def _stderr_suffix(self) -> str:
        tail = self._stderr_tail()
        return f"; stderr: {tail}" if tail else ""

    @property
    def alive(self) -> bool:
        return self.process.poll() is None

    def _recv(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """The next non-heartbeat message; the deadline is silence-based.

        ``timeout`` bounds the wait for *any* message — heartbeats refresh
        it, so a node that is computing (and heartbeating) never times out
        while a frozen one does after ``timeout`` seconds of silence.
        """
        while True:
            try:
                line = self._lines.get(timeout=timeout)
            except queue.Empty:
                raise NodeTimeout(
                    f"{self.worker_id} silent for {timeout:.3g}s (no reply, "
                    f"no heartbeat)" + self._stderr_suffix()
                ) from None
            if line is None:
                raise NodeCrashed(
                    f"{self.worker_id} exited without replying"
                    + self._stderr_suffix()
                )
            try:
                message = decode_line(line)
            except Exception as error:  # noqa: BLE001 - garbage on the wire
                raise NodeProtocolError(
                    f"{self.worker_id} sent undecodable bytes "
                    f"({line[:80]!r}...): {error}"
                ) from None
            if message.get("type") == "heartbeat":
                continue  # liveness only; restart the silence window
            if message.get("type") == "error":
                raise NodeError(
                    f"{self.worker_id} failed: {message.get('message')}"
                )
            return message

    def wait_ready(self, timeout: Optional[float] = None) -> None:
        """Block until the node has rebuilt the read view (or died)."""
        if self._ready:
            return
        message = self._recv(timeout=timeout)
        if message.get("type") != "ready":
            raise NodeProtocolError(
                f"{self.worker_id} spoke out of turn: expected 'ready', "
                f"got {message.get('type')!r}"
            )
        self._ready = True

    def run_unit(
        self,
        assignment,
        timeout: Optional[float] = None,
        stage: Optional[List[Dict[str, Any]]] = None,
    ) -> "ShardResult":
        """Execute one assignment on the node; blocks until its result.

        ``stage`` piggybacks the coordinator's pending-unit lookahead (wire
        forms) so the node can stage those units' opening pages while this
        assignment computes — advisory, physical-transport-only.
        """
        from repro.engine.executors import ShardResult

        message_out = {
            "type": "unit",
            "index": assignment.index,
            "unit": assignment.unit.to_wire(),
            # Opaque: whatever wire form the producing node returned.
            "carry": assignment.carry,
        }
        if stage:
            message_out["stage"] = stage
        self._send(message_out)
        message = self._recv(timeout=timeout)
        if message.get("type") != "result":
            raise NodeProtocolError(
                f"{self.worker_id} spoke out of turn: expected 'result', "
                f"got {message.get('type')!r}"
            )
        if message["index"] != assignment.index:
            raise NodeProtocolError(
                f"{self.worker_id} answered unit {message['index']} "
                f"while unit {assignment.index} was asked"
            )
        return ShardResult(
            index=message["index"],
            pairs=[tuple(pair) for pair in message["pairs"]],
            stats=stats_from_wire(message["stats"]),
            cell_stats=CellComputationStats(**message["cell_stats"]),
            filter_stats=FilterStats(**message["filter_stats"]),
            counters=counters_from_wire(message["counters"]),
            carry=message.get("carry"),
            storage=message.get("storage"),
        )

    def quarantine(self) -> None:
        """Kill a failed/hung node immediately and reap it — no graceful
        shutdown message (the node is presumed unresponsive)."""
        process = self.process
        try:
            if process.poll() is None:
                process.kill()
            process.wait(timeout=10)
        finally:
            self._close_handles()

    def shutdown(self) -> None:
        """Ask the node to exit; escalate to kill if it lingers."""
        process = self.process
        try:
            if process.poll() is None and process.stdin and not process.stdin.closed:
                try:
                    self._send({"type": "shutdown"})
                except (NodeCrashed, OSError):
                    pass
            if process.stdin and not process.stdin.closed:
                try:
                    process.stdin.close()
                except OSError:
                    pass
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=10)
        finally:
            self._close_handles()

    def _close_handles(self) -> None:
        process = self.process
        if process.stdin and not process.stdin.closed:
            try:
                process.stdin.close()
            except OSError:
                pass
        # The reader owns stdout until it sees EOF (the child is dead by
        # now, so that is imminent); joining first avoids closing the
        # stream out from under a blocked readline.
        self._reader.join(timeout=5)
        if process.stdout:
            try:
                process.stdout.close()
            except OSError:
                pass
        try:
            self._stderr.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# worker side: the subprocess main loop
# ----------------------------------------------------------------------
def _build_tree(disk: DiskManager, spec: Dict[str, Any]) -> RTree:
    tree = RTree(
        disk,
        spec["tag"],
        page_size=spec["page_size"],
        leaf_capacity=spec["leaf_capacity"],
        branch_capacity=spec["branch_capacity"],
    )
    tree.root_page = spec["root_page"]
    tree.height = spec["height"]
    tree.size = spec["size"]
    return tree


def _bootstrap(spec: Dict[str, Any]):
    """Rebuild the run's read view from an init spec.

    Returns ``(algorithm, parent_ctx, dispatch_state)`` where
    ``dispatch_state`` is the buffer state every unit is rewound to.
    """
    from repro.engine.algorithms import JoinContext, default_algorithms
    from repro.engine.config import EngineConfig

    if spec.get("version") != PROTOCOL_VERSION:
        raise ValueError(
            f"protocol version mismatch: node speaks {PROTOCOL_VERSION}, "
            f"coordinator sent {spec.get('version')!r}"
        )
    storage = spec["storage"]
    disk = DiskManager(
        page_size=storage["page_size"],
        storage=storage["backend"],
        storage_path=storage["path"],
    )
    # Read-only handles before anything touches the store: this node must
    # never write to (or, on close, delete) the shared backing file.
    disk.reopen_for_worker()
    disk.resize_buffer(storage["buffer_capacity"])
    # Rebuild the decoded cache for the dispatch-resident pages with
    # uncounted reads — the parent already charged them.
    cache = {
        page_id: disk.store.read_page(page_id, count=False)
        for page_id in storage["resident"]
    }
    dispatch_state = (list(storage["resident"]), cache)
    disk.restore_buffer_state(dispatch_state)

    by_name = {algo.name: algo for algo in default_algorithms()}
    algorithm = by_name[spec["algorithm"]]
    knobs = spec["config"]
    config = EngineConfig(
        executor="serial",
        reuse_cells=knobs["reuse_cells"],
        use_phi_pruning=knobs["use_phi_pruning"],
        progress_interval=knobs["progress_interval"],
        compute=knobs["compute"],
        cell_cache=knobs["cell_cache"],
        prefetch_depth=int(knobs.get("prefetch_depth", 2)),
    )
    if knobs.get("stage_hints"):
        # Staged hints arrive with unit assignments; the scheduler turns
        # them into one batched ``fetch_async`` (a single ``read_batch``
        # RPC on the remote store) that overlaps the unit's computation.
        # Logical counters never route through the scheduler, so staging
        # is physical-transport-only.
        disk.enable_prefetch()
    domain = Rect(*spec["domain"])
    tree_p = _build_tree(disk, spec["tree_p"])
    tree_q = _build_tree(disk, spec["tree_q"])
    prepared = {
        name: _build_tree(disk, tree_spec)
        for name, tree_spec in spec["prepared"].items()
    }
    parent_ctx = JoinContext(
        tree_p=tree_p,
        tree_q=tree_q,
        domain=domain,
        config=config,
        stats=JoinStats(algorithm=algorithm.display_name),
        cell_stats=CellComputationStats(),
        filter_stats=FilterStats(),
        start_counters=disk.counters.snapshot(),
        prepared=prepared,
        cell_cache={} if knobs["cell_cache"] else None,
    )
    return algorithm, parent_ctx, dispatch_state


#: How long an injected hang sleeps.  The parent's silence deadline fires
#: long before this; the sleep only has to outlive it until the kill.
_HANG_SECONDS = 600.0


def main() -> int:
    from repro.engine.executors import _execute_shard, storage_stats_snapshot
    from repro.engine.faults import FaultInjector
    from repro.engine.units import WorkUnit

    stdin = sys.stdin.buffer
    stdout = sys.stdout.buffer
    # The heartbeat thread and the main loop share stdout; NDJSON framing
    # survives only if whole lines are written atomically under one lock.
    write_lock = threading.Lock()
    heartbeats_stop = threading.Event()
    heartbeats_mute = threading.Event()

    def reply(message: Dict[str, Any]) -> None:
        with write_lock:
            stdout.write(encode_line(message))
            stdout.flush()

    def heartbeat_loop(interval: float) -> None:
        while not heartbeats_stop.wait(interval):
            if heartbeats_mute.is_set():
                continue  # an injected hang: frozen processes do not beat
            try:
                reply({"type": "heartbeat"})
            except (BrokenPipeError, OSError):
                return  # parent is gone; nothing left to reassure

    try:
        init_line = stdin.readline()
        if not init_line:
            return 0
        init = decode_line(init_line)
        if init.get("type") != "init":
            raise ValueError(f"expected an init message, got {init.get('type')!r}")
        unit_delay = float(init.get("unit_delay", 0.0))
        handoff = bool(init.get("handoff", False))
        injector = FaultInjector(init.get("faults") or ())
        heartbeat_interval = float(init.get("heartbeat", 0.0))
        if heartbeat_interval > 0:
            # Start beating before the (potentially slow) bootstrap so a
            # late-joining node looks alive, not hung, to the parent.
            threading.Thread(
                target=heartbeat_loop,
                args=(heartbeat_interval,),
                name="node-heartbeat",
                daemon=True,
            ).start()
        ready_delay = injector.ready_delay()
        if ready_delay:
            time.sleep(ready_delay)
        algorithm, parent_ctx, dispatch_state = _bootstrap(init)
    except BaseException as error:  # noqa: BLE001 - reported to the parent
        reply({"type": "error", "message": f"{type(error).__name__}: {error}"})
        return 1
    reply({"type": "ready", "version": PROTOCOL_VERSION})

    disk = parent_ctx.disk
    served = 0
    try:
        while True:
            line = stdin.readline()
            if not line:
                return 0
            message = decode_line(line)
            kind = message.get("type")
            if kind == "shutdown":
                return 0
            if kind != "unit":
                reply(
                    {"type": "error", "message": f"unexpected message {kind!r}"}
                )
                return 1
            fault = injector.on_unit(message["index"])
            if fault is not None and fault.kind == "crash" and fault.phase == "recv":
                os._exit(13)  # abrupt: no reply, no cleanup, like a real crash
            if fault is not None and fault.kind == "hang":
                heartbeats_mute.set()
                time.sleep(_HANG_SECONDS)  # the parent's deadline reaps us
                return 1
            try:
                if unit_delay:
                    time.sleep(unit_delay)
                # Every unit starts from the dispatch-time buffer, exactly
                # like a fresh fork: pulling many units onto one node must
                # not change the charged counters.
                disk.restore_buffer_state(dispatch_state)
                unit = WorkUnit.from_wire(message["unit"])
                carry = carry_from_wire(message.get("carry"))
                stage_wire = message.get("stage")
                if stage_wire and disk.prefetcher is not None:
                    # Coordinator lookahead: plan the upcoming units' opening
                    # pages locally (the planners read uncounted, so logical
                    # counters stay byte-identical) and issue one batched
                    # fetch that runs while this unit computes.
                    staged = [WorkUnit.from_wire(wire) for wire in stage_wire]
                    pages = algorithm.prefetch_pages(parent_ctx, staged)
                    if pages:
                        disk.prefetcher.request(pages)
                result = _execute_shard(
                    algorithm,
                    parent_ctx,
                    [unit],
                    message["index"],
                    carry=carry,
                )
                if fault is not None and fault.kind == "crash":
                    os._exit(13)  # phase=work: computed, never replied
                if fault is not None and fault.kind == "error":
                    reply({"type": "error", "message": "injected fault: error"})
                    return 1
                if fault is not None and fault.kind == "drop":
                    # Swallow the result — and the heartbeats with it: a
                    # lost reply must look like *silence* to the parent
                    # (its deadline is what detects drops), not like a
                    # slow-but-alive computation.
                    heartbeats_mute.set()
                    injector.unit_completed()
                    continue
                if fault is not None and fault.kind == "corrupt":
                    with write_lock:
                        stdout.write(b'{"type": "result", #corrupt#\n')
                        stdout.flush()
                    injector.unit_completed()
                    continue
                served += 1
                reply(
                    {
                        "type": "result",
                        "index": result.index,
                        "pairs": [[p, q] for p, q in result.pairs],
                        "stats": stats_to_wire(result.stats),
                        "cell_stats": record_to_wire(result.cell_stats),
                        "filter_stats": record_to_wire(result.filter_stats),
                        "counters": counters_to_wire(result.counters),
                        "carry": carry_to_wire(result.carry) if handoff else None,
                        # Cumulative transport snapshot of this node's own
                        # handle; the parent keeps the highest-seq snapshot
                        # per node and absorbs it exactly once.
                        "storage": {
                            "seq": served,
                            "stats": storage_stats_snapshot(disk),
                        },
                    }
                )
                injector.unit_completed()
            except BaseException as error:  # noqa: BLE001 - reported
                reply({"type": "error", "message": f"{type(error).__name__}: {error}"})
                return 1
    finally:
        heartbeats_stop.set()
        disk.close()


if __name__ == "__main__":
    sys.exit(main())
