"""The algorithm adapters the engine dispatches to.

Each CIJ variant (and the brute-force baseline) is wrapped in a small
:class:`JoinAlgorithm` object exposing up to four phases:

* :meth:`JoinAlgorithm.prepare` — the materialisation (MAT) phase; a no-op
  for non-blocking algorithms.  Runs once, always in the parent process.
* :meth:`JoinAlgorithm.shard_units` — the ordered work units the sharded
  executor distributes: Hilbert-ordered ``R_Q`` leaves for the leaf-shaped
  algorithms (NM, PM), top-level ``R'_P`` join partitions for FM.
* :meth:`JoinAlgorithm.process_units` — the join pipeline over a
  subsequence of units (a shard, or all of them).
* :meth:`JoinAlgorithm.run_join` — the whole join phase under serial
  semantics; the default streams every Hilbert-ordered leaf through
  :meth:`process_units` lazily (the paper's interleaving of leaf I/O and
  output); FM overrides it to walk its partitions in order, and the
  brute-force oracle overrides it entirely.

Algorithms with ``supports_handoff`` additionally carry state across shard
boundaries through :attr:`JoinContext.carry`: NM-CIJ publishes its final
REUSE buffer there so the next shard can reuse the ``P``-cells the serial
run would have carried over instead of recomputing them.

The heavy lifting stays in :mod:`repro.join`; these classes only adapt it
to the engine's context/executor plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.geometry.rect import Rect
from repro.index.rtree import RTree
from repro.join.conditional_filter import FilterStats
from repro.join.result import JoinStats
from repro.storage.counters import IOCounters
from repro.voronoi.single import CellComputationStats

from repro.engine.config import EngineConfig


@dataclass
class JoinContext:
    """Everything one join execution carries between engine, algorithm and
    executor: the inputs, the resolved configuration and the shared
    statistics records the phases accumulate into."""

    tree_p: RTree
    tree_q: RTree
    domain: Rect
    config: EngineConfig
    stats: JoinStats
    cell_stats: CellComputationStats
    filter_stats: FilterStats
    start_counters: IOCounters
    #: Artefacts built by ``prepare`` (e.g. materialised Voronoi R-trees).
    prepared: Dict[str, object] = field(default_factory=dict)
    #: Shard-boundary carry state (``supports_handoff`` algorithms only):
    #: the executor seeds it with the previous shard's outbound state and
    #: the algorithm replaces it with its own when the shard completes.
    carry: Optional[object] = None

    @property
    def disk(self):
        """The shared disk manager both source trees live on."""
        return self.tree_p.disk


class JoinAlgorithm:
    """Base class for engine algorithms; see the module docstring."""

    #: Registry key (``engine.run("nm", ...)``).
    name: str = ""
    #: Label recorded in :attr:`JoinStats.algorithm`.
    display_name: str = ""
    #: Whether ``prepare`` performs a materialisation (MAT) phase.
    materialises: bool = False
    #: Whether ``process_units`` may be run on disjoint unit shards.
    supports_sharding: bool = False
    #: Whether the algorithm carries shard-boundary state (``ctx.carry``).
    supports_handoff: bool = False

    def prepare(self, ctx: JoinContext) -> None:
        """The MAT phase; the default is the non-blocking no-op."""

    def shard_units(self, ctx: JoinContext) -> List[object]:
        """The ordered work units a sharded execution distributes.

        The default is the Hilbert-ordered ``R_Q`` leaf sequence.
        Enumeration cost is charged to the caller (the parent process),
        once, before any worker starts.
        """
        return list(ctx.tree_q.iter_leaf_nodes(order="hilbert"))

    def run_join(self, ctx: JoinContext) -> List[Tuple[int, int]]:
        """The complete join phase under serial semantics.

        The default streams the lazy Hilbert-ordered leaf iterator through
        :meth:`process_units`, preserving the paper's interleaving of leaf
        I/O and result output.
        """
        leaves = ctx.tree_q.iter_leaf_nodes(order="hilbert")
        return self.process_units(ctx, leaves)

    def process_units(
        self, ctx: JoinContext, units: Iterable[object]
    ) -> List[Tuple[int, int]]:
        """Join a subsequence of shard units (a shard, or all of them)."""
        raise NotImplementedError(
            f"{self.display_name or type(self).__name__} has no unit pipeline"
        )


class NMJoin(JoinAlgorithm):
    """Algorithm 6 — non-blocking, no materialisation."""

    name = "nm"
    display_name = "NM-CIJ"
    supports_sharding = True
    supports_handoff = True

    def process_units(self, ctx, units):
        from repro.join.nm_cij import process_q_leaves

        pairs, final_buffer = process_q_leaves(
            ctx.tree_p,
            ctx.tree_q,
            units,
            ctx.domain,
            ctx.stats,
            ctx.cell_stats,
            ctx.filter_stats,
            ctx.start_counters,
            reuse_cells=ctx.config.reuse_cells,
            use_phi_pruning=ctx.config.use_phi_pruning,
            initial_reuse=ctx.carry,
        )
        ctx.carry = final_buffer if ctx.config.reuse_cells else None
        return pairs


class PMJoin(JoinAlgorithm):
    """Algorithm 4 — partial materialisation (``R'_P`` only)."""

    name = "pm"
    display_name = "PM-CIJ"
    materialises = True
    supports_sharding = True

    def prepare(self, ctx):
        from repro.join.materialize import materialize_voronoi_rtree

        voronoi_p, count_p = materialize_voronoi_rtree(
            ctx.tree_p, ctx.domain, tag=f"{ctx.tree_p.tag}_vor", stats=ctx.cell_stats
        )
        ctx.stats.cells_computed_p = count_p
        ctx.prepared["voronoi_p"] = voronoi_p

    def process_units(self, ctx, units):
        from repro.join.pm_cij import probe_q_leaves

        return probe_q_leaves(
            ctx.prepared["voronoi_p"],
            ctx.tree_q,
            units,
            ctx.domain,
            ctx.stats,
            ctx.cell_stats,
            ctx.start_counters,
        )


class FMJoin(JoinAlgorithm):
    """Algorithm 3 — full materialisation plus synchronous-traversal join.

    The join phase is the partitioned synchronous traversal: one
    independent depth-first walk per top-level ``R'_P`` entry, each seeded
    with the MBR-pruned fan-in of top-level ``R'_Q`` entries.  Walking the
    partitions in order *is* the classic coupled traversal (byte-identical
    pairs and page accesses), which is what makes FM shardable.
    """

    name = "fm"
    display_name = "FM-CIJ"
    materialises = True
    supports_sharding = True

    def prepare(self, ctx):
        from repro.join.materialize import materialize_voronoi_rtree

        voronoi_p, count_p = materialize_voronoi_rtree(
            ctx.tree_p, ctx.domain, tag=f"{ctx.tree_p.tag}_vor", stats=ctx.cell_stats
        )
        voronoi_q, count_q = materialize_voronoi_rtree(
            ctx.tree_q, ctx.domain, tag=f"{ctx.tree_q.tag}_vor", stats=ctx.cell_stats
        )
        ctx.stats.cells_computed_p = count_p
        ctx.stats.cells_computed_q = count_q
        ctx.prepared["voronoi_p"] = voronoi_p
        ctx.prepared["voronoi_q"] = voronoi_q

    def shard_units(self, ctx):
        from repro.join.fm_cij import fm_join_partitions

        return fm_join_partitions(
            ctx.prepared["voronoi_p"], ctx.prepared["voronoi_q"]
        )

    def run_join(self, ctx):
        return self.process_units(ctx, self.shard_units(ctx))

    def process_units(self, ctx, units):
        from repro.join.fm_cij import join_partitions

        return join_partitions(
            ctx.prepared["voronoi_p"],
            ctx.prepared["voronoi_q"],
            units,
            ctx.stats,
            ctx.start_counters,
            progress_interval=ctx.config.progress_interval,
        )


class BruteForceJoin(JoinAlgorithm):
    """The quadratic, index-free oracle behind the same entry point.

    Points are pulled from the source trees without charging I/O (the
    oracle's cost model is not the paper's), and pairs are produced in the
    deterministic nested-loop order of the brute-force diagram.
    """

    name = "brute"
    display_name = "BRUTE"

    def run_join(self, ctx):
        from repro.join.baseline import brute_force_cij

        entries_p = sorted(ctx.tree_p.all_leaf_entries(), key=lambda e: e.oid)
        entries_q = sorted(ctx.tree_q.all_leaf_entries(), key=lambda e: e.oid)
        with ctx.disk.suspend_io_accounting():
            result = brute_force_cij(
                [e.payload for e in entries_p],
                [e.payload for e in entries_q],
                ctx.domain,
                oids_p=[e.oid for e in entries_p],
                oids_q=[e.oid for e in entries_q],
            )
        return result.pairs


def default_algorithms() -> List[JoinAlgorithm]:
    """The stock algorithm set every :class:`JoinEngine` starts with."""
    return [NMJoin(), PMJoin(), FMJoin(), BruteForceJoin()]
