"""The algorithm adapters the engine dispatches to.

Each CIJ variant (and the brute-force baseline) is wrapped in a small
:class:`JoinAlgorithm` object exposing up to four phases:

* :meth:`JoinAlgorithm.prepare` — the materialisation (MAT) phase; a no-op
  for non-blocking algorithms.  Runs once, always in the parent process.
* :meth:`JoinAlgorithm.shard_units` — the ordered work units the sharded
  executor distributes: Hilbert-ordered ``R_Q`` leaves for the leaf-shaped
  algorithms (NM, PM), top-level ``R'_P`` join partitions for FM.
* :meth:`JoinAlgorithm.process_units` — the join pipeline over a
  subsequence of units (a shard, or all of them).
* :meth:`JoinAlgorithm.run_join` — the whole join phase under serial
  semantics; the default streams every Hilbert-ordered leaf through
  :meth:`process_units` lazily (the paper's interleaving of leaf I/O and
  output); FM overrides it to walk its partitions in order, and the
  brute-force oracle overrides it entirely.

Algorithms with ``supports_handoff`` additionally carry state across shard
boundaries through :attr:`JoinContext.carry`: NM-CIJ publishes its final
REUSE buffer there so the next shard can reuse the ``P``-cells the serial
run would have carried over instead of recomputing them.

The heavy lifting stays in :mod:`repro.join`; these classes only adapt it
to the engine's context/executor plumbing.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.geometry.rect import Rect
from repro.index.rtree import RTree
from repro.join.conditional_filter import FilterStats
from repro.join.result import JoinStats
from repro.storage.counters import IOCounters
from repro.storage.prefetch import PrefetchScheduler
from repro.voronoi.single import CellComputationStats

from repro.engine.config import EngineConfig
from repro.engine.units import WorkUnit

#: Candidate-page budget of one unit's prefetch plan (the nearest target
#: leaves an NM/PM batch is likely to open first).
PREFETCH_PAGES_PER_UNIT = 8


def nearest_leaf_pages(tree: RTree, rect: Optional[Rect], budget: int) -> List[int]:
    """Leaf page ids of ``tree`` in mindist order from ``rect``, uncounted.

    The descent peeks only *internal* nodes (a handful per plan) and never
    touches the LRU buffer or the I/O counters, so planning what to
    prefetch cannot perturb the paper's cost model.  Leaf page ids are
    returned without being read — fetching them is the prefetcher's job.
    """
    if rect is None or tree.is_empty() or budget <= 0:
        return []
    order = 0
    heap: List[Tuple[float, int, int, bool]] = [
        (0.0, order, tree.root_page, tree.height <= 1)
    ]
    pages: List[int] = []
    while heap and len(pages) < budget:
        _, _, page_id, is_leaf = heapq.heappop(heap)
        if is_leaf:
            pages.append(page_id)
            continue
        node = tree.peek_node(page_id)
        children_are_leaves = node.level == 1
        for entry in node.entries:
            order += 1
            heapq.heappush(
                heap,
                (
                    rect.mindist_rect(entry.mbr),
                    order,
                    entry.child_page,
                    children_are_leaves,
                ),
            )
    return pages


def prefetcher_for(ctx: "JoinContext", mode: str) -> Optional[PrefetchScheduler]:
    """The disk's scheduler, when the run's prefetch mode is ``mode``."""
    if ctx.config.prefetch != mode:
        return None
    return ctx.disk.prefetcher


@dataclass
class JoinContext:
    """Everything one join execution carries between engine, algorithm and
    executor: the inputs, the resolved configuration and the shared
    statistics records the phases accumulate into."""

    tree_p: RTree
    tree_q: RTree
    domain: Rect
    config: EngineConfig
    stats: JoinStats
    cell_stats: CellComputationStats
    filter_stats: FilterStats
    start_counters: IOCounters
    #: Artefacts built by ``prepare`` (e.g. materialised Voronoi R-trees).
    prepared: Dict[str, object] = field(default_factory=dict)
    #: Shard-boundary carry state (``supports_handoff`` algorithms only):
    #: the executor seeds it with the previous shard's outbound state and
    #: the algorithm replaces it with its own when the shard completes.
    carry: Optional[object] = None
    #: Per-node read-only P-cell cache (``EngineConfig.cell_cache``): maps
    #: ``oid -> VoronoiCell`` so units executing on the same node skip
    #: recomputing cells an earlier unit already derived.  ``None`` when
    #: the cache is disabled (the default — cached runs trade the paper's
    #: exact recomputation counters for fewer cell derivations, so the
    #: equivalence pins all run without it).  Pairs must stay identical;
    #: the saving shows up as ``JoinStats.cells_cached_p``.
    cell_cache: Optional[Dict[int, object]] = None

    @property
    def disk(self):
        """The shared disk manager both source trees live on."""
        return self.tree_p.disk


class JoinAlgorithm:
    """Base class for engine algorithms; see the module docstring."""

    #: Registry key (``engine.run("nm", ...)``).
    name: str = ""
    #: Label recorded in :attr:`JoinStats.algorithm`.
    display_name: str = ""
    #: Whether ``prepare`` performs a materialisation (MAT) phase.
    materialises: bool = False
    #: Whether ``process_units`` may be run on disjoint unit shards.
    supports_sharding: bool = False
    #: Whether the algorithm carries shard-boundary state (``ctx.carry``).
    supports_handoff: bool = False

    def prepare(self, ctx: JoinContext) -> None:
        """The MAT phase; the default is the non-blocking no-op."""

    def shard_units(self, ctx: JoinContext) -> List[object]:
        """The ordered work units a sharded execution distributes.

        The default is the Hilbert-ordered ``R_Q`` leaf sequence.
        Enumeration cost is charged to the caller (the parent process),
        once, before any worker starts.
        """
        return list(ctx.tree_q.iter_leaf_nodes(order="hilbert"))

    def work_units(self, ctx: JoinContext) -> List[WorkUnit]:
        """The serializable :class:`WorkUnit` descriptors of the join.

        Same enumeration (and the same charged traversal) as
        :meth:`shard_units`, but each unit is named by its page-range
        payload instead of a materialised object, so the coordinator can
        hand it to any worker — a forked pool member or a node
        subprocess — over the wire.  Order is the serial traversal order.
        """
        return [
            WorkUnit(
                algorithm=self.name,
                index=index,
                payload=(page_id,),
                needs_carry=self.supports_handoff,
            )
            for index, (page_id, _node) in enumerate(
                ctx.tree_q.iter_leaf_nodes_with_pages(order="hilbert")
            )
        ]

    def resolve_unit(self, ctx: JoinContext, unit: WorkUnit) -> object:
        """Materialise a :class:`WorkUnit` back into a runnable object.

        Uncounted (:meth:`~repro.index.rtree.RTree.peek_node`): the
        dispatching process already charged the enumeration read in
        :meth:`work_units`, exactly as the old fork path inherited the
        already-read node objects for free.
        """
        return ctx.tree_q.peek_node(unit.payload[0])

    def _materialised(self, ctx: JoinContext, unit: object) -> object:
        """``unit`` as a runnable object, whichever plane it came from."""
        if isinstance(unit, WorkUnit):
            return self.resolve_unit(ctx, unit)
        return unit

    def run_join(self, ctx: JoinContext) -> List[Tuple[int, int]]:
        """The complete join phase under serial semantics.

        The default streams the lazy Hilbert-ordered leaf iterator through
        :meth:`process_units`, preserving the paper's interleaving of leaf
        I/O and result output.  With ``prefetch="next_batch"`` the stream
        additionally issues each upcoming leaf's candidate pages ahead of
        time — through an *uncounted* twin of the leaf iterator, so the
        charged access sequence (and with it every logical counter) stays
        exactly the serial one.
        """
        leaves: Iterable[object] = ctx.tree_q.iter_leaf_nodes(order="hilbert")
        prefetcher = prefetcher_for(ctx, "next_batch")
        if prefetcher is not None:
            leaves = self._prefetched_leaf_stream(ctx, leaves, prefetcher)
        return self.process_units(ctx, leaves)

    def process_units(
        self, ctx: JoinContext, units: Iterable[object]
    ) -> List[Tuple[int, int]]:
        """Join a subsequence of shard units (a shard, or all of them)."""
        raise NotImplementedError(
            f"{self.display_name or type(self).__name__} has no unit pipeline"
        )

    # ------------------------------------------------------------------
    # prefetch planning (advisory; never touches buffer or counters)
    # ------------------------------------------------------------------
    def unit_plan(self, ctx: JoinContext, rect: Optional[Rect]) -> List[int]:
        """Candidate pages a unit with this MBR will likely read first."""
        return []

    def unit_pages(self, ctx: JoinContext, unit: object) -> List[int]:
        """Candidate pages for one materialised shard unit."""
        return []

    def prefetch_pages(self, ctx: JoinContext, units: Sequence[object]) -> List[int]:
        """The opening page set of a shard over ``units`` (``next_shard``).

        Plans the first ``prefetch_depth`` units — staging a whole shard
        would balloon the staging area without helping, since the overlap
        window only covers the shard's opening reads anyway.
        """
        pages: List[int] = []
        seen = set()
        for unit in list(units)[: ctx.config.prefetch_depth]:
            for page_id in self.unit_pages(ctx, unit):
                if page_id not in seen:
                    seen.add(page_id)
                    pages.append(page_id)
        return pages

    def _prefetched_unit_sequence(
        self,
        ctx: JoinContext,
        units: Sequence[object],
        prefetcher: PrefetchScheduler,
    ) -> Iterator[object]:
        """Yield materialised units, planning ``prefetch_depth`` ahead."""
        depth = ctx.config.prefetch_depth
        issued = 0
        for index, unit in enumerate(units):
            target = min(len(units), index + 1 + depth)
            if issued < index + 1:
                issued = index + 1
            while issued < target:
                pages = self.unit_pages(ctx, units[issued])
                if pages:
                    prefetcher.request(pages)
                issued += 1
            yield unit

    def _maybe_prefetch_units(
        self, ctx: JoinContext, units: Iterable[object]
    ) -> Iterable[object]:
        """Wrap a materialised unit list in the ``next_batch`` lookahead.

        Lazy streams pass through untouched: the serial path wires its own
        uncounted-twin lookahead in :meth:`run_join`, and pulling units
        early through a *charged* iterator would reorder the LRU hit/miss
        sequence.
        """
        prefetcher = prefetcher_for(ctx, "next_batch")
        if prefetcher is None or not isinstance(units, (list, tuple)):
            return units
        return self._prefetched_unit_sequence(ctx, units, prefetcher)

    def _prefetched_leaf_stream(
        self,
        ctx: JoinContext,
        leaves: Iterable[object],
        prefetcher: PrefetchScheduler,
    ) -> Iterator[object]:
        """The serial ``next_batch`` pipeline over the lazy leaf iterator.

        An uncounted plan twin (:meth:`~repro.index.rtree.RTree.plan_leaf_pages`)
        walks ahead of the charged iterator: while leaf *i* computes its
        Voronoi batch, the pages of leaves *i+1 … i+depth* — each leaf's
        own page plus its MBR-pruned candidate set — are already being
        fetched on the backend's worker thread.

        The candidate set is speculative (the filter may prune some of
        it), which is harmless mid-traversal: the next batch's plan
        re-requests whatever is still useful, so unread speculation is
        consumed eventually.  The *final* planned batch has no successor
        to reclaim it, so its plan issues only the leaf's own page — the
        one page the charged iterator is certain to read — keeping
        ``prefetch_wasted`` at zero instead of stranding pruned
        candidates in the staging area until drain.
        """
        depth = ctx.config.prefetch_depth
        plans = ctx.tree_q.plan_leaf_pages(order="hilbert")
        upcoming = next(plans, None)
        issued = 0
        consumed = 0
        for leaf in leaves:
            consumed += 1
            while upcoming is not None and issued < consumed:
                # skip plans up to the current (already charged) leaf
                upcoming = next(plans, None)
                issued += 1
            while upcoming is not None and issued < consumed + depth:
                page_id, mbr = upcoming
                upcoming = next(plans, None)
                issued += 1
                if upcoming is None:
                    prefetcher.request([page_id])
                else:
                    prefetcher.request([page_id] + self.unit_plan(ctx, mbr))
            yield leaf


class NMJoin(JoinAlgorithm):
    """Algorithm 6 — non-blocking, no materialisation."""

    name = "nm"
    display_name = "NM-CIJ"
    supports_sharding = True
    supports_handoff = True

    def unit_plan(self, ctx, rect):
        # The filter phase opens R_P leaves nearest the batch first.
        return nearest_leaf_pages(ctx.tree_p, rect, PREFETCH_PAGES_PER_UNIT)

    def unit_pages(self, ctx, unit):
        unit = self._materialised(ctx, unit)
        return self.unit_plan(ctx, unit.mbr() if unit.entries else None)

    def process_units(self, ctx, units):
        from repro.join.nm_cij import process_q_leaves

        units = self._maybe_prefetch_units(ctx, units)
        pairs, final_buffer = process_q_leaves(
            ctx.tree_p,
            ctx.tree_q,
            units,
            ctx.domain,
            ctx.stats,
            ctx.cell_stats,
            ctx.filter_stats,
            ctx.start_counters,
            reuse_cells=ctx.config.reuse_cells,
            use_phi_pruning=ctx.config.use_phi_pruning,
            initial_reuse=ctx.carry,
            compute=ctx.config.compute or "scalar",
            cell_cache=ctx.cell_cache,
        )
        ctx.carry = final_buffer if ctx.config.reuse_cells else None
        return pairs


class PMJoin(JoinAlgorithm):
    """Algorithm 4 — partial materialisation (``R'_P`` only)."""

    name = "pm"
    display_name = "PM-CIJ"
    materialises = True
    supports_sharding = True

    def prepare(self, ctx):
        from repro.join.materialize import materialize_voronoi_rtree

        voronoi_p, count_p = materialize_voronoi_rtree(
            ctx.tree_p,
            ctx.domain,
            tag=f"{ctx.tree_p.tag}_vor",
            stats=ctx.cell_stats,
            compute=ctx.config.compute or "scalar",
        )
        ctx.stats.cells_computed_p = count_p
        ctx.prepared["voronoi_p"] = voronoi_p

    def unit_plan(self, ctx, rect):
        # The probe phase range-queries R'_P around the batch's cells.
        voronoi_p = ctx.prepared.get("voronoi_p")
        if voronoi_p is None:
            return []
        return nearest_leaf_pages(voronoi_p, rect, PREFETCH_PAGES_PER_UNIT)

    def unit_pages(self, ctx, unit):
        unit = self._materialised(ctx, unit)
        return self.unit_plan(ctx, unit.mbr() if unit.entries else None)

    def process_units(self, ctx, units):
        from repro.join.pm_cij import probe_q_leaves

        units = self._maybe_prefetch_units(ctx, units)
        return probe_q_leaves(
            ctx.prepared["voronoi_p"],
            ctx.tree_q,
            units,
            ctx.domain,
            ctx.stats,
            ctx.cell_stats,
            ctx.start_counters,
            compute=ctx.config.compute or "scalar",
        )


class FMJoin(JoinAlgorithm):
    """Algorithm 3 — full materialisation plus synchronous-traversal join.

    The join phase is the partitioned synchronous traversal: one
    independent depth-first walk per top-level ``R'_P`` entry, each seeded
    with the MBR-pruned fan-in of top-level ``R'_Q`` entries.  Walking the
    partitions in order *is* the classic coupled traversal (byte-identical
    pairs and page accesses), which is what makes FM shardable.
    """

    name = "fm"
    display_name = "FM-CIJ"
    materialises = True
    supports_sharding = True

    def prepare(self, ctx):
        from repro.join.materialize import materialize_voronoi_rtree

        compute = ctx.config.compute or "scalar"
        voronoi_p, count_p = materialize_voronoi_rtree(
            ctx.tree_p,
            ctx.domain,
            tag=f"{ctx.tree_p.tag}_vor",
            stats=ctx.cell_stats,
            compute=compute,
        )
        voronoi_q, count_q = materialize_voronoi_rtree(
            ctx.tree_q,
            ctx.domain,
            tag=f"{ctx.tree_q.tag}_vor",
            stats=ctx.cell_stats,
            compute=compute,
        )
        ctx.stats.cells_computed_p = count_p
        ctx.stats.cells_computed_q = count_q
        ctx.prepared["voronoi_p"] = voronoi_p
        ctx.prepared["voronoi_q"] = voronoi_q

    def shard_units(self, ctx):
        from repro.join.fm_cij import fm_join_partitions

        return fm_join_partitions(
            ctx.prepared["voronoi_p"], ctx.prepared["voronoi_q"]
        )

    def work_units(self, ctx):
        # One unit per top-level R'_P partition; the payload is the seed
        # page-id pairs the partition's synchronous traversal starts from.
        return [
            WorkUnit(algorithm=self.name, index=index, payload=partition.seeds)
            for index, partition in enumerate(self.shard_units(ctx))
        ]

    def resolve_unit(self, ctx, unit):
        from repro.join.synchronous import JoinPartition

        return JoinPartition(seeds=unit.payload)

    def unit_pages(self, ctx, unit):
        unit = self._materialised(ctx, unit)
        # A partition's seed stack names exactly the pages its depth-first
        # traversal opens first.
        pages: List[int] = []
        seen = set()
        for page_a, page_b in unit.seeds:
            for page_id in (page_a, page_b):
                if page_id not in seen:
                    seen.add(page_id)
                    pages.append(page_id)
        return pages

    def run_join(self, ctx):
        return self.process_units(ctx, self.shard_units(ctx))

    def process_units(self, ctx, units):
        from repro.join.fm_cij import join_partitions

        units = self._maybe_prefetch_units(ctx, units)
        return join_partitions(
            ctx.prepared["voronoi_p"],
            ctx.prepared["voronoi_q"],
            units,
            ctx.stats,
            ctx.start_counters,
            progress_interval=ctx.config.progress_interval,
        )


class BruteForceJoin(JoinAlgorithm):
    """The quadratic, index-free oracle behind the same entry point.

    Points are pulled from the source trees without charging I/O (the
    oracle's cost model is not the paper's), and pairs are produced in the
    deterministic nested-loop order of the brute-force diagram.
    """

    name = "brute"
    display_name = "BRUTE"

    def run_join(self, ctx):
        from repro.join.baseline import brute_force_cij

        entries_p = sorted(ctx.tree_p.all_leaf_entries(), key=lambda e: e.oid)
        entries_q = sorted(ctx.tree_q.all_leaf_entries(), key=lambda e: e.oid)
        with ctx.disk.suspend_io_accounting():
            result = brute_force_cij(
                [e.payload for e in entries_p],
                [e.payload for e in entries_q],
                ctx.domain,
                oids_p=[e.oid for e in entries_p],
                oids_q=[e.oid for e in entries_q],
            )
        return result.pairs


def default_algorithms() -> List[JoinAlgorithm]:
    """The stock algorithm set every :class:`JoinEngine` starts with."""
    return [NMJoin(), PMJoin(), FMJoin(), BruteForceJoin()]
