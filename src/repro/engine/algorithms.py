"""The algorithm adapters the engine dispatches to.

Each CIJ variant (and the brute-force baseline) is wrapped in a small
:class:`JoinAlgorithm` object exposing up to three phases:

* :meth:`JoinAlgorithm.prepare` — the materialisation (MAT) phase; a no-op
  for non-blocking algorithms.  Runs once, always in the parent process.
* :meth:`JoinAlgorithm.process_leaves` — the per-``R_Q``-leaf join pipeline
  for algorithms that support it; this is the unit the sharded executor
  distributes across workers.
* :meth:`JoinAlgorithm.run_join` — the whole join phase; defaults to
  streaming every Hilbert-ordered leaf through ``process_leaves`` (the
  serial semantics of the paper) and is overridden by algorithms whose
  join phase is not leaf-shaped (FM-CIJ's synchronous traversal, the
  brute-force oracle).

The heavy lifting stays in :mod:`repro.join`; these classes only adapt it
to the engine's context/executor plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.geometry.rect import Rect
from repro.index.entries import Node
from repro.index.rtree import RTree
from repro.join.conditional_filter import FilterStats
from repro.join.result import JoinStats
from repro.storage.counters import IOCounters
from repro.voronoi.single import CellComputationStats

from repro.engine.config import EngineConfig


@dataclass
class JoinContext:
    """Everything one join execution carries between engine, algorithm and
    executor: the inputs, the resolved configuration and the shared
    statistics records the phases accumulate into."""

    tree_p: RTree
    tree_q: RTree
    domain: Rect
    config: EngineConfig
    stats: JoinStats
    cell_stats: CellComputationStats
    filter_stats: FilterStats
    start_counters: IOCounters
    #: Artefacts built by ``prepare`` (e.g. materialised Voronoi R-trees).
    prepared: Dict[str, object] = field(default_factory=dict)

    @property
    def disk(self):
        """The shared disk manager both source trees live on."""
        return self.tree_p.disk


class JoinAlgorithm:
    """Base class for engine algorithms; see the module docstring."""

    #: Registry key (``engine.run("nm", ...)``).
    name: str = ""
    #: Label recorded in :attr:`JoinStats.algorithm`.
    display_name: str = ""
    #: Whether ``prepare`` performs a materialisation (MAT) phase.
    materialises: bool = False
    #: Whether ``process_leaves`` may be run on disjoint leaf shards.
    supports_sharding: bool = False

    def prepare(self, ctx: JoinContext) -> None:
        """The MAT phase; the default is the non-blocking no-op."""

    def run_join(self, ctx: JoinContext) -> List[Tuple[int, int]]:
        """The complete join phase under serial semantics.

        The default streams the lazy Hilbert-ordered leaf iterator through
        :meth:`process_leaves`, preserving the paper's interleaving of leaf
        I/O and result output.
        """
        leaves = ctx.tree_q.iter_leaf_nodes(order="hilbert")
        return self.process_leaves(ctx, leaves)

    def process_leaves(
        self, ctx: JoinContext, leaves: Iterable[Node]
    ) -> List[Tuple[int, int]]:
        """Join a subsequence of ``R_Q`` leaves (a shard, or all of them)."""
        raise NotImplementedError(
            f"{self.display_name or type(self).__name__} has no leaf pipeline"
        )


class NMJoin(JoinAlgorithm):
    """Algorithm 6 — non-blocking, no materialisation."""

    name = "nm"
    display_name = "NM-CIJ"
    supports_sharding = True

    def process_leaves(self, ctx, leaves):
        from repro.join.nm_cij import process_q_leaves

        return process_q_leaves(
            ctx.tree_p,
            ctx.tree_q,
            leaves,
            ctx.domain,
            ctx.stats,
            ctx.cell_stats,
            ctx.filter_stats,
            ctx.start_counters,
            reuse_cells=ctx.config.reuse_cells,
            use_phi_pruning=ctx.config.use_phi_pruning,
        )


class PMJoin(JoinAlgorithm):
    """Algorithm 4 — partial materialisation (``R'_P`` only)."""

    name = "pm"
    display_name = "PM-CIJ"
    materialises = True
    supports_sharding = True

    def prepare(self, ctx):
        from repro.join.materialize import materialize_voronoi_rtree

        voronoi_p, count_p = materialize_voronoi_rtree(
            ctx.tree_p, ctx.domain, tag=f"{ctx.tree_p.tag}_vor", stats=ctx.cell_stats
        )
        ctx.stats.cells_computed_p = count_p
        ctx.prepared["voronoi_p"] = voronoi_p

    def process_leaves(self, ctx, leaves):
        from repro.join.pm_cij import probe_q_leaves

        return probe_q_leaves(
            ctx.prepared["voronoi_p"],
            ctx.tree_q,
            leaves,
            ctx.domain,
            ctx.stats,
            ctx.cell_stats,
            ctx.start_counters,
        )


class FMJoin(JoinAlgorithm):
    """Algorithm 3 — full materialisation plus synchronous-traversal join."""

    name = "fm"
    display_name = "FM-CIJ"
    materialises = True

    def prepare(self, ctx):
        from repro.join.materialize import materialize_voronoi_rtree

        voronoi_p, count_p = materialize_voronoi_rtree(
            ctx.tree_p, ctx.domain, tag=f"{ctx.tree_p.tag}_vor", stats=ctx.cell_stats
        )
        voronoi_q, count_q = materialize_voronoi_rtree(
            ctx.tree_q, ctx.domain, tag=f"{ctx.tree_q.tag}_vor", stats=ctx.cell_stats
        )
        ctx.stats.cells_computed_p = count_p
        ctx.stats.cells_computed_q = count_q
        ctx.prepared["voronoi_p"] = voronoi_p
        ctx.prepared["voronoi_q"] = voronoi_q

    def run_join(self, ctx):
        from repro.join.fm_cij import join_materialized_trees

        return join_materialized_trees(
            ctx.prepared["voronoi_p"],
            ctx.prepared["voronoi_q"],
            ctx.stats,
            ctx.start_counters,
            progress_interval=ctx.config.progress_interval,
        )


class BruteForceJoin(JoinAlgorithm):
    """The quadratic, index-free oracle behind the same entry point.

    Points are pulled from the source trees without charging I/O (the
    oracle's cost model is not the paper's), and pairs are produced in the
    deterministic nested-loop order of the brute-force diagram.
    """

    name = "brute"
    display_name = "BRUTE"

    def run_join(self, ctx):
        from repro.join.baseline import brute_force_cij

        entries_p = sorted(ctx.tree_p.all_leaf_entries(), key=lambda e: e.oid)
        entries_q = sorted(ctx.tree_q.all_leaf_entries(), key=lambda e: e.oid)
        with ctx.disk.suspend_io_accounting():
            result = brute_force_cij(
                [e.payload for e in entries_p],
                [e.payload for e in entries_q],
                ctx.domain,
                oids_p=[e.oid for e in entries_p],
                oids_q=[e.oid for e in entries_q],
            )
        return result.pairs


def default_algorithms() -> List[JoinAlgorithm]:
    """The stock algorithm set every :class:`JoinEngine` starts with."""
    return [NMJoin(), PMJoin(), FMJoin(), BruteForceJoin()]
