"""The JoinEngine: one entry point for every CIJ variant and baseline.

``engine.run(algorithm, tree_p, tree_q, config)`` unifies what used to be
four standalone functions with duplicated counter/timing plumbing.  The
engine owns the run lifecycle:

1. resolve the algorithm and the effective :class:`EngineConfig`,
2. validate that both trees share one disk manager and resolve the domain,
3. snapshot the I/O counters and time the MAT phase (``prepare``),
4. hand the join phase to the configured executor (serial or sharded),
5. finalise the :class:`JoinStats` breakdown and return a
   :class:`CIJResult` that also carries the Voronoi and filter work
   counters.

The classic entry points (:func:`repro.join.nm_cij.nm_cij` and friends)
are thin wrappers over :func:`default_engine`, so every experiment driver,
example and test runs through this one code path.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Union

from repro.geometry.kernels import resolve_compute_mode
from repro.index.rtree import RTree
from repro.storage.backends import canonical_backend
from repro.join.conditional_filter import FilterStats
from repro.join.result import CIJResult, JoinStats
from repro.voronoi.single import CellComputationStats

from repro.engine.algorithms import JoinAlgorithm, JoinContext, default_algorithms
from repro.engine.config import EngineConfig
from repro.engine.executors import executor_for


class JoinEngine:
    """Registry of join algorithms plus the shared execution plumbing."""

    def __init__(self, algorithms: Optional[List[JoinAlgorithm]] = None):
        stock = algorithms if algorithms is not None else default_algorithms()
        self._algorithms: Dict[str, JoinAlgorithm] = {a.name: a for a in stock}
        #: The currently open dynamic session (see :meth:`open_dynamic`).
        self._session = None
        #: The executor instance of the most recent :meth:`run` — a
        #: diagnostics hook: the sharded/distributed executors record
        #: their pull-scheduling trace on ``last_assignments``, which the
        #: skew tests read here.  Overwritten by every run, so only
        #: meaningful immediately after a run on a single-threaded engine.
        self.last_executor = None

    def algorithm_names(self) -> List[str]:
        """The registered algorithm identifiers, sorted."""
        return sorted(self._algorithms)

    def register(self, algorithm: JoinAlgorithm) -> None:
        """Add (or replace) an algorithm under its ``name``."""
        if not algorithm.name:
            raise ValueError("algorithm must define a non-empty name")
        self._algorithms[algorithm.name] = algorithm

    def run(
        self,
        algorithm: Union[str, JoinAlgorithm],
        tree_p: RTree,
        tree_q: RTree,
        config: Optional[EngineConfig] = None,
        **overrides,
    ) -> CIJResult:
        """Execute one join end to end and return pairs plus statistics.

        Parameters
        ----------
        algorithm:
            A registered identifier (``"nm"``, ``"pm"``, ``"fm"``,
            ``"brute"``) or a :class:`JoinAlgorithm` instance.
        tree_p, tree_q:
            Source R-trees sharing one :class:`~repro.storage.disk.DiskManager`.
        config:
            Base configuration; defaults to ``EngineConfig()``.
        **overrides:
            Individual :class:`EngineConfig` fields to replace for this run
            (``executor="sharded"``, ``workers=4``, ``domain=...``, ...).
            ``None`` values are ignored so callers can pass optional
            arguments straight through.
        """
        algo = self._resolve(algorithm)
        effective = self._effective_config(config, overrides)
        # Resolve the compute mode (None -> $REPRO_COMPUTE -> "scalar")
        # before the context is built, so forked shard workers inherit a
        # concrete mode rather than re-reading the environment.
        resolved_compute = resolve_compute_mode(effective.compute)
        if resolved_compute != effective.compute:
            effective = effective.replace(compute=resolved_compute)
        if tree_p.disk is not tree_q.disk:
            raise ValueError("both input trees must share one DiskManager")
        if (
            effective.storage is not None
            # Compare canonical base names: "remote+sqlite" in the config
            # matches the "remote" client store the workload opened.
            and tree_p.disk.storage_backend != canonical_backend(effective.storage)
        ):
            raise ValueError(
                f"config asks for the {effective.storage!r} storage backend but the "
                f"trees live on a {tree_p.disk.storage_backend!r} disk; build the "
                "workload with the same backend (see repro.datasets.workload)"
            )
        if effective.storage_path is not None:
            store_path = tree_p.disk.store.location
            if store_path != effective.storage_path:
                raise ValueError(
                    f"config asks for storage at {effective.storage_path!r} but the "
                    f"trees' page store is backed by {store_path!r}; build the "
                    "workload with the same storage_path"
                )
        executor = executor_for(effective)
        self.last_executor = executor
        domain = effective.domain
        if domain is None:
            domain = tree_p.domain().union(tree_q.domain())

        disk = tree_p.disk
        stats = JoinStats(algorithm=algo.display_name)
        ctx = JoinContext(
            tree_p=tree_p,
            tree_q=tree_q,
            domain=domain,
            config=effective,
            stats=stats,
            cell_stats=CellComputationStats(),
            filter_stats=FilterStats(),
            start_counters=disk.counters.snapshot(),
            cell_cache={} if effective.cell_cache else None,
        )

        if effective.prefetch != "off":
            # Attach the overlapped-I/O pipeline for this run.  The
            # scheduler accounts into the disk's lifetime stats; staged
            # pages are drained (and charged as wasted) when the run ends,
            # so one run's mispredictions can never leak into the next.
            disk.enable_prefetch()

        # The drain must cover the MAT phase too: FM's prepare already
        # reads pages with prefetch attached, and an exception there used
        # to skip the drain, leaving staged pages and a live fetch worker
        # behind for the next run.
        try:
            # --- MAT phase ---------------------------------------------
            mat_start = time.perf_counter()
            algo.prepare(ctx)
            if algo.materialises:
                stats.mat_cpu_seconds = time.perf_counter() - mat_start
                stats.mat_page_accesses = disk.counters.diff(
                    ctx.start_counters
                ).page_accesses
                stats.record_progress(stats.mat_page_accesses, 0)

            # --- JOIN phase --------------------------------------------
            join_start = time.perf_counter()
            pairs = executor.execute(algo, ctx)
        finally:
            if effective.prefetch != "off":
                disk.drain_prefetch()
        stats.join_cpu_seconds = time.perf_counter() - join_start
        total_accesses = disk.counters.diff(ctx.start_counters).page_accesses
        stats.join_page_accesses = total_accesses - stats.mat_page_accesses
        stats.record_progress(stats.total_page_accesses, len(pairs))
        return CIJResult(
            pairs=pairs,
            stats=stats,
            cell_stats=ctx.cell_stats,
            filter_stats=ctx.filter_stats,
            storage=disk.storage_stats(),
        )

    # ------------------------------------------------------------------
    # dynamic workloads
    # ------------------------------------------------------------------
    def open_dynamic(
        self,
        tree_p: RTree,
        tree_q: RTree,
        config: Optional[EngineConfig] = None,
        owns_disk: bool = False,
        **overrides,
    ):
        """Open a :class:`~repro.dynamic.DynamicJoinSession` on two trees.

        The session materialises both Voronoi diagrams, derives the current
        pair set, and then absorbs insert/delete batches incrementally
        (:meth:`apply_updates`).  ``config``/``overrides`` follow the same
        semantics as :meth:`run`; the session requires the serial executor.

        The engine keeps the session open (and its trees and diagrams
        alive) until the next :meth:`open_dynamic` or an explicit
        :meth:`close_dynamic` — on the shared :func:`default_engine` only
        one session is current at a time (latest wins, and the replaced
        session is closed), so a caller juggling several sessions should
        call ``session.apply_updates`` on the objects directly.

        ``owns_disk=True`` transfers ownership of the trees' DiskManager
        to the session: closing the session then also closes the backend
        handles — what a long-running server wants when it builds the
        workload solely for the session.
        """
        from repro.dynamic.maintenance import DynamicJoinSession

        effective = self._effective_config(config, overrides)
        if effective.prefetch != "off":
            raise ValueError(
                "dynamic sessions do not support prefetching: incremental "
                "maintenance interleaves structural writes with its "
                "BatchVoronoi reads, which would race the async fetch "
                "pipeline; open the session with prefetch='off' (updates "
                "can be applied after a prefetched static join completes)"
            )
        session = DynamicJoinSession(
            tree_p,
            tree_q,
            domain=effective.domain,
            config=effective,
            owns_disk=owns_disk,
        )
        previous, self._session = self._session, session
        if previous is not None and previous is not session:
            previous.close()
        return session

    def apply_updates(self, batch):
        """Apply an update batch to the engine's open dynamic session.

        Returns the :class:`~repro.dynamic.PairDelta` of the batch.  A
        session must have been opened with :meth:`open_dynamic` (and not
        yet replaced or closed); see there for the single-session caveat.
        """
        if self._session is None:
            raise ValueError(
                "no dynamic session is open; call "
                "engine.open_dynamic(tree_p, tree_q) before apply_updates"
            )
        return self._session.apply_updates(batch)

    def close_dynamic(self) -> None:
        """Close and forget the open dynamic session.

        The session's maintained state is released immediately (and, if it
        owns its disk, the backend handles with it) rather than waiting
        for GC.  A no-op when no session is open.
        """
        session, self._session = self._session, None
        if session is not None:
            session.close()

    # ------------------------------------------------------------------
    def _resolve(self, algorithm: Union[str, JoinAlgorithm]) -> JoinAlgorithm:
        if isinstance(algorithm, JoinAlgorithm):
            return algorithm
        try:
            return self._algorithms[algorithm.lower()]
        except KeyError:
            known = ", ".join(self.algorithm_names())
            raise ValueError(
                f"unknown algorithm {algorithm!r}; expected one of {known}"
            ) from None

    @staticmethod
    def _effective_config(config: Optional[EngineConfig], overrides: Dict) -> EngineConfig:
        base = config if config is not None else EngineConfig()
        updates = {key: value for key, value in overrides.items() if value is not None}
        return base.replace(**updates) if updates else base


_DEFAULT_ENGINE: Optional[JoinEngine] = None


def default_engine() -> JoinEngine:
    """The process-wide engine the classic entry points delegate to."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = JoinEngine()
    return _DEFAULT_ENGINE
