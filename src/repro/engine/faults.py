"""Deterministic fault injection for the distributed execution tier.

Failure handling that is only ever exercised by real failures is failure
handling that is never exercised at all.  This module makes every failure
mode of the node plane a *reproducible input*: a :class:`FaultPlan` is a
deterministic, serializable description of which node misbehaves, when,
and how — crash on the k-th unit, hang mid-computation, drop or corrupt a
result line, reply with a structured error, come up late.  The plan
travels to each node inside its ``init`` message, so the same spec string
fires the same faults on every run; the fault-matrix and hypothesis
suites in ``tests/engine/test_fault_tolerance.py`` are tier-1 tests, not
flakes waiting for a real crash.

Spec grammar (one fault per ``;``-separated clause)::

    kind@node[:key=value[,key=value...]]

    crash@node-1:after=2             exit abruptly on receiving the 3rd unit
    crash@node-1:after=2,phase=work  compute the 3rd unit, exit before replying
    hang@node-0:unit=3               go silent (heartbeats too) on global unit 3
    drop@node-0:after=0              compute the 1st unit, never send the result
    corrupt@node-0:after=1           garble the 2nd result line on the wire
    error@node-0:after=0             answer the 1st unit with an error reply
    ready_delay@node-1:seconds=0.5   sleep before announcing readiness

``after`` counts units the node has *completed* (node-local, default 0 —
the fault fires on the node's next unit); ``unit`` matches the global
unit index instead.  When both are given, both must match.  Every fault
fires at most once.

The plan is *injection* only: detection, lease release, retry and
quarantine live in :mod:`repro.engine.node` and the
``DistributedExecutor`` — the invariant under test is that merged pairs
and deterministic counters stay byte-identical to serial no matter which
faults fire.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

#: Fault kinds a plan may carry.
FAULT_KINDS = ("crash", "hang", "drop", "corrupt", "error", "ready_delay")

#: Crash phases: ``"recv"`` exits on receipt of the unit (before any
#: work), ``"work"`` exits after computing it but before replying — the
#: two ends of the idempotent-re-execution window.
CRASH_PHASES = ("recv", "work")


@dataclass(frozen=True)
class Fault:
    """One injected misbehaviour of one node."""

    kind: str
    node: str
    #: Node-local completed-unit count at which the fault arms (``None``
    #: with ``unit`` set = armed for that global unit whenever it arrives).
    after: Optional[int] = 0
    #: Global unit index the fault is pinned to (``None`` = any unit).
    unit: Optional[int] = None
    #: Crash phase (crash faults only).
    phase: str = "recv"
    #: Sleep length (``ready_delay`` faults only).
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if not self.node:
            raise ValueError("a fault must name its target node")
        if self.phase not in CRASH_PHASES:
            raise ValueError(
                f"unknown crash phase {self.phase!r}; expected one of {CRASH_PHASES}"
            )
        if self.after is not None and self.after < 0:
            raise ValueError(f"fault after= must be >= 0 (got {self.after})")
        if self.unit is not None and self.unit < 0:
            raise ValueError(f"fault unit= must be >= 0 (got {self.unit})")
        if self.seconds < 0:
            raise ValueError(f"fault seconds= must be >= 0 (got {self.seconds})")

    # -- wire form (crosses the node init message as JSON) ---------------
    def to_wire(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "node": self.node,
            "after": self.after,
            "unit": self.unit,
            "phase": self.phase,
            "seconds": self.seconds,
        }

    @staticmethod
    def from_wire(wire: Dict[str, Any]) -> "Fault":
        return Fault(
            kind=wire["kind"],
            node=wire["node"],
            after=wire.get("after"),
            unit=wire.get("unit"),
            phase=wire.get("phase", "recv"),
            seconds=float(wire.get("seconds", 0.0)),
        )

    def to_clause(self) -> str:
        """The fault as one spec clause (inverse of the parser)."""
        options = []
        if self.after is not None:
            options.append(f"after={self.after}")
        if self.unit is not None:
            options.append(f"unit={self.unit}")
        if self.kind == "crash" and self.phase != "recv":
            options.append(f"phase={self.phase}")
        if self.kind == "ready_delay":
            options.append(f"seconds={self.seconds}")
        clause = f"{self.kind}@{self.node}"
        return clause + (":" + ",".join(options) if options else "")


def _parse_clause(clause: str) -> Fault:
    head, _, options = clause.partition(":")
    kind, at, node = head.partition("@")
    if not at or not kind or not node:
        raise ValueError(
            f"bad fault clause {clause!r}: expected 'kind@node[:key=value,...]'"
        )
    fields: Dict[str, Any] = {"kind": kind.strip(), "node": node.strip()}
    explicit_after = False
    for option in filter(None, (o.strip() for o in options.split(","))):
        key, eq, value = option.partition("=")
        if not eq:
            raise ValueError(f"bad fault option {option!r} in {clause!r}")
        key = key.strip()
        value = value.strip()
        if key == "after":
            fields["after"] = int(value)
            explicit_after = True
        elif key == "unit":
            fields["unit"] = int(value)
        elif key == "phase":
            fields["phase"] = value
        elif key == "seconds":
            fields["seconds"] = float(value)
        else:
            raise ValueError(f"unknown fault option {key!r} in {clause!r}")
    if fields.get("unit") is not None and not explicit_after:
        fields["after"] = None  # pinned to a global unit, any local count
    return Fault(**fields)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of faults for one distributed run."""

    faults: tuple = ()

    @staticmethod
    def from_spec(spec: str) -> "FaultPlan":
        """Parse a ``;``-separated clause string (see module docstring)."""
        clauses = [c.strip() for c in spec.split(";") if c.strip()]
        if not clauses:
            raise ValueError(f"empty fault plan spec {spec!r}")
        return FaultPlan(faults=tuple(_parse_clause(c) for c in clauses))

    def to_spec(self) -> str:
        return ";".join(fault.to_clause() for fault in self.faults)

    @staticmethod
    def random(
        seed: int,
        nodes: int,
        count: int = 2,
        max_after: int = 3,
        unit_count: Optional[int] = None,
    ) -> "FaultPlan":
        """A seed-deterministic plan: same arguments, same faults.

        Crash phases, targets and arming points are drawn from
        ``random.Random(seed)``; ``ready_delay`` draws tiny sleeps so a
        randomized suite stays fast.
        """
        rng = random.Random(seed)
        faults: List[Fault] = []
        kinds = [k for k in FAULT_KINDS if k != "hang"]  # hangs cost a timeout
        for _ in range(count):
            kind = rng.choice(kinds)
            node = f"node-{rng.randrange(nodes)}"
            if kind == "ready_delay":
                faults.append(
                    Fault(kind, node, seconds=round(rng.uniform(0.05, 0.3), 3))
                )
            elif kind == "crash":
                faults.append(
                    Fault(
                        kind,
                        node,
                        after=rng.randrange(max_after + 1),
                        unit=(
                            rng.randrange(unit_count)
                            if unit_count and rng.random() < 0.3
                            else None
                        ),
                        phase=rng.choice(CRASH_PHASES),
                    )
                )
            else:
                faults.append(Fault(kind, node, after=rng.randrange(max_after + 1)))
        return FaultPlan(faults=tuple(faults))

    def for_node(self, worker_id: str) -> List[Dict[str, Any]]:
        """The wire form of this node's faults (what rides the init spec)."""
        return [f.to_wire() for f in self.faults if f.node == worker_id]

    def nodes_targeted(self) -> List[str]:
        return sorted({f.node for f in self.faults})


def resolve_plan(plan) -> Optional[FaultPlan]:
    """Accept a :class:`FaultPlan`, a spec string, or ``None``."""
    if plan is None:
        return None
    if isinstance(plan, FaultPlan):
        return plan
    if isinstance(plan, str):
        return FaultPlan.from_spec(plan)
    raise TypeError(f"fault plan must be a FaultPlan or spec string, got {plan!r}")


class FaultInjector:
    """Node-side interpreter of a fault list (wire dicts from the init).

    The node's main loop consults it at the three injection points —
    readiness, unit receipt, and reply — and counts completed units so
    ``after`` clauses arm deterministically.  ``fired`` records what
    actually went off (reported back only by faults that leave the node
    alive, which is why the parent also infers fired faults from observed
    failures).
    """

    def __init__(self, faults: Sequence[Dict[str, Any]]):
        self._faults = [Fault.from_wire(wire) for wire in faults or ()]
        self._armed = list(self._faults)
        self.units_completed = 0
        self.fired: List[Fault] = []

    def ready_delay(self) -> float:
        """Total pre-ready sleep; consumes the ``ready_delay`` faults."""
        delays = [f for f in self._armed if f.kind == "ready_delay"]
        for fault in delays:
            self._armed.remove(fault)
            self.fired.append(fault)
        return sum(f.seconds for f in delays)

    def on_unit(self, unit_index: int) -> Optional[Fault]:
        """The fault (if any) that fires for this unit; consumes it."""
        for fault in self._armed:
            if fault.kind == "ready_delay":
                continue
            if fault.after is not None and fault.after != self.units_completed:
                continue
            if fault.unit is not None and fault.unit != unit_index:
                continue
            self._armed.remove(fault)
            self.fired.append(fault)
            return fault
        return None

    def unit_completed(self) -> None:
        self.units_completed += 1
