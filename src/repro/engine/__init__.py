"""repro.engine — the pluggable join-execution subsystem.

One entry point for every CIJ variant and the brute-force baseline::

    from repro.engine import JoinEngine, EngineConfig

    engine = JoinEngine()
    result = engine.run("nm", tree_p, tree_q)                      # serial
    result = engine.run("nm", tree_p, tree_q,
                        executor="sharded", workers=4)             # parallel

The serial executor preserves the paper's single-threaded semantics.  The
sharded and distributed executors enumerate the algorithm's
:class:`~repro.engine.units.WorkUnit` descriptors — ``R_Q``'s
Hilbert-ordered leaves for NM/PM, top-level ``R'_P`` partitions of the
synchronous traversal for FM — and hand them out through the pull-based
:class:`~repro.engine.coordinator.UnitCoordinator`: local
``multiprocessing`` workers for ``"sharded"``, node subprocesses speaking
the NDJSON unit protocol over a shared on-disk backend for
``"distributed"`` (:mod:`repro.engine.node`).  Results are merged in unit
index order, so pairs and statistics are deterministic and byte-identical
to serial whatever the assignment (see :mod:`repro.engine.executors` for
the correctness argument).  A sharded or distributed NM-CIJ can hand its
REUSE buffer across unit boundaries (``EngineConfig.reuse_handoff``),
restoring the serial cell-reuse chain as a unit pipeline.
``EngineConfig.prefetch`` overlaps upcoming batches' (or shards') page
reads with the current batch's Voronoi computation through the disk's
async fetch pipeline (:mod:`repro.storage.prefetch`) without changing the
emitted pairs or any logical counter.
:func:`run_join` and :func:`default_engine` serve callers that do not need
their own registry.
"""

from repro.engine.algorithms import (
    BruteForceJoin,
    FMJoin,
    JoinAlgorithm,
    JoinContext,
    NMJoin,
    PMJoin,
    default_algorithms,
)
from repro.engine.config import EngineConfig
from repro.engine.coordinator import Assignment, UnitCoordinator
from repro.engine.core import JoinEngine, default_engine
from repro.engine.executors import (
    DistributedExecutor,
    SerialExecutor,
    ShardedExecutor,
    ShardResult,
    executor_for,
)
from repro.engine.faults import Fault, FaultPlan
from repro.engine.units import WorkUnit

#: Node failure taxonomy, exported lazily: :mod:`repro.engine.node` pulls
#: in the service protocol, whose package import would recurse back into
#: this module during ``repro.dynamic`` initialisation.
_NODE_EXPORTS = (
    "NodeFailure",
    "NodeCrashed",
    "NodeTimeout",
    "NodeError",
    "NodeProtocolError",
)


def __getattr__(name):
    if name in _NODE_EXPORTS:
        from repro.engine import node

        return getattr(node, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "EngineConfig",
    "JoinEngine",
    "JoinAlgorithm",
    "JoinContext",
    "NMJoin",
    "PMJoin",
    "FMJoin",
    "BruteForceJoin",
    "SerialExecutor",
    "ShardedExecutor",
    "DistributedExecutor",
    "ShardResult",
    "WorkUnit",
    "UnitCoordinator",
    "Assignment",
    "Fault",
    "FaultPlan",
    "NodeFailure",
    "NodeCrashed",
    "NodeTimeout",
    "NodeError",
    "NodeProtocolError",
    "default_algorithms",
    "default_engine",
    "executor_for",
    "run_join",
]


def run_join(algorithm, tree_p, tree_q, config=None, **overrides):
    """Run a join through the process-wide default engine."""
    return default_engine().run(algorithm, tree_p, tree_q, config, **overrides)
