"""repro.engine — the pluggable join-execution subsystem.

One entry point for every CIJ variant and the brute-force baseline::

    from repro.engine import JoinEngine, EngineConfig

    engine = JoinEngine()
    result = engine.run("nm", tree_p, tree_q)                      # serial
    result = engine.run("nm", tree_p, tree_q,
                        executor="sharded", workers=4)             # parallel

The serial executor preserves the paper's single-threaded semantics; the
sharded executor partitions the algorithm's shard units — ``R_Q``'s
Hilbert-ordered leaves for NM/PM, top-level ``R'_P`` partitions of the
synchronous traversal for FM — across ``multiprocessing`` workers and
merges pairs and statistics deterministically (see
:mod:`repro.engine.executors` for the correctness argument).  A sharded
NM-CIJ can additionally hand its REUSE buffer across shard boundaries
(``EngineConfig.reuse_handoff``), restoring the serial cell-reuse chain.
``EngineConfig.prefetch`` overlaps upcoming batches' (or shards') page
reads with the current batch's Voronoi computation through the disk's
async fetch pipeline (:mod:`repro.storage.prefetch`) without changing the
emitted pairs or any logical counter.
:func:`run_join` and :func:`default_engine` serve callers that do not need
their own registry.
"""

from repro.engine.algorithms import (
    BruteForceJoin,
    FMJoin,
    JoinAlgorithm,
    JoinContext,
    NMJoin,
    PMJoin,
    default_algorithms,
)
from repro.engine.config import EngineConfig
from repro.engine.core import JoinEngine, default_engine
from repro.engine.executors import (
    SerialExecutor,
    ShardedExecutor,
    ShardResult,
    executor_for,
)

__all__ = [
    "EngineConfig",
    "JoinEngine",
    "JoinAlgorithm",
    "JoinContext",
    "NMJoin",
    "PMJoin",
    "FMJoin",
    "BruteForceJoin",
    "SerialExecutor",
    "ShardedExecutor",
    "ShardResult",
    "default_algorithms",
    "default_engine",
    "executor_for",
    "run_join",
]


def run_join(algorithm, tree_p, tree_q, config=None, **overrides):
    """Run a join through the process-wide default engine."""
    return default_engine().run(algorithm, tree_p, tree_q, config, **overrides)
