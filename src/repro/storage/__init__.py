"""Simulated storage layer: pages, an LRU buffer and I/O accounting.

The paper's primary experimental metric is the number of R-tree page (node)
accesses under an LRU buffer sized at a percentage of the data size.  This
subpackage provides exactly that substrate:

* :class:`~repro.storage.counters.IOCounters` — read/write/hit/miss counters
  that every experiment reports,
* :class:`~repro.storage.buffer.LRUBuffer` — a page-granularity LRU cache,
* :class:`~repro.storage.disk.DiskManager` — a page store that charges one
  logical I/O per buffer miss and tracks which structure (tree) each page
  belongs to, so materialisation (MAT) and join (JOIN) costs can be broken
  down as in Figure 7,
* :mod:`~repro.storage.backends` — the pluggable byte stores behind the
  disk manager (``memory`` dict, slotted binary ``file``, ``sqlite``), all
  satisfying one :class:`~repro.storage.backends.PageStore` contract and
  one conformance test suite.
"""

from repro.storage.backends import (
    STORAGE_BACKENDS,
    STORAGE_ENV_VAR,
    FilePageStore,
    MemoryPageStore,
    PageRecord,
    PageStore,
    SQLitePageStore,
    StorageStats,
    create_page_store,
    default_storage_backend,
)
from repro.storage.buffer import LRUBuffer
from repro.storage.counters import IOCounters
from repro.storage.disk import DiskManager, PAGE_SIZE_DEFAULT

__all__ = [
    "LRUBuffer",
    "IOCounters",
    "DiskManager",
    "PAGE_SIZE_DEFAULT",
    "PageStore",
    "PageRecord",
    "StorageStats",
    "MemoryPageStore",
    "FilePageStore",
    "SQLitePageStore",
    "create_page_store",
    "default_storage_backend",
    "STORAGE_BACKENDS",
    "STORAGE_ENV_VAR",
]
