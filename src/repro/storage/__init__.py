"""Simulated storage layer: pages, an LRU buffer and I/O accounting.

The paper's primary experimental metric is the number of R-tree page (node)
accesses under an LRU buffer sized at a percentage of the data size.  This
subpackage provides exactly that substrate:

* :class:`~repro.storage.counters.IOCounters` — read/write/hit/miss counters
  that every experiment reports,
* :class:`~repro.storage.buffer.LRUBuffer` — a page-granularity LRU cache,
* :class:`~repro.storage.disk.DiskManager` — a page store that charges one
  logical I/O per buffer miss and tracks which structure (tree) each page
  belongs to, so materialisation (MAT) and join (JOIN) costs can be broken
  down as in Figure 7,
* :mod:`~repro.storage.backends` — the pluggable byte stores behind the
  disk manager (``memory`` dict, slotted binary ``file``, ``sqlite``, and
  the ``remote`` page-server client), all satisfying one
  :class:`~repro.storage.backends.PageStore` contract — a
  ``runtime_checkable`` protocol with capability flags — and one
  conformance test suite.  Backend selection routes through
  :func:`~repro.storage.backends.open_store`.
* :mod:`~repro.storage.pageserver` — the page-server process and its
  client store (imported lazily: it pulls in socket/subprocess machinery
  local backends never need).
"""

from repro.storage.backends import (
    REMOTE_BACKINGS,
    STORAGE_BACKENDS,
    STORAGE_ENV_VAR,
    FilePageStore,
    MemoryPageStore,
    PageRecord,
    PageStore,
    PageStoreBase,
    SQLitePageStore,
    StorageStats,
    canonical_backend,
    create_page_store,
    default_storage_backend,
    open_store,
)
from repro.storage.buffer import LRUBuffer
from repro.storage.counters import IOCounters
from repro.storage.disk import DiskManager, PAGE_SIZE_DEFAULT

_PAGESERVER_EXPORTS = (
    "PageServer",
    "PageServerError",
    "RemotePageStore",
    "spawn_page_server",
)


def __getattr__(name):
    # Lazy so importing repro.storage never drags in the service protocol
    # (pageserver reuses it, and repro.service imports the engine).
    if name in _PAGESERVER_EXPORTS:
        from repro.storage import pageserver

        return getattr(pageserver, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "LRUBuffer",
    "IOCounters",
    "DiskManager",
    "PAGE_SIZE_DEFAULT",
    "PageStore",
    "PageStoreBase",
    "PageRecord",
    "StorageStats",
    "MemoryPageStore",
    "FilePageStore",
    "SQLitePageStore",
    "PageServer",
    "PageServerError",
    "RemotePageStore",
    "spawn_page_server",
    "canonical_backend",
    "create_page_store",
    "open_store",
    "default_storage_backend",
    "STORAGE_BACKENDS",
    "REMOTE_BACKINGS",
    "STORAGE_ENV_VAR",
]
