"""Simulated storage layer: pages, an LRU buffer and I/O accounting.

The paper's primary experimental metric is the number of R-tree page (node)
accesses under an LRU buffer sized at a percentage of the data size.  This
subpackage provides exactly that substrate:

* :class:`~repro.storage.counters.IOCounters` — read/write/hit/miss counters
  that every experiment reports,
* :class:`~repro.storage.buffer.LRUBuffer` — a page-granularity LRU cache,
* :class:`~repro.storage.disk.DiskManager` — a page store that charges one
  logical I/O per buffer miss and tracks which structure (tree) each page
  belongs to, so materialisation (MAT) and join (JOIN) costs can be broken
  down as in Figure 7.
"""

from repro.storage.buffer import LRUBuffer
from repro.storage.counters import IOCounters
from repro.storage.disk import DiskManager, PAGE_SIZE_DEFAULT

__all__ = ["LRUBuffer", "IOCounters", "DiskManager", "PAGE_SIZE_DEFAULT"]
