"""A remote page server and its client store — nodes without shared disks.

ROADMAP item 3's last rung: every distributed tier so far still assumed
all workers could reopen the same local file/sqlite path.  This module
removes that assumption.  A :class:`PageServer` process owns the one
writable backing store (file or sqlite) and serves it over TCP using the
same newline-delimited canonical-JSON framing as the join service
(:mod:`repro.service.protocol`); a :class:`RemotePageStore` plugs into
:class:`~repro.storage.disk.DiskManager` behind the ordinary
:class:`~repro.storage.backends.PageStore` seam, so the node-local LRU
buffer, decoded-page cache and logical I/O counters are untouched — a
join over the wire charges exactly the page accesses a local join does,
and only ``storage_stats()`` reveals the transport.

Wire format (one request line, one response line)::

    {"op": "read_page", "page": 17}
    {"ok": true, "op": "read_page", "record": {"tag": "R", "size": 412,
     "blob": "<base64 of the codec-encoded payload>"}}

Ops: ``hello``, ``read_page``, ``read_batch`` (the batched fetch the
prefetch pipeline rides), ``write_page``, ``free_page``, ``page_meta``,
``page_ids``, ``page_count``, ``data_size``, ``stats``, ``shutdown``.
Unknown pages answer the structured error code ``unknown_page``, which
the client re-raises as the ``KeyError`` every backend contract promises.

Honest overhead notes: each page crosses the wire as its codec-encoded
blob re-encoded once more into base64 inside a JSON line (~1.8x the
payload bytes), and demand misses pay one RPC round trip each — batching
only happens on the prefetch path (``read_batch``).  That is the price of
zero shared local state; see ROADMAP item 3.
"""

from __future__ import annotations

import argparse
import base64
import os
import socket
import subprocess
import sys
import tempfile
import threading
import weakref
from typing import Any, Dict, List, Optional, Tuple

from repro.service.protocol import (
    PROTOCOL_VERSION,
    ServiceError,
    decode_line,
    encode_line,
    error_response,
    ok_response,
)
from repro.storage.backends import (
    REMOTE_BACKINGS,
    PageFetch,
    PageRecord,
    PageStoreBase,
    StorageStats,
    ThreadedPageFetch,
    _codec,
    create_page_store,
)

#: Pages per ``read_batch`` RPC.  Keeps every response line far below the
#: protocol's 1 MiB cap while still amortizing round trips.
BATCH_CHUNK_PAGES = 64

#: Default socket timeout for one RPC; a server that neither answers nor
#: closes the connection within this window surfaces a loud error instead
#: of hanging the join.
DEFAULT_RPC_TIMEOUT = 60.0


class PageServerError(RuntimeError):
    """A remote page operation failed loudly (server gone, protocol error).

    Inside a distributed node this propagates through the unit-execution
    path and reaches the coordinator as a ``NodeError`` — the same
    retry/quarantine taxonomy every other node failure uses; a serial run
    sees it directly.  It is never swallowed into silent corruption.
    """


def parse_address(address: str) -> Tuple[str, int]:
    """Split ``HOST:PORT`` (the port is the part after the last colon)."""
    host, sep, port_text = str(address).rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"page server address {address!r} is not of the form HOST:PORT"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"page server address {address!r} has a non-numeric port"
        ) from None
    return host, port


def _record_to_wire(record: PageRecord) -> Dict[str, Any]:
    blob = _codec().encode_page_payload(record.payload)
    return {
        "tag": record.tag,
        "size": record.size_bytes,
        "blob": base64.b64encode(blob).decode("ascii"),
    }


# ----------------------------------------------------------------------
# server
# ----------------------------------------------------------------------
class PageServer:
    """Serves one writable backing store to any number of TCP clients.

    One thread per connection; every store operation runs under a single
    lock, so cross-connection writes are immediately visible to every
    reader — the same old-or-new guarantee the backings give processes
    sharing a local path.  The server reads pages uncounted
    (``count=False``): byte accounting belongs to each client's transport
    counters, not to the shared store.
    """

    def __init__(self, store, host: str = "127.0.0.1", port: int = 0):
        self._store = store
        self._lock = threading.Lock()
        self._listener = socket.create_server((host, port))
        self.host, self.port = self._listener.getsockname()[:2]
        self._stopping = threading.Event()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def start(self) -> None:
        """Accept connections on a background thread (in-process use)."""
        thread = threading.Thread(
            target=self.serve_forever, name="repro-pageserver-accept", daemon=True
        )
        thread.start()

    def serve_forever(self) -> None:
        """Accept loop; returns after :meth:`stop` (or the shutdown op)."""
        while not self._stopping.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                break  # listener closed by stop()
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="repro-pageserver-conn",
                daemon=True,
            )
            thread.start()

    def stop(self) -> None:
        """Stop accepting; in-flight handler threads drain on their own."""
        if self._stopping.is_set():
            return
        self._stopping.set()
        try:
            self._listener.close()
        except OSError:
            pass

    # ------------------------------------------------------------------
    def _serve_connection(self, conn) -> None:
        try:
            with conn, conn.makefile("rb") as reader:
                for line in reader:
                    try:
                        request = decode_line(line)
                    except ServiceError as error:
                        conn.sendall(
                            encode_line(error_response(None, error.code, str(error)))
                        )
                        continue
                    response = self._handle(request)
                    conn.sendall(encode_line(response))
                    if request.get("op") == "shutdown" and response.get("ok"):
                        self.stop()
                        return
        except (OSError, ValueError):
            # Client vanished mid-line/mid-reply; its state dies with it.
            pass

    def _handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        request_id = request.get("id")
        try:
            if not isinstance(op, str):
                raise ServiceError("request has no op", code="bad_request")
            body = self._dispatch(op, request)
        except KeyError as error:
            message = error.args[0] if error.args else str(error)
            return error_response(request_id, "unknown_page", str(message))
        except ServiceError as error:
            return error_response(request_id, error.code, str(error))
        except Exception as error:  # noqa: BLE001 - every fault answers loudly
            return error_response(request_id, "internal", f"{type(error).__name__}: {error}")
        return ok_response(op, request_id, body)

    def _dispatch(self, op: str, request: Dict[str, Any]) -> Dict[str, Any]:
        store = self._store
        if op == "hello" or op == "ping":
            with self._lock:
                return {
                    "version": PROTOCOL_VERSION,
                    "backend": store.name,
                    "pages": store.page_count(),
                }
        if op == "read_page":
            page_id = _int_field(request, "page")
            with self._lock:
                record = store.read_page(page_id, count=False)
                return {"record": _record_to_wire(record)}
        if op == "read_batch":
            pages = request.get("pages")
            if not isinstance(pages, list):
                raise ServiceError("read_batch needs a 'pages' list", code="bad_request")
            records: Dict[str, Any] = {}
            with self._lock:
                for raw_id in pages:
                    page_id = int(raw_id)
                    try:
                        record = store.read_page(page_id, count=False)
                    except KeyError:
                        continue  # freed between planning and fetching
                    records[str(page_id)] = _record_to_wire(record)
            return {"records": records}
        if op == "write_page":
            page_id = _int_field(request, "page")
            try:
                blob = base64.b64decode(request["blob"], validate=True)
                tag = str(request["tag"])
                size_bytes = int(request["size"])
            except (KeyError, ValueError, TypeError) as error:
                raise ServiceError(
                    f"malformed write_page: {error}", code="bad_request"
                ) from None
            payload = _codec().decode_page_payload(blob)
            with self._lock:
                store.write_page(page_id, tag, payload, size_bytes)
            return {}
        if op == "free_page":
            page_id = _int_field(request, "page")
            with self._lock:
                return {"freed": store.free_page(page_id)}
        if op == "page_meta":
            page_id = _int_field(request, "page")
            with self._lock:
                tag, size_bytes = store.page_meta(page_id)
            return {"tag": tag, "size": size_bytes}
        if op == "page_ids":
            with self._lock:
                return {"pages": sorted(store.page_ids())}
        if op == "page_count":
            tag = request.get("tag")
            with self._lock:
                return {"count": store.page_count(tag)}
        if op == "data_size":
            tag = request.get("tag")
            with self._lock:
                return {"bytes": store.data_size_bytes(tag)}
        if op == "stats":
            with self._lock:
                stats = store.stats()
            return {
                "backend": stats.backend,
                "pages": stats.pages,
                "file_bytes": stats.file_bytes,
            }
        if op == "shutdown":
            return {}
        raise ServiceError(f"unknown op {op!r}", code="bad_request")


def _int_field(request: Dict[str, Any], key: str) -> int:
    try:
        return int(request[key])
    except (KeyError, ValueError, TypeError):
        raise ServiceError(
            f"request needs an integer {key!r} field", code="bad_request"
        ) from None


# ----------------------------------------------------------------------
# spawning
# ----------------------------------------------------------------------
class SpawnedPageServer:
    """Handle on a page-server subprocess this process started."""

    def __init__(self, process, host: str, port: int):
        self.process = process
        self.host = host
        self.port = port

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def stop(self, timeout: float = 5.0, grace: float = 0.0) -> None:
        """Terminate the server; ``grace`` waits first for a clean exit
        (used after a ``shutdown`` op so the store deletes its owned temp)."""
        if grace > 0 and self.process.poll() is None:
            try:
                self.process.wait(timeout=grace)
            except subprocess.TimeoutExpired:
                pass
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=timeout)
        if self.process.stdout is not None:
            self.process.stdout.close()


def spawn_page_server(
    backing: str = "file",
    path: Optional[str] = None,
    host: str = "127.0.0.1",
) -> SpawnedPageServer:
    """Start ``python -m repro.storage.pageserver`` and wait for its address.

    With ``path=None`` the server owns a temporary backing file and deletes
    it when it exits cleanly.  The child announces ``{"type": "listening",
    "host": ..., "port": ...}`` on stdout once it accepts connections.
    """
    if backing not in REMOTE_BACKINGS:
        raise ValueError(
            f"unknown page-server backing {backing!r}; expected one of {REMOTE_BACKINGS}"
        )
    command = [
        sys.executable,
        "-u",
        "-m",
        "repro.storage.pageserver",
        "--backing",
        backing,
        "--host",
        host,
        "--port",
        "0",
    ]
    if path is not None:
        command += ["--path", str(path)]
    env = dict(os.environ)
    package_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (package_root, env.get("PYTHONPATH")) if part
    )
    stderr = tempfile.TemporaryFile()
    try:
        process = subprocess.Popen(
            command,
            stdin=subprocess.DEVNULL,
            stdout=subprocess.PIPE,
            stderr=stderr,
            env=env,
        )
    except OSError as error:
        stderr.close()
        raise PageServerError(f"could not spawn the page server: {error}") from None
    line = process.stdout.readline()
    if not line:
        process.wait()
        stderr.seek(0)
        detail = stderr.read().decode("utf-8", errors="replace").strip()
        stderr.close()
        raise PageServerError(
            "page server exited before announcing its address"
            + (f": {detail}" if detail else "")
        )
    stderr.close()  # unlinked; the OS reclaims it when the child exits
    try:
        announce = decode_line(line)
        server_host = str(announce["host"])
        port = int(announce["port"])
    except (ServiceError, KeyError, ValueError, TypeError):
        process.terminate()
        raise PageServerError(
            f"page server announced garbage: {line!r}"
        ) from None
    return SpawnedPageServer(process, server_host, port)


def _reap_server(process) -> None:
    """GC fallback: never leave an owned server process running."""
    if process.poll() is None:
        process.kill()
        process.wait()


# ----------------------------------------------------------------------
# client
# ----------------------------------------------------------------------
class RemotePageStore(PageStoreBase):
    """Client-side :class:`PageStore` speaking to a :class:`PageServer`.

    ``address=None`` spawns an owned server (backed by ``backing``) and
    shuts it down on :meth:`close`; an explicit ``HOST:PORT`` attaches to
    a running one and leaves it alive.  All counters are client-side
    transport counters: counted demand reads land in ``bytes_read``,
    batched prefetch traffic in ``bytes_prefetched`` — the server itself
    counts nothing, so any number of attached nodes report only their own
    wire traffic.

    One lazily-opened connection serves synchronous RPCs; the prefetch
    worker thread keeps a second, private connection so a ``read_batch``
    in flight never delays a demand miss.
    """

    name = "remote"
    supports_async = True
    supports_worker_reopen = True
    supports_remote = True

    def __init__(
        self,
        address: Optional[str] = None,
        backing: str = "file",
        rpc_timeout: float = DEFAULT_RPC_TIMEOUT,
    ):
        self._server: Optional[SpawnedPageServer] = None
        self._finalizer = None
        if address is None:
            self._server = spawn_page_server(backing)
            address = self._server.address
            self._finalizer = weakref.finalize(
                self, _reap_server, self._server.process
            )
        self.address = str(address)
        #: Mirrors the on-disk stores' ``path`` attribute so a generic
        #: ``location`` lookup (and any legacy ``getattr(store, "path")``)
        #: finds the reopen address.
        self.path = self.address
        self._host, self._port = parse_address(self.address)
        self._rpc_timeout = rpc_timeout
        self._lock = threading.Lock()
        self._sock = None
        self._reader = None
        self._prefetch_sock = None
        self._prefetch_reader = None
        self._pool = None
        self._readonly = False
        self._closed = False
        self._bytes_read = 0
        self._bytes_written = 0
        self._bytes_prefetched = 0
        self._rpc_calls = 0
        self._batch_rpcs = 0

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _connect(self):
        try:
            sock = socket.create_connection(
                (self._host, self._port), timeout=self._rpc_timeout
            )
        except OSError as error:
            raise PageServerError(
                f"could not reach the page server at {self.address}: {error}"
            ) from None
        return sock, sock.makefile("rb")

    def _rpc(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One request/response on the main connection (serialized)."""
        with self._lock:
            if self._sock is None:
                self._sock, self._reader = self._connect()
            try:
                self._sock.sendall(encode_line(payload))
                line = self._reader.readline()
            except OSError as error:
                self._drop_main_connection()
                raise PageServerError(
                    f"page server at {self.address} failed mid-request "
                    f"(op={payload.get('op')}): {error}"
                ) from None
            if not line:
                self._drop_main_connection()
                raise PageServerError(
                    f"page server at {self.address} closed the connection "
                    f"(op={payload.get('op')}) — killed mid-run?"
                )
            self._rpc_calls += 1
        return self._check(payload, decode_line(line))

    def _check(self, payload: Dict[str, Any], response: Dict[str, Any]) -> Dict[str, Any]:
        if response.get("ok"):
            return response
        error = response.get("error") or {}
        code = error.get("code", "internal")
        message = error.get("message", "no message")
        if code == "unknown_page":
            raise KeyError(message)
        raise PageServerError(
            f"page server at {self.address} rejected op "
            f"{payload.get('op')!r} [{code}]: {message}"
        )

    def _drop_main_connection(self) -> None:
        for handle in (self._reader, self._sock):
            if handle is not None:
                try:
                    handle.close()
                except OSError:
                    pass
        self._sock = None
        self._reader = None

    def _decode_record(self, wire: Dict[str, Any]) -> Tuple[PageRecord, int]:
        blob = base64.b64decode(wire["blob"])
        record = PageRecord(
            str(wire["tag"]), _codec().decode_page_payload(blob), int(wire["size"])
        )
        return record, len(blob)

    def _check_writable(self) -> None:
        if self._readonly:
            raise RuntimeError("page store reopened read-only in a worker process")

    # ------------------------------------------------------------------
    # PageStore API
    # ------------------------------------------------------------------
    def write_page(self, page_id: int, tag: str, payload: Any, size_bytes: int) -> None:
        self._check_writable()
        blob = _codec().encode_page_payload(payload)
        self._rpc(
            {
                "op": "write_page",
                "page": int(page_id),
                "tag": tag,
                "size": int(size_bytes),
                "blob": base64.b64encode(blob).decode("ascii"),
            }
        )
        self._bytes_written += len(blob)

    def read_page(self, page_id: int, count: bool = True) -> PageRecord:
        response = self._rpc({"op": "read_page", "page": int(page_id)})
        record, blob_len = self._decode_record(response["record"])
        if count:
            self._bytes_read += blob_len
        return record

    def fetch_async(self, page_ids: List[int]) -> PageFetch:
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-remote-prefetch"
            )
        return ThreadedPageFetch(self._pool.submit(self._prefetch_batch, list(page_ids)))

    def _prefetch_batch(self, page_ids: List[int]) -> Dict[int, PageRecord]:
        """Fetch a batch over the private prefetch connection.

        This is where the wire actually batches: one ``read_batch`` RPC
        per :data:`BATCH_CHUNK_PAGES` pages, instead of the per-page round
        trip every demand miss pays.  Runs only on the single prefetch
        worker thread, which owns the connection and the prefetch counter.
        """
        records: Dict[int, PageRecord] = {}
        for start in range(0, len(page_ids), BATCH_CHUNK_PAGES):
            chunk = [int(pid) for pid in page_ids[start : start + BATCH_CHUNK_PAGES]]
            if self._prefetch_sock is None:
                self._prefetch_sock, self._prefetch_reader = self._connect()
            try:
                self._prefetch_sock.sendall(
                    encode_line({"op": "read_batch", "pages": chunk})
                )
                line = self._prefetch_reader.readline()
            except OSError as error:
                raise PageServerError(
                    f"page server at {self.address} failed during prefetch: {error}"
                ) from None
            if not line:
                raise PageServerError(
                    f"page server at {self.address} closed the prefetch connection"
                )
            response = self._check({"op": "read_batch"}, decode_line(line))
            self._batch_rpcs += 1
            for key, wire in response["records"].items():
                record, blob_len = self._decode_record(wire)
                self._bytes_prefetched += blob_len
                records[int(key)] = record
        return records

    def page_meta(self, page_id: int) -> Tuple[str, int]:
        response = self._rpc({"op": "page_meta", "page": int(page_id)})
        return str(response["tag"]), int(response["size"])

    def free_page(self, page_id: int) -> bool:
        self._check_writable()
        response = self._rpc({"op": "free_page", "page": int(page_id)})
        return bool(response["freed"])

    def page_ids(self) -> List[int]:
        return [int(pid) for pid in self._rpc({"op": "page_ids"})["pages"]]

    def page_count(self, tag: Optional[str] = None) -> int:
        payload: Dict[str, Any] = {"op": "page_count"}
        if tag is not None:
            payload["tag"] = tag
        return int(self._rpc(payload)["count"])

    def data_size_bytes(self, tag: Optional[str] = None) -> int:
        payload: Dict[str, Any] = {"op": "data_size"}
        if tag is not None:
            payload["tag"] = tag
        return int(self._rpc(payload)["bytes"])

    def stats(self) -> StorageStats:
        remote = self._rpc({"op": "stats"})
        return StorageStats(
            backend=self.name,
            pages=int(remote["pages"]),
            bytes_read=self._bytes_read,
            bytes_written=self._bytes_written,
            file_bytes=int(remote["file_bytes"]),
            bytes_prefetched=self._bytes_prefetched,
            extra={
                "backend": str(remote["backend"]),
                "rpc_calls": self._rpc_calls,
                "batch_rpcs": self._batch_rpcs,
                "owns_server": bool(self._server is not None),
            },
        )

    def reopen_in_worker(self) -> None:
        """Drop fork-inherited transport state and reconnect lazily.

        The parent still holds the shared socket descriptions, so closing
        this process's copies sends no FIN — the parent's connections stay
        live.  An owned server (if any) belongs to the parent: the worker
        must neither shut it down nor reap it at exit.
        """
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        self._server = None
        self._drop_main_connection()
        self._drop_prefetch_connection()
        # The inherited pool object has no worker thread in this process.
        self._pool = None
        self._readonly = True
        # Worker snapshots report only the worker's own wire traffic (see
        # FilePageStore.reopen_in_worker for the exactly-once argument).
        self._bytes_read = 0
        self._bytes_written = 0
        self._bytes_prefetched = 0
        self._rpc_calls = 0
        self._batch_rpcs = 0

    def _drop_prefetch_connection(self) -> None:
        for handle in (self._prefetch_reader, self._prefetch_sock):
            if handle is not None:
                try:
                    handle.close()
                except OSError:
                    pass
        self._prefetch_sock = None
        self._prefetch_reader = None

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        self._drop_prefetch_connection()
        if self._server is not None:
            # Graceful first — the server closes (and, when owned, deletes)
            # its backing store on the way out; then make sure it is gone.
            try:
                self._rpc({"op": "shutdown"})
            except (PageServerError, ServiceError):
                pass
            self._server.stop(grace=2.0)
            if self._finalizer is not None:
                self._finalizer.detach()
                self._finalizer = None
            self._server = None
        self._drop_main_connection()


# ----------------------------------------------------------------------
# process entry point
# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.storage.pageserver",
        description="Serve one file/sqlite page store over NDJSON TCP.",
    )
    parser.add_argument("--backing", choices=REMOTE_BACKINGS, default="file")
    parser.add_argument(
        "--path",
        default=None,
        help="backing file (created if missing); default: an owned temp file "
        "deleted when the server exits cleanly",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    args = parser.parse_args(argv)

    # SIGTERM (the spawner's fallback) exits through the finally below so
    # an owned temporary backing is still deleted.
    import signal

    signal.signal(signal.SIGTERM, lambda *_: sys.exit(0))

    options = {"cross_thread": True} if args.backing == "sqlite" else {}
    store = create_page_store(args.backing, args.path, **options)
    server = PageServer(store, host=args.host, port=args.port)
    sys.stdout.write(
        encode_line(
            {
                "type": "listening",
                "host": server.host,
                "port": server.port,
                "backend": store.name,
                "pid": os.getpid(),
            }
        ).decode("ascii")
    )
    sys.stdout.flush()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        store.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
