"""I/O and work counters shared by the storage layer and the experiments."""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict


@dataclass
class IOCounters:
    """Mutable counters for logical and physical page traffic.

    ``reads``/``writes`` are *physical* accesses (buffer misses / page
    flushes); ``logical_reads`` counts every page request regardless of
    whether the buffer satisfied it.  ``by_tag`` breaks physical accesses
    down by an arbitrary tag (e.g. ``"RP"``, ``"RQ"``, ``"RP_voronoi"``) so
    experiments can attribute cost to materialisation vs. join processing.
    """

    reads: int = 0
    writes: int = 0
    logical_reads: int = 0
    buffer_hits: int = 0
    by_tag: Dict[str, int] = field(default_factory=dict)

    @property
    def page_accesses(self) -> int:
        """Total physical page accesses (reads + writes), the paper's metric."""
        return self.reads + self.writes

    def record_read(self, tag: str, hit: bool) -> None:
        """Record one logical read; a miss also costs a physical read."""
        self.logical_reads += 1
        if hit:
            self.buffer_hits += 1
        else:
            self.reads += 1
            self.by_tag[tag] = self.by_tag.get(tag, 0) + 1

    def record_write(self, tag: str) -> None:
        """Record one physical page write."""
        self.writes += 1
        self.by_tag[tag] = self.by_tag.get(tag, 0) + 1

    def reset(self) -> None:
        """Zero every counter (used between experiment phases)."""
        self.reads = 0
        self.writes = 0
        self.logical_reads = 0
        self.buffer_hits = 0
        self.by_tag.clear()

    def snapshot(self) -> "IOCounters":
        """An independent copy of the current counter values."""
        copy = IOCounters(
            reads=self.reads,
            writes=self.writes,
            logical_reads=self.logical_reads,
            buffer_hits=self.buffer_hits,
        )
        copy.by_tag = dict(self.by_tag)
        return copy

    def diff(self, earlier: "IOCounters") -> "IOCounters":
        """Counters accumulated since the ``earlier`` snapshot."""
        out = IOCounters(
            reads=self.reads - earlier.reads,
            writes=self.writes - earlier.writes,
            logical_reads=self.logical_reads - earlier.logical_reads,
            buffer_hits=self.buffer_hits - earlier.buffer_hits,
        )
        tags = set(self.by_tag) | set(earlier.by_tag)
        out.by_tag = {
            tag: self.by_tag.get(tag, 0) - earlier.by_tag.get(tag, 0) for tag in tags
        }
        out.by_tag = {tag: count for tag, count in out.by_tag.items() if count}
        return out

    def merged_with(self, other: "IOCounters") -> "IOCounters":
        """Sum of two counter sets (used to aggregate per-phase costs)."""
        out = self.snapshot()
        out.absorb(other)
        return out

    def absorb(self, other: "IOCounters") -> None:
        """Add another counter set into this one in place.

        The sharded join executor runs each worker against its own forked
        copy of the disk; the parent absorbs every worker's counter delta so
        the shared counters reflect the whole join afterwards.  Fields are
        summed generically so a counter added to the dataclass can never be
        silently dropped from merged results.
        """
        for field_info in fields(self):
            if field_info.name == "by_tag":
                for tag, count in other.by_tag.items():
                    self.by_tag[tag] = self.by_tag.get(tag, 0) + count
            else:
                setattr(
                    self,
                    field_info.name,
                    getattr(self, field_info.name) + getattr(other, field_info.name),
                )
