"""A page-granularity LRU buffer.

Section V of the paper runs every experiment with "an LRU memory buffer
whose default size is set to 2% of the data size on disk" and Figure 8a
sweeps the buffer size from 0% to 10%.  The buffer tracks page identifiers
and reports every removal through an optional eviction callback — the disk
manager uses that hook to keep its cache of decoded page payloads exactly
as large as the buffer, so a serializing backend really re-reads bytes for
every buffer miss.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Hashable, Optional

#: Sentinel distinguishing "absent" from the ``None`` the buffer stores.
_MISSING = object()


class LRUBuffer:
    """Least-recently-used buffer over hashable page identifiers.

    A capacity of zero models the bufferless case: every access misses.
    ``on_evict`` (when given) is called with each page identifier the
    buffer drops — by LRU eviction, :meth:`invalidate`, :meth:`resize`
    or :meth:`clear`.
    """

    def __init__(
        self,
        capacity: int,
        on_evict: Optional[Callable[[Hashable], None]] = None,
    ):
        if capacity < 0:
            raise ValueError("buffer capacity must be non-negative")
        self._capacity = capacity
        self._pages: "OrderedDict[Hashable, None]" = OrderedDict()
        self.on_evict = on_evict

    @property
    def capacity(self) -> int:
        """Maximum number of pages the buffer may hold."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, page_id: Hashable) -> bool:
        return page_id in self._pages

    def access(self, page_id: Hashable) -> bool:
        """Touch a page; returns ``True`` on a buffer hit.

        On a miss the page is admitted, evicting the least recently used
        page if the buffer is full.
        """
        if self._capacity == 0:
            return False
        if page_id in self._pages:
            self._pages.move_to_end(page_id)
            return True
        self._admit(page_id)
        return False

    def invalidate(self, page_id: Hashable) -> None:
        """Drop a page from the buffer if present (e.g. after deletion)."""
        if self._pages.pop(page_id, _MISSING) is _MISSING:
            return
        self._notify_evicted(page_id)

    def clear(self) -> None:
        """Empty the buffer."""
        dropped = list(self._pages.keys())
        self._pages.clear()
        for page_id in dropped:
            self._notify_evicted(page_id)

    def resize(self, capacity: int) -> None:
        """Change the capacity, evicting LRU pages if it shrank."""
        if capacity < 0:
            raise ValueError("buffer capacity must be non-negative")
        self._capacity = capacity
        while len(self._pages) > self._capacity:
            evicted, _ = self._pages.popitem(last=False)
            self._notify_evicted(evicted)

    def contents(self) -> list:
        """Page identifiers from least to most recently used (for tests)."""
        return list(self._pages.keys())

    def restore(self, pages: list) -> None:
        """Replace the resident set with ``pages`` (LRU to MRU order).

        Used to rewind the buffer to a previously captured state (e.g. the
        sharded executor's inline fallback, which gives every shard the
        same starting buffer a forked worker would inherit).  No eviction
        callbacks fire: the caller restores any dependent caches itself.
        """
        if len(pages) > self._capacity:
            raise ValueError("cannot restore more pages than the capacity holds")
        self._pages = OrderedDict((page_id, None) for page_id in pages)

    def _admit(self, page_id: Hashable) -> None:
        self._pages[page_id] = None
        if len(self._pages) > self._capacity:
            evicted, _ = self._pages.popitem(last=False)
            self._notify_evicted(evicted)

    def _notify_evicted(self, page_id: Hashable) -> None:
        if self.on_evict is not None:
            self.on_evict(page_id)
