"""Binary page codecs for the serializing storage backends.

The in-memory backend stores node objects directly, but the file and SQLite
backends of :mod:`repro.storage.backends` move real bytes: every page payload
is encoded to a self-contained binary blob on write and decoded on read.

R-tree nodes — the only payload the index layer ever stores — get a compact
``struct``-based encoding mirroring the paper's entry layout (object id +
coordinates for point entries, child pointer + MBR for branch entries,
vertex rings for Voronoi-cell entries).  Any other payload (test fixtures,
ad-hoc records) falls back to a pickle envelope, so the page store accepts
exactly what :class:`~repro.storage.disk.DiskManager` accepted before.

The public entry points are also re-exported by :mod:`repro.persistence`
next to the CSV/JSON dataset codecs.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, List

from repro.geometry.point import Point
from repro.geometry.polygon import ConvexPolygon
from repro.geometry.rect import Rect
from repro.index.entries import BranchEntry, LeafEntry, Node
from repro.voronoi.cell import VoronoiCell

#: Leading byte of an encoded page: a struct-coded R-tree node or a pickle.
KIND_NODE = b"N"
KIND_PICKLE = b"K"

#: Leading byte of an encoded leaf-entry payload.
_PAYLOAD_POINT = b"P"
_PAYLOAD_CELL = b"V"
_PAYLOAD_PICKLE = b"K"

_NODE_HEADER = struct.Struct("<iI")  # level, entry count
_BRANCH = struct.Struct("<4dq")  # mbr, child page
_LEAF_HEADER = struct.Struct("<q4di")  # oid, mbr, size_bytes
_POINT = struct.Struct("<2d")
_CELL_HEADER = struct.Struct("<q2dI")  # oid, site, vertex count
_U32 = struct.Struct("<I")


def encode_page_payload(payload: Any) -> bytes:
    """Encode an arbitrary page payload to a self-contained byte string."""
    if type(payload) is Node:
        return KIND_NODE + _encode_node(payload)
    return KIND_PICKLE + pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


def decode_page_payload(blob: bytes) -> Any:
    """Decode a blob produced by :func:`encode_page_payload`."""
    kind, body = blob[:1], memoryview(blob)[1:]
    if kind == KIND_NODE:
        return _decode_node(body)
    if kind == KIND_PICKLE:
        return pickle.loads(body)
    raise ValueError(f"unknown page payload kind {kind!r}")


# ----------------------------------------------------------------------
# nodes
# ----------------------------------------------------------------------
def _encode_node(node: Node) -> bytes:
    parts: List[bytes] = [_NODE_HEADER.pack(node.level, len(node.entries))]
    if node.is_leaf:
        for entry in node.entries:
            mbr = entry.mbr
            parts.append(
                _LEAF_HEADER.pack(
                    entry.oid, mbr.xmin, mbr.ymin, mbr.xmax, mbr.ymax, entry.size_bytes
                )
            )
            parts.append(_encode_leaf_payload(entry.payload))
    else:
        for entry in node.entries:
            mbr = entry.mbr
            parts.append(_BRANCH.pack(mbr.xmin, mbr.ymin, mbr.xmax, mbr.ymax, entry.child_page))
    return b"".join(parts)


def _decode_node(body: memoryview) -> Node:
    level, count = _NODE_HEADER.unpack_from(body, 0)
    offset = _NODE_HEADER.size
    entries: List[Any] = []
    if level == 0:
        for _ in range(count):
            oid, x1, y1, x2, y2, size_bytes = _LEAF_HEADER.unpack_from(body, offset)
            offset += _LEAF_HEADER.size
            payload, offset = _decode_leaf_payload(body, offset)
            entries.append(LeafEntry(oid, Rect(x1, y1, x2, y2), payload, size_bytes))
    else:
        for _ in range(count):
            x1, y1, x2, y2, child = _BRANCH.unpack_from(body, offset)
            offset += _BRANCH.size
            entries.append(BranchEntry(Rect(x1, y1, x2, y2), child))
    return Node(level, entries)


# ----------------------------------------------------------------------
# leaf-entry payloads
# ----------------------------------------------------------------------
def _encode_leaf_payload(payload: Any) -> bytes:
    if type(payload) is Point:
        return _PAYLOAD_POINT + _POINT.pack(payload.x, payload.y)
    if type(payload) is VoronoiCell:
        vertices = payload.polygon.vertices
        parts = [
            _PAYLOAD_CELL,
            _CELL_HEADER.pack(payload.oid, payload.site.x, payload.site.y, len(vertices)),
        ]
        parts.extend(_POINT.pack(v.x, v.y) for v in vertices)
        return b"".join(parts)
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    return _PAYLOAD_PICKLE + _U32.pack(len(blob)) + blob


def _decode_leaf_payload(body: memoryview, offset: int):
    tag = bytes(body[offset : offset + 1])
    offset += 1
    if tag == _PAYLOAD_POINT:
        x, y = _POINT.unpack_from(body, offset)
        return Point(x, y), offset + _POINT.size
    if tag == _PAYLOAD_CELL:
        oid, sx, sy, count = _CELL_HEADER.unpack_from(body, offset)
        offset += _CELL_HEADER.size
        vertices = []
        for _ in range(count):
            x, y = _POINT.unpack_from(body, offset)
            offset += _POINT.size
            vertices.append(Point(x, y))
        # Bypass ConvexPolygon.__init__: the stored ring is already
        # normalised and must round-trip bit for bit, not be re-cleaned.
        polygon = ConvexPolygon.__new__(ConvexPolygon)
        polygon._vertices = tuple(vertices)
        return VoronoiCell(oid, Point(sx, sy), polygon), offset
    if tag == _PAYLOAD_PICKLE:
        (length,) = _U32.unpack_from(body, offset)
        offset += _U32.size
        return pickle.loads(body[offset : offset + length]), offset + length
    raise ValueError(f"unknown leaf payload tag {tag!r}")
