"""Pluggable page-store backends for :class:`~repro.storage.disk.DiskManager`.

The disk manager owns the paper's *cost model* (LRU buffer, read/write
counters); a :class:`PageStore` owns the *bytes*.  Four backends ship:

* :class:`MemoryPageStore` — the original dict of live payload objects; the
  default, with behaviour bit-identical to the pre-backend disk manager.
* :class:`FilePageStore` — payloads serialized through the binary codecs of
  :mod:`repro.storage.codec` into fixed-size slots of a single file, read
  through ``mmap`` when available (plain ``seek``/``read`` otherwise).
  Page updates are written to a fresh slot before the old slot is released,
  so an interrupted write can never leave a torn payload behind: on reopen
  the slot scan keeps, per page, the newest record whose checksum verifies.
* :class:`SQLitePageStore` — one ``pages`` table in an SQLite database,
  durable and readable by other processes.
* :class:`~repro.storage.pageserver.RemotePageStore` — a client for the
  NDJSON page-server process (:mod:`repro.storage.pageserver`), which owns
  a file/sqlite store and serves it over TCP so workers need no shared
  filesystem at all.

The contract is formalized twice: :class:`PageStore` is a
``runtime_checkable`` :class:`~typing.Protocol` (the structural contract
capability queries check against), and :class:`PageStoreBase` is an ABC
with default implementations new backends can inherit.  Capability flags
(``supports_async``, ``supports_worker_reopen``, ``supports_remote``) plus
the ``location`` property replace the old scattered ``hasattr``/backend-
name string checks: the engine asks a store what it can do instead of
guessing from its name.

Backend selection routes through one factory — :func:`open_store` for
spec strings (``"file:/data/pages.bin"``, ``"remote:HOST:PORT"``,
``"remote+sqlite"``) or :func:`create_page_store` for the split
``(backend, path)`` form the engine config carries.  The ``REPRO_STORAGE``
environment variable overrides the default so the whole test tier can run
against any backend (the CI matrix does exactly that).
"""

from __future__ import annotations

import abc
import io
import os
import struct
import tempfile
import weakref
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Protocol, Tuple, runtime_checkable

#: Backend identifiers accepted by :func:`create_page_store`.
STORAGE_BACKENDS = ("memory", "file", "sqlite", "remote")

#: Backings the remote page server can serve (``remote+file`` spawns a
#: file-backed server, ``remote+sqlite`` an SQLite-backed one).
REMOTE_BACKINGS = ("file", "sqlite")

#: Environment variable selecting the default backend (used by CI).
STORAGE_ENV_VAR = "REPRO_STORAGE"


def canonical_backend(name: str) -> str:
    """The base backend a storage name resolves to, validated.

    ``"remote+sqlite"`` → ``"remote"``; plain names pass through.  This is
    the single place a storage name is parsed, so the engine config, the
    workload builder and :meth:`~repro.storage.disk.DiskManager.storage_backend`
    comparisons all agree on what counts as the same backend.
    """
    base, _, backing = name.strip().lower().partition("+")
    if base not in STORAGE_BACKENDS:
        raise ValueError(
            f"unknown storage backend {name!r}; expected one of {STORAGE_BACKENDS}"
            " (the remote backend also accepts remote+file / remote+sqlite)"
        )
    if backing:
        if base != "remote":
            raise ValueError(
                f"storage backend {name!r} does not take a '+backing' suffix; "
                "only the remote page server does (remote+file, remote+sqlite)"
            )
        if backing not in REMOTE_BACKINGS:
            raise ValueError(
                f"unknown remote backing {backing!r} in {name!r}; "
                f"expected one of {REMOTE_BACKINGS}"
            )
    return base


def default_storage_backend() -> str:
    """The backend used when none is requested: ``$REPRO_STORAGE`` or memory."""
    backend = os.environ.get(STORAGE_ENV_VAR, "memory").strip().lower() or "memory"
    try:
        canonical_backend(backend)
    except ValueError:
        raise ValueError(
            f"{STORAGE_ENV_VAR}={backend!r} is not a known backend; "
            f"expected one of {STORAGE_BACKENDS}"
        ) from None
    return backend


def create_page_store(
    backend: Optional[str] = None, path: Optional[str] = None, **options
) -> "PageStore":
    """Instantiate a backend by name (``None`` resolves the default).

    For the remote backend, ``path`` carries the page server's
    ``HOST:PORT`` address; ``None`` spawns an owned server process (backed
    by ``remote+file`` / ``remote+sqlite``, default file) that is shut
    down when the store is closed.
    """
    backend = backend if backend is not None else default_storage_backend()
    backend = backend.strip().lower()
    base = canonical_backend(backend)
    if base == "memory":
        if path is not None:
            raise ValueError(
                "the memory backend keeps no file: storage_path requires "
                "storage='file', 'sqlite' or 'remote'"
            )
        return MemoryPageStore()
    if base == "file":
        return FilePageStore(path, **options)
    if base == "sqlite":
        return SQLitePageStore(path, **options)
    # base == "remote": imported lazily — the page-server client pulls in
    # socket/subprocess machinery local backends never need.
    from repro.storage.pageserver import RemotePageStore

    _, _, backing = backend.partition("+")
    if backing:
        options.setdefault("backing", backing)
    return RemotePageStore(address=path, **options)


def open_store(spec: Optional[object] = None, **options) -> "PageStore":
    """The one factory every backend selection routes through.

    ``spec`` may be:

    * ``None`` — the default backend (``$REPRO_STORAGE`` or memory);
    * a :class:`PageStore` instance — returned unchanged;
    * a spec string ``"backend[:path]"`` — ``"memory"``,
      ``"file:/data/pages.bin"``, ``"sqlite"`` (owned temp),
      ``"remote:127.0.0.1:7070"`` (attach to a running page server),
      ``"remote"`` / ``"remote+sqlite"`` (spawn an owned server).
    """
    if spec is None:
        return create_page_store(None, None, **options)
    if isinstance(spec, PageStore):
        return spec
    if not isinstance(spec, str):
        raise TypeError(
            f"open_store expects a backend spec string or a PageStore, "
            f"got {type(spec).__name__}"
        )
    backend, sep, rest = spec.partition(":")
    path = rest if sep else None
    return create_page_store(backend, path or None, **options)


@dataclass
class PageRecord:
    """One stored page as the disk manager sees it."""

    tag: str
    payload: Any
    size_bytes: int


@dataclass
class StorageStats:
    """Physical byte movement of a backend, complementing ``IOCounters``.

    ``IOCounters`` counts the paper's *logical* page accesses; these fields
    report how many real bytes the backend moved for them (always zero for
    the in-memory backend, which never serializes anything).

    The prefetch fields describe the asynchronous fetch pipeline
    (:mod:`repro.storage.prefetch`): pages issued ahead of demand, how many
    of them a later read actually consumed or never did, and the
    decomposition of physical fetch latency into time the join *stalled*
    waiting for the backend versus service time *overlapped* with
    computation.  ``bytes_prefetched`` are the bytes the async reader
    moved; they are kept out of ``bytes_read`` so the synchronous-miss
    traffic stays comparable across prefetch modes.
    """

    backend: str = "memory"
    pages: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    file_bytes: int = 0
    bytes_prefetched: int = 0
    pages_prefetched: int = 0
    prefetch_hits: int = 0
    prefetch_wasted: int = 0
    sync_fetches: int = 0
    stall_time: float = 0.0
    overlap_time: float = 0.0
    extra: Dict[str, int] = field(default_factory=dict)


class PageFetch:
    """Future-like handle for one asynchronous batch of page reads.

    Returned by :meth:`PageStore.fetch_async`.  ``result`` blocks until the
    batch completes and returns the pages that could be read; pages missing
    from the mapping (freed meanwhile, or a failed backend read) are simply
    absent — the consumer falls back to a synchronous read, which surfaces
    any genuine error.
    """

    def done(self) -> bool:
        raise NotImplementedError

    def result(self) -> Dict[int, "PageRecord"]:
        raise NotImplementedError


class CompletedPageFetch(PageFetch):
    """An already-complete fetch (the in-memory backend reads instantly)."""

    def __init__(self, records: Dict[int, "PageRecord"]):
        self._records = records

    def done(self) -> bool:
        return True

    def result(self) -> Dict[int, "PageRecord"]:
        return self._records


class ThreadedPageFetch(PageFetch):
    """A fetch running on a backend's prefetch worker thread."""

    def __init__(self, future):
        self._future = future

    def done(self) -> bool:
        return self._future.done()

    def result(self) -> Dict[int, "PageRecord"]:
        try:
            return self._future.result()
        except Exception:
            # Prefetching is advisory: a failed async batch yields nothing
            # and the consumer's synchronous fallback reports the real error.
            return {}


class _AsyncReader:
    """A single-worker thread pool reading page batches for one store.

    One worker keeps the byte accounting race-free (only the worker thread
    writes the prefetch byte counter) and preserves issue order.  The pool
    is created lazily on the first async fetch and must be dropped both on
    ``close`` and after ``fork`` (a child process inherits the pool object
    but not its thread).
    """

    def __init__(self, read_one):
        self._read_one = read_one
        self._pool = None

    def submit(self, page_ids) -> ThreadedPageFetch:
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-prefetch"
            )
        return ThreadedPageFetch(self._pool.submit(self._read_batch, list(page_ids)))

    def _read_batch(self, page_ids) -> Dict[int, "PageRecord"]:
        records: Dict[int, PageRecord] = {}
        for page_id in page_ids:
            try:
                records[page_id] = self._read_one(page_id)
            except KeyError:
                continue  # freed between planning and fetching
        return records

    def close(self) -> None:
        if self._pool is not None:
            # Wait for the in-flight batch (they are small) so the store's
            # handles are guaranteed unused when the caller closes them.
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None


@runtime_checkable
class PageStore(Protocol):
    """Byte-storage contract behind :class:`~repro.storage.disk.DiskManager`.

    Implementations store whole pages keyed by integer page id.  They are
    oblivious to the LRU buffer and the I/O counters — the disk manager
    decides *when* a backend is touched; the backend decides *how* bytes
    are kept.

    The engine never inspects a store's concrete type or name; it asks the
    capability flags and :attr:`location` instead:

    ``supports_async``
        :meth:`fetch_async` genuinely overlaps byte movement with the
        caller (worker thread or wire); the in-memory backend completes
        fetches inline, so it reports ``False``.
    ``supports_worker_reopen``
        :meth:`reopen_in_worker` yields an independent read-only handle a
        worker process can use — the precondition for the fork pool and the
        distributed node tier.
    ``supports_remote``
        The store reaches its bytes over the network, so workers need no
        shared filesystem (only the remote page-server client sets this).
    ``location``
        Where a fresh handle should attach: a filesystem path for the
        serializing backends, a ``HOST:PORT`` address for the remote
        client, ``None`` for process-private stores.
    """

    name: str
    supports_async: bool
    supports_worker_reopen: bool
    supports_remote: bool

    @property
    def location(self) -> Optional[str]:
        """Path/address a worker can reopen this store from (None if none)."""
        ...

    def worker_spec(self) -> Dict[str, Optional[str]]:
        """``{"backend", "path"}`` recreating this store in another process."""
        ...

    def write_page(self, page_id: int, tag: str, payload: Any, size_bytes: int) -> None:
        """Insert or overwrite one page."""
        ...

    def read_page(self, page_id: int, count: bool = True) -> PageRecord:
        """Return a stored page; raises ``KeyError`` for unknown ids.

        ``count=False`` keeps the read out of :meth:`stats` — used for
        maintenance/oracle access so ``bytes_read`` reports only the bytes
        that buffer misses pulled.
        """
        ...

    def fetch_async(self, page_ids: List[int]) -> PageFetch:
        """Begin reading a batch of pages without blocking the caller.

        The serializing backends move the bytes on a worker thread through
        their own private handles (the calling thread's handles are never
        shared); the in-memory backend completes immediately.  Unknown page
        ids are silently absent from the result.  Async traffic is counted
        in ``stats().bytes_prefetched``, not ``bytes_read``.
        """
        ...

    def page_meta(self, page_id: int) -> Tuple[str, int]:
        """``(tag, size_bytes)`` of a page without decoding its payload."""
        ...

    def free_page(self, page_id: int) -> bool:
        """Release a page; returns whether it existed."""
        ...

    def page_ids(self) -> List[int]:
        """All stored page ids (unordered)."""
        ...

    def page_count(self, tag: Optional[str] = None) -> int:
        """Number of stored pages, optionally restricted to one tag."""
        ...

    def data_size_bytes(self, tag: Optional[str] = None) -> int:
        """Sum of the *logical* page sizes, optionally restricted to a tag."""
        ...

    def stats(self) -> StorageStats:
        """Physical byte-movement statistics."""
        ...

    def reopen_in_worker(self) -> None:
        """Re-establish handles after ``fork`` (fresh read-only view)."""
        ...

    def close(self) -> None:
        """Release OS resources; owned temporary files are deleted."""
        ...


class PageStoreBase(abc.ABC):
    """Default implementations for :class:`PageStore` backends.

    Concrete backends inherit the capability flags (conservative defaults:
    a store can do nothing special until it says so), the ``location`` /
    ``worker_spec`` plumbing and a synchronous ``fetch_async`` fallback,
    and override what their byte layout makes cheaper.
    """

    name = "abstract"
    supports_async = False
    supports_worker_reopen = False
    supports_remote = False

    @property
    def location(self) -> Optional[str]:
        return getattr(self, "path", None)

    def worker_spec(self) -> Dict[str, Optional[str]]:
        if not self.supports_worker_reopen or self.location is None:
            raise ValueError(
                f"the {self.name!r} backend cannot be reopened by worker "
                "processes: it has no shareable location"
            )
        return {"backend": self.name, "path": self.location}

    @abc.abstractmethod
    def write_page(self, page_id: int, tag: str, payload: Any, size_bytes: int) -> None:
        ...

    @abc.abstractmethod
    def read_page(self, page_id: int, count: bool = True) -> PageRecord:
        ...

    def fetch_async(self, page_ids: List[int]) -> PageFetch:
        """Synchronous fallback: uncounted reads, completed immediately."""
        records: Dict[int, PageRecord] = {}
        for page_id in page_ids:
            try:
                records[page_id] = self.read_page(page_id, count=False)
            except KeyError:
                continue
        return CompletedPageFetch(records)

    def page_meta(self, page_id: int) -> Tuple[str, int]:
        record = self.read_page(page_id, count=False)
        return record.tag, record.size_bytes

    @abc.abstractmethod
    def free_page(self, page_id: int) -> bool:
        ...

    @abc.abstractmethod
    def page_ids(self) -> List[int]:
        ...

    def page_count(self, tag: Optional[str] = None) -> int:
        if tag is None:
            return len(self.page_ids())
        return sum(1 for page_id in self.page_ids() if self.page_meta(page_id)[0] == tag)

    def data_size_bytes(self, tag: Optional[str] = None) -> int:
        return sum(
            self.page_meta(page_id)[1]
            for page_id in self.page_ids()
            if tag is None or self.page_meta(page_id)[0] == tag
        )

    @abc.abstractmethod
    def stats(self) -> StorageStats:
        ...

    def reopen_in_worker(self) -> None:
        if not self.supports_worker_reopen:
            raise RuntimeError(
                f"the {self.name!r} backend cannot be reopened in a worker process"
            )

    def close(self) -> None:
        pass


# ----------------------------------------------------------------------
# memory
# ----------------------------------------------------------------------
class MemoryPageStore(PageStoreBase):
    """The original backend: live payload objects in a dict.

    No serialization happens, so reads hand back the very object that was
    written — the identity semantics every pre-backend caller relied on.
    """

    name = "memory"
    # Fork-safe through copy-on-write, but there is nothing another process
    # could attach to (location is None) and fetches complete inline.
    supports_async = False
    supports_worker_reopen = True
    supports_remote = False

    def __init__(self) -> None:
        self._pages: Dict[int, PageRecord] = {}

    def write_page(self, page_id: int, tag: str, payload: Any, size_bytes: int) -> None:
        self._pages[page_id] = PageRecord(tag, payload, size_bytes)

    def read_page(self, page_id: int, count: bool = True) -> PageRecord:
        try:
            return self._pages[page_id]
        except KeyError:
            raise KeyError(f"page {page_id} has not been allocated") from None

    def fetch_async(self, page_ids: List[int]) -> PageFetch:
        """In-memory pages are available instantly; latency (if any) is
        simulated by the scheduler's clock, not by the store."""
        records = {
            page_id: self._pages[page_id]
            for page_id in page_ids
            if page_id in self._pages
        }
        return CompletedPageFetch(records)

    def page_meta(self, page_id: int) -> Tuple[str, int]:
        record = self.read_page(page_id)
        return record.tag, record.size_bytes

    def free_page(self, page_id: int) -> bool:
        return self._pages.pop(page_id, None) is not None

    def page_ids(self) -> List[int]:
        return list(self._pages)

    def page_count(self, tag: Optional[str] = None) -> int:
        if tag is None:
            return len(self._pages)
        return sum(1 for record in self._pages.values() if record.tag == tag)

    def data_size_bytes(self, tag: Optional[str] = None) -> int:
        return sum(
            record.size_bytes
            for record in self._pages.values()
            if tag is None or record.tag == tag
        )

    def stats(self) -> StorageStats:
        return StorageStats(backend=self.name, pages=len(self._pages))

    def reopen_in_worker(self) -> None:
        pass  # forked workers share the parent's dict copy-on-write

    def close(self) -> None:
        pass


def _codec():
    """The payload codec, imported lazily to keep ``repro.storage`` cycle-free.

    ``repro.storage.codec`` imports the index/voronoi node types, which in
    turn import ``repro.storage.disk`` — resolvable at call time but not
    while the storage package itself is being imported.
    """
    from repro.storage import codec

    return codec


# ----------------------------------------------------------------------
# file
# ----------------------------------------------------------------------
#: File header: magic, format version, slot size.
_FILE_HEADER = struct.Struct("<8sIQ")
_FILE_MAGIC = b"CIJPGST\x01"
_FILE_VERSION = 1

#: Record header: magic, page id, sequence number, logical size,
#: payload length, tag length, checksum (of the header-after-magic + tag +
#: payload).
_REC_HEADER = struct.Struct("<IqQIIHI")
_REC_MAGIC = 0x43504A52

#: Records at least this many payload bytes fit a slot of the default size.
DEFAULT_SLOT_SIZE = 4096


class _SimulatedCrash(RuntimeError):
    """Raised by the fault-injection hook after a partial slot write."""


class FilePageStore(PageStoreBase):
    """Fixed-size-slot page store over a single binary file.

    Every record is self-describing (page id, monotone sequence number,
    CRC-32 of its contents), and a page update always lands in a *different*
    slot than the current one before the old slot is invalidated.  Opening a
    file therefore recovers a consistent store from any write prefix: the
    newest checksum-valid record wins per page, torn records are ignored,
    their slots reused.

    Parameters
    ----------
    path:
        Backing file; created if missing.  ``None`` creates an owned
        temporary file that is deleted on :meth:`close` (or when the store
        is garbage collected by the process that created it).
    slot_size:
        Bytes per slot.  A payload that outgrows the slot triggers a
        transparent rebuild of the file with doubled slots (atomic via
        ``os.replace``).
    use_mmap:
        Read through ``mmap`` when the platform provides it; plain
        ``seek``/``read`` otherwise.  Writes always go through the file
        handle.
    """

    name = "file"
    supports_async = True
    supports_worker_reopen = True
    supports_remote = False

    def __init__(
        self,
        path: Optional[str] = None,
        slot_size: int = DEFAULT_SLOT_SIZE,
        use_mmap: bool = True,
    ):
        if slot_size < _REC_HEADER.size + 64:
            raise ValueError("slot size too small for a record header")
        self._owns_path = path is None
        if path is None:
            fd, path = tempfile.mkstemp(prefix="repro-pages-", suffix=".bin")
            os.close(fd)
        self.path = str(path)
        self._use_mmap = use_mmap
        self._readonly = False
        self._mm = None
        self._mm_size = 0
        self._slot_size = slot_size
        self._seq = 0
        self._slots = 0
        self._free_slots: List[int] = []
        #: page id -> (slot, tag, logical size, payload length)
        self._dir: Dict[int, Tuple[int, str, int, int]] = {}
        self._bytes_read = 0
        self._bytes_written = 0
        #: Bytes moved by the async prefetch reader (its worker thread is
        #: the only writer of this counter).
        self._bytes_prefetched = 0
        self._async = _AsyncReader(self._prefetch_read)
        #: Private handle of the prefetch worker thread (never the main
        #: thread's ``_file``, whose seek position it would race).
        self._prefetch_handle = None
        #: Test hook: abort the next record write after this many bytes.
        self._crash_after_bytes: Optional[int] = None
        self._file = open(self.path, "r+b" if os.path.exists(self.path) else "w+b")
        self._load_or_init()
        # Delete owned temp files when the creating process drops the store
        # without closing it (forked workers must never trigger this).
        self._finalizer = weakref.finalize(
            self, _cleanup_file, self.path, os.getpid(), self._owns_path
        )

    # ------------------------------------------------------------------
    # PageStore API
    # ------------------------------------------------------------------
    def write_page(self, page_id: int, tag: str, payload: Any, size_bytes: int) -> None:
        self._check_writable()
        blob = _codec().encode_page_payload(payload)
        need = _REC_HEADER.size + len(tag.encode("utf-8")) + len(blob)
        if need > self._slot_size:
            self._rebuild(slot_size=_next_slot_size(need))
        slot = self._free_slots.pop() if self._free_slots else self._grow_one_slot()
        self._put_record(slot, page_id, tag, size_bytes, blob)
        previous = self._dir.get(page_id)
        self._dir[page_id] = (slot, tag, size_bytes, len(blob))
        if previous is not None:
            self._clear_slot(previous[0])
            self._free_slots.append(previous[0])

    def read_page(self, page_id: int, count: bool = True) -> PageRecord:
        entry = self._dir.get(page_id)
        if entry is None:
            raise KeyError(f"page {page_id} has not been allocated")
        slot, tag, size_bytes, payload_len = entry
        blob = self._read_at(self._payload_offset(slot, tag), payload_len, count=count)
        return PageRecord(tag, _codec().decode_page_payload(blob), size_bytes)

    def fetch_async(self, page_ids: List[int]) -> PageFetch:
        return self._async.submit(page_ids)

    def _prefetch_read(self, page_id: int) -> PageRecord:
        """Read one page on the prefetch worker thread.

        Runs only while the store is in its read phase (the join never
        writes source-tree pages), so directory entries and slot offsets
        are stable for the duration of a batch.
        """
        entry = self._dir.get(page_id)
        if entry is None:
            raise KeyError(f"page {page_id} has not been allocated")
        slot, tag, size_bytes, payload_len = entry
        handle = self._prefetch_handle
        if handle is None or handle.closed:
            handle = self._prefetch_handle = open(self.path, "rb")
        handle.seek(self._payload_offset(slot, tag))
        blob = handle.read(payload_len)
        self._bytes_prefetched += len(blob)
        return PageRecord(tag, _codec().decode_page_payload(blob), size_bytes)

    def page_meta(self, page_id: int) -> Tuple[str, int]:
        entry = self._dir.get(page_id)
        if entry is None:
            raise KeyError(f"page {page_id} has not been allocated")
        return entry[1], entry[2]

    def free_page(self, page_id: int) -> bool:
        self._check_writable()
        entry = self._dir.pop(page_id, None)
        if entry is None:
            return False
        self._clear_slot(entry[0])
        self._free_slots.append(entry[0])
        return True

    def page_ids(self) -> List[int]:
        return list(self._dir)

    def page_count(self, tag: Optional[str] = None) -> int:
        if tag is None:
            return len(self._dir)
        return sum(1 for entry in self._dir.values() if entry[1] == tag)

    def data_size_bytes(self, tag: Optional[str] = None) -> int:
        return sum(
            entry[2] for entry in self._dir.values() if tag is None or entry[1] == tag
        )

    def stats(self) -> StorageStats:
        return StorageStats(
            backend=self.name,
            pages=len(self._dir),
            bytes_read=self._bytes_read,
            bytes_written=self._bytes_written,
            file_bytes=_FILE_HEADER.size + self._slots * self._slot_size,
            bytes_prefetched=self._bytes_prefetched,
            extra={"slot_size": self._slot_size, "free_slots": len(self._free_slots)},
        )

    def reopen_in_worker(self) -> None:
        """Swap the inherited handle for a private read-only one.

        A forked worker shares the parent's file offset through the
        inherited descriptor; reading through it would race with the parent
        and with sibling workers.  Workers only read (the join phase never
        writes source-tree pages), so a fresh ``rb`` handle suffices.
        """
        inherited = self._file
        self._file = open(self.path, "rb")
        # Closing the worker's copy of the inherited descriptor is safe and
        # keeps it from ever being used (or leaked) in this process.
        inherited.close()
        self._readonly = True
        self._owns_path = False
        self._finalizer.detach()
        self._drop_mmap()
        # The inherited thread pool has no thread in this process; replace
        # it (and the prefetch handle) rather than shutting it down.
        self._async = _AsyncReader(self._prefetch_read)
        self._prefetch_handle = None
        # A forked worker inherits the parent's byte counters; zero them so
        # this handle's stats report only the worker's own traffic.  The
        # executor folds worker snapshots into the parent's report, and the
        # parent already counted its pre-fork bytes — carrying them here
        # would double-count them exactly once per worker.
        self._bytes_read = 0
        self._bytes_written = 0
        self._bytes_prefetched = 0

    def close(self) -> None:
        self._async.close()
        if self._prefetch_handle is not None and not self._prefetch_handle.closed:
            self._prefetch_handle.close()
        self._drop_mmap()
        if not self._file.closed:
            self._file.close()
        self._finalizer.detach()
        if self._owns_path and os.path.exists(self.path):
            os.remove(self.path)

    # ------------------------------------------------------------------
    # layout and recovery
    # ------------------------------------------------------------------
    def _slot_offset(self, slot: int) -> int:
        return _FILE_HEADER.size + slot * self._slot_size

    def _payload_offset(self, slot: int, tag: str) -> int:
        """File offset of a record's payload bytes (header and tag skipped).

        The single definition shared by the synchronous read path, the
        prefetch reader and the rebuilder — they must agree on the layout
        or the async reader would hand back garbage payloads.
        """
        return self._slot_offset(slot) + _REC_HEADER.size + len(tag.encode("utf-8"))

    def _load_or_init(self) -> None:
        self._file.seek(0, io.SEEK_END)
        if self._file.tell() == 0:
            self._file.write(_FILE_HEADER.pack(_FILE_MAGIC, _FILE_VERSION, self._slot_size))
            self._file.flush()
            return
        self._file.seek(0)
        header = self._file.read(_FILE_HEADER.size)
        if len(header) < _FILE_HEADER.size:
            raise ValueError(f"{self.path}: not a page-store file (truncated header)")
        magic, version, slot_size = _FILE_HEADER.unpack(header)
        if magic != _FILE_MAGIC or version != _FILE_VERSION:
            raise ValueError(f"{self.path}: not a page-store file (bad magic/version)")
        self._slot_size = slot_size
        self._scan_slots()

    def _scan_slots(self) -> None:
        """Rebuild the directory: newest checksum-valid record wins per page."""
        self._file.seek(0, io.SEEK_END)
        data_bytes = max(0, self._file.tell() - _FILE_HEADER.size)
        self._slots = data_bytes // self._slot_size
        best_seq: Dict[int, int] = {}
        self._dir.clear()
        self._free_slots = []
        loser_slots: Dict[int, int] = {}
        for slot in range(self._slots):
            record = self._validate_slot(slot)
            if record is None:
                self._free_slots.append(slot)
                continue
            page_id, seq, tag, size_bytes, payload_len = record
            self._seq = max(self._seq, seq)
            if seq > best_seq.get(page_id, -1):
                if page_id in best_seq:
                    self._free_slots.append(loser_slots[page_id])
                best_seq[page_id] = seq
                loser_slots[page_id] = slot
                self._dir[page_id] = (slot, tag, size_bytes, payload_len)
            else:
                self._free_slots.append(slot)

    def _validate_slot(self, slot: int):
        """Parse one slot; ``None`` for free, torn or truncated records."""
        raw = self._read_at(self._slot_offset(slot), _REC_HEADER.size, count=False)
        if len(raw) < _REC_HEADER.size:
            return None
        magic, page_id, seq, size_bytes, payload_len, tag_len, crc = _REC_HEADER.unpack(raw)
        if magic != _REC_MAGIC:
            return None
        if _REC_HEADER.size + tag_len + payload_len > self._slot_size:
            return None
        body = self._read_at(
            self._slot_offset(slot) + _REC_HEADER.size, tag_len + payload_len, count=False
        )
        if len(body) < tag_len + payload_len:
            return None
        if crc != _record_crc(page_id, seq, size_bytes, payload_len, tag_len, body):
            return None
        tag = body[:tag_len].decode("utf-8", errors="replace")
        return page_id, seq, tag, size_bytes, payload_len

    def _grow_one_slot(self) -> int:
        slot = self._slots
        self._slots += 1
        # Extend the file so the slot exists even before its record is
        # complete; the zero bytes never parse as a valid record.
        self._file.seek(0, io.SEEK_END)
        end = self._slot_offset(slot + 1)
        if self._file.tell() < end:
            self._file.truncate(end)
        return slot

    def _rebuild(self, slot_size: int) -> None:
        """Rewrite the whole file with bigger slots (atomic replace)."""
        records = []
        for page_id, (slot, tag, size_bytes, payload_len) in sorted(self._dir.items()):
            # Maintenance traffic (count=False): stats().bytes_read reports
            # only the bytes that buffer misses pulled, on every backend.
            records.append(
                (
                    page_id,
                    tag,
                    size_bytes,
                    self._read_at(
                        self._payload_offset(slot, tag), payload_len, count=False
                    ),
                )
            )
        # Release every handle on the old file before os.replace: Windows
        # refuses to replace a file that is still open or mapped.  The
        # prefetch handle (if any) targets the old inode too; rebuilds only
        # happen in the write phase, when no async batch can be in flight.
        if self._prefetch_handle is not None and not self._prefetch_handle.closed:
            self._prefetch_handle.close()
        self._prefetch_handle = None
        self._drop_mmap()
        self._file.close()
        tmp_path = self.path + ".rebuild"
        with open(tmp_path, "w+b") as tmp:
            tmp.write(_FILE_HEADER.pack(_FILE_MAGIC, _FILE_VERSION, slot_size))
            self._file = tmp
            self._slot_size = slot_size
            self._slots = 0
            self._free_slots = []
            self._dir = {}
            for page_id, tag, size_bytes, blob in records:
                slot = self._grow_one_slot()
                self._put_record(slot, page_id, tag, size_bytes, blob)
                self._dir[page_id] = (slot, tag, size_bytes, len(blob))
            tmp.flush()
        os.replace(tmp_path, self.path)
        self._file = open(self.path, "r+b")

    def _put_record(self, slot: int, page_id: int, tag: str, size_bytes: int, blob: bytes) -> None:
        """Write one complete record (fresh sequence number) into a slot."""
        tag_bytes = tag.encode("utf-8")
        self._seq += 1
        body = tag_bytes + blob
        crc = _record_crc(page_id, self._seq, size_bytes, len(blob), len(tag_bytes), body)
        header = _REC_HEADER.pack(
            _REC_MAGIC, page_id, self._seq, size_bytes, len(blob), len(tag_bytes), crc
        )
        self._write_at(self._slot_offset(slot), header + body)

    def _clear_slot(self, slot: int) -> None:
        """Invalidate a slot by zeroing its whole record header.

        Zeroing only the magic would leave the rest of the old header (page
        id, sequence, CRC) intact — a later write torn after exactly the
        4-byte magic (identical for every record) would then resurrect the
        old record as checksum-valid.  With the full header zeroed, any
        torn prefix of a future record leaves a header whose CRC cannot
        match, so the slot stays dead until a write completes.
        """
        self._file.seek(self._slot_offset(slot))
        self._file.write(b"\x00" * _REC_HEADER.size)
        self._file.flush()
        self._bytes_written += _REC_HEADER.size

    # ------------------------------------------------------------------
    # raw I/O
    # ------------------------------------------------------------------
    def _check_writable(self) -> None:
        if self._readonly:
            raise RuntimeError("page store reopened read-only in a worker process")

    def _write_at(self, offset: int, data: bytes) -> None:
        self._file.seek(offset)
        if self._crash_after_bytes is not None:
            written = data[: self._crash_after_bytes]
            self._file.write(written)
            self._file.flush()
            self._bytes_written += len(written)
            self._crash_after_bytes = None
            raise _SimulatedCrash(f"simulated crash after {len(written)} bytes")
        self._file.write(data)
        self._file.flush()
        self._bytes_written += len(data)

    def _read_at(self, offset: int, length: int, count: bool = True) -> bytes:
        data = None
        if self._use_mmap:
            mm = self._ensure_mmap(offset + length)
            if mm is not None:
                data = bytes(mm[offset : offset + length])
        if data is None:
            self._file.seek(offset)
            data = self._file.read(length)
        if count:
            self._bytes_read += len(data)
        return data

    def _ensure_mmap(self, end: int):
        """A read-only map covering ``end`` bytes, remapped after growth."""
        try:
            import mmap
        except ImportError:  # pragma: no cover - mmap is stdlib everywhere
            self._use_mmap = False
            return None
        size = os.path.getsize(self.path)
        if end > size:
            return None
        if self._mm is None or self._mm_size < size:
            self._drop_mmap()
            if size == 0:
                return None
            try:
                self._mm = mmap.mmap(self._file.fileno(), size, access=mmap.ACCESS_READ)
                self._mm_size = size
            except (ValueError, OSError):  # pragma: no cover - exotic platforms
                self._use_mmap = False
                return None
        return self._mm

    def _drop_mmap(self) -> None:
        if self._mm is not None:
            self._mm.close()
            self._mm = None
            self._mm_size = 0


def _record_crc(
    page_id: int, seq: int, size_bytes: int, payload_len: int, tag_len: int, body: bytes
) -> int:
    """CRC-32 of a record: the header fields after the magic plus the body.

    The single definition shared by the writer, the rebuilder and the
    recovery scan — the byte layout must never drift between them, or
    every record would be dropped as torn on reopen.
    """
    return zlib.crc32(
        struct.pack("<qQIIH", page_id, seq, size_bytes, payload_len, tag_len) + body
    )


def _next_slot_size(need: int) -> int:
    size = DEFAULT_SLOT_SIZE
    while size < need:
        size *= 2
    return size


def _cleanup_file(path: str, owner_pid: int, owned: bool) -> None:
    if owned and os.getpid() == owner_pid and os.path.exists(path):
        os.remove(path)


# ----------------------------------------------------------------------
# sqlite
# ----------------------------------------------------------------------
class SQLitePageStore(PageStoreBase):
    """Durable page store in one SQLite table, readable by other processes.

    Each page write is its own autocommitted transaction, so SQLite's
    journal provides the old-or-new guarantee the file backend implements
    by hand.  ``None`` as path creates an owned temporary database deleted
    on :meth:`close`.

    ``cross_thread=True`` opens the main connection with
    ``check_same_thread=False`` for callers that serialize access under
    their own lock from several threads — the page server's
    thread-per-connection handlers are the one such caller.
    """

    name = "sqlite"
    supports_async = True
    supports_worker_reopen = True
    supports_remote = False

    def __init__(self, path: Optional[str] = None, cross_thread: bool = False):
        import sqlite3

        self._sqlite3 = sqlite3
        self._cross_thread = cross_thread
        self._owns_path = path is None
        if path is None:
            fd, path = tempfile.mkstemp(prefix="repro-pages-", suffix=".sqlite")
            os.close(fd)
        self.path = str(path)
        self._readonly = False
        self._bytes_read = 0
        self._bytes_written = 0
        self._bytes_prefetched = 0
        self._async = _AsyncReader(self._prefetch_read)
        #: Read-only connection owned by the prefetch worker thread
        #: (SQLite connections must not be shared across threads).
        self._prefetch_conn = None
        self._conn = sqlite3.connect(
            self.path, isolation_level=None, check_same_thread=not cross_thread
        )
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS pages ("
            " page_id INTEGER PRIMARY KEY,"
            " tag TEXT NOT NULL,"
            " size_bytes INTEGER NOT NULL,"
            " payload BLOB NOT NULL)"
        )
        self._finalizer = weakref.finalize(
            self, _cleanup_file, self.path, os.getpid(), self._owns_path
        )

    def write_page(self, page_id: int, tag: str, payload: Any, size_bytes: int) -> None:
        if self._readonly:
            raise RuntimeError("page store reopened read-only in a worker process")
        blob = _codec().encode_page_payload(payload)
        self._conn.execute(
            "INSERT INTO pages (page_id, tag, size_bytes, payload)"
            " VALUES (?, ?, ?, ?)"
            " ON CONFLICT(page_id) DO UPDATE SET"
            " tag = excluded.tag, size_bytes = excluded.size_bytes,"
            " payload = excluded.payload",
            (page_id, tag, size_bytes, blob),
        )
        self._bytes_written += len(blob)

    def read_page(self, page_id: int, count: bool = True) -> PageRecord:
        row = self._conn.execute(
            "SELECT tag, size_bytes, payload FROM pages WHERE page_id = ?", (page_id,)
        ).fetchone()
        if row is None:
            raise KeyError(f"page {page_id} has not been allocated")
        tag, size_bytes, blob = row
        if count:
            self._bytes_read += len(blob)
        return PageRecord(tag, _codec().decode_page_payload(blob), size_bytes)

    def fetch_async(self, page_ids: List[int]) -> PageFetch:
        return self._async.submit(page_ids)

    def _prefetch_read(self, page_id: int) -> PageRecord:
        """Read one page on the prefetch worker thread via its own
        read-only connection (never the caller's)."""
        conn = self._prefetch_conn
        if conn is None:
            # check_same_thread=False lets close() run on the main thread;
            # only the single prefetch worker ever *queries* through it.
            conn = self._prefetch_conn = self._sqlite3.connect(
                f"file:{self.path}?mode=ro",
                uri=True,
                isolation_level=None,
                check_same_thread=False,
            )
        row = conn.execute(
            "SELECT tag, size_bytes, payload FROM pages WHERE page_id = ?", (page_id,)
        ).fetchone()
        if row is None:
            raise KeyError(f"page {page_id} has not been allocated")
        tag, size_bytes, blob = row
        self._bytes_prefetched += len(blob)
        return PageRecord(tag, _codec().decode_page_payload(blob), size_bytes)

    def page_meta(self, page_id: int) -> Tuple[str, int]:
        row = self._conn.execute(
            "SELECT tag, size_bytes FROM pages WHERE page_id = ?", (page_id,)
        ).fetchone()
        if row is None:
            raise KeyError(f"page {page_id} has not been allocated")
        return row[0], int(row[1])

    def free_page(self, page_id: int) -> bool:
        if self._readonly:
            raise RuntimeError("page store reopened read-only in a worker process")
        cursor = self._conn.execute("DELETE FROM pages WHERE page_id = ?", (page_id,))
        return cursor.rowcount > 0

    def page_ids(self) -> List[int]:
        return [row[0] for row in self._conn.execute("SELECT page_id FROM pages")]

    def page_count(self, tag: Optional[str] = None) -> int:
        if tag is None:
            row = self._conn.execute("SELECT COUNT(*) FROM pages").fetchone()
        else:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM pages WHERE tag = ?", (tag,)
            ).fetchone()
        return int(row[0])

    def data_size_bytes(self, tag: Optional[str] = None) -> int:
        if tag is None:
            row = self._conn.execute("SELECT COALESCE(SUM(size_bytes), 0) FROM pages").fetchone()
        else:
            row = self._conn.execute(
                "SELECT COALESCE(SUM(size_bytes), 0) FROM pages WHERE tag = ?", (tag,)
            ).fetchone()
        return int(row[0])

    def stats(self) -> StorageStats:
        try:
            file_bytes = os.path.getsize(self.path)
        except OSError:
            file_bytes = 0
        return StorageStats(
            backend=self.name,
            pages=self.page_count(),
            bytes_read=self._bytes_read,
            bytes_written=self._bytes_written,
            file_bytes=file_bytes,
            bytes_prefetched=self._bytes_prefetched,
        )

    def reopen_in_worker(self) -> None:
        """Replace the fork-inherited connection with a read-only one.

        SQLite connections must not be carried across ``fork``; the worker
        opens its own via a ``mode=ro`` URI and never touches the parent's.
        """
        self._conn = self._sqlite3.connect(
            f"file:{self.path}?mode=ro", uri=True, isolation_level=None
        )
        self._readonly = True
        self._owns_path = False
        self._finalizer.detach()
        # The fork-inherited prefetch pool has no thread (and its
        # connection no owning thread) in this process; replace both.
        self._async = _AsyncReader(self._prefetch_read)
        self._prefetch_conn = None
        # Zero the inherited counters: worker snapshots must report only
        # the worker's own traffic (see FilePageStore.reopen_in_worker).
        self._bytes_read = 0
        self._bytes_written = 0
        self._bytes_prefetched = 0

    def close(self) -> None:
        self._async.close()
        if self._prefetch_conn is not None:
            self._prefetch_conn.close()
            self._prefetch_conn = None
        self._conn.close()
        self._finalizer.detach()
        if self._owns_path and os.path.exists(self.path):
            os.remove(self.path)


__all__ = [
    "PageStore",
    "PageStoreBase",
    "PageRecord",
    "PageFetch",
    "CompletedPageFetch",
    "ThreadedPageFetch",
    "StorageStats",
    "MemoryPageStore",
    "FilePageStore",
    "SQLitePageStore",
    "canonical_backend",
    "create_page_store",
    "open_store",
    "default_storage_backend",
    "STORAGE_BACKENDS",
    "REMOTE_BACKINGS",
    "STORAGE_ENV_VAR",
    "DEFAULT_SLOT_SIZE",
]
