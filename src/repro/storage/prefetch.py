"""Overlapped I/O: an asynchronous page-fetch pipeline for the simulated disk.

The paper's cost model charges every page fetch synchronously, which makes
the fig7/fig8 breakdowns conflate computation with I/O stalls.  Real
spatial engines hide leaf-read latency behind index computation; this
module adds the same capability to the reproduction without perturbing the
paper's *logical* accounting:

* a :class:`PrefetchScheduler` stages pages requested ahead of time through
  the backends' non-blocking ``fetch_async`` interface (a worker thread for
  the serializing backends, an immediate lookup for the in-memory one);
* every *physical* fetch of the :class:`~repro.storage.disk.DiskManager`
  routes through the scheduler, which serves staged pages without blocking
  and accounts the difference between time **stalled** waiting for the disk
  and service time **overlapped** with computation;
* the LRU buffer and the :class:`~repro.storage.counters.IOCounters` are
  never touched by prefetching, so logical hit/miss counts — and therefore
  every number the paper's experiments report — stay byte-identical to a
  run with prefetching off.  Only the physical-byte and stall/overlap
  statistics (:class:`~repro.storage.backends.StorageStats`) may differ.

Latency hiding is only measurable when fetching takes time.  The scheduler
therefore supports an injected per-page service ``latency`` (the simulated
disk's service time) and a pluggable clock: :class:`MonotonicClock` (real
time; the worker thread genuinely overlaps with computation) or
:class:`SimulatedClock` (a logical clock tests advance explicitly, making
stall/overlap accounting exactly reproducible — this is how the in-memory
backend, which has no real I/O, exercises the pipeline deterministically).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.storage.backends import PageFetch, PageRecord, PageStore


class MonotonicClock:
    """The real clock: ``perf_counter`` time, ``sleep`` actually sleeps."""

    def now(self) -> float:
        return time.perf_counter()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class SimulatedClock:
    """A logical clock advanced explicitly; nothing ever really sleeps.

    Tests (and the in-memory backend, which completes every fetch
    instantly) use it to make stall/overlap accounting deterministic:
    ``advance`` models computation time passing, ``sleep`` models the
    caller blocking on the simulated disk.
    """

    def __init__(self, start: float = 0.0):
        self._now = start

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            self._now += seconds

    def advance(self, seconds: float) -> None:
        """Model computation running for ``seconds`` of logical time."""
        if seconds < 0:
            raise ValueError("cannot advance a clock backwards")
        self._now += seconds


@dataclass
class PrefetchStats:
    """Accounting of the asynchronous fetch pipeline.

    ``pages_prefetched`` counts pages issued ahead of demand;
    ``prefetch_hits`` the issued pages that were actually consumed by a
    later read, ``prefetch_wasted`` the issued pages that never were
    (counted when the scheduler drains).  ``sync_fetches`` are demand
    fetches that found nothing staged.  ``stall_time`` accumulates the
    time reads spent blocked on the backend, ``overlap_time`` the service
    time hidden behind computation — with prefetching off, every physical
    fetch stalls for its full service time, so the two fields decompose
    the fig8 I/O cost into visible and hidden latency.
    """

    pages_prefetched: int = 0
    prefetch_hits: int = 0
    prefetch_wasted: int = 0
    sync_fetches: int = 0
    stall_time: float = 0.0
    overlap_time: float = 0.0


class PrefetchScheduler:
    """Stages asynchronously fetched pages between issue and consumption.

    The scheduler is deliberately oblivious to *what* to prefetch — the
    engine's algorithms plan candidate pages and call :meth:`request`; the
    disk manager calls :meth:`fetch` for every physical page fetch.  A
    fetch of a staged page waits only for whatever service time has not
    yet elapsed (accounted as stall, the hidden remainder as overlap); a
    fetch of an unstaged page performs a synchronous backend read and
    stalls for the full service latency, exactly like a run without
    prefetching.

    The logical counters of the paper's cost model never route through
    this class, so hit/miss accounting is independent of prefetch timing:
    ``prefetch_hits``/``prefetch_wasted`` depend only on which pages were
    requested and consumed, never on thread scheduling.
    """

    def __init__(
        self,
        store: PageStore,
        latency: float = 0.0,
        clock: Optional[object] = None,
        stats: Optional[PrefetchStats] = None,
        resident: Optional[object] = None,
    ):
        if latency < 0:
            raise ValueError("fetch latency must be non-negative")
        self.store = store
        self.latency = latency
        self.clock = clock if clock is not None else MonotonicClock()
        self.stats = stats if stats is not None else PrefetchStats()
        #: Predicate for pages already held in memory by the owner (the
        #: disk manager's decoded-page cache): requesting those would move
        #: backend bytes and occupy the simulated disk for pages a read
        #: will never ask the backend for.
        self._resident = resident if resident is not None else (lambda page_id: False)
        #: page id -> (async fetch handle, simulated-service completion time)
        self._staged: Dict[int, Tuple[PageFetch, float]] = {}
        #: When the simulated serial disk finishes its queued service.
        self._disk_free_at = 0.0

    def _schedule_service(self) -> float:
        """Queue one page's service on the simulated serial disk.

        The disk serves one page at a time: a request issued while earlier
        requests are still being serviced queues behind them.  This keeps a
        prefetched N-page batch from getting N services for the price of
        one — overlap can only come from computation genuinely running
        while the disk works through its queue, exactly like the
        synchronous baseline charged page by page.
        """
        start = max(self.clock.now(), self._disk_free_at)
        self._disk_free_at = start + self.latency
        return self._disk_free_at

    # ------------------------------------------------------------------
    # issue side
    # ------------------------------------------------------------------
    def request(self, page_ids: Iterable[int]) -> int:
        """Begin fetching pages ahead of demand; returns how many were new.

        Pages already staged — or already resident in the owner's decoded
        cache, which a read will be served from without touching the
        backend — are not issued.  The request is advisory: a page that is
        never consumed is counted as wasted when the scheduler drains, and
        a requested page that has meanwhile been freed simply yields
        nothing.
        """
        fresh: List[int] = []
        seen = set()
        for page_id in page_ids:
            if (
                page_id not in self._staged
                and page_id not in seen
                and not self._resident(page_id)
            ):
                seen.add(page_id)
                fresh.append(page_id)
        if not fresh:
            return 0
        handle = self.store.fetch_async(fresh)
        for page_id in fresh:
            # Each page's simulated service queues behind the previous
            # one: page i of the batch is ready at issue + (i+1)·latency.
            self._staged[page_id] = (handle, self._schedule_service())
        self.stats.pages_prefetched += len(fresh)
        return len(fresh)

    @property
    def staged_pages(self) -> List[int]:
        """Page ids currently staged (issued and not yet consumed)."""
        return list(self._staged)

    # ------------------------------------------------------------------
    # demand side
    # ------------------------------------------------------------------
    def fetch(self, page_id: int) -> PageRecord:
        """One physical page fetch, served from staging when possible."""
        staged = self._staged.pop(page_id, None)
        if staged is None:
            return self._fetch_sync(page_id)
        handle, ready_at = staged
        start = self.clock.now()
        record = handle.result().get(page_id)
        if record is None:
            # The async read could not produce the page (e.g. freed in the
            # meantime, or the backend failed): fall back to the synchronous
            # path, which surfaces any genuine error to the caller.  The
            # page's simulated service was already queued at request time —
            # reuse that slot instead of charging the disk twice.
            return self._fetch_sync(page_id, ready_at=ready_at)
        now = self.clock.now()
        if now < ready_at:
            # The simulated service time has not fully elapsed: the read
            # stalls for the remainder, and only the part that computation
            # already covered counts as hidden.
            self.clock.sleep(ready_at - now)
        waited = self.clock.now() - start
        self.stats.prefetch_hits += 1
        self.stats.stall_time += waited
        self.stats.overlap_time += max(0.0, self.latency - waited)
        return record

    def _fetch_sync(self, page_id: int, ready_at: Optional[float] = None) -> PageRecord:
        start = self.clock.now()
        record = self.store.read_page(page_id)
        if self.latency > 0:
            # A demand miss queues behind whatever the disk is already
            # servicing (in-flight prefetches included) and the caller
            # stalls until its own service completes.  A caller holding an
            # already-queued service slot (a staged fetch that fell back
            # here) passes its ``ready_at`` instead of queueing again.
            if ready_at is None:
                ready_at = self._schedule_service()
            remaining = ready_at - self.clock.now()
            if remaining > 0:
                self.clock.sleep(remaining)
        self.stats.sync_fetches += 1
        self.stats.stall_time += self.clock.now() - start
        return record

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def invalidate(self, page_id: int) -> None:
        """Discard a staged page whose stored content is being released.

        Called by the disk manager's ``free``: page ids are recycled for
        later allocations, and a staged record from the id's previous life
        must never be served as the new page's content.  The discarded
        page counts as wasted — it was issued and can no longer be used.
        """
        if self._staged.pop(page_id, None) is not None:
            self.stats.prefetch_wasted += 1

    def drain(self) -> int:
        """Discard everything still staged; returns the wasted page count.

        Called at the end of a join run (and before detaching): pages that
        were prefetched but never consumed are the pipeline's misprediction
        cost, reported as ``prefetch_wasted``.
        """
        wasted = len(self._staged)
        self._staged.clear()
        self.stats.prefetch_wasted += wasted
        return wasted


__all__ = [
    "MonotonicClock",
    "SimulatedClock",
    "PrefetchStats",
    "PrefetchScheduler",
]
