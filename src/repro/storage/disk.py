"""Simulated disk: a page store with buffer-aware I/O accounting.

All R-trees in this library store their nodes through a shared
:class:`DiskManager`.  Reading a node charges one physical page access when
the page is not in the LRU buffer; writing a node (materialising a Voronoi
R-tree, splitting a node) always charges a write, as in the paper's cost
model where tree construction cost "is exactly the cost of writing the nodes
of R'_P to disk".

The bytes behind those accesses live in a pluggable
:class:`~repro.storage.backends.PageStore`: the default in-memory dict, a
slotted binary file, or an SQLite database (see
:mod:`repro.storage.backends`).  The disk manager keeps decoded payloads
cached for exactly the pages resident in the LRU buffer, so with a
serializing backend a buffer miss really moves bytes while a buffer hit is
served from memory — the hit/miss accounting is identical across backends.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional

from repro.storage.backends import (
    PageRecord,
    PageStore,
    StorageStats,
    create_page_store,
)
from repro.storage.buffer import LRUBuffer
from repro.storage.counters import IOCounters
from repro.storage.prefetch import PrefetchScheduler, PrefetchStats

#: Default page size in bytes (the paper uses 1 KB pages).
PAGE_SIZE_DEFAULT = 1024

#: StorageStats fields that are per-handle transport *counters* — the ones
#: worker snapshots contribute to the parent's report.  Gauges (``pages``,
#: ``file_bytes``) describe the one shared store and are never summed.
_WORKER_COUNTER_FIELDS = (
    "bytes_read",
    "bytes_written",
    "bytes_prefetched",
    "pages_prefetched",
    "prefetch_hits",
    "prefetch_wasted",
    "sync_fetches",
    "stall_time",
    "overlap_time",
)


class DiskManager:
    """A page store shared by every index participating in an experiment.

    Parameters
    ----------
    page_size:
        Page capacity in bytes; only used to derive index fanouts and to
        translate buffer percentages into page counts.
    buffer_pages:
        Capacity of the LRU buffer in pages.  May be resized later with
        :meth:`resize_buffer` (Figure 8a sweeps this).
    counters:
        Optional externally-owned counters; a fresh set is created otherwise.
    store:
        Backend instance holding the page bytes; defaults to a fresh
        :class:`~repro.storage.backends.MemoryPageStore`.  Attaching a
        non-empty store (a reopened file or database) resumes page-id
        allocation above the highest stored id.
    storage, storage_path:
        Convenience alternative to ``store``: a backend name
        (``"memory" | "file" | "sqlite" | "remote"``, the last also as
        ``remote+file`` / ``remote+sqlite``) and the backing path —
        for the remote backend the page server's ``HOST:PORT`` address —
        (``None`` = owned temporary file / spawned server).
    fetch_latency:
        Simulated per-page service latency in seconds.  Zero (the default)
        leaves physical fetches as fast as the backend; a positive value
        makes every synchronous fetch stall for it — and makes latency
        *hiding* by the prefetch pipeline measurable (``storage_stats()``
        reports ``stall_time`` vs ``overlap_time``).
    fetch_clock:
        Clock used for the stall/overlap accounting; defaults to real time
        (:class:`~repro.storage.prefetch.MonotonicClock`).  Tests inject a
        :class:`~repro.storage.prefetch.SimulatedClock` to make the
        accounting deterministic.
    """

    def __init__(
        self,
        page_size: int = PAGE_SIZE_DEFAULT,
        buffer_pages: int = 0,
        counters: Optional[IOCounters] = None,
        store: Optional[PageStore] = None,
        storage: Optional[str] = None,
        storage_path: Optional[str] = None,
        fetch_latency: float = 0.0,
        fetch_clock: Optional[object] = None,
    ):
        if page_size <= 0:
            raise ValueError("page size must be positive")
        if store is not None and storage is not None:
            raise ValueError("pass either a store instance or a backend name, not both")
        if fetch_latency < 0:
            raise ValueError("fetch latency must be non-negative")
        self.page_size = page_size
        self.counters = counters if counters is not None else IOCounters()
        self.store: PageStore = (
            store
            if store is not None
            else create_page_store(storage if storage is not None else "memory", storage_path)
        )
        #: Decoded payloads for the pages currently held by the LRU buffer.
        self._cache: Dict[int, PageRecord] = {}
        self.buffer = LRUBuffer(buffer_pages, on_evict=self._evict_cached)
        existing = self.store.page_ids()
        self._next_id = itertools.count(max(existing, default=0) + 1)
        self._free_ids: List[int] = []
        self._io_enabled = True
        self.fetch_latency = fetch_latency
        self._fetch_clock = fetch_clock
        #: Lifetime stall/overlap/prefetch accounting (scheduler-backed).
        self._prefetch_stats = PrefetchStats()
        #: Absorbed worker-side transport totals (see absorb_worker_storage).
        self._worker_storage: Dict[str, Any] = {}
        self._prefetcher: Optional[PrefetchScheduler] = None
        if fetch_latency > 0:
            # Stall accounting applies to every physical fetch, prefetched
            # or not — the prefetch=off baseline needs it too.
            self.enable_prefetch()

    # ------------------------------------------------------------------
    # page lifecycle
    # ------------------------------------------------------------------
    def allocate(self, tag: str, payload: Any, size_bytes: Optional[int] = None) -> int:
        """Allocate a new page and charge the write that persists it.

        Freed page ids are recycled before the id counter advances.
        """
        page_id = self._free_ids.pop() if self._free_ids else next(self._next_id)
        size = size_bytes if size_bytes is not None else self.page_size
        self.store.write_page(page_id, tag, payload, size)
        if self._io_enabled:
            self.counters.record_write(tag)
            self.buffer.access(page_id)
            self._cache_if_buffered(page_id, PageRecord(tag, payload, size))
        return page_id

    def write(self, page_id: int, payload: Any, size_bytes: Optional[int] = None) -> None:
        """Overwrite an existing page (charged as one physical write)."""
        cached = self._cache.get(page_id)
        if cached is not None:
            tag, current_size = cached.tag, cached.size_bytes
        else:
            tag, current_size = self.store.page_meta(page_id)
        size = size_bytes if size_bytes is not None else current_size
        self.store.write_page(page_id, tag, payload, size)
        record = PageRecord(tag, payload, size)
        if self._io_enabled:
            self.counters.record_write(tag)
            self.buffer.access(page_id)
            self._cache_if_buffered(page_id, record)
        elif page_id in self._cache:
            # Keep a buffered page coherent even while accounting is off.
            self._cache[page_id] = record

    def read(self, page_id: int) -> Any:
        """Read a page through the buffer, charging a miss as physical I/O.

        Buffer hits are served from the decoded-payload cache; misses go to
        the backend (which, for the file and SQLite stores, moves real
        bytes) and the page is then cached for as long as it stays in the
        buffer.  When a prefetcher is attached, the physical fetch routes
        through it — served from the staged pages when possible — but the
        buffer/counter accounting below is oblivious to that, so logical
        hits and misses are identical in every prefetch mode.
        """
        record = self._cache.get(page_id)
        if record is None:
            if self._prefetcher is not None:
                record = self._prefetcher.fetch(page_id)
            else:
                record = self.store.read_page(page_id)
        if self._io_enabled:
            hit = self.buffer.access(page_id)
            self.counters.record_read(record.tag, hit)
            self._cache_if_buffered(page_id, record)
        return record.payload

    def peek(self, page_id: int) -> Any:
        """Read a page's payload without touching the buffer or counters.

        Used by test oracles and by maintenance operations whose cost the
        paper does not attribute to the measured algorithm.
        """
        return self._record(page_id).payload

    def free(self, page_id: int) -> None:
        """Release a page (no I/O charge; deallocation is metadata-only).

        The page id is also evicted from the buffer and recycled for later
        allocations — a stale buffer entry would otherwise let a recycled
        id produce a phantom hit for a page that was never read.  The
        decoded-payload cache entry is popped directly as a belt-and-braces
        guard: today the buffer's eviction hook already covers it (the
        cache only holds buffer-resident pages), but delete-heavy streams
        recycle ids aggressively and a future path that breaks the
        cache⊆buffer invariant (e.g. around ``restore_buffer_state``) must
        not let a recycled id resurrect the freed page's decode.
        """
        if self.store.free_page(page_id):
            self._free_ids.append(page_id)
        self.buffer.invalidate(page_id)
        self._cache.pop(page_id, None)
        if self._prefetcher is not None:
            # A staged record from this id's previous life must not be
            # served once the id is recycled for a new page.
            self._prefetcher.invalidate(page_id)

    # ------------------------------------------------------------------
    # introspection and control
    # ------------------------------------------------------------------
    def page_count(self, tag: Optional[str] = None) -> int:
        """Number of allocated pages, optionally restricted to one tag."""
        return self.store.page_count(tag)

    def data_size_bytes(self, tag: Optional[str] = None) -> int:
        """Total bytes stored, optionally restricted to one tag."""
        return self.store.data_size_bytes(tag)

    @property
    def storage_backend(self) -> str:
        """Name of the page-store backend (``memory``/``file``/``sqlite``/``remote``)."""
        return self.store.name

    def storage_stats(self) -> StorageStats:
        """Physical byte movement of the backend (zero for ``memory``),
        including the lifetime prefetch/stall accounting and any absorbed
        worker-side transport totals."""
        stats = self.store.stats()
        prefetch = self._prefetch_stats
        stats.pages_prefetched = prefetch.pages_prefetched
        stats.prefetch_hits = prefetch.prefetch_hits
        stats.prefetch_wasted = prefetch.prefetch_wasted
        stats.sync_fetches = prefetch.sync_fetches
        stats.stall_time = prefetch.stall_time
        stats.overlap_time = prefetch.overlap_time
        worker = self._worker_storage
        if worker:
            for field in _WORKER_COUNTER_FIELDS:
                setattr(stats, field, getattr(stats, field) + worker.get(field, 0))
            stats.extra["worker_bytes_read"] = int(worker.get("bytes_read", 0))
            stats.extra["worker_bytes_prefetched"] = int(
                worker.get("bytes_prefetched", 0)
            )
            stats.extra["worker_snapshots"] = int(worker.get("snapshots", 0))
        return stats

    def absorb_worker_storage(self, snapshots) -> None:
        """Fold worker-side transport counters into ``storage_stats()``.

        ``snapshots`` is one cumulative :class:`StorageStats`-shaped dict
        per worker handle (fork worker or node process), as collected by
        the executors.  Each run's totals are absorbed exactly once —
        executors de-duplicate retried units by keeping only the *latest*
        cumulative snapshot per worker, so retry and quarantine paths never
        double-count (a quarantined worker's last snapshot still reports
        the traffic it really caused).  Totals accumulate across runs,
        matching the lifetime semantics of every other disk counter.
        """
        for snapshot in snapshots:
            for field in _WORKER_COUNTER_FIELDS:
                self._worker_storage[field] = self._worker_storage.get(
                    field, 0
                ) + snapshot.get(field, 0)
            self._worker_storage["snapshots"] = (
                self._worker_storage.get("snapshots", 0) + 1
            )

    # ------------------------------------------------------------------
    # prefetching
    # ------------------------------------------------------------------
    @property
    def prefetcher(self) -> Optional[PrefetchScheduler]:
        """The attached prefetch scheduler, or ``None``."""
        return self._prefetcher

    def enable_prefetch(self) -> PrefetchScheduler:
        """Attach (or return) the prefetch scheduler of this disk.

        The scheduler accounts directly into the disk's lifetime
        :class:`~repro.storage.prefetch.PrefetchStats`, so enabling,
        draining and re-enabling across runs keeps one coherent record.
        """
        if self._prefetcher is None:
            self._prefetcher = PrefetchScheduler(
                self.store,
                latency=self.fetch_latency,
                clock=self._fetch_clock,
                stats=self._prefetch_stats,
                # Late-binding: restore_buffer_state rebinds self._cache,
                # so the predicate must read the attribute each call.
                resident=lambda page_id: page_id in self._cache,
            )
        return self._prefetcher

    def drain_prefetch(self) -> None:
        """Discard staged pages, charging them as ``prefetch_wasted``."""
        if self._prefetcher is not None:
            self._prefetcher.drain()

    def resize_buffer(self, buffer_pages: int) -> None:
        """Resize the LRU buffer (contents are kept up to the new capacity)."""
        self.buffer.resize(buffer_pages)

    def set_buffer_fraction(self, fraction: float, tag: Optional[str] = None) -> None:
        """Size the buffer as a fraction of the currently stored data size.

        This mirrors the paper's "buffer size set to x% of the data size on
        disk".  A fraction of zero disables the buffer entirely.
        """
        if fraction < 0.0:
            raise ValueError("buffer fraction must be non-negative")
        pages = int(round(self.page_count(tag) * fraction))
        self.buffer.resize(pages)
        self.buffer.clear()

    def suspend_io_accounting(self) -> "_IOAccountingSuspension":
        """Context manager that disables I/O charging while active.

        Ground-truth oracles (brute-force CIJ) and dataset preparation use
        this so their accesses do not pollute the measured counters.
        """
        return _IOAccountingSuspension(self)

    def reset_counters(self) -> None:
        """Zero the I/O counters without touching pages or the buffer."""
        self.counters.reset()

    def buffer_state(self):
        """Opaque snapshot of buffer residency plus the decoded-page cache.

        Together with :meth:`restore_buffer_state` this lets the sharded
        executor's inline fallback give every shard the exact buffer a
        forked worker would inherit (the parent's state at dispatch time),
        instead of leaking one shard's warm pages into the next.
        """
        return (self.buffer.contents(), dict(self._cache))

    def restore_buffer_state(self, state) -> None:
        """Rewind buffer residency and the decoded-page cache to ``state``."""
        pages, cache = state
        self.buffer.restore(list(pages))
        self._cache = dict(cache)

    def reopen_for_worker(self) -> None:
        """Give a forked worker its own read-only backend handles.

        File descriptors and database connections inherited through
        ``fork`` share state with the parent (file offsets, SQLite's
        no-fork rule); the join phase only reads, so each worker swaps in
        a private read-only view.  The in-memory backend is a no-op.
        The parent's prefetcher is dropped too: its worker thread (and any
        staged pages) did not survive the fork, so the child charges plain
        synchronous fetches.
        """
        self._prefetcher = None
        self._prefetch_stats = PrefetchStats()
        self.store.reopen_in_worker()
        if self.fetch_latency > 0:
            self.enable_prefetch()

    def close(self) -> None:
        """Release backend resources (temporary files are deleted)."""
        self.drain_prefetch()
        self._prefetcher = None
        self._cache.clear()
        self.store.close()

    def __enter__(self) -> "DiskManager":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _record(self, page_id: int) -> PageRecord:
        """Uncounted page lookup for :meth:`peek`: maintenance and oracle
        access stays out of both the I/O counters and ``storage_stats``."""
        record = self._cache.get(page_id)
        if record is not None:
            return record
        return self.store.read_page(page_id, count=False)

    def _cache_if_buffered(self, page_id: int, record: PageRecord) -> None:
        if page_id in self.buffer:
            self._cache[page_id] = record

    def _evict_cached(self, page_id: int) -> None:
        self._cache.pop(page_id, None)


class _IOAccountingSuspension:
    """Context manager toggling a DiskManager's I/O accounting off and on."""

    def __init__(self, disk: DiskManager):
        self._disk = disk
        self._previous = True

    def __enter__(self) -> DiskManager:
        self._previous = self._disk._io_enabled
        self._disk._io_enabled = False
        return self._disk

    def __exit__(self, exc_type, exc, tb) -> None:
        self._disk._io_enabled = self._previous
