"""Simulated disk: a page store with buffer-aware I/O accounting.

All R-trees in this library store their nodes through a shared
:class:`DiskManager`.  Reading a node charges one physical page access when
the page is not in the LRU buffer; writing a node (materialising a Voronoi
R-tree, splitting a node) always charges a write, as in the paper's cost
model where tree construction cost "is exactly the cost of writing the nodes
of R'_P to disk".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.storage.buffer import LRUBuffer
from repro.storage.counters import IOCounters

#: Default page size in bytes (the paper uses 1 KB pages).
PAGE_SIZE_DEFAULT = 1024


@dataclass
class PageDescriptor:
    """Metadata for one stored page."""

    page_id: int
    tag: str
    payload: Any
    size_bytes: int


class DiskManager:
    """A page store shared by every index participating in an experiment.

    Parameters
    ----------
    page_size:
        Page capacity in bytes; only used to derive index fanouts and to
        translate buffer percentages into page counts.
    buffer_pages:
        Capacity of the LRU buffer in pages.  May be resized later with
        :meth:`resize_buffer` (Figure 8a sweeps this).
    counters:
        Optional externally-owned counters; a fresh set is created otherwise.
    """

    def __init__(
        self,
        page_size: int = PAGE_SIZE_DEFAULT,
        buffer_pages: int = 0,
        counters: Optional[IOCounters] = None,
    ):
        if page_size <= 0:
            raise ValueError("page size must be positive")
        self.page_size = page_size
        self.counters = counters if counters is not None else IOCounters()
        self.buffer = LRUBuffer(buffer_pages)
        self._pages: Dict[int, PageDescriptor] = {}
        self._next_id = itertools.count(1)
        self._io_enabled = True

    # ------------------------------------------------------------------
    # page lifecycle
    # ------------------------------------------------------------------
    def allocate(self, tag: str, payload: Any, size_bytes: Optional[int] = None) -> int:
        """Allocate a new page and charge the write that persists it."""
        page_id = next(self._next_id)
        size = size_bytes if size_bytes is not None else self.page_size
        self._pages[page_id] = PageDescriptor(page_id, tag, payload, size)
        if self._io_enabled:
            self.counters.record_write(tag)
            self.buffer.access(page_id)
        return page_id

    def write(self, page_id: int, payload: Any, size_bytes: Optional[int] = None) -> None:
        """Overwrite an existing page (charged as one physical write)."""
        descriptor = self._descriptor(page_id)
        descriptor.payload = payload
        if size_bytes is not None:
            descriptor.size_bytes = size_bytes
        if self._io_enabled:
            self.counters.record_write(descriptor.tag)
            self.buffer.access(page_id)

    def read(self, page_id: int) -> Any:
        """Read a page through the buffer, charging a miss as physical I/O."""
        descriptor = self._descriptor(page_id)
        if self._io_enabled:
            hit = self.buffer.access(page_id)
            self.counters.record_read(descriptor.tag, hit)
        return descriptor.payload

    def peek(self, page_id: int) -> Any:
        """Read a page's payload without touching the buffer or counters.

        Used by test oracles and by maintenance operations whose cost the
        paper does not attribute to the measured algorithm.
        """
        return self._descriptor(page_id).payload

    def free(self, page_id: int) -> None:
        """Release a page (no I/O charge; deallocation is metadata-only)."""
        self._pages.pop(page_id, None)
        self.buffer.invalidate(page_id)

    # ------------------------------------------------------------------
    # introspection and control
    # ------------------------------------------------------------------
    def page_count(self, tag: Optional[str] = None) -> int:
        """Number of allocated pages, optionally restricted to one tag."""
        if tag is None:
            return len(self._pages)
        return sum(1 for d in self._pages.values() if d.tag == tag)

    def data_size_bytes(self, tag: Optional[str] = None) -> int:
        """Total bytes stored, optionally restricted to one tag."""
        return sum(
            d.size_bytes for d in self._pages.values() if tag is None or d.tag == tag
        )

    def resize_buffer(self, buffer_pages: int) -> None:
        """Resize the LRU buffer (contents are kept up to the new capacity)."""
        self.buffer.resize(buffer_pages)

    def set_buffer_fraction(self, fraction: float, tag: Optional[str] = None) -> None:
        """Size the buffer as a fraction of the currently stored data size.

        This mirrors the paper's "buffer size set to x% of the data size on
        disk".  A fraction of zero disables the buffer entirely.
        """
        if fraction < 0.0:
            raise ValueError("buffer fraction must be non-negative")
        pages = int(round(self.page_count(tag) * fraction))
        self.buffer.resize(pages)
        self.buffer.clear()

    def suspend_io_accounting(self) -> "_IOAccountingSuspension":
        """Context manager that disables I/O charging while active.

        Ground-truth oracles (brute-force CIJ) and dataset preparation use
        this so their accesses do not pollute the measured counters.
        """
        return _IOAccountingSuspension(self)

    def reset_counters(self) -> None:
        """Zero the I/O counters without touching pages or the buffer."""
        self.counters.reset()

    def _descriptor(self, page_id: int) -> PageDescriptor:
        try:
            return self._pages[page_id]
        except KeyError:
            raise KeyError(f"page {page_id} has not been allocated") from None


class _IOAccountingSuspension:
    """Context manager toggling a DiskManager's I/O accounting off and on."""

    def __init__(self, disk: DiskManager):
        self._disk = disk
        self._previous = True

    def __enter__(self) -> DiskManager:
        self._previous = self._disk._io_enabled
        self._disk._io_enabled = False
        return self._disk

    def __exit__(self, exc_type, exc, tb) -> None:
        self._disk._io_enabled = self._previous
