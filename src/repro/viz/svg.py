"""Minimal SVG rendering for the spatial objects of this library.

Everything is plain string construction: the goal is quick visual inspection
of datasets, Voronoi diagrams and CIJ results (as in Figure 1 of the paper),
not a plotting framework.  Coordinates are mapped from the data domain to a
fixed-size canvas with the y-axis flipped so that north is up.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.geometry.point import Point
from repro.geometry.polygon import ConvexPolygon
from repro.geometry.rect import Rect
from repro.voronoi.diagram import VoronoiDiagram


class SVGCanvas:
    """An SVG document with helpers for the shapes this library produces."""

    def __init__(self, domain: Rect, width: int = 640, height: int = 640, margin: int = 10):
        if width <= 2 * margin or height <= 2 * margin:
            raise ValueError("canvas must be larger than twice its margin")
        self.domain = domain
        self.width = width
        self.height = height
        self.margin = margin
        self._elements: List[str] = []

    # ------------------------------------------------------------------
    # coordinate mapping
    # ------------------------------------------------------------------
    def transform(self, point: Point) -> Tuple[float, float]:
        """Map a data-space point onto canvas pixels (y flipped)."""
        usable_w = self.width - 2 * self.margin
        usable_h = self.height - 2 * self.margin
        span_x = self.domain.width or 1.0
        span_y = self.domain.height or 1.0
        x = self.margin + (point.x - self.domain.xmin) / span_x * usable_w
        y = self.height - self.margin - (point.y - self.domain.ymin) / span_y * usable_h
        return round(x, 2), round(y, 2)

    # ------------------------------------------------------------------
    # drawing primitives
    # ------------------------------------------------------------------
    def add_point(self, point: Point, radius: float = 3.0, color: str = "black", label: Optional[str] = None) -> None:
        """Draw a filled circle (and an optional text label) at a point."""
        x, y = self.transform(point)
        self._elements.append(
            f'<circle cx="{x}" cy="{y}" r="{radius}" fill="{color}" />'
        )
        if label is not None:
            self._elements.append(
                f'<text x="{x + radius + 1}" y="{y - radius - 1}" font-size="9" fill="{color}">{label}</text>'
            )

    def add_polygon(
        self,
        polygon: ConvexPolygon,
        stroke: str = "black",
        fill: str = "none",
        opacity: float = 1.0,
        stroke_width: float = 1.0,
    ) -> None:
        """Draw a convex polygon outline (optionally filled)."""
        if polygon.is_empty():
            return
        coords = " ".join(f"{x},{y}" for x, y in (self.transform(v) for v in polygon.vertices))
        self._elements.append(
            f'<polygon points="{coords}" fill="{fill}" fill-opacity="{opacity}" '
            f'stroke="{stroke}" stroke-width="{stroke_width}" />'
        )

    def add_rect(self, rect: Rect, stroke: str = "gray", stroke_width: float = 0.5) -> None:
        """Draw an axis-aligned rectangle outline (e.g. an MBR)."""
        self.add_polygon(ConvexPolygon.from_rect(rect), stroke=stroke, stroke_width=stroke_width)

    def element_count(self) -> int:
        """Number of drawing elements added so far (used by tests)."""
        return len(self._elements)

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------
    def to_svg(self) -> str:
        """The complete SVG document as a string."""
        header = (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">'
        )
        background = f'<rect width="{self.width}" height="{self.height}" fill="white" />'
        return "\n".join([header, background, *self._elements, "</svg>"])

    def save(self, path) -> None:
        """Write the document to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_svg())


def render_pointsets(
    pointsets: Dict[str, Sequence[Point]],
    domain: Rect,
    colors: Optional[Dict[str, str]] = None,
    width: int = 640,
    height: int = 640,
) -> str:
    """Render one or more named pointsets as coloured dots."""
    palette = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e"]
    canvas = SVGCanvas(domain, width=width, height=height)
    for index, (name, points) in enumerate(pointsets.items()):
        color = (colors or {}).get(name, palette[index % len(palette)])
        for point in points:
            canvas.add_point(point, radius=2.5, color=color)
    return canvas.to_svg()


def render_voronoi_diagram(
    diagram: VoronoiDiagram,
    width: int = 640,
    height: int = 640,
    cell_stroke: str = "#1f77b4",
    site_color: str = "black",
    label_sites: bool = False,
) -> str:
    """Render a Voronoi diagram: cell boundaries plus generator sites."""
    canvas = SVGCanvas(diagram.domain, width=width, height=height)
    for cell in diagram:
        canvas.add_polygon(cell.polygon, stroke=cell_stroke)
    for cell in diagram:
        canvas.add_point(cell.site, radius=2.5, color=site_color,
                         label=str(cell.oid) if label_sites else None)
    return canvas.to_svg()


def render_cij(
    diagram_p: VoronoiDiagram,
    diagram_q: VoronoiDiagram,
    pairs: Iterable[Tuple[int, int]],
    width: int = 640,
    height: int = 640,
    max_regions: Optional[int] = None,
) -> str:
    """Render two Voronoi diagrams and shade the common influence regions.

    This reproduces the style of Figure 1 of the paper: the cells of ``P``
    with solid strokes, the cells of ``Q`` with dashed strokes, and the
    region ``R(p, q)`` of every result pair filled in.
    """
    domain = diagram_p.domain.union(diagram_q.domain)
    canvas = SVGCanvas(domain, width=width, height=height)
    for cell in diagram_p:
        canvas.add_polygon(cell.polygon, stroke="#1f77b4", stroke_width=1.0)
    for cell in diagram_q:
        canvas.add_polygon(cell.polygon, stroke="#d62728", stroke_width=0.8)
    drawn = 0
    for p_oid, q_oid in pairs:
        if max_regions is not None and drawn >= max_regions:
            break
        region = diagram_p.cell_of(p_oid).common_region(diagram_q.cell_of(q_oid))
        if region.is_empty():
            continue
        canvas.add_polygon(region, stroke="none", fill="#2ca02c", opacity=0.25)
        drawn += 1
    for cell in diagram_p:
        canvas.add_point(cell.site, radius=2.5, color="#1f77b4")
    for cell in diagram_q:
        canvas.add_point(cell.site, radius=2.5, color="#d62728")
    return canvas.to_svg()
