"""Lightweight SVG visualisation of pointsets, Voronoi diagrams and CIJ results.

The paper illustrates the operator with diagrams like Figure 1 (two
overlapping Voronoi diagrams and the common influence regions of the result
pairs).  This subpackage renders the same pictures as standalone SVG files
with no third-party dependencies, which the examples use to make the join
output inspectable.
"""

from repro.viz.svg import SVGCanvas, render_cij, render_pointsets, render_voronoi_diagram

__all__ = ["SVGCanvas", "render_pointsets", "render_voronoi_diagram", "render_cij"]
