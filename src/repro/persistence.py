"""Persistence helpers: datasets, join results and experiment reports.

A downstream user of the library typically wants to (a) run a join on their
own coordinate files, and (b) keep the result and the cost statistics next
to the data.  This module provides the small amount of I/O needed for that:

* pointsets as two-column CSV (``x,y`` with an optional ``id`` column),
* CIJ results as CSV pair lists plus a JSON sidecar with the statistics,
* experiment results (from :mod:`repro.experiments`) as JSON,
* the binary page codecs (:func:`encode_page_payload` /
  :func:`decode_page_payload`, re-exported from
  :mod:`repro.storage.codec`) that the file and SQLite storage backends
  use to move R-tree nodes as real bytes.

Only the standard library is used; all functions take ``pathlib.Path`` or
plain string paths.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.experiments.harness import ExperimentResult
from repro.geometry.point import Point
from repro.join.result import CIJResult, JoinStats, ProgressSample
from repro.storage.codec import decode_page_payload, encode_page_payload

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# pointsets
# ----------------------------------------------------------------------
def save_pointset(path: PathLike, points: Sequence[Point], oids: Optional[Sequence[int]] = None) -> None:
    """Write a pointset as CSV with columns ``id,x,y``."""
    if oids is None:
        oids = list(range(len(points)))
    if len(oids) != len(points):
        raise ValueError("oids and points must have the same length")
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id", "x", "y"])
        for oid, point in zip(oids, points):
            writer.writerow([oid, repr(point.x), repr(point.y)])


def load_pointset(path: PathLike) -> Tuple[List[int], List[Point]]:
    """Read a pointset written by :func:`save_pointset` (or any ``x,y`` CSV).

    Files without an ``id`` column get sequential identifiers.  Raises
    :class:`ValueError` on rows that cannot be parsed.
    """
    oids: List[int] = []
    points: List[Point] = []
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise ValueError(f"{path}: empty pointset file")
        fields = {name.strip().lower() for name in reader.fieldnames}
        if not {"x", "y"} <= fields:
            raise ValueError(f"{path}: expected at least 'x' and 'y' columns, found {sorted(fields)}")
        for index, row in enumerate(reader):
            normalised = {key.strip().lower(): value for key, value in row.items() if key}
            try:
                x = float(normalised["x"])
                y = float(normalised["y"])
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(f"{path}: malformed row {index + 2}: {row}") from exc
            oid = int(normalised["id"]) if normalised.get("id") not in (None, "") else index
            oids.append(oid)
            points.append(Point(x, y))
    return oids, points


# ----------------------------------------------------------------------
# CIJ results
# ----------------------------------------------------------------------
def save_cij_result(path: PathLike, result: CIJResult) -> None:
    """Write the pairs as CSV and the statistics as a ``.stats.json`` sidecar."""
    path = Path(path)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["p_oid", "q_oid"])
        for pair in result.pairs:
            writer.writerow(list(pair))
    stats = result.stats
    payload = {
        "algorithm": stats.algorithm,
        "mat_page_accesses": stats.mat_page_accesses,
        "join_page_accesses": stats.join_page_accesses,
        "mat_cpu_seconds": stats.mat_cpu_seconds,
        "join_cpu_seconds": stats.join_cpu_seconds,
        "cells_computed_p": stats.cells_computed_p,
        "cells_computed_q": stats.cells_computed_q,
        "cells_reused_p": stats.cells_reused_p,
        "filter_candidates": stats.filter_candidates,
        "filter_true_hits": stats.filter_true_hits,
        "progress": [[s.page_accesses, s.pairs_reported] for s in stats.progress],
        "pair_count": len(result.pairs),
    }
    sidecar = path.with_suffix(path.suffix + ".stats.json")
    sidecar.write_text(json.dumps(payload, indent=2), encoding="utf-8")


def load_cij_result(path: PathLike) -> CIJResult:
    """Read a result written by :func:`save_cij_result`."""
    path = Path(path)
    pairs: List[Tuple[int, ...]] = []
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            raise ValueError(f"{path}: empty result file")
        for row in reader:
            if not row:
                continue
            pairs.append(tuple(int(value) for value in row))
    sidecar = path.with_suffix(path.suffix + ".stats.json")
    stats = JoinStats(algorithm="UNKNOWN")
    if sidecar.exists():
        payload = json.loads(sidecar.read_text(encoding="utf-8"))
        stats = JoinStats(
            algorithm=payload.get("algorithm", "UNKNOWN"),
            mat_page_accesses=payload.get("mat_page_accesses", 0),
            join_page_accesses=payload.get("join_page_accesses", 0),
            mat_cpu_seconds=payload.get("mat_cpu_seconds", 0.0),
            join_cpu_seconds=payload.get("join_cpu_seconds", 0.0),
            cells_computed_p=payload.get("cells_computed_p", 0),
            cells_computed_q=payload.get("cells_computed_q", 0),
            cells_reused_p=payload.get("cells_reused_p", 0),
            filter_candidates=payload.get("filter_candidates", 0),
            filter_true_hits=payload.get("filter_true_hits", 0),
        )
        stats.progress = [
            ProgressSample(int(pages), int(count))
            for pages, count in payload.get("progress", [])
        ]
    return CIJResult(pairs=pairs, stats=stats)


# ----------------------------------------------------------------------
# experiment results
# ----------------------------------------------------------------------
def save_experiment_result(path: PathLike, result: ExperimentResult) -> None:
    """Write an experiment result (rows + metadata) as JSON."""
    payload = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "paper_reference": result.paper_reference,
        "columns": result.columns,
        "rows": result.rows,
        "notes": result.notes,
    }
    Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")


def load_experiment_result(path: PathLike) -> ExperimentResult:
    """Read an experiment result written by :func:`save_experiment_result`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    result = ExperimentResult(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        paper_reference=payload["paper_reference"],
        columns=list(payload["columns"]),
    )
    for row in payload["rows"]:
        result.add_row(*row)
    for note in payload.get("notes", []):
        result.add_note(note)
    return result
