"""repro — Common Influence Join (CIJ) for spatial pointsets.

A from-scratch reproduction of *"Common Influence Join: A Natural Join
Operation for Spatial Pointsets"* (Yiu, Mamoulis, Karras, ICDE 2008),
including the storage / R-tree substrate the paper's evaluation depends on.

Quickstart
----------
>>> from repro import common_influence_join, uniform_points
>>> p = uniform_points(200, seed=1)
>>> q = uniform_points(200, seed=2)
>>> result = common_influence_join(p, q)            # NM-CIJ by default
>>> len(result.pairs) > 0
True

The three algorithms of the paper (FM-CIJ, PM-CIJ, NM-CIJ) are available
through :func:`common_influence_join`'s ``method`` argument or directly from
:mod:`repro.join`; the Voronoi-cell machinery lives in :mod:`repro.voronoi`
and the simulated storage / R-tree substrate in :mod:`repro.storage` and
:mod:`repro.index`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.datasets import (
    DOMAIN,
    clustered_points,
    gaussian_points,
    real_like_dataset,
    uniform_points,
)
from repro.datasets.workload import (
    DynamicWorkloadConfig,
    WorkloadConfig,
    build_workload,
    generate_update_batches,
)
from repro.dynamic import (
    DynamicJoinSession,
    PairDelta,
    Update,
    UpdateBatch,
    load_update_stream,
)
from repro.engine import EngineConfig, JoinEngine, default_engine
from repro.geometry import ConvexPolygon, Point, Rect
from repro.join import (
    CIJResult,
    brute_force_cij,
    epsilon_distance_join,
    fm_cij,
    k_closest_pairs,
    multiway_cij,
    nm_cij,
    pm_cij,
)
from repro.voronoi import VoronoiCell, VoronoiDiagram, compute_voronoi_cell

__version__ = "1.2.0"

__all__ = [
    "Point",
    "Rect",
    "ConvexPolygon",
    "VoronoiCell",
    "VoronoiDiagram",
    "CIJResult",
    "EngineConfig",
    "JoinEngine",
    "default_engine",
    "common_influence_join",
    "compute_voronoi_cell",
    "fm_cij",
    "pm_cij",
    "nm_cij",
    "multiway_cij",
    "brute_force_cij",
    "epsilon_distance_join",
    "k_closest_pairs",
    "uniform_points",
    "gaussian_points",
    "clustered_points",
    "real_like_dataset",
    "build_workload",
    "WorkloadConfig",
    "DynamicWorkloadConfig",
    "DynamicJoinSession",
    "PairDelta",
    "Update",
    "UpdateBatch",
    "generate_update_batches",
    "load_update_stream",
    "DOMAIN",
]

def common_influence_join(
    points_p: Sequence[Point],
    points_q: Sequence[Point],
    method: str = "nm",
    domain: Optional[Rect] = None,
    buffer_fraction: float = 0.02,
    page_size: int = 1024,
    executor: str = "serial",
    workers: int = 2,
    nodes: int = 2,
    node_timeout: Optional[float] = None,
    node_retries: Optional[int] = None,
    fault_plan: Optional[str] = None,
    reuse_handoff: str = "auto",
    storage: Optional[str] = None,
    storage_path: Optional[str] = None,
    prefetch: str = "off",
    prefetch_depth: int = 2,
    fetch_latency: float = 0.0,
    compute: Optional[str] = None,
) -> CIJResult:
    """Compute ``CIJ(P, Q)`` end to end from two plain pointsets.

    This convenience wrapper builds the simulated disk, indexes both
    pointsets with R-trees, sizes the LRU buffer and runs the requested
    algorithm through the :class:`~repro.engine.JoinEngine`.  Pair
    identifiers in the result refer to the positional indices of the input
    sequences.

    Parameters
    ----------
    points_p, points_q:
        The two pointsets; both must be non-empty.
    method:
        ``"nm"`` (default, the paper's best algorithm), ``"pm"``, ``"fm"``
        or ``"brute"`` (the quadratic oracle baseline).
    domain:
        Space domain; defaults to the paper's ``[0, 10000]`` square extended
        to cover the data if necessary.
    buffer_fraction, page_size:
        Storage parameters (paper defaults: 2 % LRU buffer, 1 KB pages).
    executor, workers, nodes:
        Execution strategy: ``"serial"`` (default), ``"sharded"`` — the
        join's work units (Hilbert-ordered ``R_Q`` leaves for NM-CIJ/
        PM-CIJ, top-level ``R'_P`` partitions of the synchronous traversal
        for FM-CIJ) pulled by ``workers`` local processes — or
        ``"distributed"``, the same units pulled by ``nodes`` worker
        subprocesses that reopen the shared backend read-only (requires a
        shareable backend: ``storage="file"``, ``"sqlite"`` or
        ``"remote"``).  Every CIJ variant
        shards; only the brute-force oracle does not.  Merged pairs and
        deterministic counters are byte-identical across executors.
    node_timeout, node_retries, fault_plan:
        Fault-tolerance knobs of the distributed tier: seconds of node
        silence before a hang is declared, how many times a failed unit
        may be retried on another node, and a deterministic
        fault-injection spec (:mod:`repro.engine.faults`) for testing.
        ``None`` keeps the engine defaults (60 s, 2 retries, no faults).
    reuse_handoff:
        Whether a sharded NM-CIJ hands its REUSE buffer across shard
        boundaries (``"auto"``/``"always"``/``"never"``; see
        :class:`repro.engine.EngineConfig`).
    storage, storage_path:
        Page-store backend (``"memory"``, ``"file"``, ``"sqlite"``,
        ``"remote"`` — or ``"remote+file"``/``"remote+sqlite"`` to pick a
        spawned page server's backing store) and its backing path (for
        ``"remote"``: the ``HOST:PORT`` of a running page server, or
        ``None`` to spawn a private one).  The default honours
        ``$REPRO_STORAGE`` and falls back to memory; the serializing
        backends let the join page real bytes off disk for datasets larger
        than the buffer.
    prefetch, prefetch_depth:
        Overlapped-I/O mode (``"off"``, ``"next_batch"``, ``"next_shard"``)
        and its unit lookahead; see :class:`repro.engine.EngineConfig`.
        The emitted pairs and logical hit/miss counters are identical in
        every mode — prefetching only hides physical fetch latency, which
        ``disk.storage_stats()`` reports as ``overlap_time``.
    fetch_latency:
        Simulated per-page disk service time in seconds (default 0); a
        positive value makes the latency hiding measurable.
    compute:
        Geometry inner-loop implementation: ``"scalar"`` (pure Python, the
        oracle) or ``"kernel"`` (vectorised NumPy kernels).  Pairs,
        statistics and I/O counters are byte-identical across modes.
        ``None`` (default) honours ``$REPRO_COMPUTE`` and falls back to
        scalar.
    """
    engine = default_engine()
    method_key = method.lower()
    if method_key not in engine.algorithm_names():
        raise ValueError(
            f"unknown method {method!r}; expected one of {engine.algorithm_names()}"
        )
    if not points_p or not points_q:
        raise ValueError("both pointsets must be non-empty")
    if domain is None:
        data_mbr = Rect.from_points(list(points_p) + list(points_q))
        domain = DOMAIN.union(data_mbr)
    config = WorkloadConfig(
        page_size=page_size,
        buffer_fraction=buffer_fraction,
        domain=domain,
        storage=storage,
        storage_path=storage_path,
        fetch_latency=fetch_latency,
        prefetch=prefetch,
        prefetch_depth=prefetch_depth,
    )
    workload = build_workload(config, points_p=points_p, points_q=points_q)
    try:
        return engine.run(
            method_key,
            workload.tree_p,
            workload.tree_q,
            domain=domain,
            executor=executor,
            workers=workers,
            nodes=nodes,
            node_timeout=node_timeout,
            node_retries=node_retries,
            fault_plan=fault_plan,
            reuse_handoff=reuse_handoff,
            storage=storage,
            storage_path=storage_path,
            prefetch=config.prefetch,
            prefetch_depth=config.prefetch_depth,
            compute=compute,
        )
    finally:
        # The result carries pairs and statistics only; backend resources
        # (e.g. an owned temporary page file) can be released immediately.
        workload.close()
