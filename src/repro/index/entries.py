"""R-tree node and entry primitives.

Leaf entries carry the indexed record (a data point, or a Voronoi cell in
the materialised trees of FM-CIJ/PM-CIJ); branch entries point to a child
page.  Entry byte sizes follow the paper's cost model with 1 KB pages: a
point entry stores an object identifier plus two coordinates, a cell entry
additionally stores its vertex ring, which is why Voronoi leaf pages are
packed by byte size rather than by a fixed fanout.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.geometry.point import Point
from repro.geometry.rect import Rect

#: Bytes occupied by a point leaf entry: 4-byte oid + two 8-byte coordinates.
POINT_ENTRY_BYTES = 20
#: Bytes occupied by a branch entry: 4-byte child pointer + 4 x 8-byte MBR.
BRANCH_ENTRY_BYTES = 36
#: Fixed overhead of a Voronoi-cell leaf entry (oid + vertex count).
CELL_ENTRY_HEADER_BYTES = 8
#: Bytes per stored cell vertex (two 8-byte coordinates).
CELL_VERTEX_BYTES = 16


class LeafEntry:
    """A leaf-level entry: an object identifier, its MBR and its payload."""

    __slots__ = ("oid", "mbr", "payload", "size_bytes")

    def __init__(self, oid: int, mbr: Rect, payload: Any, size_bytes: int = POINT_ENTRY_BYTES):
        self.oid = oid
        self.mbr = mbr
        self.payload = payload
        self.size_bytes = size_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LeafEntry(oid={self.oid}, mbr={self.mbr})"

    @staticmethod
    def for_point(oid: int, point: Point) -> "LeafEntry":
        """Leaf entry for a data point."""
        return LeafEntry(oid, Rect.from_point(point), point, POINT_ENTRY_BYTES)

    @staticmethod
    def for_cell(oid: int, mbr: Rect, cell: Any, vertex_count: int) -> "LeafEntry":
        """Leaf entry for a Voronoi cell with ``vertex_count`` vertices."""
        size = CELL_ENTRY_HEADER_BYTES + CELL_VERTEX_BYTES * max(3, vertex_count)
        return LeafEntry(oid, mbr, cell, size)


class BranchEntry:
    """A non-leaf entry: the MBR of a subtree and the page it lives on."""

    __slots__ = ("mbr", "child_page")

    def __init__(self, mbr: Rect, child_page: int):
        self.mbr = mbr
        self.child_page = child_page

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BranchEntry(child={self.child_page}, mbr={self.mbr})"


class Node:
    """An R-tree node; ``level == 0`` marks leaves."""

    __slots__ = ("level", "entries")

    def __init__(self, level: int, entries: Optional[List[Any]] = None):
        self.level = level
        self.entries = entries if entries is not None else []

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def mbr(self) -> Rect:
        """The tight MBR enclosing every entry of the node."""
        if not self.entries:
            raise ValueError("cannot compute the MBR of an empty node")
        return Rect.union_all(entry.mbr for entry in self.entries)

    def byte_size(self) -> int:
        """Bytes consumed by the node's entries (branch entries are fixed-size)."""
        if self.is_leaf:
            return sum(entry.size_bytes for entry in self.entries)
        return BRANCH_ENTRY_BYTES * len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.is_leaf else f"branch(level={self.level})"
        return f"Node({kind}, {len(self.entries)} entries)"
